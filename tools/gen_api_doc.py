#!/usr/bin/env python
"""Generate docs/API.md: the public API inventory with doc summaries.

Walks every ``repro`` module, lists the symbols each module exports via
``__all__`` and the first line of their docstrings.  Run after changing
public APIs::

    python tools/gen_api_doc.py
"""

from __future__ import annotations

import importlib
import inspect
import os
import pkgutil
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro  # noqa: E402


def first_line(obj) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return "(undocumented)"
    return doc.splitlines()[0].strip()


def walk_modules():
    yield "repro", repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        try:
            yield info.name, importlib.import_module(info.name)
        except Exception as exc:  # pragma: no cover - diagnostics only
            print(f"skipping {info.name}: {exc}", file=sys.stderr)


def main() -> None:
    lines = [
        "# API reference (generated)",
        "",
        "Public symbols per module (`__all__`), with docstring summaries.",
        "Regenerate with `python tools/gen_api_doc.py`.",
        "",
    ]
    for name, module in walk_modules():
        exported = getattr(module, "__all__", None)
        if not exported:
            continue
        lines.append(f"## `{name}`")
        lines.append("")
        lines.append(first_line(module))
        lines.append("")
        for symbol in exported:
            obj = getattr(module, symbol, None)
            if obj is None:
                continue
            if inspect.isclass(obj):
                desc = f"(class) — {first_line(obj)}"
            elif inspect.isfunction(obj) or inspect.ismethod(obj):
                desc = f"(function) — {first_line(obj)}"
            elif isinstance(obj, (int, float, str, bytes, tuple, frozenset)):
                desc = f"(constant, `{type(obj).__name__}`)"
            elif callable(obj):
                desc = f"(callable) — {first_line(obj)}"
            else:
                desc = f"(instance of `{type(obj).__name__}`) — {first_line(obj)}"
            lines.append(f"* **`{symbol}`** {desc}")
        lines.append("")
    out = os.path.join(os.path.dirname(__file__), "..", "docs", "API.md")
    with open(out, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"wrote {os.path.normpath(out)} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
