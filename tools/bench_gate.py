"""CI regression gate over the committed native-bench trajectory.

``benchmarks/BENCH_native.json`` is a committed, schema-versioned
history of per-phase MB/s for every transport at one fixed sizing
(``benchmarks/bench_native.py --trajectory`` appends entries).  This
gate compares a freshly measured candidate entry against the committed
baseline and fails when any phase of any transport regresses by more
than the threshold.

Machines differ, so raw MB/s is not comparable across runners.  Every
trajectory entry carries the same-machine ``np.sort`` MB/s as a
hardware ceiling; the gate compares *normalized* throughput
(phase MB/s divided by that ceiling), which cancels CPU/memory speed
and leaves the code's efficiency.

Usage::

    # structural check of the committed file (+ perf invariants)
    python tools/bench_gate.py --check

    # the CI gate: measure fresh, compare against the committed baseline
    python benchmarks/bench_native.py --trajectory --trajectory-file fresh.json
    python tools/bench_gate.py --candidate fresh.json

Exit codes (the gate never passes vacuously — a missing transport or
phase in the candidate is schema drift, not a pass):

    0  pass
    1  regression beyond --threshold, or a perf invariant failed
    2  schema drift (malformed file, sizing mismatch, missing
       transport/phase in the candidate)
    4  baseline missing (pass --seed to install the candidate as the
       new baseline)
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import List

EXPECTED_SCHEMA = 1
DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "benchmarks", "BENCH_native.json",
)
DEFAULT_THRESHOLD = 0.15
#: Perf invariant from the transport work: zero-copy shared memory must
#: beat pickled pipes by at least this factor on the all-to-all phase.
MIN_SHM_A2A_SPEEDUP = 1.5


class SchemaError(ValueError):
    """The trajectory file does not match the expected schema."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise SchemaError(msg)


def _positive_number(value, what: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{what} must be a number, got {value!r}",
    )
    _require(value > 0, f"{what} must be > 0, got {value!r}")
    return float(value)


def load_trajectory(path: str) -> dict:
    """Load + validate a trajectory file; raise SchemaError on drift."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON: {exc}") from exc
    _require(isinstance(doc, dict), f"{path}: top level must be an object")
    _require(
        doc.get("schema") == EXPECTED_SCHEMA,
        f"{path}: schema {doc.get('schema')!r} != {EXPECTED_SCHEMA}",
    )
    _require(
        isinstance(doc.get("sizing"), dict) and doc["sizing"],
        f"{path}: missing sizing object",
    )
    entries = doc.get("entries")
    _require(
        isinstance(entries, list) and entries,
        f"{path}: entries must be a non-empty list",
    )
    for i, entry in enumerate(entries):
        where = f"{path}: entries[{i}]"
        _require(isinstance(entry, dict), f"{where} must be an object")
        _require(
            isinstance(entry.get("stamp"), str) and entry["stamp"],
            f"{where}.stamp must be a non-empty string",
        )
        _positive_number(entry.get("np_sort_mb_s"), f"{where}.np_sort_mb_s")
        transports = entry.get("transports")
        _require(
            isinstance(transports, dict) and transports,
            f"{where}.transports must be a non-empty object",
        )
        for t, tdoc in transports.items():
            twhere = f"{where}.transports[{t!r}]"
            _require(isinstance(tdoc, dict), f"{twhere} must be an object")
            phases = tdoc.get("phases")
            _require(
                isinstance(phases, dict) and phases,
                f"{twhere}.phases must be a non-empty object",
            )
            for p, mb_s in phases.items():
                _positive_number(mb_s, f"{twhere}.phases[{p!r}]")
            _positive_number(tdoc.get("sort_mb_s"), f"{twhere}.sort_mb_s")
    return doc


def entry_algo(entry: dict) -> str:
    """The backend an entry measured; entries predating the algo tag
    are canonical by definition (the only backend that existed)."""
    return entry.get("algo", "canonical")


def entry_workload(entry: dict) -> str:
    """The key distribution an entry measured; entries predating the
    workload tag are uniform random by definition."""
    return entry.get("workload", "random")


def algos_present(doc: dict) -> List[str]:
    """Backends with at least one entry, in first-appearance order."""
    seen: List[str] = []
    for entry in doc["entries"]:
        algo = entry_algo(entry)
        if algo not in seen:
            seen.append(algo)
    return seen


def variants_present(doc: dict) -> List[tuple]:
    """``(algo, workload)`` pairs with entries, in appearance order.

    The gate keys comparisons on the pair — a duplicate-heavy striped
    entry must never be judged against the random-keys striped
    baseline (skew resend costs are the whole point of measuring it).
    """
    seen: List[tuple] = []
    for entry in doc["entries"]:
        key = (entry_algo(entry), entry_workload(entry))
        if key not in seen:
            seen.append(key)
    return seen


def latest_entry(doc: dict, algo: str = None,
                 workload: str = None) -> dict:
    """The newest entry, or the newest for one backend/workload.

    With ``algo=None`` (legacy call shape) the file's last entry wins
    regardless of backend; with an explicit ``algo`` the newest
    matching entry wins (``workload=None`` matches any), or ``None``
    if the combination never appears.
    """
    if algo is None:
        return doc["entries"][-1]
    for entry in reversed(doc["entries"]):
        if entry_algo(entry) != algo:
            continue
        if workload is not None and entry_workload(entry) != workload:
            continue
        return entry
    return None


def compare_entries(
    baseline: dict, candidate: dict, threshold: float = DEFAULT_THRESHOLD
) -> List[str]:
    """Regression messages for candidate vs baseline (empty = pass).

    Throughputs are normalized by each entry's own ``np.sort`` ceiling
    before comparison.  Every transport and phase present in the
    baseline must be present in the candidate — a shrunken candidate is
    schema drift (SchemaError), never a silent pass.
    """
    base_ceil = baseline["np_sort_mb_s"]
    cand_ceil = candidate["np_sort_mb_s"]
    regressions: List[str] = []
    for t, base_t in baseline["transports"].items():
        _require(
            t in candidate["transports"],
            f"candidate is missing transport {t!r} present in the baseline",
        )
        cand_t = candidate["transports"][t]
        for p, base_mb_s in base_t["phases"].items():
            _require(
                p in cand_t["phases"],
                f"candidate transport {t!r} is missing phase {p!r} "
                "present in the baseline",
            )
            base_norm = base_mb_s / base_ceil
            cand_norm = cand_t["phases"][p] / cand_ceil
            if cand_norm < base_norm * (1.0 - threshold):
                regressions.append(
                    f"{t}/{p}: normalized throughput fell "
                    f"{1.0 - cand_norm / base_norm:.0%} "
                    f"(baseline {base_mb_s:.1f} MB/s @ ceiling "
                    f"{base_ceil:.1f}, candidate "
                    f"{cand_t['phases'][p]:.1f} MB/s @ ceiling "
                    f"{cand_ceil:.1f}; threshold {threshold:.0%})"
                )
    return regressions


def check_invariants(
    entry: dict, min_shm_speedup: float = MIN_SHM_A2A_SPEEDUP
) -> List[str]:
    """Perf invariants the committed trajectory must uphold.

    The shm-vs-pipe all-to-all speedup only constrains the canonical
    backend: striped's all-to-all slot is empty by design (its exchanges
    live in run formation and merge), so the invariant would be
    vacuously comparing zeros there.
    """
    problems: List[str] = []
    transports = entry["transports"]
    if (
        entry_algo(entry) == "canonical"
        and entry_workload(entry) == "random"
        and "shm" in transports
        and "pipe" in transports
    ):
        shm_a2a = transports["shm"]["phases"].get("all_to_all", 0.0)
        pipe_a2a = transports["pipe"]["phases"].get("all_to_all", 0.0)
        if shm_a2a < min_shm_speedup * pipe_a2a:
            problems.append(
                f"shm all_to_all {shm_a2a:.1f} MB/s is below "
                f"{min_shm_speedup}x pipe ({pipe_a2a:.1f} MB/s): the "
                "zero-copy path has lost its edge"
            )
    return problems


# -------------------------------------------------- ablation file gate

EXPECTED_ABLATION_SCHEMA = 1
DEFAULT_ABLATIONS = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "benchmarks", "BENCH_ablations.json",
)
#: Context fields every sweep must carry (mirrors
#: repro.tuning.knobs.CONTEXT_FIELDS; duplicated here so the gate stays
#: a standalone tool with no import path requirements).
ABLATION_CONTEXT_FIELDS = (
    "n_workers", "data_mib", "memory_mib", "block_kib", "seed",
    "transport", "algo", "records",
)


def load_ablations_doc(path: str) -> dict:
    """Load + validate an ablation file; raise SchemaError on drift."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path}: not valid JSON: {exc}") from exc
    _require(isinstance(doc, dict), f"{path}: top level must be an object")
    _require(
        doc.get("schema") == EXPECTED_ABLATION_SCHEMA,
        f"{path}: schema {doc.get('schema')!r} != "
        f"{EXPECTED_ABLATION_SCHEMA}",
    )
    sweeps = doc.get("sweeps")
    _require(
        isinstance(sweeps, list) and sweeps,
        f"{path}: sweeps must be a non-empty list",
    )
    for i, sweep in enumerate(sweeps):
        where = f"{path}: sweeps[{i}]"
        _require(isinstance(sweep, dict), f"{where} must be an object")
        context = sweep.get("context")
        _require(
            isinstance(context, dict), f"{where}.context must be an object"
        )
        for fld in ABLATION_CONTEXT_FIELDS:
            _require(
                fld in context, f"{where}.context is missing {fld!r}"
            )
        runs = sweep.get("runs")
        _require(
            isinstance(runs, dict) and runs,
            f"{where}.runs must be a non-empty object",
        )
        for rid, run in runs.items():
            rwhere = f"{where}.runs[{rid!r}]"
            _require(
                isinstance(rid, str) and len(rid) == 12,
                f"{rwhere}: run ids are 12-char content hashes",
            )
            _require(isinstance(run, dict), f"{rwhere} must be an object")
            _require(run.get("ok") is True, f"{rwhere}.ok must be true")
            _positive_number(run.get("sort_mb_s"), f"{rwhere}.sort_mb_s")
            _require(
                isinstance(run.get("phases"), dict) and run["phases"],
                f"{rwhere}.phases must be a non-empty object",
            )
            _require(
                isinstance(run.get("settings"), dict),
                f"{rwhere}.settings must be an object",
            )
        _require(
            isinstance(sweep.get("ranking"), list),
            f"{where}.ranking must be a list",
        )
    return doc


def check_ablation_consistency(doc: dict) -> List[str]:
    """Does each sweep's committed ranking agree with its raw runs?

    Recomputes every knob's importance (largest absolute relative
    sort-throughput delta vs the sweep's baseline run) from the run
    records and flags rankings that drifted — a hand-edited or stale
    report fails the gate rather than steering the tuner silently.
    """
    problems: List[str] = []
    for i, sweep in enumerate(doc["sweeps"]):
        runs = sweep["runs"]
        baseline = next(
            (r for r in runs.values() if r.get("knob") is None), None
        )
        ranking = sweep.get("ranking", [])
        if baseline is None:
            if ranking:
                problems.append(
                    f"sweeps[{i}]: ranking present but no baseline run"
                )
            continue
        base = baseline["sort_mb_s"]
        order = [row.get("importance", 0.0) for row in ranking]
        if order != sorted(order, reverse=True):
            problems.append(
                f"sweeps[{i}]: ranking is not sorted by importance"
            )
        for row in ranking:
            name = row.get("knob")
            deltas = [
                run["sort_mb_s"] / base - 1.0
                for run in runs.values()
                if run.get("knob") == name
            ]
            if not deltas:
                problems.append(
                    f"sweeps[{i}]: ranked knob {name!r} has no runs"
                )
                continue
            expect = max(abs(d) for d in deltas)
            got = row.get("importance")
            if not isinstance(got, (int, float)) or abs(
                got - expect
            ) > 1e-6 + 1e-6 * expect:
                problems.append(
                    f"sweeps[{i}]: knob {name!r} importance {got!r} "
                    f"disagrees with its runs (expected {expect:.6f})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default=os.path.normpath(DEFAULT_BASELINE),
        help="committed trajectory file (default benchmarks/BENCH_native.json)",
    )
    parser.add_argument(
        "--candidate", default=None,
        help="freshly measured trajectory file; its latest entry is "
        "gated against the baseline's latest entry",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="max tolerated normalized regression per phase (default 0.15)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="only validate the baseline file and its perf invariants "
        "(no candidate measurement needed)",
    )
    parser.add_argument(
        "--seed", action="store_true",
        help="if the baseline is missing, install the candidate as the "
        "new baseline instead of failing with exit 4",
    )
    parser.add_argument(
        "--ablations", default=None, metavar="PATH",
        help="also validate an ablation file (benchmarks/"
        "BENCH_ablations.json): schema drift exits 2, a missing file "
        "exits 4, a ranking that disagrees with its runs exits 1",
    )
    args = parser.parse_args(argv)

    if args.ablations is not None:
        if not os.path.exists(args.ablations):
            print(
                f"error: ablation file {args.ablations} is missing "
                "(run `python -m repro tune run --quick` and commit it)",
                file=sys.stderr,
            )
            return 4
        try:
            abl_doc = load_ablations_doc(args.ablations)
        except SchemaError as exc:
            print(f"SCHEMA DRIFT: {exc}", file=sys.stderr)
            return 2
        problems = check_ablation_consistency(abl_doc)
        for p in problems:
            print(f"ABLATION INCONSISTENT: {p}", file=sys.stderr)
        if problems:
            return 1
        n_runs = sum(len(s["runs"]) for s in abl_doc["sweeps"])
        print(
            f"ablation gate: {args.ablations} ok "
            f"({len(abl_doc['sweeps'])} sweep(s), {n_runs} runs, "
            "rankings agree with their runs)"
        )
        if not args.check and args.candidate is None:
            return 0

    if not args.check and args.candidate is None:
        print("error: --candidate is required unless --check", file=sys.stderr)
        return 2

    try:
        if not os.path.exists(args.baseline):
            if args.seed and args.candidate:
                load_trajectory(args.candidate)  # refuse to seed garbage
                shutil.copyfile(args.candidate, args.baseline)
                print(f"seeded baseline {args.baseline} from {args.candidate}")
                return 0
            print(
                f"error: baseline {args.baseline} is missing "
                "(run bench_native.py --trajectory and commit it, or pass "
                "--seed with a --candidate)",
                file=sys.stderr,
            )
            return 4
        base_doc = load_trajectory(args.baseline)

        if args.check:
            problems = []
            for algo, workload in variants_present(base_doc):
                problems.extend(
                    check_invariants(latest_entry(base_doc, algo, workload))
                )
            for p in problems:
                print(f"INVARIANT FAILED: {p}", file=sys.stderr)
            if problems:
                return 1
            n = len(base_doc["entries"])
            print(
                f"bench gate --check: {args.baseline} ok "
                f"({n} entr{'y' if n == 1 else 'ies'}, invariants hold)"
            )
            return 0

        if not os.path.exists(args.candidate):
            print(
                f"error: candidate {args.candidate} is missing",
                file=sys.stderr,
            )
            return 2
        cand_doc = load_trajectory(args.candidate)
        _require(
            cand_doc["sizing"] == base_doc["sizing"],
            f"candidate sizing {cand_doc['sizing']!r} != baseline sizing "
            f"{base_doc['sizing']!r}",
        )
        # Gate per (backend, workload) variant: every variant in the
        # baseline must appear in the candidate (dropping one is drift,
        # never a silent pass); a variant only the candidate has is new
        # and gains a baseline the moment the candidate is committed.
        regressions = []
        for algo, workload in variants_present(base_doc):
            cand_entry = latest_entry(cand_doc, algo, workload)
            _require(
                cand_entry is not None,
                f"candidate is missing backend {algo!r} (workload "
                f"{workload!r}) present in the baseline",
            )
            regressions.extend(
                compare_entries(
                    latest_entry(base_doc, algo, workload), cand_entry,
                    threshold=args.threshold,
                )
            )
    except SchemaError as exc:
        print(f"SCHEMA DRIFT: {exc}", file=sys.stderr)
        return 2

    for r in regressions:
        print(f"REGRESSION: {r}", file=sys.stderr)
    if regressions:
        return 1
    variants = variants_present(base_doc)
    n_phases = sum(
        len(t["phases"])
        for algo, workload in variants
        for t in latest_entry(base_doc, algo, workload)[
            "transports"
        ].values()
    )
    print(
        f"bench gate: {n_phases} phase throughputs across "
        f"{len(variants)} variant(s) within "
        f"{args.threshold:.0%} of the committed baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
