"""Legacy setup shim (the offline environment lacks the `wheel` package
needed for PEP 660 editable installs, so `python setup.py develop` is the
editable-install path here)."""

from setuptools import setup

setup()
