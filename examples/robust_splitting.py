#!/usr/bin/env python
"""Exact multiway selection vs splitter guessing on hostile inputs.

The paper's Section II criticizes NOW-Sort: "it only works efficiently
for random inputs.  In the worst case, it deteriorates to a sequential
algorithm since all the data ends up in a single processor."  This demo
sorts random and heavily skewed inputs with

* CanonicalMergeSort (exact multiway selection — this paper),
* NOW-Sort with uniform (Indy-style) splitters,
* NOW-Sort with sampled splitters (the extra-scan repair),
* the five-pass external sample sort,

and prints each algorithm's load imbalance, I/O passes and running time.

Usage::

    python examples/robust_splitting.py
    REPRO_EXAMPLE_SCALE=tiny python examples/robust_splitting.py
"""

import os

from repro import (
    CanonicalMergeSort,
    Cluster,
    ExternalSampleSort,
    GiB,
    MiB,
    NowSort,
    SortConfig,
    generate_input,
    input_keys,
    validate_output,
)

ALGORITHMS = [
    ("CanonicalMergeSort", lambda c, cfg: CanonicalMergeSort(c, cfg)),
    ("NowSort/uniform", lambda c, cfg: NowSort(c, cfg, "uniform")),
    ("NowSort/sampled", lambda c, cfg: NowSort(c, cfg, "sampled")),
    ("ExternalSampleSort", lambda c, cfg: ExternalSampleSort(c, cfg)),
]


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
    n_nodes = 4 if tiny else 8
    config = SortConfig(
        data_per_node_bytes=(48 * MiB) if tiny else 24 * GiB,
        memory_bytes=(16 * MiB) if tiny else 6 * GiB,
        block_bytes=1 * MiB if tiny else 8 * MiB,
        block_elems=16,
        downscale=1 if tiny else 48,
    )
    print(f"{'workload':<8} {'algorithm':<20} {'imbalance':>10} "
          f"{'I/O passes':>11} {'total [s]':>10}")
    for workload in ["random", "skewed"]:
        for name, factory in ALGORITHMS:
            cluster = Cluster(n_nodes)
            em, inputs = generate_input(cluster, config, workload)
            before = input_keys(em, inputs)
            result = factory(cluster, config).sort(em, inputs)
            balanced = name == "CanonicalMergeSort"
            validate_output(
                before, result.output_keys(em), balanced=balanced
            ).raise_if_failed()
            imbalance = getattr(result, "imbalance", 1.0)
            passes = result.stats.total_io_bytes / config.total_bytes(n_nodes) / 2
            print(
                f"{workload:<8} {name:<20} {imbalance:>10.2f} "
                f"{passes:>11.2f} {result.stats.scaled_total_time:>10.1f}"
            )
    print()
    print("Exact splitting keeps imbalance at 1.00 regardless of the input;")
    print("uniform splitters collapse on skew, sampling costs an extra pass.")


if __name__ == "__main__":
    main()
