#!/usr/bin/env python
"""The paper's two algorithms side by side (Sections III vs IV).

GlobalStripedMergeSort minimizes I/O and scales to N = M²/B, but ships
the data across the network 4-5 times; CanonicalMergeSort communicates
it (nearly) once and produces the canonical partitioned output, at a
factor-P smaller (but still huge) input limit.  This demo sorts the same
input with both and prints I/O volume, network volume and time.

Usage::

    python examples/striped_vs_canonical.py
    REPRO_EXAMPLE_SCALE=tiny python examples/striped_vs_canonical.py
"""

import os

import numpy as np

from repro import (
    CanonicalMergeSort,
    Cluster,
    GiB,
    GlobalStripedMergeSort,
    MiB,
    SortConfig,
    generate_input,
    input_keys,
)


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
    n_nodes = 8
    config = SortConfig(
        data_per_node_bytes=(48 * MiB) if tiny else 24 * GiB,
        memory_bytes=(16 * MiB) if tiny else 6 * GiB,
        block_bytes=1 * MiB if tiny else 8 * MiB,
        block_elems=16,
        downscale=1 if tiny else 48,
    )
    n_bytes = config.total_bytes(n_nodes)
    print(f"{'algorithm':<24} {'io / N':>8} {'net / N':>8} {'total [s]':>10}  output")

    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, config, "random")
    want = np.sort(np.concatenate(input_keys(em, inputs)))
    canonical = CanonicalMergeSort(cluster, config).sort(em, inputs)
    got = np.concatenate(canonical.output_keys(em))
    assert np.array_equal(want, got)
    print(
        f"{'CanonicalMergeSort':<24} "
        f"{canonical.stats.total_io_bytes / n_bytes:>8.2f} "
        f"{canonical.stats.network_bytes / n_bytes:>8.2f} "
        f"{canonical.stats.scaled_total_time:>10.1f}  per-PE quantiles"
    )

    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, config, "random")
    want = np.sort(np.concatenate(input_keys(em, inputs)))
    striped = GlobalStripedMergeSort(cluster, config).sort(em, inputs)
    assert np.array_equal(want, striped.global_keys(em))
    print(
        f"{'GlobalStripedMergeSort':<24} "
        f"{striped.stats.total_io_bytes / n_bytes:>8.2f} "
        f"{striped.stats.network_bytes / n_bytes:>8.2f} "
        f"{striped.stats.scaled_total_time:>10.1f}  globally striped"
    )
    print()
    print("Both take ~2 passes of I/O; the canonical variant moves the data")
    print("across the network once instead of four times (paper §III/§IV).")


if __name__ == "__main__":
    main()
