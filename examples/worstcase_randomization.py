#!/usr/bin/env python
"""The randomization story: why CanonicalMergeSort shuffles block IDs.

Reproduces the essence of the paper's Figures 4-6 at demo scale: on a
*worst-case* input (each node's data locally sorted, so naive run
formation creates runs covering narrow key slices), nearly all data has
to move in the external all-to-all — unless run formation randomizes
which local blocks join which run.  Smaller blocks amplify the effect
(the sqrt(B) law of Appendix C).

Usage::

    python examples/worstcase_randomization.py
    REPRO_EXAMPLE_SCALE=tiny python examples/worstcase_randomization.py
"""

import os

from repro import (
    CanonicalMergeSort,
    Cluster,
    GiB,
    MiB,
    SortConfig,
    generate_input,
    input_keys,
    validate_output,
)


def run(randomize: bool, block_bytes: float, tiny: bool) -> dict:
    config = SortConfig(
        data_per_node_bytes=(48 * MiB) if tiny else 24 * GiB,
        memory_bytes=(16 * MiB) if tiny else 6 * GiB,
        block_bytes=block_bytes if tiny else block_bytes * 8,
        block_elems=16,
        randomize=randomize,
        downscale=1 if tiny else 48,
    )
    cluster = Cluster(8)
    em, inputs = generate_input(cluster, config, kind="worstcase")
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cluster, config).sort(em, inputs)
    validate_output(before, result.output_keys(em)).raise_if_failed()
    stats = result.stats
    return {
        "a2a_ratio": stats.phase_bytes("all_to_all") / config.total_bytes(8),
        "total_s": stats.scaled_total_time,
    }


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
    rows = [
        ("non-randomized, B=1x", run(False, 1 * MiB, tiny)),
        ("randomized,     B=1x", run(True, 1 * MiB, tiny)),
        ("randomized,     B=1/4x", run(True, 256 * 1024, tiny)),
    ]
    print("Worst-case input (locally sorted) on 8 nodes:")
    print(f"{'configuration':<24} {'all-to-all I/O / N':>20} {'total [s]':>12}")
    for label, r in rows:
        print(f"{label:<24} {r['a2a_ratio']:>20.3f} {r['total_s']:>12.1f}")
    print()
    base, rand, small = rows[0][1], rows[1][1], rows[2][1]
    print(
        f"Randomization cuts the redistribution volume "
        f"{base['a2a_ratio'] / rand['a2a_ratio']:.1f}x; "
        f"quartering B cuts it another "
        f"{rand['a2a_ratio'] / small['a2a_ratio']:.1f}x "
        "(the sqrt(B) law of the paper's Appendix C)."
    )


if __name__ == "__main__":
    main()
