#!/usr/bin/env python
"""Reproduce the paper's SortBenchmark headline results.

The 2009 DEMSort entries that this paper describes: Indy GraySort
(564 GB/min over 10^14 bytes), MinuteSort (955 GB inside a minute) and
TerabyteSort (10^12 bytes in under 64 s).  Each table contrasts the
simulated reproduction with the published numbers the paper cites.

Usage::

    python examples/sortbenchmark.py                 # quick (16-node slice)
    REPRO_EXAMPLE_SCALE=tiny python examples/sortbenchmark.py  # terabyte only
    REPRO_EXAMPLE_SCALE=full python examples/sortbenchmark.py  # all 195 nodes
"""

import os

from repro.bench import graysort, minutesort, terabytesort


def main() -> None:
    scale = os.environ.get("REPRO_EXAMPLE_SCALE", "quick")
    quick = scale != "full"
    experiments = (
        [terabytesort]
        if scale == "tiny"
        else [terabytesort, graysort, minutesort]
    )
    for experiment in experiments:
        result = experiment(quick=quick)
        print(result.render())
        print()


if __name__ == "__main__":
    main()
