#!/usr/bin/env python
"""Pipelined sorting feeding Kruskal's algorithm (paper Section VII).

The paper's outlook proposes using CanonicalMergeSort in a pipeline:
run formation consumes data from a generator and the sorted output feeds
"a postprocessor that requires its input in sorted order (e.g., variants
of Kruskal's algorithm)" — their own Filter-Kruskal work.  This demo
builds a minimum spanning tree of a random graph whose edge list is too
large for one node's memory:

1. each node *generates* its share of edges (no input pass over disk),
   encoded as 64-bit keys: weight in the high bits, endpoints below;
2. the pipelined sort streams every edge exactly once through disk
   (~2 passes instead of 4) and hands each node its weight-ordered
   quantile of the edge list;
3. a union-find consumer processes the streams in rank order — Kruskal —
   and the result is checked against networkx's MST weight.

Usage::

    python examples/pipelined_kruskal.py
    REPRO_EXAMPLE_SCALE=tiny python examples/pipelined_kruskal.py
"""

import os

import numpy as np

from repro import Cluster, ExternalMemory, MiB, SortConfig
from repro.core.pipeline import ArraySource, CollectingSink, PipelinedMergeSort

_V_BITS = 16
_V_MASK = (1 << _V_BITS) - 1


def encode_edges(weights, us, vs):
    """Pack (weight, u, v) into sortable uint64 keys (weight-major)."""
    return (
        (weights.astype(np.uint64) << np.uint64(2 * _V_BITS))
        | (us.astype(np.uint64) << np.uint64(_V_BITS))
        | vs.astype(np.uint64)
    )


def decode_edges(keys):
    w = (keys >> np.uint64(2 * _V_BITS)).astype(np.int64)
    u = ((keys >> np.uint64(_V_BITS)) & np.uint64(_V_MASK)).astype(np.int64)
    v = (keys & np.uint64(_V_MASK)).astype(np.int64)
    return w, u, v


class UnionFind:
    """Path-halving union-find for the Kruskal consumer."""

    def __init__(self, n):
        self.parent = list(range(n))
        self.components = n

    def find(self, x):
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        self.components -= 1
        return True


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
    n_nodes = 4
    n_vertices = 200 if tiny else 2000
    edges_per_node = 2000 if tiny else 40000

    rng = np.random.default_rng(7)
    config = SortConfig(
        data_per_node_bytes=edges_per_node / 16 * MiB,  # keep R = ~4 runs
        memory_bytes=edges_per_node / 64 * MiB,
        block_bytes=1 * MiB,
        block_elems=16,
    )
    cluster = Cluster(n_nodes)
    em = ExternalMemory(cluster, config.block_bytes, config.block_elems)

    # 1. Generate edges per node (a spanning cycle guarantees connectivity).
    all_edges = []
    sources = []
    for rank in range(n_nodes):
        m = edges_per_node
        us = rng.integers(0, n_vertices, m)
        vs = rng.integers(0, n_vertices, m)
        if rank == 0:  # connectivity backbone
            us[:n_vertices] = np.arange(n_vertices)
            vs[:n_vertices] = (np.arange(n_vertices) + 1) % n_vertices
        weights = rng.integers(1, 1 << 20, m)
        keys = encode_edges(weights, us, vs)
        all_edges.append(keys)
        sources.append(ArraySource(keys, config.block_elems))
    sinks = [CollectingSink() for _ in range(n_nodes)]

    # 2. Pipelined sort: generator -> runs -> sorted streams.
    result = PipelinedMergeSort(cluster, config).sort(em, sources, sinks)
    total_edges = sum(len(e) for e in all_edges)
    io_passes = result.stats.total_io_bytes / config.keys_to_bytes(total_edges) / 2
    print(
        f"Sorted {total_edges} edges in pipeline mode: "
        f"{io_passes:.2f} I/O passes (batch mode needs ~2), "
        f"simulated {result.stats.total_time:.2f} s"
    )

    # 3. Kruskal consumer over the weight-ordered streams, rank by rank.
    uf = UnionFind(n_vertices)
    mst_weight = 0
    mst_edges = 0
    for sink in sinks:
        w, u, v = decode_edges(sink.keys)
        for i in range(len(w)):
            if uf.union(int(u[i]), int(v[i])):
                mst_weight += int(w[i])
                mst_edges += 1
        if uf.components == 1:
            break
    print(f"MST: {mst_edges} edges, total weight {mst_weight}")

    # 4. Cross-check against networkx.
    try:
        import networkx as nx
    except ImportError:
        print("(networkx not installed; skipping cross-check)")
        return
    graph = nx.Graph()
    w, u, v = decode_edges(np.concatenate(all_edges))
    for i in range(len(w)):
        a, b = int(u[i]), int(v[i])
        if a == b:
            continue
        if not graph.has_edge(a, b) or graph[a][b]["weight"] > int(w[i]):
            graph.add_edge(a, b, weight=int(w[i]))
    expected = int(
        sum(d["weight"] for _a, _b, d in nx.minimum_spanning_edges(graph))
    )
    assert mst_weight == expected, (mst_weight, expected)
    print(f"networkx agrees: MST weight {expected}  ✓")


if __name__ == "__main__":
    main()
