#!/usr/bin/env python
"""Capacity planning with the paper's analysis (§IV-D).

"Can this machine sort that much data in two passes, and how long will
it take?" — the question a cluster owner asks before submitting a
SortBenchmark entry.  The planner checks every constraint of the paper's
analysis (the N = O(M²/(P·B)) two-pass limit, the m ≫ P·B·log P
redistribution bound, the all-to-all buffer requirement) and, when the
job is feasible, estimates per-phase times by running the actual
simulator downscaled.

Scenarios below: the paper's own GraySort job, the same job on a quarter
of the machine, a petabyte that needs more memory, and the fix.

Usage::

    python examples/capacity_planning.py
    REPRO_EXAMPLE_SCALE=tiny python examples/capacity_planning.py
"""

import os

from repro import GiB
from repro.bench import plan_sort


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
    measure = not tiny
    scenarios = [
        ("The paper's Indy GraySort entry (10^14 B, 195 nodes)",
         dict(total_bytes=1e14, n_nodes=195, memory_bytes=12 * GiB)),
        ("Same data on a quarter of the machine",
         dict(total_bytes=1e14, n_nodes=48, memory_bytes=12 * GiB)),
        ("A petabyte on 16 small-memory nodes (too many runs!)",
         dict(total_bytes=1e15, n_nodes=16, memory_bytes=4 * GiB)),
        ("The petabyte fixed: 195 nodes, 48 GiB run memory, 16 MiB blocks",
         dict(total_bytes=1e15, n_nodes=195, memory_bytes=48 * GiB,
              block_bytes=16 * 2 ** 20)),
    ]
    for title, job in scenarios:
        print(f"=== {title} ===")
        plan = plan_sort(measure=measure, **job)
        print(plan.render())
        print()


if __name__ == "__main__":
    main()
