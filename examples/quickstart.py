#!/usr/bin/env python
"""Quickstart: sort data on a simulated 8-node cluster and validate it.

Runs CanonicalMergeSort (the paper's main algorithm) on uniformly random
input, prints the per-phase timing summary — the same breakdown the
paper's Figure 2 stacks — and validates the output against the
SortBenchmark rules (order, balance, checksum, permutation).

Usage::

    python examples/quickstart.py            # ~4 GiB represented / node
    REPRO_EXAMPLE_SCALE=tiny python examples/quickstart.py   # CI-sized
"""

import os

from repro import (
    CanonicalMergeSort,
    Cluster,
    MiB,
    SortConfig,
    generate_input,
    input_keys,
    validate_output,
)


def main() -> None:
    tiny = os.environ.get("REPRO_EXAMPLE_SCALE") == "tiny"
    config = SortConfig(
        data_per_node_bytes=(48 if tiny else 4096) * MiB,
        memory_bytes=(16 if tiny else 1024) * MiB,
        block_bytes=(1 if tiny else 8) * MiB,
        block_elems=16,
    )
    cluster = Cluster(n_nodes=8)
    print(
        f"Sorting {config.total_bytes(8) / 2**30:.1f} GiB across "
        f"{cluster.n_nodes} nodes / {cluster.n_disks} disks "
        f"(R = {config.n_runs(cluster.spec)} runs)..."
    )

    em, inputs = generate_input(cluster, config, kind="random")
    before = input_keys(em, inputs)

    result = CanonicalMergeSort(cluster, config).sort(em, inputs)
    print()
    print(result.stats.summary())

    report = validate_output(before, result.output_keys(em))
    report.raise_if_failed()
    print()
    print(
        f"Output valid: {report.total_keys} keys, perfectly balanced, "
        f"checksum {report.checksum:#018x}"
    )


if __name__ == "__main__":
    main()
