"""Figure 2: per-phase running times for random input, P = 1..8 (quick).

Paper claims checked:
* near-perfect scalability at fixed data per PE;
* run formation ≈ final merge;
* multiway selection negligible.
"""

from conftest import once

from repro.bench import fig2, write_report


def test_fig2_scaling_random(benchmark):
    result = once(benchmark, lambda: fig2(quick=True))
    write_report(result)

    rows = result.rows
    totals = [row["total [s]"] for row in rows]
    # Scalability: total at the largest P within 25% of single-node.
    assert totals[-1] <= 1.25 * totals[0]

    # Paper: "the average I/O bandwidth per disk is about 50 MiB/s, which
    # is more than 2/3 of the maximum" — check the effective rate lands in
    # the same neighbourhood (ours includes barrier gaps, so a bit lower).
    from repro.bench import paper_config, run_canonical

    record = run_canonical(4, "random", config=paper_config())
    per_disk_mib_s = (
        record.stats.total_io_bytes
        / (4 * 4)
        / record.stats.total_time
        / 2 ** 20
    )
    assert 30 <= per_disk_mib_s <= 62, per_disk_mib_s
    for row in rows:
        rf = row["run formation [s]"]
        mg = row["final merge [s]"]
        sel = row["multiway selection [s]"]
        # Run formation about equal to the final merge (within 2x).
        assert 0.5 <= rf / mg <= 2.0
        # Selection takes negligible time (< 2% of the total).
        assert sel <= 0.02 * row["total [s]"]
