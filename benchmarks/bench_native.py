"""Native-backend throughput: real MB/s per phase vs an in-RAM baseline.

Unlike the figure benchmarks (which *simulate* the paper's cluster),
this one moves real bytes: it runs the native backend on a spill
directory and reports measured per-phase throughput, next to the obvious
upper bound — ``np.sort`` over the same records held entirely in RAM.
The gap between the two is the price of external memory plus the
process/pipe interconnect.

Standalone (defaults: 256 MiB across 4 worker processes, M = 32 MiB)::

    python benchmarks/bench_native.py
    python benchmarks/bench_native.py --workers 8 --data-mib 16 --spill-dir /tmp/s

As part of the benchmark suite (tiny sizes)::

    pytest benchmarks/bench_native.py --benchmark-only
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.config import SortConfig  # noqa: E402
from repro.native import native_sort  # noqa: E402
from repro.native.records import (  # noqa: E402
    RECORD_BYTES,
    generate_records,
    sort_records,
)
from repro.native.stats import NATIVE_PHASES  # noqa: E402

MiB = 2**20

#: Fixed sizing for the committed perf trajectory (``--trajectory``).
#: Small enough to finish in seconds on a laptop or CI runner, large
#: enough that the all-to-all actually moves multiple ring-buffers'
#: worth of bytes per channel pair.
TRAJECTORY_SIZING = {
    "n_workers": 4,
    "data_mib": 8.0,
    "memory_mib": 4.0,
    "block_kib": 64.0,
    "seed": 12345,
}
TRAJECTORY_TRANSPORTS = ("pipe", "tcp", "shm")
#: Backends measured per trajectory run (one entry each, same stamp):
#: the canonical-vs-striped rows are where the all-to-all amplification
#: crossover lives, guidesort rides along for the merge comparison.
TRAJECTORY_ALGOS = ("canonical", "striped", "guidesort")
#: (algo, workload) variants measured per trajectory run.  The
#: ``("striped", "dup")`` entry is the dedicated duplicate-heavy bench:
#: gensort skew keys make striped's merge re-sort resend records it
#: already placed (the amplification worst case PR 9 flagged), so the
#: regression gate tracks that worst case per backend, not just the
#: random-input happy path.
TRAJECTORY_VARIANTS = (
    ("canonical", "random"),
    ("striped", "random"),
    ("guidesort", "random"),
    ("striped", "dup"),
)
TRAJECTORY_SCHEMA = 1
DEFAULT_TRAJECTORY_FILE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_native.json"
)


def in_ram_baseline(total_records: int, seed: int, skew: bool) -> dict:
    """Sort the same records with one ``np.sort`` call, all in RAM."""
    records = generate_records(0, total_records, seed=seed, skew=skew)
    start = time.monotonic()
    records = sort_records(records)
    wall = time.monotonic() - start
    nbytes = records.nbytes
    del records
    return {"wall": wall, "mb_s": nbytes / wall / 1e6 if wall > 0 else 0.0}


def run_native_bench(
    n_workers: int = 4,
    data_mib: float = 64.0,
    memory_mib: float = 32.0,
    block_kib: float = 256.0,
    spill_dir: str | None = None,
    skew: bool = False,
    seed: int = 12345,
    timeout: float = 600.0,
    transport: str = "pipe",
    prefetch_blocks: int = 0,
    write_behind_blocks: int = 0,
    baseline: bool = True,
    algo: str = "canonical",
    records: str = "fixed16",
    pending_sends: int = 4,
    shm_ring_kib: "int | None" = None,
    checkpoint: bool = False,
    a2a_checkpoint_chunks: int = 8,
) -> dict:
    """One native sort + the RAM baseline; returns a comparison dict.

    Every keyword here is a knob the ablation driver
    (:mod:`repro.tuning`) can vary — this function is the single
    measurement path shared by ad-hoc runs, the committed trajectory,
    and the tuner's one-knob-off sweeps.
    """
    config = SortConfig(
        data_per_node_bytes=data_mib * MiB,
        memory_bytes=memory_mib * MiB,
        block_bytes=block_kib * 1024,
        seed=seed,
    )
    own_dir = spill_dir is None
    root = spill_dir or tempfile.mkdtemp(prefix="bench-native-")
    try:
        result = native_sort(
            config, n_workers=n_workers, spill_dir=root,
            skew=skew, timeout=timeout, transport=transport,
            pending_sends=pending_sends,
            prefetch_blocks=prefetch_blocks,
            write_behind_blocks=write_behind_blocks,
            checkpoint=checkpoint,
            a2a_checkpoint_chunks=a2a_checkpoint_chunks,
            records=records,
            algo=algo,
            shm_ring_kib=shm_ring_kib,
        )
        report = result.validate()
        stats = result.stats
        rows = []
        for phase in NATIVE_PHASES:
            if phase not in stats.phases:
                continue
            rows.append(
                {
                    "phase": phase,
                    "wall_s": stats.wall_max(phase),
                    "disk_mib": stats.phase_bytes(phase) / MiB,
                    "mb_s": stats.phase_throughput(phase) / 1e6,
                    "stall_s": stats.stall_max(phase),
                    "overlap_ratio": stats.overlap_ratio(phase),
                    "wire_mib": stats.wire_sent(phase) / MiB,
                    "wire_volume_mib": stats.wire_volume(phase) / MiB,
                }
            )
        out = {
            "ok": report.ok,
            "issues": report.issues,
            "n_workers": n_workers,
            "algo": algo,
            "transport": transport,
            "prefetch_blocks": prefetch_blocks,
            "write_behind_blocks": write_behind_blocks,
            "total_mib": stats.total_bytes / MiB,
            "n_runs": stats.n_runs,
            "total_s": stats.total_time,
            "sort_phases_s": stats.sort_phases_wall,
            "peak_resident_mib": stats.peak_resident_bytes / MiB,
            "max_rss_mib": max(
                (w.max_rss_bytes for w in stats.workers), default=0
            ) / MiB,
            "interconnect_mib": stats.network_bytes / MiB,
            # The paper's communication bound: the all-to-all moves the
            # full data volume N exactly once (wire + locally kept
            # share); everything else — samples, probes, barriers — is
            # the o(N) term.
            "a2a_volume_mib": stats.wire_volume("all_to_all") / MiB,
            "a2a_volume_over_n": (
                stats.wire_volume("all_to_all") / stats.total_bytes
                if stats.total_bytes else 0.0
            ),
            "o_n_overhead_mib": max(
                0, stats.network_bytes - stats.wire_sent("all_to_all")
            ) / MiB,
            "socket_mib_sent": stats.socket_bytes_sent / MiB,
            "phases": rows,
            "outputs": [
                {
                    "rank": m.rank,
                    "n_records": m.n_records,
                    "first_key": m.first_key,
                    "last_key": m.last_key,
                    "checksum": m.checksum,
                }
                for m in result.outputs
            ],
        }
        if baseline:
            out["baseline_np_sort"] = in_ram_baseline(
                result.job.total_records, seed=seed, skew=skew
            )
    finally:
        if own_dir:
            import shutil

            shutil.rmtree(root, ignore_errors=True)
    return out


def run_pipelined_comparison(
    prefetch_blocks: int = 8,
    write_behind_blocks: int = 8,
    **kwargs,
) -> dict:
    """Synchronous vs pipelined native sort on the identical sizing.

    Both runs sort the same deterministic input; the per-rank output
    metadata (count, boundary keys, checksum) must agree exactly — the
    same streaming evidence the conformance harness compares bytewise.
    The verdict reports the speedup of the pipelined run over the
    synchronous sort phases; a slowdown is *explained* in the JSON
    (``regression_note``) rather than hidden, since tiny sizings on a
    fast page cache can make thread hand-off costs visible.
    """
    sync = run_native_bench(**kwargs)
    pipe = run_native_bench(
        prefetch_blocks=prefetch_blocks,
        write_behind_blocks=write_behind_blocks,
        baseline=False,
        **{k: v for k, v in kwargs.items() if k != "baseline"},
    )
    outputs_match = sync["outputs"] == pipe["outputs"]
    speedup = (
        sync["sort_phases_s"] / pipe["sort_phases_s"]
        if pipe["sort_phases_s"] > 0
        else 0.0
    )
    out = {
        "ok": sync["ok"] and pipe["ok"] and outputs_match,
        "outputs_match": outputs_match,
        "sync": sync,
        "pipelined": pipe,
        "speedup": speedup,
    }
    if speedup < 1.0:
        out["regression_note"] = (
            f"pipelined run was {1 / speedup:.2f}x slower than synchronous: "
            "at this sizing the spill files fit in the OS page cache, so "
            "synchronous 'I/O' is a memcpy and the pipeline's thread "
            "hand-offs cost more than the overlap saves; the pipelined "
            "path wins once reads/writes hit real device latency "
            "(larger --data-mib or a cold/slow spill device)"
        )
    return out


def measure_trajectory_entry(
    stamp: str,
    sizing: dict | None = None,
    transports: tuple = TRAJECTORY_TRANSPORTS,
    timeout: float = 600.0,
    algo: str = "canonical",
    workload: str = "random",
) -> dict:
    """One trajectory data point: per-phase MB/s for every transport.

    Every transport sorts the identical deterministic input at the fixed
    ``TRAJECTORY_SIZING``, so phase throughputs are directly comparable
    — only the interconnect differs.  The same-machine ``np.sort`` MB/s
    rides along as a hardware ceiling, letting the regression gate
    normalize away machine speed when comparing against the committed
    baseline (tools/bench_gate.py).

    ``algo`` tags the entry with the backend it measured (the gate
    treats a missing tag as ``"canonical"``).  ``workload`` tags the
    input distribution: ``"random"`` (uniform keys, the default — a
    missing tag means random) or ``"dup"`` (duplicate-heavy gensort
    skew keys — striped's resend worst case).  Phases that move zero
    disk bytes under a backend (striped's planning-only selection and
    its empty all-to-all slot) are omitted from the phases map — the
    per-phase ``wire_volume_mib`` map alongside is where the striped
    exchange volume (and the amplification vs canonical's single
    all-to-all) is recorded.
    """
    if workload not in ("random", "dup"):
        raise ValueError(f"unknown trajectory workload {workload!r}")
    skew = workload == "dup"
    sizing = dict(TRAJECTORY_SIZING if sizing is None else sizing)
    entry = {"stamp": stamp, "algo": algo, "transports": {}}
    if workload != "random":
        entry["workload"] = workload
    base = in_ram_baseline(
        total_records=int(
            sizing["n_workers"] * sizing["data_mib"] * MiB // RECORD_BYTES
        ),
        seed=sizing["seed"],
        skew=skew,
    )
    entry["np_sort_mb_s"] = base["mb_s"]
    for transport in transports:
        result = run_native_bench(
            n_workers=sizing["n_workers"],
            data_mib=sizing["data_mib"],
            memory_mib=sizing["memory_mib"],
            block_kib=sizing["block_kib"],
            seed=sizing["seed"],
            skew=skew,
            timeout=timeout,
            transport=transport,
            baseline=False,
            algo=algo,
        )
        if not result["ok"]:
            raise RuntimeError(
                f"trajectory run over {transport!r} failed validation: "
                f"{result['issues']}"
            )
        entry["transports"][transport] = {
            # Only phases that actually move disk bytes are gated:
            # striped's planning-only selection and its empty all-to-all
            # slot have sub-millisecond walls, and gating N/wall on those
            # is pure timer noise.
            "phases": {
                row["phase"]: row["mb_s"]
                for row in result["phases"]
                if row["disk_mib"] > 0.0
            },
            "wire_volume_mib": {
                row["phase"]: row["wire_volume_mib"]
                for row in result["phases"]
            },
            "sort_mb_s": (
                result["total_mib"] * MiB / result["sort_phases_s"] / 1e6
                if result["sort_phases_s"]
                else 0.0
            ),
        }
    return entry


def append_trajectory(
    path: str = DEFAULT_TRAJECTORY_FILE,
    sizing: dict | None = None,
    transports: tuple = TRAJECTORY_TRANSPORTS,
    timeout: float = 600.0,
    variants: tuple = TRAJECTORY_VARIANTS,
) -> list:
    """Measure one entry per (backend, workload) variant and append them.

    The file is schema-versioned JSON; entries accumulate so the
    committed history shows how throughput moved PR over PR.  A sizing
    mismatch with the existing file is an error — mixed sizings would
    make the trajectory meaningless.  All appended entries share one
    stamp; the ``algo`` and ``workload`` tags tell them apart (the
    regression gate compares per variant).
    """
    sizing = dict(TRAJECTORY_SIZING if sizing is None else sizing)
    if os.path.exists(path):
        with open(path) as handle:
            doc = json.load(handle)
        if doc.get("schema") != TRAJECTORY_SCHEMA:
            raise ValueError(
                f"{path}: schema {doc.get('schema')!r} != {TRAJECTORY_SCHEMA}"
            )
        if doc.get("sizing") != sizing:
            raise ValueError(
                f"{path}: sizing {doc.get('sizing')!r} does not match the "
                f"requested sizing {sizing!r}; move the old file aside to "
                "re-baseline"
            )
    else:
        doc = {"schema": TRAJECTORY_SCHEMA, "sizing": sizing, "entries": []}
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    entries = [
        measure_trajectory_entry(
            stamp, sizing=sizing, transports=transports, timeout=timeout,
            algo=algo, workload=workload,
        )
        for algo, workload in variants
    ]
    doc["entries"].extend(entries)
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entries


def render_trajectory_entry(entry: dict) -> str:
    transports = sorted(entry["transports"])
    phases = []
    for t in transports:
        for p in entry["transports"][t]["phases"]:
            if p not in phases:
                phases.append(p)
    lines = [
        f"trajectory entry {entry['stamp']} "
        f"[{entry.get('algo', 'canonical')}"
        f"/{entry.get('workload', 'random')}] "
        f"(np.sort ceiling {entry['np_sort_mb_s']:.1f} MB/s)",
        f"{'phase':<16}" + "".join(f"{t:>10}" for t in transports),
    ]
    for p in phases:
        lines.append(
            f"{p:<16}"
            + "".join(
                f"{entry['transports'][t]['phases'].get(p, 0.0):>10.1f}"
                for t in transports
            )
        )
    lines.append(
        f"{'sort total':<16}"
        + "".join(
            f"{entry['transports'][t]['sort_mb_s']:>10.1f}"
            for t in transports
        )
    )
    return "\n".join(lines)


def render(result: dict) -> str:
    mode = (
        f"W={result['prefetch_blocks']}/wb={result['write_behind_blocks']}"
        if result["prefetch_blocks"] or result["write_behind_blocks"]
        else "synchronous"
    )
    lines = [
        f"native sort ({mode}): {result['total_mib']:.0f} MiB on "
        f"{result['n_workers']} workers, R = {result['n_runs']} runs"
        + ("" if result["ok"] else "  ** VALIDATION FAILED **"),
        f"{'phase':<16}{'wall [s]':>10}{'disk [MiB]':>12}{'MB/s':>10}"
        f"{'stall [s]':>11}{'overlap':>9}",
    ]
    for row in result["phases"]:
        lines.append(
            f"{row['phase']:<16}{row['wall_s']:>10.2f}"
            f"{row['disk_mib']:>12.1f}{row['mb_s']:>10.1f}"
            f"{row['stall_s']:>11.3f}{row['overlap_ratio']:>9.0%}"
        )
    lines.append(
        f"{'sort total':<16}{result['sort_phases_s']:>10.2f}"
        f"{'':>12}{result['total_mib'] * MiB / result['sort_phases_s'] / 1e6 if result['sort_phases_s'] else 0.0:>10.1f}"
    )
    if "baseline_np_sort" in result:
        base = result["baseline_np_sort"]
        lines.append(
            f"{'np.sort in RAM':<16}{base['wall']:>10.2f}{'':>12}{base['mb_s']:>10.1f}"
        )
    lines.append(
        f"peak resident {result['peak_resident_mib']:.1f} MiB/worker "
        f"(max RSS {result['max_rss_mib']:.0f} MiB); "
        f"interconnect {result['interconnect_mib']:.1f} MiB"
    )
    lines.append(
        f"all-to-all volume {result['a2a_volume_mib']:.1f} MiB "
        f"({result['a2a_volume_over_n']:.2f}x N, paper bound: 1.00x) + "
        f"{result['o_n_overhead_mib']:.2f} MiB o(N) control traffic"
        + (
            f"; socket wire {result['socket_mib_sent']:.1f} MiB"
            if result.get("socket_mib_sent")
            else ""
        )
    )
    return "\n".join(lines)


def render_comparison(cmp: dict) -> str:
    lines = [render(cmp["sync"]), "", render(cmp["pipelined"]), ""]
    lines.append(
        f"outputs {'identical' if cmp['outputs_match'] else '** DIVERGED **'}; "
        f"pipelined speedup over synchronous: {cmp['speedup']:.2f}x"
    )
    if "regression_note" in cmp:
        lines.append(f"note: {cmp['regression_note']}")
    return "\n".join(lines)


# -- pytest entry (tiny sizes; asserts shape, never absolute seconds) ---------


def test_bench_native_quick(benchmark):
    from conftest import once

    result = once(
        benchmark,
        lambda: run_native_bench(
            n_workers=2, data_mib=1.0, memory_mib=0.5, block_kib=16.0
        ),
    )
    assert result["ok"], result["issues"]
    for row in result["phases"]:
        assert row["mb_s"] > 0.0
        assert row["stall_s"] >= 0.0
        assert 0.0 <= row["overlap_ratio"] <= 1.0
    # The paper's bound: the all-to-all moves N exactly once.
    assert abs(result["a2a_volume_over_n"] - 1.0) < 1e-9
    # External sorting with one time-sliced CPU cannot beat RAM sorting.
    assert result["baseline_np_sort"]["wall"] > 0.0


def test_bench_pipelined_comparison_quick(benchmark):
    from conftest import once

    cmp = once(
        benchmark,
        lambda: run_pipelined_comparison(
            n_workers=2, data_mib=1.0, memory_mib=0.5, block_kib=16.0,
            prefetch_blocks=4, write_behind_blocks=4,
        ),
    )
    # Pipelining must be invisible in the output and honest about speed:
    # either faster, or the regression is explained in the JSON.
    assert cmp["outputs_match"]
    assert cmp["ok"], (cmp["sync"]["issues"], cmp["pipelined"]["issues"])
    assert cmp["speedup"] >= 1.0 or "regression_note" in cmp


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--data-mib", type=float, default=64.0,
        help="MiB of records per worker (default 4 x 64 = 256 MiB total)",
    )
    parser.add_argument("--memory-mib", type=float, default=32.0)
    parser.add_argument("--block-kib", type=float, default=256.0)
    parser.add_argument("--spill-dir", default=None)
    parser.add_argument(
        "--transport", choices=("pipe", "tcp", "shm"), default="pipe",
        help="native interconnect substrate",
    )
    parser.add_argument(
        "--algo", choices=("canonical", "striped", "guidesort"),
        default="canonical",
        help="native sort backend (ad-hoc runs; --trajectory always "
        "measures every backend)",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="measure one fixed-sizing entry over every transport and "
        "append it to the committed trajectory file (see --trajectory-file "
        "and tools/bench_gate.py)",
    )
    parser.add_argument(
        "--trajectory-file", default=DEFAULT_TRAJECTORY_FILE,
        help="trajectory JSON to append to (default benchmarks/BENCH_native.json)",
    )
    parser.add_argument("--skew", action="store_true")
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--prefetch-blocks", type=int, default=8,
        help="read-ahead budget W for the pipelined run (default 8)",
    )
    parser.add_argument(
        "--write-behind", type=int, default=8,
        help="write-behind budget in blocks for the pipelined run (default 8)",
    )
    parser.add_argument(
        "--sync-only", action="store_true",
        help="run only the synchronous sort (skip the pipelined comparison)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the raw result dict as JSON instead of the table",
    )
    args = parser.parse_args(argv)
    if args.trajectory:
        entries = append_trajectory(path=args.trajectory_file)
        print(
            json.dumps(entries, indent=2, sort_keys=True)
            if args.json
            else "\n\n".join(render_trajectory_entry(e) for e in entries)
        )
        return 0
    kwargs = dict(
        n_workers=args.workers,
        data_mib=args.data_mib,
        memory_mib=args.memory_mib,
        block_kib=args.block_kib,
        spill_dir=args.spill_dir,
        transport=args.transport,
        skew=args.skew,
        seed=args.seed,
        algo=args.algo,
    )
    if args.sync_only or args.algo != "canonical":
        # Non-canonical backends reject pipelined I/O (NativeJob gates
        # it), so there is no pipelined comparison to run for them.
        result = run_native_bench(**kwargs)
        print(json.dumps(result, indent=2) if args.json else render(result))
        return 0 if result["ok"] else 1
    cmp = run_pipelined_comparison(
        prefetch_blocks=args.prefetch_blocks,
        write_behind_blocks=args.write_behind,
        **kwargs,
    )
    print(json.dumps(cmp, indent=2) if args.json else render_comparison(cmp))
    return 0 if cmp["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
