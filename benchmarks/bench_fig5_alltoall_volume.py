"""Figure 5: all-to-all I/O volume ÷ N for four input regimes (quick).

Paper claims checked (the ordering of the four curves):
* worst-case non-randomized moves ~all data (ratio near 2);
* randomization reduces the volume greatly (>= 3x here);
* B = 2 MiB improves on B = 8 MiB (the sqrt(B) law of Appendix C);
* random input needs the least.
"""

from conftest import once

from repro.bench import fig5, write_report

NONRAND = "worst-case, non-randomized"
RAND8 = "worst-case, randomized, B=8MiB"
RAND2 = "worst-case, randomized, B=2MiB"
RANDOM = "random input"


def test_fig5_alltoall_volume(benchmark):
    result = once(benchmark, lambda: fig5(quick=True))
    write_report(result)

    for row in result.rows:
        if row["#PEs"] == 1:
            continue  # nothing to redistribute on one node
        # The four curves order as in the paper.  (RAND2 vs RANDOM are
        # measured at different block sizes, so only the same-B curves
        # are strictly comparable at simulation granularity.)
        assert row[NONRAND] > row[RAND8] > row[RAND2]
        assert row[NONRAND] > row[RANDOM]
        assert row[RAND8] > row[RANDOM]

    last = result.rows[-1]
    assert last[NONRAND] >= 1.5  # ~a full extra read+write of N
    assert last[NONRAND] / last[RAND8] >= 3.0
    assert last[RAND8] / last[RAND2] >= 1.5
