"""Figure 4: worst-case input *with* randomization, P = 1..8 (quick).

Paper claim checked: randomization diminishes the worst-case overhead —
totals land close to the random-input case of Figure 2 (well below the
non-randomized Figure 6).
"""

from conftest import once

from repro.bench import fig2, fig4, write_report


def test_fig4_worstcase_randomized(benchmark):
    result = once(benchmark, lambda: fig4(quick=True))
    write_report(result)
    reference = fig2(quick=True)

    for row, ref in zip(result.rows, reference.rows):
        # Within 40% of the random-input totals at the same P.
        assert row["total [s]"] <= 1.4 * ref["total [s]"]
