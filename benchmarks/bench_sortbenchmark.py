"""SortBenchmark categories: GraySort, MinuteSort, TerabyteSort (quick).

Paper results checked (shape, not absolute seconds):
* GraySort: within a factor 2 of the paper's 564 GB/min and far above
  the per-node efficiency of the Hadoop entry;
* MinuteSort: hundreds of GB inside a minute (same order as 955 GB);
* TerabyteSort: the same order as the paper's < 64 s.
"""

from conftest import once

from repro.bench import graysort, minutesort, terabytesort, write_report
from repro.bench.sortbench import PAPER_NODES


def test_graysort(benchmark):
    result = once(benchmark, lambda: graysort(quick=True))
    write_report(result)
    ours = result.rows[0]
    paper = result.rows[1]
    yahoo = result.rows[2]
    assert paper["GB/min"] == 564.0
    # Shape: within 2x of the paper's machine, and per-node throughput
    # far above the Hadoop entry's (which used 17x the nodes).
    assert 0.5 <= ours["GB/min"] / paper["GB/min"] <= 2.0
    ours_per_node = ours["GB/min"] / PAPER_NODES
    yahoo_per_node = yahoo["GB/min"] / yahoo["nodes"]
    assert ours_per_node > 5 * yahoo_per_node


def test_minutesort(benchmark):
    result = once(benchmark, lambda: minutesort(quick=True))
    write_report(result)
    ours = result.rows[0]["data [GB]"]
    paper = result.rows[1]["data [GB]"]
    toku = result.rows[2]["data [GB]"]
    assert 0.4 <= ours / paper <= 2.5
    assert ours > toku  # beats the 2007 record, as the paper did


def test_terabytesort(benchmark):
    result = once(benchmark, lambda: terabytesort(quick=True))
    write_report(result)
    ours = result.rows[0]["time [s]"]
    paper = result.rows[1]["time [s]"]
    toku = result.rows[2]["time [s]"]
    assert 0.5 <= ours / paper <= 2.0
    assert ours < toku / 2  # at least twice as fast as the 2007 winner


def test_daytona_robustness(benchmark):
    """Daytona-style skew: exact splitting stays balanced, NOW-Sort dies."""
    from repro.bench import daytona

    result = once(benchmark, lambda: daytona(quick=True))
    write_report(result)
    canon, now = result.rows[0], result.rows[1]
    assert canon["imbalance (max/ideal)"] == 1.0
    assert now["imbalance (max/ideal)"] > 4.0
    assert now["total [s]"] > 2 * canon["total [s]"]
