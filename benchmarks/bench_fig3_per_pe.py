"""Figure 3: per-PE wall-clock and I/O times per phase (one cluster).

Paper claims checked:
* the work is well balanced across PEs (with some disk-speed variance);
* run formation is not fully I/O-bound (wall > max-disk busy time);
* the final merge is I/O-bound (wall close to max-disk busy time).
"""

from conftest import once

from repro.bench import fig3, write_report


def test_fig3_per_pe_balance(benchmark):
    result = once(benchmark, lambda: fig3(quick=True))
    write_report(result)

    merge_walls = [row["merge wall [s]"] for row in result.rows]
    mean_wall = sum(merge_walls) / len(merge_walls)
    # Balanced work: no PE more than 25% off the mean merge time.
    assert max(merge_walls) <= 1.25 * mean_wall
    assert min(merge_walls) >= 0.75 * mean_wall

    # Disk-speed variance exists: not all merge I/O times identical.
    merge_ios = [row["merge io [s]"] for row in result.rows]
    assert max(merge_ios) > min(merge_ios)

    for row in result.rows:
        # Run formation has a compute gap; the merge is I/O-bound.
        assert row["run_formation wall [s]"] >= row["run_formation io [s]"]
        assert row["merge wall [s]"] <= 1.35 * row["merge io [s]"]
