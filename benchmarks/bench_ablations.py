"""Ablations over the design choices DESIGN.md calls out.

One benchmark per ablation; each asserts the qualitative effect the
corresponding paper section predicts.
"""

from conftest import once

from repro.bench import (
    algorithms_on_skew,
    block_size_sweep,
    canonical_vs_striped,
    overlap_ablation,
    pipeline_ablation,
    prefetch_ablation,
    randomization_ablation,
    run_length_ablation,
    selection_strategies,
    straggler_ablation,
    write_report,
)


def test_selection_strategies(benchmark):
    """§IV-A: sampling + caching make selection negligible."""
    result = once(benchmark, lambda: selection_strategies(quick=True))
    write_report(result)
    by_name = {row["strategy"]: row for row in result.rows}
    # Warm start reads far fewer blocks than the cold start.
    assert by_name["sampled"]["block reads"] * 3 < by_name["basic"]["block reads"]
    # The provable bisection stays within a modest constant of sampled.
    assert by_name["bisect"]["block reads"] < 8 * by_name["sampled"]["block reads"]
    for row in result.rows:
        assert row["selection wall [s]"] < 60.0  # negligible at paper scale


def test_block_size_tradeoff(benchmark):
    """Appendix C: movement shrinks with B; streaming favours larger B."""
    result = once(benchmark, lambda: block_size_sweep(quick=True))
    write_report(result)
    ratios = [row["all-to-all volume / N"] for row in result.rows]
    assert ratios[0] < ratios[-1]  # 2 MiB moves less than 16 MiB
    rf = [row["run formation [s]"] for row in result.rows]
    assert rf[0] > rf[-1]  # smaller blocks pay more seeks


def test_overlap(benchmark):
    """§IV-E: overlapping I/O with computation/communication helps."""
    result = once(benchmark, lambda: overlap_ablation(quick=True))
    write_report(result)
    on, off = result.rows[0], result.rows[1]
    assert off["total [s]"] > 1.1 * on["total [s]"]


def test_prefetch_schedule(benchmark):
    """Appendix A: the optimal schedule never loses to the naive order."""
    result = once(benchmark, lambda: prefetch_ablation(quick=True))
    write_report(result)
    by_key = {(row["schedule"], row["buffers"]): row["merge [s]"] for row in result.rows}
    for buffers in (8, 16, 32):
        assert by_key[("optimal", buffers)] <= 1.05 * by_key[("naive", buffers)]


def test_randomization_per_workload(benchmark):
    """§IV: only adversarial inputs need the randomization insurance."""
    result = once(benchmark, lambda: randomization_ablation(quick=True))
    write_report(result)
    table = {
        (row["workload"], row["randomized"]): row["all-to-all volume / N"]
        for row in result.rows
    }
    assert table[("worstcase", "no")] > 3 * table[("worstcase", "yes")]
    # Random input is immune either way.
    assert abs(table[("random", "no")] - table[("random", "yes")]) < 0.3


def test_exact_splitting_beats_guessing_on_skew(benchmark):
    """§II: NOW-Sort deteriorates toward sequential on skew."""
    result = once(benchmark, lambda: algorithms_on_skew(quick=True))
    write_report(result)
    rows = {(r["workload"], r["algorithm"]): r for r in result.rows}
    canon = rows[("skewed", "CanonicalMergeSort")]
    now = rows[("skewed", "NowSort (uniform splitters)")]
    assert canon["imbalance (max/ideal)"] == 1.0
    assert now["imbalance (max/ideal)"] > 3.0
    assert now["total [s]"] > 1.5 * canon["total [s]"]
    # The sampled repair costs an extra pass of I/O.
    sampled = rows[("skewed", "NowSort (sampled splitters)")]
    assert sampled["io / N"] > now["io / N"] + 0.8


def test_canonical_vs_striped_communication(benchmark):
    """§III vs §IV: striping ships the data ~4x, canonical ~1x."""
    result = once(benchmark, lambda: canonical_vs_striped(quick=True))
    write_report(result)
    canon, striped = result.rows[0], result.rows[1]
    assert canon["communication / N"] < 1.5
    assert striped["communication / N"] > 2.0 * canon["communication / N"]
    # Both stay around two passes of I/O.
    assert canon["io / N"] < 5.0 and striped["io / N"] < 5.0


def test_replacement_selection_run_lengths(benchmark):
    """§VII / Knuth 5.4.1: runs of ~2M on random input."""
    result = once(benchmark, lambda: run_length_ablation(quick=True))
    write_report(result)
    by_input = {row["input"]: row for row in result.rows}
    assert 1.6 <= by_input["random"]["mean run / M"] <= 2.4
    assert by_input["sorted"]["runs (replacement sel.)"] == 1
    rs = by_input["random"]["runs (replacement sel.)"]
    ls = by_input["random"]["runs (memory-load sort)"]
    assert rs <= 0.65 * ls  # roughly halves R


def test_pipelined_sorting_saves_passes(benchmark):
    """§VII: source-to-sink operation drops the input and output passes."""
    result = once(benchmark, lambda: pipeline_ablation(quick=True))
    write_report(result)
    batch, piped = result.rows[0], result.rows[1]
    assert piped["io passes"] <= 0.65 * batch["io passes"]
    assert piped["total [s]"] < batch["total [s]"]


def test_straggler_gates_the_machine(benchmark):
    """§VII fault-tolerance question: one slow disk slows everyone."""
    result = once(benchmark, lambda: straggler_ablation(quick=True))
    write_report(result)
    rows = {row["fault"]: row for row in result.rows}
    assert rows["one disk 8x slower"]["slowdown"] > rows["one disk 2x slower"]["slowdown"] > 1.2
    assert rows["one disk 8x slower"]["merge imbalance (max/mean)"] > 2.0
