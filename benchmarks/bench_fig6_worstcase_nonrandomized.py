"""Figure 6: worst-case input *without* randomization, P = 1..8 (quick).

Paper claims checked:
* a substantial running-time penalty versus random input appears at
  P > 1, "caused by the additional I/O of the all-to-all phase";
* the algorithm still finishes within three passes (never collapses).
"""

from conftest import once

from repro.bench import fig2, fig6, write_report


def test_fig6_worstcase_nonrandomized(benchmark):
    result = once(benchmark, lambda: fig6(quick=True))
    write_report(result)
    reference = fig2(quick=True)

    # At P = 1 there is nothing to redistribute; at the largest P the
    # paper-style penalty appears and the all-to-all dominates it.
    last, ref_last = result.rows[-1], reference.rows[-1]
    penalty = last["total [s]"] / ref_last["total [s]"]
    assert 1.25 <= penalty <= 2.2
    assert last["all-to-all [s]"] > 5 * ref_last["all-to-all [s]"]
