"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures (quick
mode: P = 1..8 and a 16-node SortBenchmark slice) and asserts the *shape*
claims — who wins, by roughly what factor, where crossovers fall — never
absolute seconds.  Run with::

    pytest benchmarks/ --benchmark-only

Rendered reports land in ``bench_results/`` (override with the
``REPRO_BENCH_DIR`` environment variable).
"""

import pytest


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The simulations are deterministic, so repeated timing rounds would
    only re-measure the Python interpreter.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
