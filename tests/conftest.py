"""Shared fixtures for the test suite.

Tests run at *tiny* simulation scale (a few MiB of represented data, a
handful of keys per block) — the algorithms are scale-free, so small
configurations exercise every code path in milliseconds.  Reusable
helpers live in :mod:`tests.helpers`.
"""

import pytest

from repro import Cluster, SortConfig

from tests.helpers import small_config


@pytest.fixture
def config() -> SortConfig:
    return small_config()


@pytest.fixture
def cluster() -> Cluster:
    return Cluster(4)
