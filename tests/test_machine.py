"""Tests for the machine calibration model."""

import pytest

from repro.cluster import GiB, MB, MiB, PAPER_MACHINE


def test_paper_machine_matches_section_vi():
    spec = PAPER_MACHINE
    assert spec.cores_per_node == 8
    assert spec.clock_hz == pytest.approx(2.667e9)
    assert spec.ram_bytes == 16 * GiB
    assert spec.disks_per_node == 4
    assert spec.disk_bandwidth == 67 * MiB
    assert spec.net_p2p_bandwidth == 1300 * MB
    assert spec.net_min_bandwidth == 400 * MB


def test_node_disk_bandwidth_aggregates_raid():
    spec = PAPER_MACHINE
    assert spec.node_disk_bandwidth == pytest.approx(
        4 * 67 * MiB * spec.disk_derating
    )


def test_network_bandwidth_decays_with_nodes():
    spec = PAPER_MACHINE
    assert spec.net_bandwidth(1) == 1300 * MB
    assert spec.net_bandwidth(2) < spec.net_bandwidth(1)
    assert spec.net_bandwidth(64) < spec.net_bandwidth(8)


def test_network_bandwidth_floor_at_full_fabric():
    spec = PAPER_MACHINE
    # The paper measured "as low as 400 MB/s" when most nodes are used.
    assert spec.net_bandwidth(200) == pytest.approx(400 * MB, rel=0.01)
    assert spec.net_bandwidth(10_000) == pytest.approx(400 * MB)
    assert spec.net_bandwidth(10_000) >= 400 * MB


def test_sort_cost_superlinear():
    spec = PAPER_MACHINE
    t1 = spec.sort_seconds(1e6, 16)
    t2 = spec.sort_seconds(2e6, 16)
    assert t2 > 2 * t1  # n log n


def test_sort_cost_zero_for_trivial_inputs():
    assert PAPER_MACHINE.sort_seconds(0, 16) == 0.0
    assert PAPER_MACHINE.sort_seconds(1, 16) == 0.0


def test_large_elements_cheaper_per_byte_to_sort():
    """100-byte records: not compute-bound (paper footnote 8)."""
    spec = PAPER_MACHINE
    small = spec.sort_seconds(1e9 / 16, 16)  # 1 GB of 16-byte elements
    large = spec.sort_seconds(1e9 / 100, 100)  # 1 GB of 100-byte records
    assert large < small


def test_merge_cost_grows_with_arity():
    spec = PAPER_MACHINE
    assert spec.merge_seconds(1e7, 16, 16) > spec.merge_seconds(1e7, 2, 16)


def test_merge_cheaper_than_sort():
    spec = PAPER_MACHINE
    assert spec.merge_seconds(1e7, 8, 16) < spec.sort_seconds(1e7, 16)


def test_memory_bandwidth_floor_applies():
    spec = PAPER_MACHINE
    # Huge cheap-comparison workload still pays the copy bandwidth.
    n = 1e9
    assert spec.merge_seconds(n, 2, 100) >= 2 * n * 100 / spec.mem_bandwidth


def test_scan_seconds_linear():
    spec = PAPER_MACHINE
    assert spec.scan_seconds(2e9) == pytest.approx(2 * spec.scan_seconds(1e9))


def test_with_overrides_creates_modified_copy():
    spec = PAPER_MACHINE.with_overrides(disks_per_node=8)
    assert spec.disks_per_node == 8
    assert PAPER_MACHINE.disks_per_node == 4


def test_usable_ram_fraction():
    spec = PAPER_MACHINE
    assert spec.usable_ram == pytest.approx(16 * GiB * spec.usable_ram_fraction)
