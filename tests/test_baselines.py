"""Tests for the NOW-Sort and external-sample-sort baselines."""

import numpy as np
import pytest

from repro import Cluster, ExternalSampleSort, NowSort
from repro.baselines.splitters import uniform_splitters
from repro.workloads import generate_input, input_keys, validate_output
from tests.helpers import small_config


def run_baseline(factory, kind="random", n_nodes=4, **overrides):
    cfg = small_config(**overrides)
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, kind)
    before = input_keys(em, inputs)
    result = factory(cluster, cfg).sort(em, inputs)
    return cluster, cfg, em, before, result


@pytest.mark.parametrize("kind", ["random", "sorted", "worstcase", "duplicates"])
def test_nowsort_uniform_sorts_correctly(kind):
    _cl, _cfg, em, before, result = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), kind
    )
    report = validate_output(before, result.output_keys(em), balanced=False)
    assert report.ok, report.issues


@pytest.mark.parametrize("kind", ["random", "skewed"])
def test_nowsort_sampled_sorts_correctly(kind):
    _cl, _cfg, em, before, result = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "sampled"), kind
    )
    assert validate_output(before, result.output_keys(em), balanced=False).ok


@pytest.mark.parametrize("kind", ["random", "skewed", "reversed"])
def test_samplesort_sorts_correctly(kind):
    _cl, _cfg, em, before, result = run_baseline(ExternalSampleSort, kind)
    assert validate_output(before, result.output_keys(em), balanced=False).ok


def test_nowsort_uniform_balanced_on_random():
    _cl, _cfg, _em, _b, result = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), "random"
    )
    assert result.imbalance < 1.3


def test_nowsort_uniform_degrades_on_skew():
    """The paper's §II criticism: skew sends everything to one PE."""
    _cl, _cfg, _em, _b, result = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), "skewed"
    )
    assert result.imbalance > 3.0  # ~P = 4: effectively sequential


def test_sampled_splitters_repair_skew():
    _cl, _cfg, _em, _b, uniform = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), "skewed"
    )
    _cl, _cfg, _em, _b, sampled = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "sampled"), "skewed"
    )
    assert sampled.imbalance < uniform.imbalance / 2


def test_sampling_costs_an_extra_scan():
    """§II: the splitter preprocessing 'costs an additional scan'."""
    cl_u, cfg, _em, _b, uniform = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), "random"
    )
    cl_s, _cfg, _em, _b, sampled = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "sampled"), "random"
    )
    n_bytes = cfg.total_bytes(4)
    extra = sampled.stats.total_io_bytes - uniform.stats.total_io_bytes
    assert extra >= 0.9 * n_bytes


def test_samplesort_io_about_five_passes():
    _cl, cfg, _em, _b, result = run_baseline(ExternalSampleSort, "random")
    n_bytes = cfg.total_bytes(4)
    assert 4.4 * n_bytes <= result.stats.total_io_bytes <= 5.8 * n_bytes


def test_nowsort_buckets_ordered_across_ranks():
    _cl, _cfg, em, _b, result = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), "random"
    )
    parts = result.output_keys(em)
    last = None
    for part in parts:
        if len(part) == 0:
            continue
        if last is not None:
            assert part[0] >= last
        last = part[-1]


def test_uniform_splitters_equidistant():
    s = uniform_splitters(4)
    assert len(s) == 3
    gaps = np.diff(np.concatenate([[0], s.astype(np.int64), [2 ** 63]]))
    assert gaps.max() - gaps.min() <= 2


def test_nowsort_invalid_splitter_mode_rejected():
    with pytest.raises(ValueError):
        NowSort(Cluster(2), small_config(), "psychic")


def test_nowsort_single_node():
    _cl, _cfg, em, before, result = run_baseline(
        lambda c, cfg: NowSort(c, cfg, "uniform"), "random", n_nodes=1
    )
    assert validate_output(before, result.output_keys(em), balanced=False).ok
