"""Empirical checks of Appendix C: the data-movement analysis.

The paper bounds the data a PE moves in the external all-to-all (for
randomized worst-case inputs) by O(R · sqrt(M·B) · log P) elements — in
particular the movement per run grows with the *square root* of the block
size, which Figure 5 supports experimentally.  These tests measure actual
moved key counts on the simulator and check the law's fingerprints:

* quadrupling B roughly doubles the movement (sqrt(B));
* the movement stays far below the non-randomized full traversal;
* the measured movement respects the explicit bound with a small constant.
"""

import math

import numpy as np

from repro import CanonicalMergeSort, Cluster, MiB
from repro.workloads import generate_input
from tests.helpers import small_config


def moved_keys(block_scale: int, randomize: bool = True, n_nodes: int = 4,
               seed: int = 0) -> dict:
    """Run a worst-case sort with B scaled by ``block_scale``.

    Total keys, memory (in keys) and run count stay fixed; only the block
    granularity changes — isolating the sqrt(M·B) dependence.
    """
    cfg = small_config(
        data_per_node_bytes=96 * MiB,
        memory_bytes=32 * MiB,
        block_bytes=1 * MiB * block_scale,
        block_elems=8 * block_scale,
        randomize=randomize,
        seed=seed,
    )
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, "worstcase")
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    return {
        "moved": result.stats.counter_total("alltoall_sent_keys"),
        "total": cfg.total_keys(n_nodes),
        "runs": result.n_runs,
        "piece_keys": cfg.piece_keys(cluster.spec),
        "block_keys": cfg.block_elems,
        "n_nodes": n_nodes,
    }


def test_invariants_of_the_scaled_configs():
    a = moved_keys(1)
    b = moved_keys(4)
    assert a["total"] == b["total"]
    assert a["runs"] == b["runs"]
    assert a["piece_keys"] == b["piece_keys"]
    assert b["block_keys"] == 4 * a["block_keys"]


def test_movement_grows_like_sqrt_b():
    """Quadrupling B should roughly double the movement (Appendix C)."""
    ratios = []
    for seed in range(3):
        small = moved_keys(1, seed=seed)["moved"]
        large = moved_keys(4, seed=seed)["moved"]
        ratios.append(large / small)
    mean_ratio = sum(ratios) / len(ratios)
    # sqrt(4) = 2 expected; allow block-granularity noise.
    assert 1.3 <= mean_ratio <= 3.0, ratios


def test_randomized_movement_far_below_full_traversal():
    run = moved_keys(1)
    assert run["moved"] < 0.35 * run["total"]


def test_nonrandomized_movement_near_full_traversal():
    run = moved_keys(1, randomize=False)
    assert run["moved"] > 0.6 * run["total"]


def test_explicit_appendix_c_bound():
    """moved <= c · P · R · sqrt(M·B) · log2(P) for a small constant c.

    M here is the global run size in elements and B the block size in
    elements, as in the paper's Equation (1) discussion.
    """
    for scale in (1, 2, 4):
        run = moved_keys(scale)
        m_global = run["piece_keys"] * run["n_nodes"]
        bound_per_run_per_pe = math.sqrt(m_global * run["block_keys"])
        log_p = max(1.0, math.log2(run["n_nodes"]))
        bound = 4.0 * run["n_nodes"] * run["runs"] * bound_per_run_per_pe * log_p
        assert run["moved"] <= bound, (run, bound)


def test_average_case_random_input_moves_less_than_worstcase():
    cfg = small_config(randomize=True)
    moved = {}
    for kind in ("random", "worstcase"):
        cluster = Cluster(4)
        em, inputs = generate_input(cluster, cfg, kind)
        result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
        moved[kind] = result.stats.counter_total("alltoall_sent_keys")
    # Both are small; random input (the B=1 average case of Appendix C)
    # never moves more than the randomized worst case.
    assert moved["random"] <= moved["worstcase"] * 1.5


def test_sqrt_b_law_by_loglog_regression():
    """Fit movement vs B on a log-log scale: slope should be ~0.5.

    The statistical version of Figure 5's sqrt(B) claim, averaged over
    seeds to dampen block-granularity noise.
    """
    from scipy import stats as sps

    def moved_at(scale: int, seed: int) -> float:
        cfg = small_config(
            data_per_node_bytes=192 * MiB,
            memory_bytes=64 * MiB,
            block_bytes=1 * MiB * scale,
            block_elems=8 * scale,
            randomize=True,
            seed=seed,
        )
        cluster = Cluster(4)
        em, inputs = generate_input(cluster, cfg, "worstcase")
        result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
        return result.stats.counter_total("alltoall_sent_keys")

    log_b, log_moved = [], []
    for scale in (1, 2, 4, 8):
        for seed in range(4):
            log_b.append(math.log(scale))
            log_moved.append(math.log(moved_at(scale, seed)))
    fit = sps.linregress(log_b, log_moved)
    assert 0.3 <= fit.slope <= 0.8, fit
    assert fit.rvalue ** 2 > 0.55  # the law explains most of the variance
