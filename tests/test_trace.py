"""Tests for resource-utilization tracing."""

import pytest

from repro import CanonicalMergeSort, Cluster
from repro.sim import Tracer
from repro.workloads import generate_input, input_keys, validate_output
from tests.helpers import small_config


def traced_sort(n_nodes=2, **overrides):
    cfg = small_config(**overrides)
    cluster = Cluster(n_nodes)
    tracer = Tracer.attach(cluster)
    em, inputs = generate_input(cluster, cfg, "random")
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    assert validate_output(before, result.output_keys(em)).ok
    return cluster, result, tracer


def test_tracer_records_all_disks():
    cluster, _result, tracer = traced_sort()
    assert len(tracer.disk_names) == cluster.n_disks
    for name in tracer.disk_names:
        assert tracer.intervals[name], f"{name} never serviced a request"


def test_busy_fraction_within_bounds():
    _cl, result, tracer = traced_sort()
    for name in tracer.disk_names:
        frac = tracer.busy_fraction(name, 0.0, result.stats.total_time)
        assert 0.0 < frac <= 1.0


def test_busy_fraction_matches_server_busy_time():
    cluster, result, tracer = traced_sort()
    for node in cluster.nodes:
        for disk in node.disks:
            traced = tracer.busy_fraction(
                disk.name, 0.0, result.stats.total_time
            ) * result.stats.total_time
            assert traced == pytest.approx(disk.busy_time, rel=1e-6)


def test_tag_filtered_fraction():
    _cl, result, tracer = traced_sort()
    name = tracer.disk_names[0]
    total = tracer.busy_fraction(name, 0.0, result.stats.total_time)
    by_tag = sum(
        tracer.busy_fraction(name, 0.0, result.stats.total_time, tag=tag)
        for tag in ("run_formation", "selection", "all_to_all", "merge")
    )
    assert by_tag == pytest.approx(total, rel=1e-6)


def test_utilization_profile_shape():
    _cl, _result, tracer = traced_sort()
    profile = tracer.utilization_profile(tracer.disk_names[0], buckets=8)
    assert len(profile) == 8
    assert all(0.0 <= f <= 1.0 for f in profile)
    assert any(f > 0 for f in profile)


def test_utilization_table_renders():
    cluster, _result, tracer = traced_sort()
    text = tracer.utilization_table(buckets=10)
    rows = [line for line in text.splitlines() if "|" in line]
    assert len(rows) == cluster.n_disks
    assert "%" in rows[0]


def test_mean_utilization_is_meaningfully_high():
    """An external sort should keep its disks mostly busy (paper: ~2/3+)."""
    _cl, result, tracer = traced_sort(n_nodes=4)
    mean = tracer.mean_utilization(result.stats.total_time)
    assert mean > 0.5


def test_attach_is_idempotent():
    """Re-attaching the same tracer must not double-record or re-wrap.

    Regression: ``attach`` used to blindly wrap ``server._finish`` on
    every call, so a second attachment recorded every request twice (and
    stacked closures forever).
    """
    cfg = small_config()
    cluster = Cluster(2)
    tracer = Tracer.attach(cluster)
    finishes = [disk.server._finish for node in cluster.nodes for disk in node.disks]
    tracer.attach_to(cluster)
    tracer.attach_to(cluster)
    # No re-wrap: the installed dispatcher is unchanged.
    assert finishes == [
        disk.server._finish for node in cluster.nodes for disk in node.disks
    ]
    # No duplicate bookkeeping either.
    assert len(tracer.disk_names) == cluster.n_disks
    for disk in cluster.nodes[0].disks:
        assert len(disk.server._tracer_hooks) == 1

    em, inputs = generate_input(cluster, cfg, "random")
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    for node in cluster.nodes:
        for disk in node.disks:
            traced = tracer.busy_fraction(
                disk.name, 0.0, result.stats.total_time
            ) * result.stats.total_time
            # Double-recording would double the traced busy time.
            assert traced == pytest.approx(disk.busy_time, rel=1e-6)


def test_two_tracers_record_independently():
    """Multiple tracers on one cluster each see every request exactly once."""
    cfg = small_config()
    cluster = Cluster(2)
    t1 = Tracer.attach(cluster)
    t2 = Tracer.attach(cluster)
    em, inputs = generate_input(cluster, cfg, "random")
    CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    for name in t1.disk_names:
        assert t1.intervals[name] == t2.intervals[name]
        assert t1.intervals[name]


def test_untraced_cluster_unaffected():
    # Plain sorts (everything else in the suite) never see the tracer.
    tracer = Tracer()
    assert tracer.mean_utilization() == 0.0
    assert tracer.utilization_profile("nope", buckets=4) == [0.0] * 4
