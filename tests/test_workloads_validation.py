"""Tests for workload generators and the valsort-style validator."""

import numpy as np
import pytest

from repro import Cluster
from repro.records import is_sorted
from repro.workloads import (
    WORKLOADS,
    generate_input,
    input_keys,
    validate_output,
)
from repro.testing import corpus as conformance_corpus
from tests.helpers import small_config


# -------------------------------------------------------------- generators


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_generators_place_exact_key_counts(kind):
    cfg = small_config()
    cluster = Cluster(3)
    em, inputs = generate_input(cluster, cfg, kind)
    keys = input_keys(em, inputs)
    assert all(len(k) == cfg.keys_per_node for k in keys)
    assert all(len(blocks) == cfg.blocks_per_node for blocks in inputs)


def test_generators_deterministic_by_seed():
    cfg = small_config()
    a = input_keys(*generate_input(Cluster(2), cfg, "random", seed=9)[::-1][::-1])
    b = input_keys(*generate_input(Cluster(2), cfg, "random", seed=9)[::-1][::-1])
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_generators_differ_across_seeds():
    cfg = small_config()
    em1, in1 = generate_input(Cluster(2), cfg, "random", seed=1)
    em2, in2 = generate_input(Cluster(2), cfg, "random", seed=2)
    assert not np.array_equal(input_keys(em1, in1)[0], input_keys(em2, in2)[0])


def test_worstcase_is_locally_sorted():
    cfg = small_config()
    em, inputs = generate_input(Cluster(2), cfg, "worstcase")
    for part in input_keys(em, inputs):
        assert is_sorted(part)


def test_sorted_workload_is_globally_sorted():
    cfg = small_config()
    em, inputs = generate_input(Cluster(3), cfg, "sorted")
    parts = input_keys(em, inputs)
    whole = np.concatenate(parts)
    assert is_sorted(whole)


def test_reversed_workload_is_globally_reverse_sorted():
    cfg = small_config()
    em, inputs = generate_input(Cluster(3), cfg, "reversed")
    whole = np.concatenate(input_keys(em, inputs))
    assert is_sorted(whole[::-1])


def test_skewed_workload_is_skewed():
    cfg = small_config()
    em, inputs = generate_input(Cluster(2), cfg, "skewed")
    keys = np.concatenate(input_keys(em, inputs))
    assert np.median(keys) < np.mean(keys) / 2  # heavy right tail


def test_duplicates_workload_tiny_domain():
    cfg = small_config()
    em, inputs = generate_input(Cluster(2), cfg, "duplicates")
    keys = np.concatenate(input_keys(em, inputs))
    assert len(np.unique(keys)) <= 8


def test_unknown_workload_rejected():
    cfg = small_config()
    with pytest.raises(ValueError, match="unknown workload"):
        generate_input(Cluster(1), cfg, "quantum")


def test_input_blocks_round_robin_disks():
    cfg = small_config()
    em, inputs = generate_input(Cluster(1), cfg, "random")
    disks = [b.disk for b in inputs[0][:8]]
    assert disks == [0, 1, 2, 3, 0, 1, 2, 3]


# --------------------------------------------------------------- validator


def _parts(*arrays):
    return [np.asarray(a, dtype=np.uint64) for a in arrays]


def test_validator_accepts_correct_output():
    inp = _parts([3, 1], [2, 4])
    out = _parts([1, 2], [3, 4])
    report = validate_output(inp, out)
    assert report.ok
    assert report.total_keys == 4
    report.raise_if_failed()


def test_validator_catches_unsorted_part():
    report = validate_output(_parts([1, 2]), _parts([2, 1]))
    assert not report.ok
    assert any("not sorted" in i for i in report.issues)


def test_validator_catches_boundary_violation():
    inp = _parts([1, 2], [3, 4])
    out = _parts([3, 4], [1, 2])
    report = validate_output(inp, out)
    assert any("boundary" in i for i in report.issues)


def test_validator_catches_count_mismatch():
    report = validate_output(_parts([1, 2, 3]), _parts([1, 2]))
    assert any("count" in i for i in report.issues)


def test_validator_catches_value_substitution():
    report = validate_output(_parts([1, 2]), _parts([1, 3]))
    assert not report.ok  # checksum and/or permutation check


def test_validator_catches_imbalance_when_required():
    inp = _parts([1, 2], [3, 4])
    out = _parts([1, 2, 3], [4])
    balanced = validate_output(inp, out, balanced=True)
    assert any("canonical share" in i for i in balanced.issues)
    relaxed = validate_output(inp, out, balanced=False)
    assert relaxed.ok


def test_validator_catches_permutation_with_colliding_checksum():
    # Same sum, different multiset: {0, 4} vs {1, 3}.
    inp = _parts([0, 4])
    out = _parts([1, 3])
    report = validate_output(inp, out)
    assert any("permutation" in i for i in report.issues)


def test_validator_raise_if_failed():
    report = validate_output(_parts([1]), _parts([2]))
    with pytest.raises(AssertionError):
        report.raise_if_failed()


def test_validator_empty_everything():
    assert validate_output([], []).ok


# ------------------------------------- agreement with the differential oracle


@pytest.mark.parametrize("name", conformance_corpus.entry_names())
def test_valsort_checksum_agrees_with_oracle_per_corpus_entry(name):
    """The validator's valsort checksum and the differential oracle's
    multiset checksum are computed independently; they must agree on
    every corpus entry — including the all-duplicate ones."""
    from repro.testing import corpus, oracle

    parts = [corpus.generate(name, 120, r, 3, seed=11) for r in range(3)]
    expected = oracle.expected_outputs(parts)
    report = validate_output(parts, expected, balanced=True)
    assert report.ok, report.issues
    assert report.checksum == oracle.multiset_checksum(np.concatenate(parts))


def test_valsort_checksum_agrees_with_oracle_on_empty_input():
    from repro.testing import oracle

    report = validate_output([], [])
    assert report.ok
    assert report.checksum == oracle.multiset_checksum(np.empty(0, np.uint64)) == 0


def test_validator_rejects_oracle_slices_shifted_by_one():
    """Rotating one key across a rank boundary must trip the balanced
    (exact iN/P) check even though order and multiset stay intact."""
    from repro.testing import corpus, oracle

    parts = [corpus.generate("uniform", 50, r, 2, seed=2) for r in range(2)]
    a, b = oracle.expected_outputs(parts)
    shifted = [a[:-1], np.concatenate([a[-1:], b])]
    report = validate_output(parts, shifted, balanced=True)
    assert any("canonical share" in i for i in report.issues)


# ----------------------------------------------------- gensort round-trips


def test_gensort_record_checksum_matches_oracle_multiset():
    from repro.testing import oracle
    from repro.workloads.gensort import record_checksum, record_keys

    for start, count, seed in [(0, 257, 0), (1000, 64, 9), (5, 0, 3)]:
        keys = record_keys(start, count, seed=seed)
        assert record_checksum(start, count, seed=seed) == \
            oracle.multiset_checksum(keys)


def test_gensort_skip_ahead_round_trip():
    """Generating a range in pieces equals generating it whole, so the
    per-worker generation of the native backend is exact."""
    from repro.workloads.gensort import record_keys

    whole = record_keys(0, 300, seed=4)
    pieces = np.concatenate([record_keys(s, 100, seed=4) for s in (0, 100, 200)])
    assert np.array_equal(whole, pieces)
    whole_skew = record_keys(0, 300, seed=4, skew=True)
    pieces_skew = np.concatenate(
        [record_keys(s, 100, seed=4, skew=True) for s in (0, 100, 200)]
    )
    assert np.array_equal(whole_skew, pieces_skew)


def test_gensort_corpus_entries_round_trip_through_validator():
    """Sorting the gensort corpus entries (uniform and duplicate-heavy)
    and validating against the generated input closes the loop the
    differential harness relies on."""
    from repro.testing import corpus, oracle

    for name in ("gensort", "gensort_dup"):
        parts = [corpus.generate(name, 90, r, 2, seed=5) for r in range(2)]
        out = oracle.expected_outputs(parts)
        report = validate_output(parts, out, balanced=True)
        assert report.ok, (name, report.issues)
        report.raise_if_failed()
