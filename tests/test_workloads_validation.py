"""Tests for workload generators and the valsort-style validator."""

import numpy as np
import pytest

from repro import Cluster
from repro.records import is_sorted
from repro.workloads import (
    WORKLOADS,
    generate_input,
    input_keys,
    validate_output,
)
from tests.helpers import small_config


# -------------------------------------------------------------- generators


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_generators_place_exact_key_counts(kind):
    cfg = small_config()
    cluster = Cluster(3)
    em, inputs = generate_input(cluster, cfg, kind)
    keys = input_keys(em, inputs)
    assert all(len(k) == cfg.keys_per_node for k in keys)
    assert all(len(blocks) == cfg.blocks_per_node for blocks in inputs)


def test_generators_deterministic_by_seed():
    cfg = small_config()
    a = input_keys(*generate_input(Cluster(2), cfg, "random", seed=9)[::-1][::-1])
    b = input_keys(*generate_input(Cluster(2), cfg, "random", seed=9)[::-1][::-1])
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_generators_differ_across_seeds():
    cfg = small_config()
    em1, in1 = generate_input(Cluster(2), cfg, "random", seed=1)
    em2, in2 = generate_input(Cluster(2), cfg, "random", seed=2)
    assert not np.array_equal(input_keys(em1, in1)[0], input_keys(em2, in2)[0])


def test_worstcase_is_locally_sorted():
    cfg = small_config()
    em, inputs = generate_input(Cluster(2), cfg, "worstcase")
    for part in input_keys(em, inputs):
        assert is_sorted(part)


def test_sorted_workload_is_globally_sorted():
    cfg = small_config()
    em, inputs = generate_input(Cluster(3), cfg, "sorted")
    parts = input_keys(em, inputs)
    whole = np.concatenate(parts)
    assert is_sorted(whole)


def test_reversed_workload_is_globally_reverse_sorted():
    cfg = small_config()
    em, inputs = generate_input(Cluster(3), cfg, "reversed")
    whole = np.concatenate(input_keys(em, inputs))
    assert is_sorted(whole[::-1])


def test_skewed_workload_is_skewed():
    cfg = small_config()
    em, inputs = generate_input(Cluster(2), cfg, "skewed")
    keys = np.concatenate(input_keys(em, inputs))
    assert np.median(keys) < np.mean(keys) / 2  # heavy right tail


def test_duplicates_workload_tiny_domain():
    cfg = small_config()
    em, inputs = generate_input(Cluster(2), cfg, "duplicates")
    keys = np.concatenate(input_keys(em, inputs))
    assert len(np.unique(keys)) <= 8


def test_unknown_workload_rejected():
    cfg = small_config()
    with pytest.raises(ValueError, match="unknown workload"):
        generate_input(Cluster(1), cfg, "quantum")


def test_input_blocks_round_robin_disks():
    cfg = small_config()
    em, inputs = generate_input(Cluster(1), cfg, "random")
    disks = [b.disk for b in inputs[0][:8]]
    assert disks == [0, 1, 2, 3, 0, 1, 2, 3]


# --------------------------------------------------------------- validator


def _parts(*arrays):
    return [np.asarray(a, dtype=np.uint64) for a in arrays]


def test_validator_accepts_correct_output():
    inp = _parts([3, 1], [2, 4])
    out = _parts([1, 2], [3, 4])
    report = validate_output(inp, out)
    assert report.ok
    assert report.total_keys == 4
    report.raise_if_failed()


def test_validator_catches_unsorted_part():
    report = validate_output(_parts([1, 2]), _parts([2, 1]))
    assert not report.ok
    assert any("not sorted" in i for i in report.issues)


def test_validator_catches_boundary_violation():
    inp = _parts([1, 2], [3, 4])
    out = _parts([3, 4], [1, 2])
    report = validate_output(inp, out)
    assert any("boundary" in i for i in report.issues)


def test_validator_catches_count_mismatch():
    report = validate_output(_parts([1, 2, 3]), _parts([1, 2]))
    assert any("count" in i for i in report.issues)


def test_validator_catches_value_substitution():
    report = validate_output(_parts([1, 2]), _parts([1, 3]))
    assert not report.ok  # checksum and/or permutation check


def test_validator_catches_imbalance_when_required():
    inp = _parts([1, 2], [3, 4])
    out = _parts([1, 2, 3], [4])
    balanced = validate_output(inp, out, balanced=True)
    assert any("canonical share" in i for i in balanced.issues)
    relaxed = validate_output(inp, out, balanced=False)
    assert relaxed.ok


def test_validator_catches_permutation_with_colliding_checksum():
    # Same sum, different multiset: {0, 4} vs {1, 3}.
    inp = _parts([0, 4])
    out = _parts([1, 3])
    report = validate_output(inp, out)
    assert any("permutation" in i for i in report.issues)


def test_validator_raise_if_failed():
    report = validate_output(_parts([1]), _parts([2]))
    with pytest.raises(AssertionError):
        report.raise_if_failed()


def test_validator_empty_everything():
    assert validate_output([], []).ok
