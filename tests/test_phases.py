"""Phase-level tests: run formation, selection, all-to-all, merging.

These run the SPMD phases individually on small clusters and verify the
paper's invariants for each: globally sorted runs with exact quantile
pieces after phase one, exact splitter matrices after the selection,
conservation and ordering after the redistribution, and a sorted,
conserved output after merging.
"""

import numpy as np
import pytest

from repro import Cluster
from repro.core.all_to_all import all_to_all_phase
from repro.core.internal_sort import distributed_sort_run
from repro.core.merge_phase import merge_phase
from repro.core.run_formation import run_formation
from repro.core.selection_phase import selection_phase
from repro.core.stats import SortStats
from repro.records import exact_multiway_partition
from repro.workloads import generate_input, input_keys

from tests.helpers import small_config


def _run_phases(kind="random", n_nodes=4, upto="merge", **overrides):
    """Run the pipeline up to a phase; returns a context dict."""
    cfg = small_config(**overrides)
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, kind)
    before = input_keys(em, inputs)
    stats = SortStats(cfg, n_nodes)
    ctx = {"cluster": cluster, "config": cfg, "em": em, "stats": stats,
           "before": before, "runs": {}, "splits": {}, "segments": {},
           "output": {}}

    def pe(rank, cluster):
        runs = yield from run_formation(rank, cluster, em, cfg, stats, inputs[rank])
        ctx["runs"][rank] = runs
        if upto == "run_formation":
            return None
        splits = yield from selection_phase(rank, cluster, em, cfg, stats, runs)
        ctx["splits"][rank] = splits
        if upto == "selection":
            return None
        segments = yield from all_to_all_phase(
            rank, cluster, em, cfg, stats, runs, splits
        )
        ctx["segments"][rank] = segments
        if upto == "all_to_all":
            return None
        piece = yield from merge_phase(rank, cluster, em, cfg, stats, segments)
        ctx["output"][rank] = piece
        return None

    cluster.run_spmd(pe)
    return ctx


# ------------------------------------------------------ distributed sort


@pytest.mark.parametrize("n_nodes", [1, 2, 3, 4])
def test_distributed_sort_run_exact_quantiles(n_nodes):
    cfg = small_config()
    cluster = Cluster(n_nodes)
    stats = SortStats(cfg, n_nodes)
    rng = np.random.default_rng(0)
    locals_ = [rng.integers(0, 1000, 100).astype(np.uint64) for _ in range(n_nodes)]

    def pe(rank, cluster):
        piece = yield from distributed_sort_run(
            rank, cluster, cfg, stats, locals_[rank], "run_formation"
        )
        return piece

    pieces = cluster.run_spmd(pe)
    merged = np.concatenate(pieces)
    assert np.array_equal(merged, np.sort(np.concatenate(locals_)))
    total = 100 * n_nodes
    for i, piece in enumerate(pieces):
        assert len(piece) == (i + 1) * total // n_nodes - i * total // n_nodes


def test_distributed_sort_empty_contribution():
    cfg = small_config()
    cluster = Cluster(2)
    stats = SortStats(cfg, 2)
    locals_ = [np.arange(10, dtype=np.uint64), np.empty(0, np.uint64)]

    def pe(rank, cluster):
        return (yield from distributed_sort_run(
            rank, cluster, cfg, stats, locals_[rank], "t"))

    pieces = cluster.run_spmd(pe)
    assert len(pieces[0]) == 5 and len(pieces[1]) == 5


# --------------------------------------------------------- run formation


def test_run_formation_produces_sorted_global_runs():
    ctx = _run_phases(upto="run_formation")
    em, before = ctx["em"], ctx["before"]
    runs = ctx["runs"][0]
    cfg = ctx["config"]
    assert len(runs) == cfg.n_runs(ctx["cluster"].spec)
    all_run_keys = []
    for run in runs:
        keys = np.concatenate(
            [
                em.store(piece.node).peek(bid)
                for piece in run.pieces
                for bid in piece.blocks
            ]
        ) if any(p.blocks for p in run.pieces) else np.empty(0, np.uint64)
        # globally sorted across the pieces in rank order
        assert np.array_equal(keys, np.sort(keys))
        all_run_keys.append(keys)
    # conservation: runs partition the input multiset
    everything = np.sort(np.concatenate(all_run_keys))
    assert np.array_equal(everything, np.sort(np.concatenate(before)))


def test_run_formation_pieces_balanced():
    ctx = _run_phases(upto="run_formation")
    for run in ctx["runs"][0]:
        sizes = [p.n_keys for p in run.pieces]
        assert max(sizes) - min(sizes) <= 1


def test_run_formation_samples_every_k():
    ctx = _run_phases(upto="run_formation")
    cfg = ctx["config"]
    for run in ctx["runs"][0]:
        for piece in run.pieces:
            assert len(piece.sample_keys) == -(-piece.n_keys // cfg.resolved_sample_every)


def test_run_formation_randomization_changes_runs():
    a = _run_phases(kind="worstcase", upto="run_formation", randomize=True)
    b = _run_phases(kind="worstcase", upto="run_formation", randomize=False)
    run_a = a["runs"][0][0]
    run_b = b["runs"][0][0]
    keys_a = np.concatenate(
        [a["em"].store(p.node).peek(bid) for p in run_a.pieces for bid in p.blocks]
    )
    keys_b = np.concatenate(
        [b["em"].store(p.node).peek(bid) for p in run_b.pieces for bid in p.blocks]
    )
    # Without randomization the first run of a locally sorted input is a
    # narrow key slice; with randomization it spans the whole range.
    assert keys_a.max() - keys_a.min() > 2 * (keys_b.max() - keys_b.min())


def test_run_formation_frees_input_blocks():
    ctx = _run_phases(upto="run_formation")
    cfg, em = ctx["config"], ctx["em"]
    # In-place: blocks in use equal the run data, input slots were reused.
    for rank in range(4):
        assert em.store(rank).blocks_in_use <= cfg.blocks_per_node + 1


# --------------------------------------------------------------- selection


@pytest.mark.parametrize("strategy", ["sampled", "basic", "bisect"])
def test_selection_matrix_matches_offline_partition(strategy):
    ctx = _run_phases(upto="selection", selection=strategy)
    em = ctx["em"]
    runs = ctx["runs"][0]
    splits = ctx["splits"][0]
    n_nodes = 4
    seqs = []
    for run in runs:
        keys = np.concatenate(
            [em.store(p.node).peek(bid) for p in run.pieces for bid in p.blocks]
        )
        seqs.append(keys)
    total = sum(len(s) for s in seqs)
    for i in range(n_nodes):
        want = exact_multiway_partition(seqs, i * total // n_nodes)
        assert splits[i] == want, f"rank {i} splitters differ under {strategy}"
    assert splits[n_nodes] == [len(s) for s in seqs]


def test_selection_all_ranks_agree():
    ctx = _run_phases(upto="selection")
    for rank in range(1, 4):
        assert ctx["splits"][rank] == ctx["splits"][0]


def test_selection_counters_populated():
    ctx = _run_phases(upto="selection")
    stats = ctx["stats"]
    assert stats.counter_total("selection_block_reads") > 0
    # rank 0 selects rank 0 (trivial); others probe
    assert stats.counter_total("selection_touches") > 0


# --------------------------------------------------------------- all-to-all


def _segment_keys(em, segments_r):
    parts = [em.store(b.bid.node).peek(b.bid)[: b.count] for b in segments_r]
    return np.concatenate(parts) if parts else np.empty(0, np.uint64)


@pytest.mark.parametrize("kind,randomize", [
    ("random", True),
    ("worstcase", True),
    ("worstcase", False),
    ("duplicates", True),
])
def test_alltoall_segments_are_the_exact_ranges(kind, randomize):
    ctx = _run_phases(kind=kind, upto="all_to_all", randomize=randomize)
    em = ctx["em"]
    runs = ctx["runs"][0]
    splits = ctx["splits"][0]
    for rank in range(4):
        for r, run in enumerate(runs):
            keys = _segment_keys(em, ctx["segments"][rank][r])
            assert np.array_equal(keys, np.sort(keys)), "segment not sorted"
            want = splits[rank + 1][r] - splits[rank][r]
            assert len(keys) == want


def test_alltoall_conserves_multiset():
    ctx = _run_phases(kind="worstcase", upto="all_to_all", randomize=False)
    em = ctx["em"]
    collected = []
    for rank in range(4):
        for seg in ctx["segments"][rank]:
            collected.append(_segment_keys(em, seg))
    got = np.sort(np.concatenate(collected))
    want = np.sort(np.concatenate(ctx["before"]))
    assert np.array_equal(got, want)


def test_alltoall_random_input_moves_little():
    ctx = _run_phases(kind="random", upto="all_to_all")
    stats = ctx["stats"]
    cfg = ctx["config"]
    moved = stats.counter_total("alltoall_sent_keys")
    assert moved < 0.25 * cfg.total_keys(4)


def test_alltoall_worstcase_nonrandomized_moves_almost_everything():
    ctx = _run_phases(kind="worstcase", upto="all_to_all", randomize=False)
    stats = ctx["stats"]
    cfg = ctx["config"]
    moved = stats.counter_total("alltoall_sent_keys")
    assert moved > 0.6 * cfg.total_keys(4)


# -------------------------------------------------------------------- merge


def test_merge_produces_sorted_balanced_output():
    ctx = _run_phases(upto="merge")
    em = ctx["em"]
    total = sum(len(b) for b in ctx["before"])
    outs = []
    for rank in range(4):
        piece = ctx["output"][rank]
        keys = np.concatenate([em.store(rank).peek(b) for b in piece.blocks])
        assert np.array_equal(keys, np.sort(keys))
        want = (rank + 1) * total // 4 - rank * total // 4
        assert len(keys) == want
        outs.append(keys)
    merged = np.concatenate(outs)
    assert np.array_equal(merged, np.sort(np.concatenate(ctx["before"])))


def test_merge_frees_inputs_in_place():
    ctx = _run_phases(upto="merge")
    em = ctx["em"]
    cfg = ctx["config"]
    for rank in range(4):
        # After the merge only the output blocks remain.
        piece = ctx["output"][rank]
        assert em.store(rank).blocks_in_use == len(piece.blocks)


def test_merge_naive_prefetch_also_correct():
    ctx = _run_phases(upto="merge", optimal_prefetch=False)
    em = ctx["em"]
    merged = np.concatenate(
        [
            np.concatenate(
                [em.store(r).peek(b) for b in ctx["output"][r].blocks]
            )
            for r in range(4)
        ]
    )
    assert np.array_equal(merged, np.sort(np.concatenate(ctx["before"])))


def test_selection_load_balanced_across_serving_disks():
    """§IV-A: randomization balances the remote accesses the selections
    trigger across the nodes that store the runs."""
    ctx = _run_phases(kind="random", n_nodes=4, upto="selection")
    cluster = ctx["cluster"]
    served = [
        sum(d.read_bytes_by_tag.get("selection", 0.0) for d in node.disks)
        for node in cluster.nodes
    ]
    assert all(s > 0 for s in served)
    mean = sum(served) / len(served)
    assert max(served) <= 3.0 * mean


def test_randomized_runs_have_similar_distributions():
    """§IV: with randomization "all runs have a similar input
    distribution" — quantified with a two-sample KS statistic."""
    from scipy import stats as sps

    def run_key_sets(randomize):
        ctx = _run_phases(kind="worstcase", upto="run_formation",
                          randomize=randomize)
        em = ctx["em"]
        out = []
        for run in ctx["runs"][0]:
            keys = np.concatenate(
                [em.store(p.node).peek(b) for p in run.pieces for b in p.blocks]
            )
            out.append(keys.astype(np.float64))
        return out

    def max_pairwise_ks(runs):
        worst = 0.0
        for i in range(len(runs)):
            for j in range(i + 1, len(runs)):
                worst = max(worst, sps.ks_2samp(runs[i], runs[j]).statistic)
        return worst

    ks_rand = max_pairwise_ks(run_key_sets(True))
    ks_plain = max_pairwise_ks(run_key_sets(False))
    assert ks_rand < 0.2          # randomized runs resemble each other
    assert ks_plain > 0.9         # naive chunks are disjoint key slices
