"""Nightly conformance tier: the full matrix, property search, hypothesis.

Everything here is marked ``conformance`` and therefore excluded from
the default (tier-1) pytest run — select it with::

    pytest -m conformance

(the explicit ``-m`` on the command line overrides the ``not
conformance`` in ``addopts``; CI's nightly job does exactly this.)
"""

import numpy as np
import pytest

from repro.testing import corpus, differential, oracle, properties

pytestmark = pytest.mark.conformance

FULL = differential.full_specs(seed=42)
FULL_STR = differential.string_variants(FULL)


@pytest.mark.parametrize("spec", FULL, ids=[s.to_token() for s in FULL])
def test_full_matrix_case(spec, tmp_path):
    for result in differential.run_case(spec, workdir=str(tmp_path / "spill")):
        assert result.ok, (
            f"[{result.backend}] {spec.to_token()} diverged:\n  "
            + "\n  ".join(result.divergences)
            + f"\nreplay: {spec.replay_command()}"
        )


@pytest.mark.parametrize("spec", FULL_STR, ids=[s.to_token() for s in FULL_STR])
def test_full_matrix_string_twin(spec, tmp_path):
    """Every nightly matrix case again as a variable-length string sort."""
    for result in differential.run_case(spec, workdir=str(tmp_path / "spill")):
        assert result.ok, (
            f"[{result.backend}] {spec.to_token()} diverged:\n  "
            + "\n  ".join(result.divergences)
            + f"\nreplay: {spec.replay_command()}"
        )


@pytest.mark.parametrize("selection", ["basic", "bisect"])
def test_alternate_selection_strategies(selection, tmp_path):
    spec = differential.CaseSpec(
        "dup_tiny_domain", "base", n_workers=3, seed=9, selection=selection
    )
    for result in differential.run_case(spec, workdir=str(tmp_path / "s")):
        assert result.ok, result.divergences


def test_property_search_clean():
    report = properties.search(n_cases=40, seed=20260805)
    assert report.ok, "\n".join(
        f"{f.minimized.to_token()}: {f.divergences} (replay: {f.replay})"
        for f in report.failures
    )
    assert report.cases_run == 40


def test_hypothesis_driven_differential(tmp_path):
    """Opportunistic extra generator diversity when hypothesis is present."""
    hyp = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")

    @hyp.settings(max_examples=10, deadline=None)
    @hyp.given(
        n=st.integers(8, 400),
        seed=st.integers(0, 2**31 - 1),
        entry=st.sampled_from(corpus.entry_names()),
        workers=st.integers(1, 4),
    )
    def run(n, seed, entry, workers):
        sizing = corpus.Sizing(corpus.ad_hoc_name(n, 8, 192), n, 8, 192)
        hyp.assume(corpus.sizing_feasible(sizing))
        spec = differential.CaseSpec(
            entry, sizing.name, n_workers=workers, seed=seed
        )
        for result in differential.run_case(spec):
            assert result.ok, (
                "\n".join(result.divergences)
                + f"\nreplay: {spec.replay_command()}"
            )

    run()


def test_oracle_against_plain_numpy_on_random_splits():
    rng = np.random.default_rng(0)
    for _ in range(25):
        n_ranks = int(rng.integers(1, 8))
        parts = [
            rng.integers(0, 1000, int(rng.integers(0, 200))).astype(np.uint64)
            for _ in range(n_ranks)
        ]
        out = oracle.expected_outputs(parts)
        whole = np.concatenate([p for p in parts]) if parts else np.empty(0)
        assert np.array_equal(np.concatenate(out), np.sort(whole))
        assert sum(len(o) for o in out) == len(whole)
