"""The algorithm registry and its job-validation gates.

The bake-off registry (:mod:`repro.native.algos`) is the seam between
job specs and phase implementations: these tests pin its resolution
rules — unknown names and unsupported (algo, records) pairs fail
loudly with ConfigError, every registered backend exposes the full
five-phase strategy — and the :class:`~repro.native.job.NativeJob`
gates that keep unsupported feature combinations away from the
non-canonical backends.
"""

import pytest

from repro.core.config import ConfigError, SortConfig
from repro.native import ALGORITHMS, NativeJob
from repro.native.algos import Algorithm, resolve_algorithm
from repro.native.records import RECORD_BYTES
from repro.testing.chaos import ChaosSpec


def _job(tmp_path, **overrides):
    base = dict(
        config=SortConfig(
            data_per_node_bytes=512 * RECORD_BYTES,
            memory_bytes=384 * RECORD_BYTES,
            block_bytes=32 * RECORD_BYTES,
            block_elems=32,
            seed=1,
        ),
        n_workers=2,
        spill_dir=str(tmp_path),
    )
    base.update(overrides)
    return NativeJob(**base)


# ------------------------------------------------------------ the registry


def test_registry_names_are_the_public_tuple():
    assert ALGORITHMS == ("canonical", "striped", "guidesort")


@pytest.mark.parametrize("algo", ALGORITHMS)
def test_every_backend_resolves_with_full_phase_strategy(algo):
    alg = resolve_algorithm(algo, "fixed16")
    assert isinstance(alg, Algorithm)
    assert alg.name == algo and alg.records == "fixed16"
    fns = alg.phase_fns
    assert len(fns) == 5 and all(callable(fn) for fn in fns)


def test_unknown_algorithm_name_is_a_config_error():
    with pytest.raises(ConfigError, match="unknown algorithm 'quicksort'"):
        resolve_algorithm("quicksort")


@pytest.mark.parametrize("algo", ["striped", "guidesort"])
def test_string_model_only_runs_canonical(algo):
    with pytest.raises(ConfigError, match="does not support records='string'"):
        resolve_algorithm(algo, "string")
    assert resolve_algorithm("canonical", "string").records == "string"


def test_backends_share_the_canonical_generate_phase():
    # All fixed16 backends sort the identical generated input: phase 0
    # is shared, so differences can only come from the sort itself.
    gens = {resolve_algorithm(a, "fixed16").generate_input for a in ALGORITHMS}
    assert len(gens) == 1


def test_wire_profiles_diverge_where_the_paper_says():
    # Striped pays communication in both passes (its own conservation
    # profile); guidesort only swaps the merge strategy, so canonical's
    # exact N*16 wire accounting still applies.
    assert resolve_algorithm("striped").wire_profile == "striped"
    assert resolve_algorithm("guidesort").wire_profile == "canonical"
    assert resolve_algorithm("canonical").wire_profile == "canonical"


# ----------------------------------------------------- NativeJob gating


def test_job_defaults_to_canonical(tmp_path):
    job = _job(tmp_path)
    assert job.algo == "canonical"
    assert job.describe()["algo"] == "canonical"


@pytest.mark.parametrize("algo", ALGORITHMS)
def test_job_accepts_every_registered_backend(tmp_path, algo):
    assert _job(tmp_path, algo=algo).describe()["algo"] == algo


def test_job_rejects_unknown_backend(tmp_path):
    with pytest.raises(ConfigError, match="unknown algorithm 'timsort'"):
        _job(tmp_path, algo="timsort")


@pytest.mark.parametrize("algo", ["striped", "guidesort"])
def test_noncanonical_gates(tmp_path, algo):
    with pytest.raises(ConfigError, match="only supports records='fixed16'"):
        _job(tmp_path, algo=algo, records="string")
    with pytest.raises(ConfigError, match="checkpoint/resume"):
        _job(tmp_path, algo=algo, checkpoint=True)
    with pytest.raises(ConfigError, match="pipelined I/O"):
        _job(tmp_path, algo=algo, prefetch_blocks=3, write_behind_blocks=2)
    with pytest.raises(ConfigError, match="chaos injection"):
        _job(tmp_path, algo=algo, chaos=ChaosSpec(rank=0, kill_at="before:merge"))


def test_canonical_still_composes_with_gated_features(tmp_path):
    # The gates above must not have tightened the default backend.
    job = _job(
        tmp_path, algo="canonical",
        checkpoint=True, prefetch_blocks=3, write_behind_blocks=2,
    )
    assert job.checkpointing and job.pipelined
