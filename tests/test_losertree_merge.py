"""Tests for the loser tree and the streaming multiway merge."""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos import LoserTree, merge_arrays, merge_iterables


def test_loser_tree_single_source():
    tree = LoserTree(1)
    tree.push(0, 5, "five")
    assert tree.pop_winner() == (0, 5, "five")
    tree.exhaust(0)
    assert tree.pop_winner() is None


def test_loser_tree_basic_merge_order():
    tree = LoserTree(3)
    data = [[1, 4, 7], [2, 5, 8], [3, 6, 9]]
    ptrs = [0, 0, 0]
    for i in range(3):
        tree.push(i, data[i][0])
    out = []
    while True:
        popped = tree.pop_winner()
        if popped is None:
            break
        src, key, _ = popped
        out.append(key)
        ptrs[src] += 1
        if ptrs[src] < len(data[src]):
            tree.push(src, data[src][ptrs[src]])
        else:
            tree.exhaust(src)
    assert out == list(range(1, 10))


def test_loser_tree_ties_stable_by_source():
    tree = LoserTree(3)
    for i in range(3):
        tree.push(i, 7, f"v{i}")
    order = []
    for _ in range(3):
        src, _key, _val = tree.pop_winner()
        order.append(src)
        tree.exhaust(src)
    assert order == [0, 1, 2]


def test_loser_tree_double_push_rejected():
    tree = LoserTree(2)
    tree.push(0, 1)
    with pytest.raises(RuntimeError):
        tree.push(0, 2)


def test_loser_tree_pop_without_refill_rejected():
    tree = LoserTree(2)
    tree.push(0, 1)
    tree.push(1, 2)
    tree.pop_winner()
    with pytest.raises(RuntimeError):
        tree.pop_winner()


def test_loser_tree_source_bounds():
    tree = LoserTree(2)
    with pytest.raises(IndexError):
        tree.push(5, 1)
    with pytest.raises(ValueError):
        LoserTree(0)


def test_loser_tree_exhaust_with_item_rejected():
    tree = LoserTree(2)
    tree.push(0, 1)
    with pytest.raises(RuntimeError):
        tree.exhaust(0)


def test_merge_iterables_lazy():
    gen = merge_iterables([[1, 3], [2, 4]])
    assert next(gen) == 1
    assert next(gen) == 2


def test_merge_iterables_empty_sources():
    assert list(merge_iterables([])) == []
    assert list(merge_iterables([[], []])) == []
    assert list(merge_iterables([[], [1]])) == [1]


@settings(max_examples=150, deadline=None)
@given(st.lists(st.lists(st.integers(0, 100), max_size=25), max_size=7))
def test_merge_iterables_matches_heapq(lists):
    sorted_lists = [sorted(x) for x in lists]
    got = list(merge_iterables(sorted_lists))
    want = list(heapq.merge(*sorted_lists))
    assert got == want


@settings(max_examples=60, deadline=None)
@given(st.lists(st.lists(st.integers(0, 1000), max_size=20), min_size=1, max_size=5))
def test_merge_arrays_matches_numpy(lists):
    arrays = [np.sort(np.array(x, dtype=np.uint64)) for x in lists]
    got = merge_arrays(arrays)
    want = np.sort(np.concatenate(arrays)) if any(len(a) for a in arrays) \
        else np.empty(0, np.uint64)
    assert np.array_equal(got, want)
