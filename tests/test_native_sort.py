"""End-to-end tests of the native backend: real files, real processes.

Sizes are tiny (the CI container has one CPU and the workers time-slice
it), but every configuration still crosses all four phases, multiple
runs, and the full pipe mesh.
"""

import json
import os

import numpy as np
import pytest

from repro.core.config import ConfigError, SortConfig
from repro.native import NativeJob, NativeSorter, NativeSortError, native_sort
from repro.native.records import NATIVE_DTYPE
from repro.workloads.gensort import record_keys
from repro.workloads.validation import validate_output

KiB = 1024


def native_config(**overrides):
    base = dict(
        data_per_node_bytes=128 * KiB,   # 8192 records / worker
        memory_bytes=48 * KiB,
        block_bytes=2 * KiB,             # 128 records / block
        seed=42,
    )
    base.update(overrides)
    return SortConfig(**base)


def run_sort(tmp_path, n_workers=3, skew=False, **overrides):
    cfg = native_config(**overrides)
    return native_sort(
        cfg, n_workers=n_workers, spill_dir=str(tmp_path), skew=skew, timeout=120
    )


def ground_truth_check(result, skew=False):
    """Full valsort + permutation check against regenerated input keys."""
    job = result.job
    keys_in = record_keys(
        0, job.total_records, seed=job.config.seed, skew=skew
    )
    report = validate_output([keys_in], result.output_keys())
    # validate_output's balance check uses len(output_parts) as P, which
    # holds here since every rank contributes one part.
    assert report.ok, report.issues
    return report


def test_multiworker_sort_is_correct(tmp_path):
    result = run_sort(tmp_path, n_workers=3)
    report = result.validate()
    assert report.ok, report.issues
    ground_truth_check(result)
    assert result.stats.n_runs > 1  # really external: several runs


def test_payloads_travel_with_their_keys(tmp_path):
    """Records, not bare keys: each output payload still matches its key."""
    result = run_sort(tmp_path, n_workers=2)
    keys_in = record_keys(0, result.job.total_records, seed=42)
    for rank in range(2):
        records = result.output_records(rank)
        assert np.array_equal(keys_in[records["payload"]], records["key"])


def test_single_worker(tmp_path):
    result = run_sort(tmp_path, n_workers=1)
    assert result.validate().ok
    ground_truth_check(result)


def test_single_run(tmp_path):
    # M large enough that all data fits in one run: no merge work to split.
    result = run_sort(
        tmp_path, n_workers=2, memory_bytes=3 * 128 * KiB
    )
    assert result.stats.n_runs == 1
    assert result.validate().ok
    ground_truth_check(result)


def test_skewed_duplicate_heavy_input(tmp_path):
    result = run_sort(tmp_path, n_workers=3, skew=True)
    assert result.validate().ok, result.validate().issues
    ground_truth_check(result, skew=True)


@pytest.mark.parametrize("selection", ["sampled", "basic", "bisect"])
def test_selection_strategies(tmp_path, selection):
    result = run_sort(tmp_path, n_workers=2, selection=selection)
    assert result.validate().ok
    ground_truth_check(result)


def test_no_randomize(tmp_path):
    result = run_sort(tmp_path, n_workers=2, randomize=False)
    assert result.validate().ok
    ground_truth_check(result)


def test_deterministic_output(tmp_path):
    a = run_sort(tmp_path / "a", n_workers=2)
    b = run_sort(tmp_path / "b", n_workers=2)
    assert [m.checksum for m in a.outputs] == [m.checksum for m in b.outputs]
    assert np.array_equal(
        np.concatenate(a.output_keys()), np.concatenate(b.output_keys())
    )


def test_memory_budget_respected(tmp_path):
    """Analytic working set stays within the configured M (plus slack for
    the merge's per-run buffers at this tiny block-to-memory ratio)."""
    result = run_sort(tmp_path, n_workers=2)
    M = result.job.memory_bytes
    assert result.stats.peak_resident_bytes <= 2 * M
    # Run formation really was external: several runs, not one big sort.
    assert result.stats.n_runs >= 3


def test_stats_account_every_phase(tmp_path):
    result = run_sort(tmp_path, n_workers=2)
    stats = result.stats
    for phase in ("generate", "run_formation", "selection", "all_to_all", "merge"):
        assert phase in stats.phases
        assert stats.wall_max(phase) > 0.0
    data = stats.total_bytes
    # Input is read once and pieces written once in run formation.
    assert stats.phase_bytes("run_formation") >= 2 * data
    # The all-to-all reads pieces and writes segments.
    assert stats.phase_bytes("all_to_all") >= 2 * data
    assert stats.network_bytes > 0
    d = stats.to_dict()
    assert d["backend"] == "native"
    assert set(d["phases"]) == set(stats.phases)
    assert "wall_max" in d["phases"]["merge"]
    assert stats.summary()


def test_cleanup_removes_spill_dir(tmp_path):
    spill = tmp_path / "spill"
    result = run_sort(spill, n_workers=2)
    assert os.path.isdir(spill)
    result.cleanup()
    assert not os.path.exists(spill)


def test_infeasible_merge_config_rejected(tmp_path):
    # Big blocks + tiny memory: R double-buffers can't fit.
    with pytest.raises(ConfigError):
        NativeJob(
            config=native_config(block_bytes=16 * KiB, memory_bytes=16 * KiB),
            n_workers=2,
            spill_dir=str(tmp_path),
        )


def test_job_validation():
    with pytest.raises(ConfigError):
        NativeJob(config=native_config(), n_workers=0, spill_dir="x")
    with pytest.raises(ConfigError):
        NativeJob(
            config=native_config(block_bytes=8), n_workers=1, spill_dir="x"
        )


def test_worker_failure_surfaces_as_sort_error(tmp_path, monkeypatch):
    """A crashing worker reports a traceback instead of hanging the job."""
    import multiprocessing as mp

    if "fork" not in mp.get_all_start_methods():
        pytest.skip("needs fork so children inherit the monkeypatch")
    import dataclasses

    import repro.native.worker as worker_mod
    from repro.native.algos import resolve_algorithm

    def boom(ctx):
        raise RuntimeError("injected failure")

    def resolve_boom(algo, records="fixed16"):
        return dataclasses.replace(
            resolve_algorithm(algo, records), run_formation=boom
        )

    monkeypatch.setattr(worker_mod, "resolve_algorithm", resolve_boom)
    job = NativeJob(
        config=native_config(), n_workers=2, spill_dir=str(tmp_path), timeout=60
    )
    with pytest.raises(NativeSortError, match="injected failure"):
        NativeSorter(job).run()


def test_generate_false_reuses_existing_input(tmp_path):
    """generate=False keeps input files from an earlier run in place."""
    first = run_sort(tmp_path, n_workers=2)
    assert first.validate().ok
    # Outputs and intermediates are gone, inputs remain; sort again on them.
    job = NativeJob(
        config=native_config(),
        n_workers=2,
        spill_dir=str(tmp_path),
        generate=False,
        timeout=120,
    )
    second = NativeSorter(job).run()
    assert second.validate().ok
    assert "generate" not in second.stats.phases
    assert [m.checksum for m in second.outputs] == [
        m.checksum for m in first.outputs
    ]


def test_cli_native_backend(tmp_path, capsys):
    from repro.__main__ import main

    code = main([
        "--backend", "native", "--nodes", "2",
        "--spill-dir", str(tmp_path),
        "--data-mib", "0.125", "--memory-mib", "0.046875",
        "--block-mib", "0.001953125",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "output valid" in out
    assert "native total" in out


def test_cli_native_json(tmp_path, capsys):
    from repro.__main__ import main

    code = main([
        "--backend", "native", "--nodes", "2",
        "--spill-dir", str(tmp_path), "--json",
        "--data-mib", "0.125", "--memory-mib", "0.046875",
        "--block-mib", "0.001953125",
    ])
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(out)
    assert report["backend"] == "native"
    assert report["validation"]["ok"] is True
    assert report["config"]["n_workers"] == 2
    assert report["io_bytes"] > 0
    for phase in ("run_formation", "selection", "all_to_all", "merge"):
        assert report["phases"][phase]["wall"] >= 0.0
        assert "io_bytes" in report["phases"][phase]


def test_cli_native_requires_spill_dir(capsys):
    from repro.__main__ import main

    assert main(["--backend", "native", "--nodes", "2"]) == 2


def test_cli_sim_json(capsys):
    from repro.__main__ import main

    code = main(["--nodes", "2", "--data-mib", "24", "--memory-mib", "8", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(out)
    assert report["backend"] == "sim"
    assert report["validation"]["ok"] is True
    assert set(report["phases"]) >= {
        "run_formation", "selection", "all_to_all", "merge"
    }
    assert report["io_bytes"] > 0
