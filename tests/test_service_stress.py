"""Service queue-depth stress: bursts, head-of-line blocking, budgets.

Satellite of the tuning PR: the scheduler now fills knobs at admission,
so the admission path gets a dedicated stress suite pinning what must
never change — strict FIFO order, budget reserve/release balance, and
bitwise-correct outputs under a deep queue.
"""

import threading
import time

import pytest

from repro.service.daemon import SortService
from tests.test_service import SMALL, output_bytes, single_shot, wait_for

KiB = 1024
MiB = 1024 * 1024


def burst_spec(i):
    """A distinct small job per burst slot (own seed, own label)."""
    return dict(SMALL, seed=1000 + i, label=f"burst-{i}")


class TestBurst:
    def test_16_job_burst_fifo_and_bitwise_outputs(self, tmp_path):
        """16 jobs at once: FIFO admission, correct results, zero debt."""
        n_jobs = 16
        with SortService(
            pool_size=2, spill_root=str(tmp_path / "svc"), listen=None,
            tuning=False,
        ) as svc:
            ids = [svc.submit(burst_spec(i)) for i in range(n_jobs)]
            peak = [0]

            def sample():
                while not all(
                    svc._jobs[jid].done.is_set() for jid in ids
                ):
                    with svc._lock:
                        peak[0] = max(peak[0], svc._reserved_mem)
                    time.sleep(0.005)

            sampler = threading.Thread(target=sample, daemon=True)
            sampler.start()
            jobs = [svc.wait(jid, timeout=300) for jid in ids]
            sampler.join(timeout=10)
            assert all(j.state == "DONE" for j in jobs), [
                (j.id, j.state, j.error) for j in jobs
            ]

            # Strict FIFO: admission order is submission order.
            admitted = [j.admitted for j in jobs]
            assert all(a is not None for a in admitted)
            assert admitted == sorted(admitted), (
                "admission must follow submission order"
            )

            # The budget ledger balances: reservations never exceeded
            # the budget and every release happened.
            assert 0 < peak[0] <= svc.memory_budget_bytes
            with svc._lock:
                assert svc._reserved_mem == 0
                assert svc._reserved_spill == 0

            # Bitwise correctness under queue pressure: every output
            # equals the single-shot run of the same spec.
            for i, job in enumerate(jobs):
                oracle = single_shot(
                    burst_spec(i), tmp_path / f"oracle-{i}"
                )
                assert output_bytes(job, job.result.outputs) == \
                    output_bytes(job, oracle.outputs), f"job {i} differs"

            stats = svc.stats_snapshot()
            assert stats["jobs"]["done"] == n_jobs
            assert stats["queue"]["depth_peak"] >= n_jobs - 1

    def test_one_huge_job_blocks_but_never_starves(self, tmp_path):
        """Head-of-line: a huge head job admits before later small ones.

        The budget admits either the huge job alone or several smalls;
        strict FIFO means the smalls submitted *after* it must not leap
        past it even while it waits for the pool.
        """
        huge = dict(
            SMALL, memory_mib=1.0, data_mib=0.5, block_kib=4.0,
            seed=77, label="huge",
        )
        smalls = [dict(SMALL, seed=2000 + i) for i in range(4)]
        # Budget fits exactly one huge (2 workers x 1 MiB) OR the
        # smalls (2 x 48 KiB each); FIFO must serialize huge-first.
        with SortService(
            pool_size=2, spill_root=str(tmp_path / "svc"), listen=None,
            memory_budget_bytes=2 * MiB, tuning=False,
        ) as svc:
            first = svc.submit(dict(SMALL, seed=3000))
            huge_id = svc.submit(huge)
            small_ids = [svc.submit(s) for s in smalls]
            all_ids = [first, huge_id] + small_ids
            jobs = {jid: svc.wait(jid, timeout=300) for jid in all_ids}
            assert all(j.state == "DONE" for j in jobs.values())
            order = sorted(all_ids, key=lambda j: jobs[j].admitted)
            assert order == all_ids, (
                f"admission order {order} broke FIFO {all_ids}"
            )
            with svc._lock:
                assert svc._reserved_mem == 0
                assert svc._reserved_spill == 0

    def test_burst_with_queue_inspection(self, tmp_path):
        """Deep-queue snapshots stay consistent while jobs drain."""
        with SortService(
            pool_size=2, spill_root=str(tmp_path / "svc"), listen=None,
            tuning=False,
        ) as svc:
            ids = [svc.submit(burst_spec(i)) for i in range(8)]
            # While draining, queue positions must be unique and
            # monotone in submission order.
            seen_queue = wait_for(
                lambda: [
                    s for s in (svc.status(j) for j in ids)
                    if s.get("queue_position") is not None
                ] or None,
                what="some jobs still queued",
            )
            positions = [s["queue_position"] for s in seen_queue]
            assert positions == sorted(positions)
            assert len(set(positions)) == len(positions)
            for jid in ids:
                assert svc.wait(jid, timeout=300).state == "DONE"
