"""End-to-end native sorts over the TCP transport.

The same phases, workers, and files as test_native_sort.py, but the
interconnect is a real socket mesh built by rendezvous — including the
externally-launched-worker mode (``--no-spawn`` + ``python -m repro
worker``) and the comm-level chaos faults only a network can have.
"""

import json
import multiprocessing as mp
import socket

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.native import NativeJob, NativeSorter, native_sort
from repro.native.worker import tcp_worker_main
from repro.testing.chaos import ChaosSpec, run_chaos_case

KiB = 1024
RECORD_BYTES = 16


def native_config(**overrides):
    base = dict(
        data_per_node_bytes=64 * KiB,    # 4096 records / worker
        memory_bytes=24 * KiB,
        block_bytes=1 * KiB,
        seed=42,
    )
    base.update(overrides)
    return SortConfig(**base)


def run_tcp_sort(tmp_path, n_workers=3, **overrides):
    return native_sort(
        native_config(**overrides),
        n_workers=n_workers,
        spill_dir=str(tmp_path),
        timeout=120,
        transport="tcp",
    )


def test_tcp_sort_is_correct_and_bitwise_matches_pipe(tmp_path):
    tcp = run_tcp_sort(tmp_path / "tcp", n_workers=3)
    assert tcp.validate().ok, tcp.validate().issues
    pipe = native_sort(
        native_config(),
        n_workers=3,
        spill_dir=str(tmp_path / "pipe"),
        timeout=120,
        transport="pipe",
    )
    # The transport must be bitwise-invisible in the output.
    assert [m.checksum for m in tcp.outputs] == [m.checksum for m in pipe.outputs]
    assert np.array_equal(
        np.concatenate(tcp.output_keys()), np.concatenate(pipe.output_keys())
    )


def test_tcp_all_to_all_wire_volume_meets_the_paper_bound(tmp_path):
    """Balanced input: all-to-all moves exactly N record bytes (wire+local)."""
    result = run_tcp_sort(tmp_path, n_workers=3)
    stats = result.stats
    n_bytes = result.job.total_records * RECORD_BYTES
    assert stats.wire_volume("all_to_all") == n_bytes
    # Real sockets moved real framed bytes: kernel counts exceed payload.
    assert stats.socket_bytes_sent > stats.wire_sent("all_to_all")
    assert stats.socket_bytes_recv > 0
    # And the transport shows up in the report surfaces.
    d = stats.to_dict()
    assert d["phases"]["all_to_all"]["wire_volume"] == n_bytes
    assert "all-to-all volume" in stats.summary()


def test_externally_launched_workers(tmp_path):
    """The --no-spawn flow: driver listens, workers dial in from outside."""
    probe = socket.socket()
    probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    n_workers = 2
    job = NativeJob(
        config=native_config(),
        n_workers=n_workers,
        spill_dir=str(tmp_path),
        timeout=60,
        transport="tcp",
        listen=f"127.0.0.1:{port}",
        spawn_workers=False,
    )
    ctx = mp.get_context("spawn")
    procs = [
        ctx.Process(
            target=tcp_worker_main,
            args=(rank, ("127.0.0.1", port)),
            kwargs={"connect_timeout": 60.0},
        )
        for rank in range(n_workers)
    ]
    for p in procs:
        p.start()
    try:
        result = NativeSorter(job).run()
    finally:
        for p in procs:
            p.join(timeout=30)
            if p.is_alive():
                p.kill()
    assert all(p.exitcode == 0 for p in procs)
    assert result.validate().ok, result.validate().issues
    assert result.stats.wire_volume("all_to_all") == (
        job.total_records * RECORD_BYTES
    )


def test_chaos_kill_over_tcp_fails_fast(tmp_path):
    verdict = run_chaos_case(
        ChaosSpec(rank=0, kill_at="before:all_to_all"),
        str(tmp_path / "spill"),
        transport="tcp",
    )
    assert verdict["ok"], verdict


def test_chaos_sever_over_tcp_fails_fast_without_torn_outputs(tmp_path):
    verdict = run_chaos_case(
        ChaosSpec(rank=0, sever_comm_at="before:all_to_all"),
        str(tmp_path / "spill"),
        transport="tcp",
    )
    assert verdict["ok"], verdict


def test_chaos_wedge_over_tcp_fails_fast(tmp_path):
    verdict = run_chaos_case(
        ChaosSpec(rank=0, wedge_comm_at="before:all_to_all"),
        str(tmp_path / "spill"),
        job_timeout=3.0,
        transport="tcp",
    )
    assert verdict["ok"], verdict


def test_cli_tcp_json_reports_wire_volume(tmp_path, capsys):
    from repro.__main__ import main

    code = main([
        "--backend", "native", "--nodes", "2",
        "--spill-dir", str(tmp_path), "--json",
        "--transport", "tcp",
        "--data-mib", "0.125", "--memory-mib", "0.046875",
        "--block-mib", "0.001953125",
    ])
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(out)
    assert report["backend"] == "native"
    assert report["validation"]["ok"] is True
    n_bytes = 2 * int(0.125 * 1024 * 1024)
    assert report["phases"]["all_to_all"]["wire_volume"] == n_bytes
    assert report["phases"]["all_to_all"]["wire_sent"] > 0
