"""Tests for the disk model."""

import numpy as np
import pytest

from repro.cluster import Disk, MiB, PAPER_MACHINE
from repro.sim import Simulator


def _disk(spec=PAPER_MACHINE, rng=None):
    sim = Simulator()
    return sim, Disk(sim, spec, "d0", rng=rng)


def run(sim, gen):
    return sim.run_process(gen)


def test_sequential_access_pays_one_seek():
    sim, disk = _disk()

    def io():
        yield disk.write(0, 8 * MiB)
        yield disk.write(8 * MiB, 8 * MiB)
        yield disk.write(16 * MiB, 8 * MiB)

    run(sim, io())
    assert disk.n_seeks == 1  # only the initial positioning


def test_backward_jump_pays_full_seek():
    sim, disk = _disk()

    def io():
        yield disk.write(100 * MiB, 1 * MiB)
        yield disk.write(0, 1 * MiB)

    run(sim, io())
    assert disk.n_seeks == 2
    expected = 2 * (1 * MiB) / disk.bandwidth + 2 * disk.seek_time * (
        1 + PAPER_MACHINE.forward_seek_factor
    ) / (1 + PAPER_MACHINE.forward_seek_factor)  # first None-head seek is full
    # First access: full seek; backward jump: full seek.
    assert disk.busy_time == pytest.approx(
        2 * (1 * MiB) / disk.bandwidth + 2 * disk.seek_time
    )


def test_forward_jump_discounted():
    sim, disk = _disk()

    def io():
        yield disk.write(0, 1 * MiB)
        yield disk.write(50 * MiB, 1 * MiB)  # forward, non-contiguous

    run(sim, io())
    assert disk.busy_time == pytest.approx(
        2 * (1 * MiB) / disk.bandwidth
        + disk.seek_time * (1 + PAPER_MACHINE.forward_seek_factor)
    )


def test_transfer_time_matches_bandwidth():
    sim, disk = _disk()

    def io():
        yield disk.read(0, 8 * MiB)

    run(sim, io())
    assert disk.busy_time == pytest.approx(disk.seek_time + 8 * MiB / disk.bandwidth)


def test_byte_accounting_by_direction_and_tag():
    sim, disk = _disk()

    def io():
        yield disk.write(0, 2 * MiB, tag="rf")
        yield disk.read(0, 2 * MiB, tag="mg")
        yield disk.read(2 * MiB, 1 * MiB, tag="mg")

    run(sim, io())
    assert disk.bytes_written == 2 * MiB
    assert disk.bytes_read == 3 * MiB
    assert disk.write_bytes_by_tag == {"rf": 2 * MiB}
    assert disk.read_bytes_by_tag == {"mg": 3 * MiB}
    assert disk.bytes_total == 5 * MiB


def test_busy_time_attributed_to_tags():
    sim, disk = _disk()

    def io():
        yield disk.write(0, 8 * MiB, tag="a")
        yield disk.write(8 * MiB, 8 * MiB, tag="b")

    run(sim, io())
    assert disk.busy_time_for("a") + disk.busy_time_for("b") == pytest.approx(
        disk.busy_time
    )


def test_bandwidth_jitter_is_seeded_and_bounded():
    rng = np.random.default_rng(7)
    sim = Simulator()
    disks = [Disk(sim, PAPER_MACHINE, f"d{i}", rng=rng) for i in range(16)]
    bws = {d.bandwidth for d in disks}
    assert len(bws) > 1  # spread exists
    spec = PAPER_MACHINE
    lo = (spec.disk_bandwidth - spec.disk_bandwidth_spread) * spec.disk_derating
    hi = (spec.disk_bandwidth + spec.disk_bandwidth_spread) * spec.disk_derating
    for d in disks:
        assert lo <= d.bandwidth <= hi
    # Same seed, same draw sequence.
    rng2 = np.random.default_rng(7)
    sim2 = Simulator()
    disks2 = [Disk(sim2, PAPER_MACHINE, f"d{i}", rng=rng2) for i in range(16)]
    assert [d.bandwidth for d in disks] == [d.bandwidth for d in disks2]


def test_no_jitter_without_rng():
    _sim, disk = _disk(rng=None)
    assert disk.bandwidth == PAPER_MACHINE.disk_bandwidth * PAPER_MACHINE.disk_derating


def test_negative_size_rejected():
    sim, disk = _disk()
    with pytest.raises(ValueError):
        disk.read(0, -1)


def test_result_passthrough():
    sim, disk = _disk()

    def io():
        return (yield disk.read(0, 1 * MiB, result="payload"))

    assert run(sim, io()) == "payload"


def test_requests_queue_fifo_on_one_disk():
    sim, disk = _disk()
    finish = []

    def io(i):
        yield disk.write(i * MiB, 1 * MiB)
        finish.append(i)

    for i in range(4):
        sim.process(io(i))
    sim.run()
    assert finish == [0, 1, 2, 3]
