"""Pipelined native I/O: read-ahead, write-behind, and their accounting.

Unit tests drive :class:`~repro.native.pipeline.Prefetcher` and
:class:`~repro.native.pipeline.WriteBehind` directly against a
:class:`~repro.native.blockstore.FileBlockStore`; the end-to-end tests
prove the pipelined sort is bitwise-invisible next to the synchronous
one and that the new stall/overlap statistics are populated.  The merge
fast-path test is a regression test: the single-active-run shortcut
used to skip the resident-bytes accounting the general path keeps.
"""

import time

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.native import NativeJob, native_sort
from repro.native.blockstore import FileBlockStore
from repro.native.phases import TAG_MERGE, NativeContext, merge
from repro.native.pipeline import (
    Prefetcher,
    PrefetchReader,
    WriteBehind,
    plan_fetch_order,
    sequential_fetch_order,
)
from repro.native.records import NATIVE_DTYPE, RECORD_BYTES
from repro.native.stats import WorkerStats
from repro.testing.chaos import ChaosInjected, ChaosSpec

KiB = 1024
TAG = "merge"  # per-phase tags are free-form; reuse a real one


def make_records(keys):
    arr = np.zeros(len(keys), dtype=NATIVE_DTYPE)
    arr["key"] = keys
    arr["payload"] = np.arange(len(keys), dtype=np.uint64)
    return arr


def write_records(path, keys):
    arr = make_records(keys)
    arr.tofile(str(path))
    return arr


def block_requests(files, block=4):
    """(path, start, count) per block of each file, plus file ids."""
    requests, file_ids = [], []
    for fid, (path, n) in enumerate(files):
        for start in range(0, n, block):
            requests.append((str(path), start, min(block, n - start)))
            file_ids.append(fid)
    return requests, file_ids


# ------------------------------------------------------------- Prefetcher


def test_prefetcher_in_order_matches_sync_reads(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    a = write_records(tmp_path / "a.dat", np.arange(16, dtype=np.uint64))
    b = write_records(tmp_path / "b.dat", np.arange(100, 110, dtype=np.uint64))
    requests, file_ids = block_requests(
        [(tmp_path / "a.dat", 16), (tmp_path / "b.dat", 10)]
    )
    order = sequential_fetch_order(file_ids, n_buffers=3)
    stats = WorkerStats(rank=0)
    expect = {0: a, 1: b}
    with Prefetcher(store, requests, order, TAG, 3, stats=stats) as pf:
        for i, (path, start, count) in enumerate(requests):
            got = pf.get(i)
            fid = file_ids[i]
            assert np.array_equal(got, expect[fid][start : start + count])
    total = sum(c for _p, _s, c in requests) * RECORD_BYTES
    # The consumer charges every read, prefetched or not: conservation.
    assert store.bytes_read[TAG] == total
    fetched = stats.counters.get(f"{TAG}_prefetch_fetched", 0)
    direct = stats.counters.get(f"{TAG}_prefetch_direct", 0)
    assert fetched + direct == len(requests)
    assert stats.counters.get(f"{TAG}_prefetch_inflight_hwm", 0) <= 3


def test_prefetcher_out_of_order_get_falls_back_to_direct(tmp_path):
    # Budget 1 and the consumer asks for the *last* request first: the
    # pool fills with a block the consumer does not want, the one
    # situation where waiting would deadlock — get() must fetch directly.
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    arr = write_records(tmp_path / "a.dat", np.arange(12, dtype=np.uint64))
    requests, file_ids = block_requests([(tmp_path / "a.dat", 12)])
    stats = WorkerStats(rank=0)
    with Prefetcher(
        store, requests, sequential_fetch_order(file_ids, 1), TAG, 1,
        stats=stats,
    ) as pf:
        got = pf.get(len(requests) - 1)
        assert np.array_equal(got, arr[8:12])
        for i in range(len(requests) - 1):
            assert np.array_equal(pf.get(i), arr[4 * i : 4 * i + 4])
    assert stats.counters.get(f"{TAG}_prefetch_direct", 0) >= 1
    assert store.bytes_read[TAG] == arr.nbytes


def test_prefetcher_surfaces_read_errors_on_consumer(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    requests = [(str(tmp_path / "missing.dat"), 0, 4)]
    with Prefetcher(store, requests, [0], TAG, 2) as pf:
        with pytest.raises(OSError):
            pf.get(0)


def test_prefetcher_rejects_bad_arguments(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    requests = [(str(tmp_path / "a.dat"), 0, 4)] * 2
    with pytest.raises(ValueError):
        Prefetcher(store, requests, [0, 0], TAG, 2)  # not a permutation
    with pytest.raises(ValueError):
        Prefetcher(store, requests, [0, 1], TAG, 0)  # no budget


def test_prefetch_reader_streams_one_file_in_order(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    a = write_records(tmp_path / "a.dat", np.arange(10, dtype=np.uint64))
    requests, file_ids = block_requests([(tmp_path / "a.dat", 10)])
    with Prefetcher(
        store, requests, sequential_fetch_order(file_ids, 2), TAG, 2
    ) as pf:
        reader = PrefetchReader(pf, list(range(len(requests))))
        out = []
        while True:
            blk = reader.next_block()
            if blk is None:
                break
            out.append(blk)
        assert reader.exhausted
    assert np.array_equal(np.concatenate(out), a)


def test_plan_fetch_order_validates_lengths():
    with pytest.raises(ValueError):
        plan_fetch_order([(0, 0, 0)], [0, 1], 2)
    assert plan_fetch_order([], [], 4) == []


# ------------------------------------------------------------ WriteBehind


def test_write_behind_append_equals_sync_append(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    batches = [
        make_records(np.arange(s, s + 6, dtype=np.uint64)) for s in (0, 6, 12)
    ]
    stats = WorkerStats(rank=0)
    path = tmp_path / "out.dat"
    with open(path, "wb") as handle:
        with WriteBehind(store, TAG, 64 * KiB, stats=stats) as wb:
            for batch in batches:
                wb.append(handle, batch)
    got = np.fromfile(str(path), dtype=NATIVE_DTYPE)
    assert np.array_equal(got, np.concatenate(batches))
    # The writer thread charges through the store methods, exactly.
    assert store.bytes_written[TAG] == sum(b.nbytes for b in batches)
    assert stats.counters[f"{TAG}_write_behind_chunks"] == len(batches)


def test_write_behind_write_file_and_write_at(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    whole = make_records(np.arange(8, dtype=np.uint64))
    patch = make_records(np.arange(100, 104, dtype=np.uint64))
    dest = tmp_path / "seg.dat"
    store.preallocate(str(dest), 8)
    with open(dest, "r+b") as handle, WriteBehind(store, TAG, 4 * KiB) as wb:
        wb.write_file(str(tmp_path / "piece.dat"), whole)
        wb.write_at(handle, 4, patch.tobytes())
    assert np.array_equal(
        np.fromfile(str(tmp_path / "piece.dat"), dtype=NATIVE_DTYPE), whole
    )
    seg = np.fromfile(str(dest), dtype=NATIVE_DTYPE)
    assert np.array_equal(seg[4:], patch)


def test_write_behind_bounded_queue_high_water_mark(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    stats = WorkerStats(rank=0)
    budget = 4 * 6 * RECORD_BYTES
    path = tmp_path / "out.dat"
    with open(path, "wb") as handle:
        with WriteBehind(store, TAG, budget, stats=stats) as wb:
            for s in range(0, 60, 6):
                wb.append(
                    handle, make_records(np.arange(s, s + 6, dtype=np.uint64))
                )
    # Every item fits the budget, so backpressure keeps the queue bounded.
    assert stats.counters[f"{TAG}_write_behind_hwm_bytes"] <= budget
    assert len(np.fromfile(str(path), dtype=NATIVE_DTYPE)) == 60


def test_write_behind_chaos_error_reraised_on_producer(tmp_path):
    # The chaos write gate lives in the store methods the writer thread
    # calls, so a torn ENOSPC fires *inside* the background thread; the
    # latched error must resurface on the producer at the next call or
    # at close — the fail-fast contract survives the thread hop.
    spec = ChaosSpec(rank=0, enospc_after_bytes=64, torn_write_bytes=24)
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4, chaos=spec)
    wb = WriteBehind(store, TAG, 64 * KiB)
    wb.write_file(str(tmp_path / "a.dat"), make_records(np.arange(16)))
    deadline = time.monotonic() + 10.0
    while wb._error is None and time.monotonic() < deadline:
        time.sleep(0.01)
    with pytest.raises(ChaosInjected):
        wb.write_file(str(tmp_path / "b.dat"), make_records(np.arange(4)))
    wb.close(raise_error=False)  # error path teardown must not raise
    # The failing write is torn: a non-record-aligned prefix reached disk.
    assert (tmp_path / "a.dat").stat().st_size == 24


def test_write_behind_close_raises_pending_error(tmp_path):
    spec = ChaosSpec(rank=0, enospc_after_bytes=32)
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4, chaos=spec)
    wb = WriteBehind(store, TAG, 64 * KiB)
    wb.write_file(str(tmp_path / "a.dat"), make_records(np.arange(16)))
    with pytest.raises(ChaosInjected):
        wb.close()


def test_write_behind_rejects_use_after_close(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    wb = WriteBehind(store, TAG, KiB)
    wb.close()
    with pytest.raises(RuntimeError):
        wb.write_file(str(tmp_path / "a.dat"), make_records(np.arange(2)))


# --------------------------------------- merge fast path (stats regression)


@pytest.mark.parametrize("pipelined", [False, True], ids=["sync", "pipelined"])
def test_merge_single_run_fast_path_keeps_accounting(tmp_path, pipelined):
    """One run only: merge() runs entirely on the single-active-run fast
    path, which used to skip ``note_resident`` — peak_resident_bytes
    stayed 0 and the working-set proof silently excluded this case."""
    n, block = 160, 32
    job = NativeJob(
        config=SortConfig(
            data_per_node_bytes=512 * RECORD_BYTES,
            memory_bytes=384 * RECORD_BYTES,
            block_bytes=block * RECORD_BYTES,
            block_elems=block,
            seed=1,
        ),
        n_workers=1,
        spill_dir=str(tmp_path),
        prefetch_blocks=2 if pipelined else 0,
        write_behind_blocks=2 if pipelined else 0,
    )
    store = FileBlockStore(str(tmp_path), rank=0, block_records=block)
    stats = WorkerStats(rank=0)
    store.attach_stats(stats)
    keys = np.sort(
        np.random.default_rng(9).integers(0, 2**60, n).astype(np.uint64)
    )
    seg = write_records(store.segment_path(0), keys)
    ctx = NativeContext(rank=0, job=job, comm=None, store=store, stats=stats)

    meta = merge(ctx, [n])

    assert meta.n_records == n and meta.sorted_ok
    assert meta.first_key == int(keys[0]) and meta.last_key == int(keys[-1])
    out = np.fromfile(store.output_path(), dtype=NATIVE_DTYPE)
    assert np.array_equal(out, seg)
    # The regression: the fast path must keep the same accounting as the
    # general path — bytes conserved AND a non-zero working set recorded.
    assert store.bytes_read[TAG_MERGE] == n * RECORD_BYTES
    assert store.bytes_written[TAG_MERGE] == n * RECORD_BYTES
    assert stats.peak_resident_bytes > 0


# ------------------------------------------------------------- end to end


def run_native(tmp_path, name, **knobs):
    cfg = SortConfig(
        data_per_node_bytes=96 * KiB,
        memory_bytes=48 * KiB,
        block_bytes=2 * KiB,
        seed=42,
    )
    return native_sort(
        cfg, n_workers=2, spill_dir=str(tmp_path / name), timeout=120, **knobs
    )


def test_pipelined_sort_is_bitwise_invisible(tmp_path):
    sync = run_native(tmp_path, "sync")
    pipe = run_native(
        tmp_path, "pipe", prefetch_blocks=4, write_behind_blocks=4
    )
    assert sync.validate().ok and pipe.validate().ok
    for rank in range(2):
        assert np.array_equal(
            sync.output_records(rank), pipe.output_records(rank)
        )

    stats = pipe.stats
    # The pipeline actually ran: background fetches on both scheduled
    # phases, deferred writes on all three writing phases.
    for phase in ("all_to_all", "merge"):
        fetched = stats.counter_total(f"{phase}_prefetch_fetched")
        direct = stats.counter_total(f"{phase}_prefetch_direct")
        assert fetched + direct > 0, phase
    for phase in ("run_formation", "all_to_all", "merge"):
        assert stats.counter_total(f"{phase}_write_behind_chunks") > 0, phase

    # Conservation survives the thread hop (each phase moves N*16 bytes).
    nbytes = pipe.job.total_records * RECORD_BYTES
    for phase in ("run_formation", "all_to_all", "merge"):
        assert sum(
            w.bytes_read.get(phase, 0) for w in stats.workers
        ) == nbytes, phase
        assert sum(
            w.bytes_written.get(phase, 0) for w in stats.workers
        ) == nbytes, phase

    d = stats.to_dict()
    for phase, row in d["phases"].items():
        assert row["stall_s"] >= 0.0
        assert 0.0 <= row["overlap_ratio"] <= 1.0
    assert all("io_stall_s" in w for w in d["per_worker"])
    assert "stall" in stats.summary() and "overlap" in stats.summary()
    sync.cleanup()
    pipe.cleanup()


def test_sync_path_reports_stall_time_too(tmp_path):
    # Stall accounting is not gated on the pipeline knobs: the synchronous
    # path charges its (blocking) store I/O as stall per phase.
    result = run_native(tmp_path, "s")
    merged = {}
    for w in result.stats.workers:
        for phase, s in w.io_stall_s.items():
            merged[phase] = merged.get(phase, 0.0) + s
    assert merged, "expected per-phase io_stall_s on the synchronous path"
    assert all(s >= 0.0 for s in merged.values())
    result.cleanup()


def test_job_rejects_negative_pipeline_knobs(tmp_path):
    from repro.core.config import ConfigError

    cfg = SortConfig(
        data_per_node_bytes=512 * RECORD_BYTES,
        memory_bytes=384 * RECORD_BYTES,
        block_bytes=32 * RECORD_BYTES,
        block_elems=32,
    )
    with pytest.raises(ConfigError):
        NativeJob(
            config=cfg, n_workers=1, spill_dir=str(tmp_path),
            prefetch_blocks=-1,
        )
    with pytest.raises(ConfigError):
        NativeJob(
            config=cfg, n_workers=1, spill_dir=str(tmp_path),
            write_behind_blocks=-2,
        )
    job = NativeJob(
        config=cfg, n_workers=1, spill_dir=str(tmp_path),
        prefetch_blocks=3, write_behind_blocks=2,
    )
    assert job.pipelined
    assert job.write_behind_bytes == 2 * job.block_records * 16
