"""The bench regression gate must gate: pass, fail, seed, drift.

tools/bench_gate.py is the CI tripwire over the committed perf
trajectory (benchmarks/BENCH_native.json).  These tests drive it over
synthetic trajectories so every exit path is pinned: a clean candidate
passes, an injected 20% regression fails, a missing baseline is exit 4
(with a --seed escape), and any malformed or *shrunken* input is schema
drift — the gate must never pass because there was nothing to compare.
"""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools", "bench_gate.py",
)
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)

PHASES = ("generate", "run_formation", "selection", "all_to_all", "merge")
SIZING = {
    "n_workers": 4,
    "data_mib": 8.0,
    "memory_mib": 4.0,
    "block_kib": 64.0,
    "seed": 12345,
}
#: Per-transport phase MB/s for the synthetic machine.  shm all_to_all
#: is 4x pipe, comfortably above the gate's 1.5x invariant.
BASE_MB_S = {
    "pipe": {"generate": 200.0, "run_formation": 30.0, "selection": 900.0,
             "all_to_all": 100.0, "merge": 150.0},
    "tcp": {"generate": 210.0, "run_formation": 31.0, "selection": 950.0,
            "all_to_all": 300.0, "merge": 160.0},
    "shm": {"generate": 220.0, "run_formation": 32.0, "selection": 1000.0,
            "all_to_all": 400.0, "merge": 170.0},
}


def make_doc(ceiling=100.0, scale=1.0, transports=("pipe", "tcp", "shm"),
             sizing=SIZING, stamp="2026-01-01T00:00:00Z"):
    """A schema-1 trajectory with one entry.

    ``scale`` multiplies every throughput *including* the np.sort
    ceiling — i.e. the same code on a faster/slower machine.
    """
    entry = {
        "stamp": stamp,
        "np_sort_mb_s": ceiling * scale,
        "transports": {
            t: {
                "phases": {p: BASE_MB_S[t][p] * scale for p in PHASES},
                "sort_mb_s": 25.0 * scale,
            }
            for t in transports
        },
    }
    return {"schema": 1, "sizing": dict(sizing), "entries": [entry]}


def write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


@pytest.fixture
def baseline(tmp_path):
    return write(tmp_path, "baseline.json", make_doc())


# -- pass paths ---------------------------------------------------------------


def test_identical_candidate_passes(tmp_path, baseline, capsys):
    cand = write(tmp_path, "cand.json", make_doc())
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0
    out = capsys.readouterr().out
    assert "15 phase throughputs" in out


def test_faster_machine_does_not_false_positive(tmp_path, baseline):
    # Same code on a machine 3x slower: raw MB/s drops 3x everywhere,
    # but so does the np.sort ceiling — normalization must cancel it.
    cand = write(tmp_path, "cand.json", make_doc(scale=1 / 3))
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0


def test_dip_within_threshold_passes(tmp_path, baseline):
    doc = make_doc()
    e = doc["entries"][-1]
    for t in e["transports"].values():
        t["phases"]["merge"] *= 0.90  # 10% < the 15% threshold
    cand = write(tmp_path, "cand.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0


def test_gate_uses_latest_entry(tmp_path):
    # History accumulates; only the newest entry on each side is gated.
    base_doc = make_doc()
    old = json.loads(json.dumps(base_doc["entries"][0]))
    old["np_sort_mb_s"] = 1e9  # absurd older entry must be ignored
    base_doc["entries"].insert(0, old)
    baseline = write(tmp_path, "baseline.json", base_doc)
    cand = write(tmp_path, "cand.json", make_doc())
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0


# -- regression paths ---------------------------------------------------------


def test_injected_20pct_regression_fails(tmp_path, baseline, capsys):
    doc = make_doc()
    doc["entries"][-1]["transports"]["shm"]["phases"]["all_to_all"] *= 0.80
    cand = write(tmp_path, "cand.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 1
    err = capsys.readouterr().err
    assert "REGRESSION" in err
    assert "shm/all_to_all" in err


def test_regression_in_any_single_phase_fails(tmp_path, baseline):
    for transport in ("pipe", "tcp", "shm"):
        for phase in PHASES:
            doc = make_doc()
            doc["entries"][-1]["transports"][transport]["phases"][phase] *= 0.5
            cand = write(tmp_path, f"c-{transport}-{phase}.json", doc)
            assert (
                bench_gate.main(
                    ["--baseline", baseline, "--candidate", cand]
                ) == 1
            ), f"50% regression in {transport}/{phase} must fail the gate"


def test_custom_threshold(tmp_path, baseline):
    doc = make_doc()
    doc["entries"][-1]["transports"]["pipe"]["phases"]["merge"] *= 0.90
    cand = write(tmp_path, "cand.json", doc)
    args = ["--baseline", baseline, "--candidate", cand, "--threshold"]
    assert bench_gate.main(args + ["0.05"]) == 1
    assert bench_gate.main(args + ["0.15"]) == 0


# -- missing baseline / seeding -----------------------------------------------


def test_missing_baseline_is_exit_4(tmp_path):
    cand = write(tmp_path, "cand.json", make_doc())
    missing = str(tmp_path / "nope.json")
    assert bench_gate.main(["--baseline", missing, "--candidate", cand]) == 4


def test_seed_installs_candidate_as_baseline(tmp_path):
    cand = write(tmp_path, "cand.json", make_doc())
    missing = str(tmp_path / "new-baseline.json")
    assert bench_gate.main(
        ["--baseline", missing, "--candidate", cand, "--seed"]
    ) == 0
    assert os.path.exists(missing)
    # The seeded file is immediately usable as a baseline.
    assert bench_gate.main(["--baseline", missing, "--candidate", cand]) == 0


def test_seed_refuses_malformed_candidate(tmp_path):
    bad = write(tmp_path, "bad.json", {"schema": 99})
    missing = str(tmp_path / "new-baseline.json")
    assert bench_gate.main(
        ["--baseline", missing, "--candidate", bad, "--seed"]
    ) == 2
    assert not os.path.exists(missing)


# -- schema drift: the gate must never pass vacuously -------------------------


def drift_cases():
    def wrong_schema(doc):
        doc["schema"] = 2

    def no_entries(doc):
        doc["entries"] = []

    def missing_ceiling(doc):
        del doc["entries"][-1]["np_sort_mb_s"]

    def zero_ceiling(doc):
        doc["entries"][-1]["np_sort_mb_s"] = 0.0

    def bool_mb_s(doc):
        doc["entries"][-1]["transports"]["pipe"]["phases"]["merge"] = True

    def no_transports(doc):
        doc["entries"][-1]["transports"] = {}

    def no_phases(doc):
        doc["entries"][-1]["transports"]["shm"]["phases"] = {}

    return [wrong_schema, no_entries, missing_ceiling, zero_ceiling,
            bool_mb_s, no_transports, no_phases]


@pytest.mark.parametrize("mutate", drift_cases(), ids=lambda f: f.__name__)
def test_malformed_candidate_is_drift_not_pass(tmp_path, baseline, mutate,
                                               capsys):
    doc = make_doc()
    mutate(doc)
    cand = write(tmp_path, "cand.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2
    assert "SCHEMA DRIFT" in capsys.readouterr().err


@pytest.mark.parametrize("mutate", drift_cases(), ids=lambda f: f.__name__)
def test_malformed_baseline_is_drift(tmp_path, mutate):
    doc = make_doc()
    mutate(doc)
    baseline = write(tmp_path, "baseline.json", doc)
    cand = write(tmp_path, "cand.json", make_doc())
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2


def test_candidate_missing_a_transport_is_drift(tmp_path, baseline, capsys):
    cand = write(tmp_path, "cand.json", make_doc(transports=("pipe", "tcp")))
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2
    assert "missing transport 'shm'" in capsys.readouterr().err


def test_candidate_missing_a_phase_is_drift(tmp_path, baseline, capsys):
    doc = make_doc()
    del doc["entries"][-1]["transports"]["pipe"]["phases"]["all_to_all"]
    cand = write(tmp_path, "cand.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2
    assert "missing phase 'all_to_all'" in capsys.readouterr().err


def test_sizing_mismatch_is_drift(tmp_path, baseline):
    other = dict(SIZING, data_mib=16.0)
    cand = write(tmp_path, "cand.json", make_doc(sizing=other))
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2


def test_not_json_is_drift(tmp_path, baseline):
    cand = tmp_path / "cand.json"
    cand.write_text("not json {")
    assert bench_gate.main(
        ["--baseline", baseline, "--candidate", str(cand)]
    ) == 2


def test_missing_candidate_file_is_an_error(tmp_path, baseline):
    missing = str(tmp_path / "nope.json")
    assert bench_gate.main(
        ["--baseline", baseline, "--candidate", missing]
    ) == 2


def test_candidate_required_without_check(baseline):
    assert bench_gate.main(["--baseline", baseline]) == 2


# -- --check mode and the committed artifact ----------------------------------


def test_check_mode_passes_healthy_file(baseline, capsys):
    assert bench_gate.main(["--baseline", baseline, "--check"]) == 0
    assert "invariants hold" in capsys.readouterr().out


def test_check_mode_fails_shm_speedup_invariant(tmp_path, capsys):
    doc = make_doc()
    e = doc["entries"][-1]["transports"]
    # shm a2a barely above pipe: zero-copy lost its edge -> invariant.
    e["shm"]["phases"]["all_to_all"] = e["pipe"]["phases"]["all_to_all"] * 1.1
    baseline = write(tmp_path, "baseline.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--check"]) == 1
    assert "INVARIANT FAILED" in capsys.readouterr().err


def test_check_mode_rejects_malformed_file(tmp_path):
    baseline = write(tmp_path, "baseline.json", {"schema": 1, "entries": []})
    assert bench_gate.main(["--baseline", baseline, "--check"]) == 2


def test_committed_trajectory_is_healthy():
    """The file committed in this repo must itself pass the gate's check.

    This is the acceptance bar made executable: schema-valid, the shm
    all-to-all at least 1.5x the pipe all-to-all on the machine that
    produced the committed canonical entry, and the bake-off recorded —
    a canonical and a striped entry must both be present, with the
    striped entry's measured exchange volume showing the amplification
    (run-formation wire == N, merge wire >= 2N, empty all-to-all slot).
    """
    committed = os.path.join(
        os.path.dirname(_GATE_PATH), "..", "benchmarks", "BENCH_native.json"
    )
    assert os.path.exists(committed), "benchmarks/BENCH_native.json not committed"
    doc = bench_gate.load_trajectory(committed)
    algos = bench_gate.algos_present(doc)
    assert "canonical" in algos and "striped" in algos
    for algo in algos:
        entry = bench_gate.latest_entry(doc, algo)
        assert bench_gate.check_invariants(entry) == [], algo
    sizing = doc["sizing"]
    assert sizing["n_workers"] == 4 and sizing["data_mib"] == 8.0
    n_mib = sizing["n_workers"] * sizing["data_mib"]
    striped = bench_gate.latest_entry(doc, "striped")
    for t, tdoc in striped["transports"].items():
        wire = tdoc["wire_volume_mib"]
        assert abs(wire["run_formation"] - n_mib) < 1e-6, t
        assert wire["merge"] >= 2 * n_mib, t
        assert wire["all_to_all"] == 0.0, t


# -- per-backend (algo-tagged) entries ----------------------------------------


def tag_algo(doc, algo):
    """Tag every entry of ``doc`` with a backend name, in place."""
    for entry in doc["entries"]:
        entry["algo"] = algo
    return doc


def make_bakeoff_doc(scale=1.0):
    """A trajectory holding one untagged entry plus a striped entry.

    The untagged entry is the pre-bake-off history: the gate must treat
    its missing ``algo`` field as ``"canonical"``.
    """
    doc = make_doc(scale=scale)
    striped = json.loads(json.dumps(doc["entries"][0]))
    striped["algo"] = "striped"
    # Striped's planning-only phases move no disk bytes and are not
    # recorded (nothing to gate there).
    for t in striped["transports"].values():
        del t["phases"]["selection"]
        del t["phases"]["all_to_all"]
    doc["entries"].append(striped)
    return doc


def test_missing_algo_field_means_canonical():
    """Entries predating the algo tag are canonical — pinned behavior."""
    assert bench_gate.entry_algo({}) == "canonical"
    assert bench_gate.entry_algo({"algo": "striped"}) == "striped"
    doc = make_bakeoff_doc()
    assert bench_gate.algos_present(doc) == ["canonical", "striped"]
    assert bench_gate.latest_entry(doc, "canonical") is doc["entries"][0]
    assert bench_gate.latest_entry(doc, "striped") is doc["entries"][1]
    assert bench_gate.latest_entry(doc, "guidesort") is None


def test_bakeoff_candidate_gates_per_backend(tmp_path):
    baseline = write(tmp_path, "baseline.json", make_bakeoff_doc())
    cand = write(tmp_path, "cand.json", make_bakeoff_doc(scale=0.5))
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0


def test_regression_in_one_backend_fails(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", make_bakeoff_doc())
    doc = make_bakeoff_doc()
    doc["entries"][1]["transports"]["pipe"]["phases"]["merge"] *= 0.5
    cand = write(tmp_path, "cand.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 1
    assert "pipe/merge" in capsys.readouterr().err


def test_candidate_missing_a_backend_is_drift(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", make_bakeoff_doc())
    cand = write(tmp_path, "cand.json", make_doc())  # canonical only
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2
    assert "missing backend 'striped'" in capsys.readouterr().err


def test_new_backend_in_candidate_only_passes(tmp_path):
    # A backend the baseline has never seen gains its baseline when the
    # candidate file is committed; it must not fail the gate today.
    baseline = write(tmp_path, "baseline.json", make_doc())
    cand = write(tmp_path, "cand.json", make_bakeoff_doc())
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0


def test_check_gates_every_backend(tmp_path, capsys):
    # An invariant violation in the *canonical* entry fails --check even
    # when a later striped entry is the file's newest.
    doc = make_bakeoff_doc()
    e = doc["entries"][0]["transports"]
    e["shm"]["phases"]["all_to_all"] = e["pipe"]["phases"]["all_to_all"] * 1.1
    baseline = write(tmp_path, "baseline.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--check"]) == 1
    assert "INVARIANT FAILED" in capsys.readouterr().err


def test_shm_invariant_skipped_for_noncanonical():
    # A striped entry with a slow shm all-to-all is not an invariant
    # breach: its all-to-all slot is empty by design.
    doc = make_doc()
    tag_algo(doc, "striped")
    e = doc["entries"][0]["transports"]
    e["shm"]["phases"]["all_to_all"] = e["pipe"]["phases"]["all_to_all"] * 0.5
    assert bench_gate.check_invariants(doc["entries"][0]) == []


# -- workload-tagged variants (duplicate-heavy striped entries) ---------------


def tag_workload(doc, workload):
    """Tag every entry of ``doc`` with a workload name, in place."""
    for entry in doc["entries"]:
        entry["workload"] = workload
    return doc


def make_variant_doc(scale=1.0):
    """A bake-off doc plus a duplicate-heavy striped entry."""
    doc = make_bakeoff_doc(scale=scale)
    dup = json.loads(json.dumps(doc["entries"][-1]))
    dup["workload"] = "dup"
    # Skewed keys resend more: the dup entry is legitimately slower.
    for t in dup["transports"].values():
        for p in t["phases"]:
            t["phases"][p] *= 0.6
        t["sort_mb_s"] *= 0.6
    doc["entries"].append(dup)
    return doc


def test_missing_workload_field_means_random():
    """Entries predating the workload tag are uniform random — pinned."""
    assert bench_gate.entry_workload({}) == "random"
    assert bench_gate.entry_workload({"workload": "dup"}) == "dup"
    doc = make_variant_doc()
    assert bench_gate.variants_present(doc) == [
        ("canonical", "random"), ("striped", "random"), ("striped", "dup"),
    ]
    assert (
        bench_gate.latest_entry(doc, "striped", "dup")
        is doc["entries"][2]
    )
    assert bench_gate.latest_entry(doc, "striped", "random") is (
        doc["entries"][1]
    )
    assert bench_gate.latest_entry(doc, "canonical", "dup") is None


def test_dup_entry_gated_against_dup_baseline_only(tmp_path):
    # The dup entry is 40% slower than random striped; keying per
    # (algo, workload) means that is *not* a regression.
    baseline = write(tmp_path, "baseline.json", make_variant_doc())
    cand = write(tmp_path, "cand.json", make_variant_doc())
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 0


def test_dup_regression_fails_without_touching_random(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", make_variant_doc())
    doc = make_variant_doc()
    doc["entries"][2]["transports"]["pipe"]["phases"]["merge"] *= 0.5
    cand = write(tmp_path, "cand.json", doc)
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 1
    assert "pipe/merge" in capsys.readouterr().err


def test_candidate_missing_dup_variant_is_drift(tmp_path, capsys):
    baseline = write(tmp_path, "baseline.json", make_variant_doc())
    cand = write(tmp_path, "cand.json", make_bakeoff_doc())  # no dup
    assert bench_gate.main(["--baseline", baseline, "--candidate", cand]) == 2
    assert "workload 'dup'" in capsys.readouterr().err


def test_shm_invariant_skipped_for_dup_workload():
    # A canonical dup entry (if one ever lands) is exempt from the
    # random-workload shm speedup invariant.
    doc = make_doc()
    tag_workload(doc, "dup")
    e = doc["entries"][0]["transports"]
    e["shm"]["phases"]["all_to_all"] = e["pipe"]["phases"]["all_to_all"] * 0.5
    assert bench_gate.check_invariants(doc["entries"][0]) == []


# -- the ablation file gate ---------------------------------------------------


ABL_CONTEXT = {
    "n_workers": 2, "data_mib": 2.0, "memory_mib": 1.0,
    "block_kib": 32.0, "seed": 12345, "transport": "pipe",
    "algo": "canonical", "records": "fixed16",
}


def make_ablation_doc():
    """A schema-1 ablation doc whose ranking matches its runs."""
    runs = {
        "aaaaaaaaaaaa": {
            "ok": True, "sort_mb_s": 10.0, "phases": {"merge": 10.0},
            "knob": None, "value": None, "settings": dict(ABL_CONTEXT),
        },
        "bbbbbbbbbbbb": {
            "ok": True, "sort_mb_s": 12.0, "phases": {"merge": 12.0},
            "knob": "pending_sends", "value": 16,
            "settings": dict(ABL_CONTEXT, pending_sends=16),
        },
        "cccccccccccc": {
            "ok": True, "sort_mb_s": 9.0, "phases": {"merge": 9.0},
            "knob": "pending_sends", "value": 1,
            "settings": dict(ABL_CONTEXT, pending_sends=1),
        },
    }
    ranking = [{
        "knob": "pending_sends", "importance": 0.2,
        "baseline_value": 4, "best_value": 16, "best_gain": 0.2,
    }]
    return {
        "schema": 1,
        "sweeps": [
            {"context": dict(ABL_CONTEXT), "runs": runs,
             "ranking": ranking},
        ],
    }


def test_ablations_valid_file_passes(tmp_path, capsys):
    path = write(tmp_path, "abl.json", make_ablation_doc())
    assert bench_gate.main(["--ablations", path]) == 0
    assert "rankings agree" in capsys.readouterr().out


def test_ablations_missing_file_exit_4(tmp_path, capsys):
    assert bench_gate.main(["--ablations", str(tmp_path / "no.json")]) == 4
    assert "tune run --quick" in capsys.readouterr().err


def test_ablations_schema_drift_exit_2(tmp_path, capsys):
    for mutate in (
        lambda d: d.update(schema=99),
        lambda d: d["sweeps"][0]["context"].pop("transport"),
        lambda d: d["sweeps"][0]["runs"].update(
            short={"ok": True, "sort_mb_s": 1.0, "phases": {"m": 1.0},
                   "settings": {}}
        ),
        lambda d: d["sweeps"][0]["runs"]["aaaaaaaaaaaa"].update(
            sort_mb_s=0.0
        ),
        lambda d: d["sweeps"][0]["runs"]["aaaaaaaaaaaa"].update(ok=False),
    ):
        doc = make_ablation_doc()
        mutate(doc)
        path = write(tmp_path, "drift.json", doc)
        assert bench_gate.main(["--ablations", path]) == 2, mutate
        assert "SCHEMA DRIFT" in capsys.readouterr().err


def test_ablations_stale_ranking_exit_1(tmp_path, capsys):
    doc = make_ablation_doc()
    doc["sweeps"][0]["ranking"][0]["importance"] = 0.9  # runs say 0.2
    path = write(tmp_path, "stale.json", doc)
    assert bench_gate.main(["--ablations", path]) == 1
    assert "disagrees with its runs" in capsys.readouterr().err


def test_ablations_unsorted_ranking_exit_1(tmp_path, capsys):
    doc = make_ablation_doc()
    runs = doc["sweeps"][0]["runs"]
    runs["dddddddddddd"] = {
        "ok": True, "sort_mb_s": 10.5, "phases": {"merge": 10.5},
        "knob": "block_kib", "value": 16.0,
        "settings": dict(ABL_CONTEXT, block_kib=16.0),
    }
    doc["sweeps"][0]["ranking"] = [
        {"knob": "block_kib", "importance": 0.05, "baseline_value": 32.0,
         "best_value": 16.0, "best_gain": 0.05},
        {"knob": "pending_sends", "importance": 0.2, "baseline_value": 4,
         "best_value": 16, "best_gain": 0.2},
    ]
    path = write(tmp_path, "unsorted.json", doc)
    assert bench_gate.main(["--ablations", path]) == 1
    assert "not sorted by importance" in capsys.readouterr().err


def test_ablations_ranked_knob_without_runs_exit_1(tmp_path, capsys):
    doc = make_ablation_doc()
    doc["sweeps"][0]["ranking"].append({
        "knob": "ghost", "importance": 0.1, "baseline_value": 0,
        "best_value": 1, "best_gain": 0.1,
    })
    path = write(tmp_path, "ghost.json", doc)
    assert bench_gate.main(["--ablations", path]) == 1
    assert "has no runs" in capsys.readouterr().err


def test_ablations_combines_with_check(tmp_path, baseline, capsys):
    path = write(tmp_path, "abl.json", make_ablation_doc())
    assert bench_gate.main(
        ["--baseline", baseline, "--check", "--ablations", path]
    ) == 0
    out = capsys.readouterr().out
    assert "ablation gate" in out and "bench gate --check" in out


def test_committed_ablation_file_passes_the_gate():
    """The repo's own BENCH_ablations.json must satisfy its gate."""
    committed = os.path.normpath(bench_gate.DEFAULT_ABLATIONS)
    assert os.path.exists(committed), "commit benchmarks/BENCH_ablations.json"
    assert bench_gate.main(["--ablations", committed]) == 0
