"""Tier-1 conformance: the pruned differential matrix, every commit.

Each case runs the identical corpus input through the native backend
(real processes and files) and the simulator, asserting both reproduce
the ``np.sort`` oracle byte-identically with exact canonical balance,
matching valsort checksums and per-phase conservation.  The full
entry × sizing matrix runs nightly (``pytest -m conformance``, see
tests/test_conformance_full.py); this file must stay fast.
"""

import pytest

from repro.testing import differential

QUICK = differential.quick_specs(seed=42)


@pytest.mark.parametrize(
    "spec", QUICK, ids=[s.to_token() for s in QUICK]
)
def test_quick_matrix_case(spec, tmp_path):
    for result in differential.run_case(spec, workdir=str(tmp_path / "spill")):
        assert result.ok, (
            f"[{result.backend}] {spec.to_token()} diverged:\n  "
            + "\n  ".join(result.divergences)
            + f"\nreplay: {spec.replay_command()}"
        )


# Pipelined twins of a quick-matrix slice: read-ahead + write-behind on,
# same oracle byte-comparison — the pipeline must be bitwise-invisible.
# (The full pipelined matrix runs nightly via `conformance --pipelined`.)
PIPE_QUICK = differential.pipelined_variants(QUICK[:3])


@pytest.mark.parametrize(
    "spec", PIPE_QUICK, ids=[s.to_token() for s in PIPE_QUICK]
)
def test_quick_matrix_pipelined_twin(spec, tmp_path):
    assert spec.pipelined and spec.backends == ("native",)
    for result in differential.run_case(spec, workdir=str(tmp_path / "spill")):
        assert result.ok, (
            f"[{result.backend}] {spec.to_token()} diverged:\n  "
            + "\n  ".join(result.divergences)
            + f"\nreplay: {spec.replay_command()}"
        )


def test_pipelined_output_matches_synchronous(tmp_path):
    spec = differential.CaseSpec(
        "uniform", "base", n_workers=2, seed=7, backends=("native",)
    )
    (sync,) = differential.run_case(spec, workdir=str(tmp_path / "a"))
    (pipe,) = differential.run_case(
        differential.pipelined_variants([spec])[0],
        workdir=str(tmp_path / "b"),
    )
    # Both byte-checked against the same oracle (so transitively
    # byte-identical to each other) and checksum-equal directly.
    assert sync.ok, sync.divergences
    assert pipe.ok, pipe.divergences
    assert sync.checksum == pipe.checksum


def test_pipelined_token_round_trips():
    spec = differential.CaseSpec(
        "uniform", "base", n_workers=2, seed=5,
        backends=("native",), pipelined=True,
    )
    token = spec.to_token()
    assert token.endswith(":pipe")
    assert differential.CaseSpec.from_token(token) == spec


# String twins of a quick-matrix slice: the same corpus keys mapped
# through an order-preserving u64-to-string embedding, sorted as
# variable-length records against an independent decoded sorted()
# oracle.  The twins cycle through the string families, so tier-1
# exercises the synthetic hex map AND the real-workload URL / log-line
# corpora.  (Every matrix case gets a string twin nightly via
# `conformance --strings`.)
STR_QUICK = differential.string_variants(QUICK[:3])


def test_string_twins_cover_every_family():
    assert [s.string_family for s in STR_QUICK] == ["hex", "url", "log"]


@pytest.mark.parametrize(
    "spec", STR_QUICK, ids=[s.to_token() for s in STR_QUICK]
)
def test_quick_matrix_string_twin(spec, tmp_path):
    assert spec.records == "string" and spec.backends == ("native",)
    for result in differential.run_case(spec, workdir=str(tmp_path / "spill")):
        assert result.ok, (
            f"[{result.backend}] {spec.to_token()} diverged:\n  "
            + "\n  ".join(result.divergences)
            + f"\nreplay: {spec.replay_command()}"
        )


def test_string_token_round_trips():
    spec = differential.CaseSpec(
        "uniform", "base", n_workers=2, seed=5,
        backends=("native",), records="string",
    )
    token = spec.to_token()
    assert token.endswith(":str")
    assert differential.CaseSpec.from_token(token) == spec


def test_string_family_token_round_trips():
    for family in ("url", "log"):
        spec = differential.CaseSpec(
            "uniform", "base", n_workers=2, seed=5,
            backends=("native",), records="string", string_family=family,
        )
        token = spec.to_token()
        assert token.endswith(f":str-{family}")
        assert differential.CaseSpec.from_token(token) == spec
    with pytest.raises(ValueError, match="unknown string family"):
        differential.CaseSpec.from_token(
            "uniform:base:p2:s5:rand:sampled:native:str-csv"
        )
    with pytest.raises(ValueError, match='requires records="string"'):
        differential.CaseSpec("uniform", "base", string_family="url")


def test_string_divergence_is_actually_detected(tmp_path, monkeypatch):
    """The string harness must not vacuously pass either: corrupt one
    output key behind the backend's back and the case must diverge."""
    from repro.native.driver import NativeSortResult

    real_records = NativeSortResult.output_records

    def corrupted(self, rank):
        from repro.native.records import VarlenBatch

        batch = real_records(self, rank)
        if rank == 0 and len(batch):
            keys = batch.keys()
            keys[0] = keys[0] + b"z"
            return VarlenBatch.build(keys, batch.payloads())
        return batch

    monkeypatch.setattr(NativeSortResult, "output_records", corrupted)
    spec = differential.CaseSpec(
        "uniform", "base", n_workers=2, seed=11,
        backends=("native",), records="string",
    )
    (result,) = differential.run_case(spec, workdir=str(tmp_path / "s"))
    assert not result.ok


def test_quick_matrix_is_tier1_sized():
    # The matrix the CLI and this file share: <= 8 corpus pairs, plus
    # fig6 (no-randomization) variants of the flagged entries only.
    from repro.testing import corpus

    assert len(corpus.quick_matrix()) <= 8
    assert len(QUICK) <= 12


def test_backends_agree_on_checksum(tmp_path):
    spec = differential.CaseSpec("gensort", "base", n_workers=2, seed=7)
    native, sim = differential.run_case(spec, workdir=str(tmp_path / "s"))
    assert native.ok and sim.ok
    assert native.checksum == sim.checksum


def test_single_worker_degenerate_case(tmp_path):
    spec = differential.CaseSpec("dup_all", "single_run", n_workers=1, seed=3)
    for result in differential.run_case(spec, workdir=str(tmp_path / "s")):
        assert result.ok, result.divergences


def test_conformance_cli_quick_exits_zero(capsys):
    from repro.__main__ import main

    assert main(["conformance", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "0 divergences" in out


def test_conformance_cli_replay_round_trips(capsys):
    from repro.__main__ import main

    token = "uniform:n64b8m96:p2:s5:rand:sampled"
    assert main(["conformance", "--replay", token]) == 0


def test_divergence_is_actually_detected(tmp_path, monkeypatch):
    """The harness must not vacuously pass: corrupt one output record
    behind the native backend's back and the case must diverge."""
    import numpy as np

    from repro.native.driver import NativeSortResult

    real_keys = NativeSortResult.output_keys

    def corrupted(self):
        out = real_keys(self)
        out[0] = out[0].copy()
        if len(out[0]):
            out[0][0] += np.uint64(1)
        return out

    monkeypatch.setattr(NativeSortResult, "output_keys", corrupted)
    spec = differential.CaseSpec(
        "uniform", "base", n_workers=2, seed=11, backends=("native",)
    )
    (result,) = differential.run_case(spec, workdir=str(tmp_path / "s"))
    assert not result.ok
    assert any("diverges from np.sort oracle" in d for d in result.divergences)
