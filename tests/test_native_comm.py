"""Unit tests for the native pipe-mesh interconnect.

The mesh is exercised in-process: one ``PipeComm`` per rank, each driven
by its own thread (pipes don't care whether their ends live in threads
or processes, and threads keep the tests fast and debuggable).
"""

import multiprocessing as mp
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.algos.multiway_selection import select_coroutine
from repro.native.comm import CommTimeout, PipeComm


def make_comms(n, timeout=30.0):
    conns = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            a, b = mp.Pipe(duplex=True)
            conns[i][j] = a
            conns[j][i] = b
    return [PipeComm(r, n, conns[r], timeout=timeout) for r in range(n)]


def run_all(comms, fn):
    """Run ``fn(comm)`` concurrently on every rank; return results in order."""
    with ThreadPoolExecutor(max_workers=len(comms)) as pool:
        futures = [pool.submit(fn, comm) for comm in comms]
        return [f.result(timeout=60) for f in futures]


def close_all(comms):
    for comm in comms:
        comm.close()
        for conn in comm.conns.values():
            conn.close()


def test_allgather_returns_rank_ordered_contributions():
    comms = make_comms(3)
    try:
        results = run_all(comms, lambda c: c.allgather(c.rank * 10))
        assert results == [[0, 10, 20]] * 3
    finally:
        close_all(comms)


def test_repeated_collectives_stay_in_step():
    comms = make_comms(3)
    try:
        def body(c):
            out = []
            for round_no in range(5):
                c.barrier()
                out.append(c.allgather((c.rank, round_no)))
            return out

        results = run_all(comms, body)
        for r in results:
            assert r == results[0]
    finally:
        close_all(comms)


def test_allreduce():
    comms = make_comms(4)
    try:
        sums = run_all(comms, lambda c: c.allreduce(c.rank + 1, lambda a, b: a + b))
        assert sums == [10, 10, 10, 10]
        maxes = run_all(comms, lambda c: c.allreduce(c.rank, max))
        assert maxes == [3, 3, 3, 3]
    finally:
        close_all(comms)


def test_exchange_delivers_every_chunk_once():
    comms = make_comms(3)
    try:
        def body(c):
            got = []

            def outgoing():
                for dest in range(c.n_workers):
                    for k in range(4):
                        yield dest, ("x", c.rank, k, bytes([dest, k]))

            c.exchange(outgoing(), lambda peer, m: got.append((peer, m[2], m[3])))
            return sorted(got)

        results = run_all(comms, body)
        for rank, got in enumerate(results):
            # 3 senders (incl. self) x 4 chunks each, payload tagged for me.
            assert len(got) == 12
            assert all(payload == bytes([rank, k]) for _s, k, payload in got)
            assert sorted({s for s, _k, _p in got}) == [0, 1, 2]
    finally:
        close_all(comms)


def test_exchange_bounds_pending_sends():
    """The producer is never advanced past the backpressure window."""
    from repro.native.comm import PENDING_SENDS

    comms = make_comms(2)
    try:
        def body(c):
            high_water = 0

            def outgoing():
                nonlocal high_water
                for k in range(50):
                    high_water = max(high_water, c.pending_sends())
                    yield 1 - c.rank, ("x", c.rank, k, b"\x00" * 64)

            c.exchange(outgoing(), lambda peer, m: None)
            return high_water

        marks = run_all(comms, body)
        assert all(m <= PENDING_SENDS for m in marks)
    finally:
        close_all(comms)


def test_selection_round_finds_global_quantile():
    """The probe service reproduces the known exact selection result."""
    rng = np.random.default_rng(3)
    n, per = 3, 40
    arrays = [np.sort(rng.integers(0, 10**6, per, dtype=np.uint64)) for _ in range(n)]
    merged = np.sort(np.concatenate(arrays))

    comms = make_comms(n)
    try:
        def body(c):
            lengths = [per] * n
            target = c.rank * (n * per) // n
            keys = arrays[c.rank]
            gen = select_coroutine(lengths, target)
            result = c.selection_round(
                gen,
                local_lookup=lambda pos: int(keys[pos]),
                owner_of=lambda seq: seq,
            )
            return result.positions

        results = run_all(comms, body)
        for rank, positions in enumerate(results):
            target = rank * (n * per) // n
            assert sum(positions) == target
            chosen = np.sort(
                np.concatenate(
                    [arrays[s][: positions[s]] for s in range(n)]
                    or [np.empty(0, np.uint64)]
                )
            )
            assert np.array_equal(chosen, merged[:target])
    finally:
        close_all(comms)


def test_recv_match_stashes_out_of_order_messages():
    comms = make_comms(2)
    try:
        def body(c):
            peer = 1 - c.rank
            c.post(peer, ("first", c.rank))
            c.post(peer, ("second", c.rank))
            # Consume in reverse arrival order: the stash holds "first".
            _p, second = c.recv_match(lambda p, m: m[0] == "second")
            _p, first = c.recv_match(lambda p, m: m[0] == "first")
            return first[0], second[0]

        assert run_all(comms, body) == [("first", "second")] * 2
    finally:
        close_all(comms)


def test_recv_match_times_out():
    comms = make_comms(2)
    try:
        with pytest.raises(CommTimeout):
            comms[0].recv_match(lambda p, m: True, timeout=0.1)
    finally:
        close_all(comms)


def test_flush_timeout_counts_pending_sends():
    """A peer that stops draining its pipe wedges the sender: flush must
    surface a CommTimeout naming how many messages are still queued, not
    block until the job-level timeout."""
    comms = make_comms(2)
    try:
        # 4 MiB messages overflow the OS pipe buffer, so the sender
        # thread blocks inside its first send and the rest stay queued.
        blob = b"\x00" * (4 << 20)
        n_msgs = 8
        for k in range(n_msgs):
            comms[0].post(1, ("x", k, blob))
        with pytest.raises(CommTimeout) as excinfo:
            comms[0].flush(timeout=0.3)
        message = str(excinfo.value)
        assert "flush timed out" in message
        assert f"{n_msgs} send(s) still pending" in message
        # Drain the peer so teardown's close() flushes quickly.
        for _ in range(n_msgs):
            comms[1].recv_match(lambda p, m: m[0] == "x", timeout=10.0)
    finally:
        close_all(comms)


def test_mesh_validation():
    a, b = mp.Pipe(duplex=True)
    try:
        with pytest.raises(ValueError):
            PipeComm(0, 3, {1: a})  # missing peer 2
    finally:
        a.close()
        b.close()
