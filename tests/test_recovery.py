"""Unit tests for the checkpoint/recovery subsystem's building blocks.

End-to-end survival (kill / sever / wedge a rank, resume, compare
bitwise) lives in test_recovery_native.py; this file pins down the
pieces in isolation: the job fingerprint, the fsynced rank journal and
its replay, the resume-state phase agreement, the epoch fence at the
framing and comm layers, the dial-deadline diagnostic, and the
blockstore primitives recovery leans on (size-idempotent preallocate,
per-block CRC verification).
"""

import json
import multiprocessing as mp
import os
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as dc_replace

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.native.blockstore import FileBlockStore
from repro.native.comm import PipeComm
from repro.native.comm_api import CommTimeout
from repro.native.job import NativeJob
from repro.native.records import RECORD_BYTES
from repro.net.framing import KIND_MSG, encode_frame, recv_frame, send_frame
from repro.net.rendezvous import connect_with_backoff
from repro.net.tcp import TcpComm
from repro.recovery.manifest import (
    CorruptManifest,
    ManifestMismatch,
    RankJournal,
    ResumeState,
    job_fingerprint,
)
from repro.recovery.supervisor import RestartPolicy


def make_job(tmp_path, **overrides):
    config = SortConfig(
        data_per_node_bytes=512 * RECORD_BYTES,
        memory_bytes=512 * RECORD_BYTES,
        block_bytes=16 * RECORD_BYTES,
        seed=7,
    )
    defaults = dict(config=config, n_workers=2, spill_dir=str(tmp_path))
    defaults.update(overrides)
    return NativeJob(**defaults)


# -- job fingerprint ----------------------------------------------------------


def test_fingerprint_is_stable_across_execution_knobs(tmp_path):
    base = make_job(tmp_path)
    fp = job_fingerprint(base)
    # Execution knobs change how the job runs, never what it computes:
    # a resume may legally alter any of them.
    for variant in (
        dc_replace(base, transport="tcp"),
        dc_replace(base, timeout=1.0),
        dc_replace(base, pending_sends=2),
        dc_replace(base, prefetch_blocks=2),
        dc_replace(base, max_restarts=3, epoch=1, suspect_ranks=(0,)),
        dc_replace(base, a2a_checkpoint_chunks=1),
    ):
        assert job_fingerprint(variant) == fp


def test_fingerprint_changes_with_the_computation(tmp_path):
    base = make_job(tmp_path)
    fp = job_fingerprint(base)
    assert job_fingerprint(dc_replace(base, skew=True)) != fp
    assert job_fingerprint(dc_replace(base, n_workers=3)) != fp
    other_seed = dc_replace(base, config=dc_replace(base.config, seed=8))
    assert job_fingerprint(other_seed) != fp


def test_fingerprint_tolerates_derived_sample_every(tmp_path):
    # config.sample_every defaults to None (derived: one per block); the
    # fingerprint must use the derived value, not crash on None.
    job = make_job(tmp_path)
    assert job.config.sample_every is None
    assert len(job_fingerprint(job)) == 16


# -- rank journal -------------------------------------------------------------


def journal_for(tmp_path, fingerprint="f" * 16, rank=0):
    path = os.path.join(str(tmp_path), f"manifest_{rank}.jsonl")
    return RankJournal(path, fingerprint, rank)


def test_journal_roundtrip_restores_every_phase(tmp_path):
    j = journal_for(tmp_path)
    j.begin_epoch(0)
    j.generate_done()
    j.rf_run_done(0, 64, [1, 2], 16, [111, 222], 42)
    j.rf_done(
        [{"run": 0, "n": 64, "samples": [1, 2], "every": 16,
          "crcs": [111, 222], "checksum": 42}],
        checksum=42,
    )
    j.selection_done([[10, 20], [30, 40]])
    j.a2a_mark({(0, 1): 3}, {(0, 0): 99})
    j.a2a_done([64, 64], [[5, 6], [7, 8]])
    j.merge_mark(32)
    j.merge_done({"rank": 0, "path": "out", "n_records": 128, "first_key": 1,
                  "last_key": 9, "checksum": 7, "sorted_ok": True})
    j.close()

    state = j.load_resume()
    assert state.completed_index == 4
    assert state.generate_done and state.rf_done
    assert state.rf_runs[0]["crcs"] == [111, 222]
    assert state.selection_splits == [[10, 20], [30, 40]]
    assert state.a2a_marks == {(0, 1): 3}
    assert state.a2a_first_keys == {(0, 0): 99}
    assert state.a2a_seg_len == [64, 64]
    assert state.a2a_block_first_keys == [[5, 6], [7, 8]]
    assert state.merge_records_out == 32
    assert state.merge_meta["n_records"] == 128


def test_journal_merge_meta_preserves_none_keys(tmp_path):
    # An empty output partition has no first/last key; None must survive
    # the JSON roundtrip as None, not become 0.
    j = journal_for(tmp_path)
    j.begin_epoch(0)
    j.merge_done({"rank": 0, "path": "out", "n_records": 0, "first_key": None,
                  "last_key": None, "checksum": 0, "sorted_ok": True})
    j.close()
    meta = j.load_resume().merge_meta
    assert meta["first_key"] is None and meta["last_key"] is None


def test_torn_final_line_is_tolerated(tmp_path):
    j = journal_for(tmp_path)
    j.begin_epoch(0)
    j.generate_done()
    j.close()
    # The process died mid-append: a half-written record with no newline.
    with open(j.path, "a") as handle:
        handle.write('{"t":"rf_done","checks')
    state = j.load_resume()
    assert state.generate_done
    assert not state.rf_done  # the torn record never happened


def test_corruption_before_the_final_line_raises(tmp_path):
    j = journal_for(tmp_path)
    j.begin_epoch(0)
    j.close()
    with open(j.path, "a") as handle:
        handle.write("NOT JSON\n")
        handle.write('{"t":"generate"}\n')
    with pytest.raises(CorruptManifest, match="line 2"):
        j.load_resume()


def test_foreign_fingerprint_is_refused(tmp_path):
    j = journal_for(tmp_path, fingerprint="a" * 16)
    j.begin_epoch(0)
    j.close()
    stale = journal_for(tmp_path, fingerprint="b" * 16)
    with pytest.raises(ManifestMismatch, match="refusing"):
        stale.load_resume()


def test_missing_manifest_resumes_as_none(tmp_path):
    assert journal_for(tmp_path).load_resume() is None


def test_epoch_zero_truncates_and_orphans_old_records(tmp_path):
    j = journal_for(tmp_path)
    j.begin_epoch(0)
    j.generate_done()
    j.close()
    # A fresh job (epoch 0) over the same spill path starts over.
    j2 = journal_for(tmp_path)
    j2.begin_epoch(0)
    j2.close()
    assert j2.load_resume().completed_index == -1


def test_epoch_zero_attempt_record_resets_replay_state():
    records = [
        {"t": "attempt", "fp": "x", "epoch": 0},
        {"t": "generate"},
        {"t": "attempt", "fp": "x", "epoch": 0},  # fresh job, same path
    ]
    assert not ResumeState.from_records(records).generate_done


def test_completed_index_progression():
    state = ResumeState()
    assert state.completed_index == -1
    state.generate_done = True
    assert state.completed_index == 0
    state.rf_done = True
    assert state.completed_index == 1
    state.selection_splits = [[1]]
    assert state.completed_index == 2
    state.a2a_seg_len = [4]
    assert state.completed_index == 3
    state.merge_meta = {"rank": 0}
    assert state.completed_index == 4


def test_contiguous_rf_runs_stops_at_the_first_gap():
    state = ResumeState()
    state.rf_runs = {0: {}, 1: {}, 3: {}}
    assert state.contiguous_rf_runs() == 2


def test_journal_records_are_fsynced_line_at_a_time(tmp_path):
    j = journal_for(tmp_path)
    j.begin_epoch(0)
    j.generate_done()
    # Visible to an independent reader *before* close: durability is
    # per-append, not per-session.
    lines = open(j.path).read().splitlines()
    assert [json.loads(ln)["t"] for ln in lines] == ["attempt", "generate"]
    j.close()


# -- restart policy -----------------------------------------------------------


def test_restart_policy_budget_and_suspects():
    policy = RestartPolicy(max_restarts=2)
    assert policy.record_failure(0, 1, "boom")  # restart 1: allowed
    assert policy.suspects() == (1,)
    assert policy.record_failure(1, 0, "boom again")  # restart 2: allowed
    assert policy.suspects() == (0,)
    assert not policy.record_failure(2, 0, "third strike")  # budget spent
    assert policy.restarts_used == 3
    events = policy.to_dicts()
    assert [e["epoch"] for e in events] == [0, 1, 2]


def test_restart_policy_zero_never_restarts():
    policy = RestartPolicy(max_restarts=0)
    assert not policy.record_failure(0, None, "dead")


# -- epoch fence: framing layer -----------------------------------------------


def test_frame_fence_byte_roundtrips():
    a, b = socket.socketpair()
    try:
        b.settimeout(5.0)
        a.sendall(encode_frame(KIND_MSG, ("chunk", 0, b"x"), fence=3))
        _kind, msg, _epoch, fence, _n = recv_frame(b)
        assert fence == 3
        assert msg[0] == "chunk"
        send_frame(a, KIND_MSG, ("chunk", 1, b"y"), fence=255)
        assert recv_frame(b)[3] == 255
    finally:
        a.close()
        b.close()


def test_frame_fence_wraps_modulo_256():
    # Epoch 256 and epoch 0 share a fence byte: the u8 wraps.  Fine in
    # practice (a job restarted 256 times has bigger problems), but the
    # encoder must not overflow the header field.
    frame = encode_frame(KIND_MSG, ("m",), fence=256 & 0xFF)
    assert isinstance(frame, (bytes, bytearray))


# -- epoch fence: comm layer --------------------------------------------------


def make_pipe_pair(epochs, timeout=30.0):
    a, b = mp.Pipe(duplex=True)
    return [
        PipeComm(0, 2, {1: a}, timeout=timeout, job_epoch=epochs[0]),
        PipeComm(1, 2, {0: b}, timeout=timeout, job_epoch=epochs[1]),
    ]


def make_tcp_pair(epochs, timeout=30.0):
    a, b = socket.socketpair()
    return [
        TcpComm(0, 2, {1: a}, timeout=timeout, job_epoch=epochs[0]),
        TcpComm(1, 2, {0: b}, timeout=timeout, job_epoch=epochs[1]),
    ]


PAIR_MAKERS = {"pipe": make_pipe_pair, "tcp": make_tcp_pair}


def run_pair(comms, fn0, fn1):
    with ThreadPoolExecutor(max_workers=2) as pool:
        f0 = pool.submit(fn0, comms[0])
        f1 = pool.submit(fn1, comms[1])
        return f0.result(timeout=60), f1.result(timeout=60)


@pytest.fixture(params=sorted(PAIR_MAKERS))
def fence_transport(request):
    return request.param


def test_stale_epoch_frames_are_dropped_not_delivered(fence_transport):
    """A frame from job epoch 0 never reaches a rank running epoch 1.

    This is the wedged-predecessor scenario: a pre-restart process still
    holds a socket and pushes stale traffic into the rebuilt mesh.  The
    receiver must drop (and count) it rather than let a dead epoch's
    bytes satisfy a live epoch's receive.
    """
    comms = PAIR_MAKERS[fence_transport]([0, 1], timeout=0.4)
    try:
        def stale_sender(c):
            c.post(1, ("ghost", 0, b"stale bytes"))
            return "sent"

        def live_receiver(c):
            with pytest.raises(CommTimeout):
                c.recv_match(lambda p, m: True)
            return int(getattr(c, "fenced_drops", 0))

        _sent, drops = run_pair(comms, stale_sender, live_receiver)
        assert drops >= 1
    finally:
        for c in comms:
            c.close()


def test_matching_epoch_frames_flow_normally(fence_transport):
    comms = PAIR_MAKERS[fence_transport]([1, 1], timeout=10.0)
    try:
        def sender(c):
            c.post(1, ("chunk", 0, b"live"))
            return "sent"

        def receiver(c):
            _peer, msg = c.recv_match(lambda p, m: m[0] == "chunk")
            return msg, int(getattr(c, "fenced_drops", 0))

        _sent, (msg, drops) = run_pair(comms, sender, receiver)
        assert bytes(msg[2]) == b"live"
        assert drops == 0
    finally:
        for c in comms:
            c.close()


# -- dial deadline ------------------------------------------------------------


def test_dial_deadline_names_the_coordinator_and_address():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()  # nothing ever listens here
    with pytest.raises(CommTimeout) as info:
        connect_with_backoff(
            ("127.0.0.1", port), time.monotonic() + 0.3, what="coordinator"
        )
    text = str(info.value)
    assert "coordinator" in text
    assert f"127.0.0.1:{port}" in text
    assert "last error" in text  # the final OS error rides along


# -- blockstore primitives ----------------------------------------------------


def test_preallocate_is_idempotent_on_size(tmp_path):
    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    path = os.path.join(str(tmp_path), "seg.dat")
    store.preallocate(path, 8)
    payload = bytes(range(64))
    with open(path, "r+b") as handle:
        handle.write(payload)
    # Same size: the delivered bytes survive (a resumed all-to-all must
    # keep pre-restart chunks).
    store.preallocate(path, 8)
    assert open(path, "rb").read(64) == payload
    # Different size: the file is re-created empty.
    store.preallocate(path, 16)
    assert os.path.getsize(path) == 16 * RECORD_BYTES
    assert open(path, "rb").read(64) == b"\x00" * 64


def test_verify_block_crcs_flags_only_damaged_blocks(tmp_path):
    import zlib

    store = FileBlockStore(str(tmp_path), rank=0, block_records=4)
    path = os.path.join(str(tmp_path), "piece.dat")
    rng = np.random.default_rng(3)
    records = np.zeros(12, dtype=np.dtype([("key", "<u8"), ("payload", "V8")]))
    records["key"] = rng.integers(0, 2**63, size=12, dtype=np.int64)
    store.write_file(path, records, tag="test")
    blocks = [records[i : i + 4] for i in range(0, 12, 4)]
    crcs = [
        zlib.crc32(memoryview(np.ascontiguousarray(b)).cast("B"))
        for b in blocks
    ]
    assert store.verify_block_crcs(path, crcs) == []
    # Damage one byte inside block 1.
    with open(path, "r+b") as handle:
        handle.seek(4 * RECORD_BYTES + 3)
        byte = handle.read(1)
        handle.seek(4 * RECORD_BYTES + 3)
        handle.write(bytes([byte[0] ^ 0xFF]))
    assert store.verify_block_crcs(path, crcs) == [1]
