"""Sanity of the performance model: more resources never hurt.

These tests pin the cost model against inversions a refactor could
introduce: a machine with more disks, faster disks, a faster network or
more memory must never sort the same data slower (holding the random
seeds fixed and disabling the per-disk bandwidth jitter so comparisons
are exact).
"""

import pytest

from repro import CanonicalMergeSort, Cluster, MiB, PAPER_MACHINE
from repro.workloads import generate_input
from tests.helpers import small_config

#: Jitter-free machine so resource comparisons are deterministic.
BASE = PAPER_MACHINE.with_overrides(disk_bandwidth_spread=0.0)


def total_time(spec, **config_overrides):
    cfg = small_config(**config_overrides)
    cluster = Cluster(4, spec=spec)
    em, inputs = generate_input(cluster, cfg, "random")
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    return result.stats.total_time


def test_more_disks_never_slower():
    slow = total_time(BASE.with_overrides(disks_per_node=2))
    fast = total_time(BASE.with_overrides(disks_per_node=8))
    assert fast < slow


def test_faster_disks_never_slower():
    slow = total_time(BASE.with_overrides(disk_bandwidth=40 * MiB))
    fast = total_time(BASE.with_overrides(disk_bandwidth=120 * MiB))
    assert fast < slow


def test_faster_network_never_slower():
    slow = total_time(
        BASE.with_overrides(net_p2p_bandwidth=2e8, net_min_bandwidth=2e8)
    )
    fast = total_time(
        BASE.with_overrides(net_p2p_bandwidth=4e9, net_min_bandwidth=4e9)
    )
    assert fast <= slow


def test_more_memory_means_fewer_runs_and_less_time():
    slow = total_time(BASE, memory_bytes=8 * MiB)   # R = 6
    fast = total_time(BASE, memory_bytes=24 * MiB)  # R = 2
    assert fast < slow


def test_more_cores_never_slower():
    slow = total_time(BASE.with_overrides(cores_per_node=1))
    fast = total_time(BASE.with_overrides(cores_per_node=16))
    assert fast <= slow


def test_seek_time_zero_never_slower():
    slow = total_time(BASE.with_overrides(disk_seek_time=0.05))
    fast = total_time(BASE.with_overrides(disk_seek_time=0.0))
    assert fast < slow


def test_io_time_bounded_by_wall_time():
    cfg = small_config()
    cluster = Cluster(3, spec=BASE)
    em, inputs = generate_input(cluster, cfg, "random")
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    for rank in range(3):
        for phase in result.stats.phases:
            stat = result.stats.per_node[rank][phase]
            # The busiest disk of a phase cannot be busy longer than the
            # phase ran (plus async writes draining into the next phase).
            assert stat.io <= result.stats.total_time + 1e-9
