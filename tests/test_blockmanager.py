"""Tests for the per-node block store and remote reads."""

import numpy as np
import pytest

from repro.cluster import Cluster, MiB
from repro.em import BID, BlockStore, ExternalMemory
from repro.sim import SimulationError


def make_store(n_nodes=1, block_bytes=1 * MiB, block_elems=8):
    cluster = Cluster(n_nodes)
    em = ExternalMemory(cluster, block_bytes, block_elems)
    return cluster, em


def test_allocation_round_robins_disks():
    cluster, em = make_store()
    store = em.store(0)
    bids = [store.allocate() for _ in range(8)]
    assert [b.disk for b in bids] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert all(b.node == 0 for b in bids)


def test_explicit_disk_allocation():
    _cluster, em = make_store()
    store = em.store(0)
    bid = store.allocate(disk=2)
    assert bid.disk == 2
    with pytest.raises(ValueError):
        store.allocate(disk=9)


def test_free_reuses_slots_in_place():
    _cluster, em = make_store()
    store = em.store(0)
    a = store.allocate(disk=0)
    store.free(a)
    b = store.allocate(disk=0)
    assert b.slot == a.slot  # in-place slot reuse
    assert store.peak_blocks == 1


def test_peak_blocks_high_water_mark():
    _cluster, em = make_store()
    store = em.store(0)
    bids = [store.allocate() for _ in range(5)]
    for bid in bids:
        store.free(bid)
    store.allocate()
    assert store.peak_blocks == 5
    assert store.blocks_in_use == 1


def test_write_read_roundtrip():
    cluster, em = make_store()
    store = em.store(0)
    keys = np.arange(8, dtype=np.uint64)
    bid = store.allocate()

    def body():
        yield store.write(bid, keys, tag="t")
        got = yield store.read(bid, tag="t")
        return got

    got = cluster.sim.run_process(body())
    assert np.array_equal(got, keys)


def test_write_charges_full_block_even_partial():
    cluster, em = make_store(block_bytes=1 * MiB, block_elems=8)
    store = em.store(0)
    bid = store.allocate()

    def body():
        yield store.write(bid, np.arange(2, dtype=np.uint64))

    cluster.sim.run_process(body())
    assert cluster.nodes[0].bytes_written == 1 * MiB  # not 2/8 of it


def test_oversized_write_rejected():
    _cluster, em = make_store(block_elems=4)
    store = em.store(0)
    bid = store.allocate()
    with pytest.raises(ValueError):
        store.write(bid, np.arange(5, dtype=np.uint64))


def test_read_unwritten_block_rejected():
    _cluster, em = make_store()
    store = em.store(0)
    bid = store.allocate()
    with pytest.raises(SimulationError):
        store.read(bid)


def test_double_free_rejected():
    _cluster, em = make_store()
    store = em.store(0)
    bid = store.allocate()
    store.free(bid)
    with pytest.raises(SimulationError):
        store.free(bid)


def test_foreign_block_rejected():
    _cluster, em = make_store(n_nodes=2)
    foreign = BID(node=1, disk=0, slot=0)
    with pytest.raises(SimulationError):
        em.store(0).read(foreign)


def test_store_without_io_charges_nothing():
    cluster, em = make_store()
    store = em.store(0)
    bid = store.allocate()
    store.store_without_io(bid, np.arange(4, dtype=np.uint64))
    assert cluster.nodes[0].bytes_written == 0.0
    assert np.array_equal(store.peek(bid), np.arange(4, dtype=np.uint64))


def test_remote_read_charges_network():
    cluster, em = make_store(n_nodes=2)
    owner = em.store(1)
    bid = owner.allocate()
    owner.store_without_io(bid, np.arange(4, dtype=np.uint64))

    def body():
        got = yield from em.read_block(0, bid, tag="sel")
        return got

    got = cluster.sim.run_process(body())
    assert np.array_equal(got, np.arange(4, dtype=np.uint64))
    assert cluster.fabric.bytes_sent == 1 * MiB
    assert cluster.nodes[1].bytes_read == 1 * MiB  # owner's disk did the read


def test_local_read_skips_network():
    cluster, em = make_store(n_nodes=2)
    store = em.store(0)
    bid = store.allocate()
    store.store_without_io(bid, np.arange(4, dtype=np.uint64))

    def body():
        yield from em.read_block(0, bid)

    cluster.sim.run_process(body())
    assert cluster.fabric.bytes_sent == 0.0


def test_bid_offset_and_str():
    bid = BID(node=1, disk=2, slot=3)
    assert bid.offset_bytes(1024) == 3 * 1024
    assert str(bid) == "b1.2.3"


def test_invalid_store_params_rejected():
    cluster = Cluster(1)
    with pytest.raises(ValueError):
        BlockStore(cluster.nodes[0], block_bytes=1024, block_elems=0)
    with pytest.raises(ValueError):
        BlockStore(cluster.nodes[0], block_bytes=0, block_elems=4)


def test_total_blocks_in_use_across_nodes():
    _cluster, em = make_store(n_nodes=3)
    for n in range(3):
        em.store(n).allocate()
    assert em.total_blocks_in_use == 3
