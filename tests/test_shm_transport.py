"""End-to-end native sorts over the shared-memory transport.

The same phases, workers, and files as test_native_sort.py, but the
interconnect is a mesh of shared-memory SPSC rings — the zero-copy
single-host transport.  Beyond correctness, these tests pin down the
transport's two lifecycle guarantees: the output is bitwise identical
to the pipe transport's, and no run (clean or killed) leaves a segment
behind in /dev/shm.
"""

import json

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.native import native_sort
from repro.native.shm import list_shm_segments
from repro.testing.chaos import ChaosSpec, run_chaos_case

KiB = 1024
RECORD_BYTES = 16


def native_config(**overrides):
    base = dict(
        data_per_node_bytes=64 * KiB,    # 4096 records / worker
        memory_bytes=24 * KiB,
        block_bytes=1 * KiB,
        seed=42,
    )
    base.update(overrides)
    return SortConfig(**base)


def run_shm_sort(tmp_path, n_workers=3, skew=False, **overrides):
    return native_sort(
        native_config(**overrides),
        n_workers=n_workers,
        spill_dir=str(tmp_path),
        timeout=120,
        skew=skew,
        transport="shm",
    )


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this file must leave /dev/shm exactly as it found it."""
    before = set(list_shm_segments())
    yield
    leaked = set(list_shm_segments()) - before
    assert not leaked, f"leaked shm segments: {sorted(leaked)}"


def test_shm_sort_is_correct_and_bitwise_matches_pipe(tmp_path):
    shm = run_shm_sort(tmp_path / "shm", n_workers=3)
    assert shm.validate().ok, shm.validate().issues
    pipe = native_sort(
        native_config(),
        n_workers=3,
        spill_dir=str(tmp_path / "pipe"),
        timeout=120,
        transport="pipe",
    )
    # The transport must be bitwise-invisible in the output.
    assert [m.checksum for m in shm.outputs] == [m.checksum for m in pipe.outputs]
    assert np.array_equal(
        np.concatenate(shm.output_keys()), np.concatenate(pipe.output_keys())
    )


def test_shm_all_to_all_wire_volume_meets_the_paper_bound(tmp_path):
    """Balanced input: all-to-all moves exactly N record bytes (wire+local)."""
    result = run_shm_sort(tmp_path, n_workers=3)
    stats = result.stats
    n_bytes = result.job.total_records * RECORD_BYTES
    assert stats.wire_volume("all_to_all") == n_bytes


def test_shm_sort_two_workers_skew(tmp_path):
    result = run_shm_sort(tmp_path, n_workers=2, skew=True)
    assert result.validate().ok, result.validate().issues


def test_chaos_kill_over_shm_fails_fast_and_unlinks(tmp_path):
    """A killed PE fails the job fast — and the driver still unlinks
    every ring segment (the /dev/shm leak check is the autouse fixture)."""
    verdict = run_chaos_case(
        ChaosSpec(rank=0, kill_at="before:all_to_all"),
        str(tmp_path / "spill"),
        transport="shm",
    )
    assert verdict["ok"], verdict


def test_chaos_wedge_over_shm_fails_fast(tmp_path):
    verdict = run_chaos_case(
        ChaosSpec(rank=0, wedge_comm_at="before:all_to_all"),
        str(tmp_path / "spill"),
        job_timeout=3.0,
        transport="shm",
    )
    assert verdict["ok"], verdict


def test_cli_shm_json_is_valid(tmp_path, capsys):
    from repro.__main__ import main

    code = main([
        "--backend", "native", "--nodes", "2",
        "--spill-dir", str(tmp_path), "--json",
        "--transport", "shm",
        "--data-mib", "0.125", "--memory-mib", "0.046875",
        "--block-mib", "0.001953125",
    ])
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(out)
    assert report["backend"] == "native"
    assert report["validation"]["ok"] is True
    n_bytes = 2 * int(0.125 * 1024 * 1024)
    assert report["phases"]["all_to_all"]["wire_volume"] == n_bytes

# ---------------------------------------------------- ring-capacity knob


def test_ring_capacity_is_tunable_and_bitwise_invisible(tmp_path):
    """A 1 KiB ring (smaller than most messages) still sorts correctly:
    the producer streams oversized messages through in pieces, so the
    capacity knob can be swept freely by the ablation driver."""
    tiny = native_sort(
        native_config(),
        n_workers=2,
        spill_dir=str(tmp_path / "tiny"),
        timeout=120,
        transport="shm",
        shm_ring_kib=1,
    )
    assert tiny.validate().ok, tiny.validate().issues
    default = native_sort(
        native_config(),
        n_workers=2,
        spill_dir=str(tmp_path / "default"),
        timeout=120,
        transport="shm",
    )
    assert [m.checksum for m in tiny.outputs] == [
        m.checksum for m in default.outputs
    ]


def test_ring_capacity_validation():
    from repro.core.config import ConfigError
    from repro.native.job import NativeJob
    from repro.native.shm import DEFAULT_RING_BYTES

    job = NativeJob(
        config=native_config(), n_workers=2, spill_dir="/tmp",
        transport="shm", shm_ring_kib=64,
    )
    assert job.ring_bytes == 64 * KiB
    assert job.describe()["shm_ring_kib"] == 64
    unset = NativeJob(
        config=native_config(), n_workers=2, spill_dir="/tmp",
        transport="shm",
    )
    assert unset.ring_bytes == DEFAULT_RING_BYTES
    with pytest.raises(ConfigError, match="shm_ring_kib must be >= 1"):
        NativeJob(
            config=native_config(), n_workers=2, spill_dir="/tmp",
            transport="shm", shm_ring_kib=0,
        )
    with pytest.raises(ConfigError, match="only applies to transport='shm'"):
        NativeJob(
            config=native_config(), n_workers=2, spill_dir="/tmp",
            transport="pipe", shm_ring_kib=64,
        )
