"""Failure-injection tests: the sort stays correct under stragglers.

The paper's §VII raises fault tolerance for very large machines; these
tests inject the performance faults a real cluster sees (degraded disks,
device stalls, throttled nodes) and assert two things: correctness is
untouched (exact splitting and validation are oblivious to timing), and
the faults surface exactly where Figure 3 would show them — as per-PE
imbalance.
"""

import numpy as np
import pytest

from repro import CanonicalMergeSort, Cluster
from repro.cluster import (
    inject_disk_slowdown,
    inject_disk_stall,
    inject_node_slowdown,
)
from repro.workloads import generate_input, input_keys, validate_output
from tests.helpers import small_config


def run_with_faults(inject, n_nodes=4, **overrides):
    cfg = small_config(**overrides)
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, "random")
    before = input_keys(em, inputs)
    if inject is not None:
        inject(cluster)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    report = validate_output(before, result.output_keys(em))
    return cluster, result, report


def test_disk_slowdown_keeps_sort_correct():
    _cl, result, report = run_with_faults(
        lambda c: inject_disk_slowdown(c, node=1, disk=0, factor=4.0)
    )
    assert report.ok, report.issues


def test_disk_slowdown_creates_straggler():
    _cl, healthy, _rep = run_with_faults(None)
    _cl, faulty, _rep = run_with_faults(
        lambda c: inject_disk_slowdown(c, node=1, disk=0, factor=8.0)
    )
    assert faulty.stats.total_time > 1.2 * healthy.stats.total_time
    # The straggler is node 1: its merge wall time exceeds the others'.
    merge_walls = [faulty.stats.per_node[r]["merge"].wall for r in range(4)]
    assert merge_walls[1] == max(merge_walls)
    assert merge_walls[1] > 1.5 * min(merge_walls)


def test_transient_slowdown_recovers():
    _cl, healthy, _rep = run_with_faults(None)
    window = healthy.stats.total_time
    _cl, transient, rep = run_with_faults(
        lambda c: inject_disk_slowdown(
            c, node=0, disk=0, factor=8.0, at=0.0, duration=window / 10
        )
    )
    _cl, permanent, _rep = run_with_faults(
        lambda c: inject_disk_slowdown(c, node=0, disk=0, factor=8.0)
    )
    assert rep.ok
    assert transient.stats.total_time < permanent.stats.total_time


def test_disk_stall_keeps_sort_correct_and_costs_time():
    _cl, healthy, _rep = run_with_faults(None)
    stall = healthy.stats.total_time / 4
    _cl, faulty, report = run_with_faults(
        lambda c: inject_disk_stall(c, node=2, disk=1, at=0.01, duration=stall)
    )
    assert report.ok, report.issues
    assert faulty.stats.total_time > healthy.stats.total_time


def test_node_slowdown_keeps_sort_correct():
    _cl, healthy, _rep = run_with_faults(None)
    _cl, faulty, report = run_with_faults(
        lambda c: inject_node_slowdown(c, node=3, factor=10.0)
    )
    assert report.ok, report.issues
    # Compute is a minority share, so the hit is visible but bounded.
    assert faulty.stats.total_time > healthy.stats.total_time


def test_multiple_simultaneous_faults():
    def chaos(c):
        inject_disk_slowdown(c, node=0, disk=0, factor=3.0)
        inject_disk_stall(c, node=1, disk=2, at=0.05, duration=0.5)
        inject_node_slowdown(c, node=2, factor=5.0)

    _cl, result, report = run_with_faults(chaos)
    assert report.ok, report.issues


def test_fault_on_every_disk_of_one_node():
    def kill_node_io(c):
        for d in range(4):
            inject_disk_slowdown(c, node=0, disk=d, factor=6.0)

    _cl, result, report = run_with_faults(kill_node_io)
    assert report.ok
    walls = [result.stats.per_node[r]["merge"].wall for r in range(4)]
    assert walls[0] == max(walls)


def test_fault_validation():
    cluster = Cluster(2)
    with pytest.raises(ValueError):
        inject_disk_slowdown(cluster, 0, 0, factor=0.0)
    with pytest.raises(ValueError):
        inject_node_slowdown(cluster, 0, factor=-1.0)
    with pytest.raises(ValueError):
        inject_disk_stall(cluster, 0, 0, at=0.0, duration=-1.0)


def test_fault_in_the_past_rejected():
    cluster = Cluster(1)

    def body():
        yield cluster.sim.timeout(5.0)
        with pytest.raises(ValueError):
            inject_disk_slowdown(cluster, 0, 0, factor=2.0, at=1.0)
        return True

    assert cluster.sim.run_process(body()) is True


def test_fault_exactly_at_now_is_legal_and_takes_effect():
    """``at == sim.now`` is a valid injection time (only the past raises)."""
    cluster = Cluster(1)
    disk = cluster.nodes[0].disks[0]
    healthy = disk.bandwidth

    def body():
        yield cluster.sim.timeout(5.0)
        inject_disk_slowdown(cluster, 0, 0, factor=2.0, at=cluster.sim.now)
        yield cluster.sim.timeout(0.0)
        return disk.bandwidth

    degraded = cluster.sim.run_process(body())
    assert degraded == pytest.approx(healthy / 2.0)


def test_overlapping_slowdown_windows_restore_healthy_bandwidth():
    """Each injector captures the healthy bandwidth at *call* time.

    Two overlapping windows on the same disk therefore never compound
    into a permanently degraded disk: when the later window expires, the
    disk is back at its original bandwidth.  (Mid-overlap, the earlier
    recovery already restores full speed — the documented last-writer
    semantics of independent injectors.)
    """
    cluster = Cluster(1)
    disk = cluster.nodes[0].disks[0]
    healthy = disk.bandwidth
    inject_disk_slowdown(cluster, 0, 0, factor=4.0, at=0.0, duration=2.0)
    inject_disk_slowdown(cluster, 0, 0, factor=8.0, at=1.0, duration=3.0)

    probes = {}

    def body():
        for t in (0.5, 1.5, 2.5, 4.5):
            yield cluster.sim.timeout(t - cluster.sim.now)
            probes[t] = disk.bandwidth
        return True

    assert cluster.sim.run_process(body()) is True
    assert probes[0.5] == pytest.approx(healthy / 4.0)
    assert probes[1.5] == pytest.approx(healthy / 8.0)
    # First window's recovery fires at t=2 and restores the full speed it
    # captured, even though the second window is still open.
    assert probes[2.5] == pytest.approx(healthy)
    assert probes[4.5] == pytest.approx(healthy)


def test_overlapping_windows_keep_sort_correct():
    def overlap(c):
        inject_disk_slowdown(c, node=1, disk=0, factor=4.0, at=0.0, duration=0.4)
        inject_disk_slowdown(c, node=1, disk=0, factor=8.0, at=0.2, duration=0.4)
        inject_disk_slowdown(c, node=1, disk=0, factor=2.0, at=0.3, duration=0.5)

    _cl, _result, report = run_with_faults(overlap)
    assert report.ok, report.issues


@pytest.mark.parametrize("workload", ["random", "skewed", "duplicates", "worstcase"])
@pytest.mark.parametrize(
    "inject",
    [
        pytest.param(
            lambda c: inject_disk_slowdown(c, node=0, disk=1, factor=5.0),
            id="disk-slowdown",
        ),
        pytest.param(
            lambda c: inject_disk_stall(c, node=1, disk=0, at=0.05, duration=0.3),
            id="disk-stall",
        ),
        pytest.param(
            lambda c: inject_node_slowdown(c, node=2, factor=6.0),
            id="node-slowdown",
        ),
    ],
)
def test_every_injector_on_every_workload_keeps_output_valid(workload, inject):
    """Faults bend timing only: the sorted output is never altered."""
    cfg = small_config()
    cluster = Cluster(4)
    em, inputs = generate_input(cluster, cfg, workload)
    before = input_keys(em, inputs)
    inject(cluster)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    report = validate_output(before, result.output_keys(em))
    assert report.ok, (workload, report.issues)


def test_deterministic_under_identical_faults():
    def inject(c):
        inject_disk_slowdown(c, node=1, disk=0, factor=4.0, at=0.1, duration=1.0)

    _cl, a, _ = run_with_faults(inject)
    _cl, b, _ = run_with_faults(inject)
    assert a.stats.total_time == b.stats.total_time
