"""Unit tests for internal helpers of the core phases."""

from repro import Cluster, MiB
from repro.core.all_to_all import _sub_slices
from repro.core.run_formation import _chunk_schedule
from repro.core.striped import _StripeAllocator
from repro.em import BID, ExternalMemory
from tests.helpers import small_config


# ---------------------------------------------------------- _sub_slices


def test_sub_slices_partition_exactly():
    spans = [(0, 10, 50), (1, 0, 30), (2, 5, 25)]  # 40 + 30 + 20 = 90 keys
    k = 4
    seen = []
    total = 0
    for sub in range(k):
        part = _sub_slices(spans, k, sub)
        for r, lo, hi in part:
            assert lo < hi
            total += hi - lo
            seen.append((r, lo, hi))
    assert total == 90
    # Concatenated sub-slices re-create the spans in order.
    rebuilt = {}
    for r, lo, hi in seen:
        if r in rebuilt:
            assert rebuilt[r][-1][1] == lo  # contiguous
            rebuilt[r].append((lo, hi))
        else:
            rebuilt[r] = [(lo, hi)]
    assert rebuilt[0][0][0] == 10 and rebuilt[0][-1][1] == 50
    assert rebuilt[1][0][0] == 0 and rebuilt[1][-1][1] == 30


def test_sub_slices_sizes_almost_equal():
    spans = [(0, 0, 100)]
    sizes = [sum(hi - lo for _r, lo, hi in _sub_slices(spans, 3, s)) for s in range(3)]
    assert max(sizes) - min(sizes) <= 1


def test_sub_slices_empty_spans():
    assert _sub_slices([], 4, 0) == []


def test_sub_slices_single_subop_is_identity():
    spans = [(1, 2, 9), (0, 4, 6)]
    assert _sub_slices(spans, 1, 0) == spans


# ------------------------------------------------------- _chunk_schedule


def _bids(n):
    return [BID(0, i % 4, i // 4) for i in range(n)]


def test_chunk_schedule_covers_all_blocks():
    cfg = small_config(randomize=True)
    blocks = _bids(40)
    chunks = _chunk_schedule(blocks, cfg, rank=0, piece_blocks=16)
    flat = [b for chunk in chunks for b in chunk]
    assert sorted(flat) == sorted(blocks)
    assert [len(c) for c in chunks] == [16, 16, 8]


def test_chunk_schedule_elevator_order_within_chunk():
    cfg = small_config(randomize=True)
    chunks = _chunk_schedule(_bids(32), cfg, rank=0, piece_blocks=16)
    for chunk in chunks:
        assert chunk == sorted(chunk, key=lambda b: (b.disk, b.slot))


def test_chunk_schedule_randomization_is_seeded_per_rank():
    cfg = small_config(randomize=True)
    a = _chunk_schedule(_bids(32), cfg, rank=0, piece_blocks=16)
    b = _chunk_schedule(_bids(32), cfg, rank=0, piece_blocks=16)
    c = _chunk_schedule(_bids(32), cfg, rank=1, piece_blocks=16)
    assert a == b  # deterministic
    assert a != c  # rank-dependent stream


def test_chunk_schedule_without_randomization_is_sequential():
    cfg = small_config(randomize=False)
    blocks = _bids(32)
    chunks = _chunk_schedule(blocks, cfg, rank=0, piece_blocks=16)
    assert chunks[0] == sorted(blocks[:16], key=lambda b: (b.disk, b.slot))
    assert chunks[1] == sorted(blocks[16:], key=lambda b: (b.disk, b.slot))


def test_chunk_schedule_seed_changes_shuffle():
    a = _chunk_schedule(_bids(32), small_config(seed=1), rank=0, piece_blocks=16)
    b = _chunk_schedule(_bids(32), small_config(seed=2), rank=0, piece_blocks=16)
    assert a != b


# ------------------------------------------------------ _StripeAllocator


def test_stripe_allocator_round_robin_over_machine():
    cluster = Cluster(2)
    em = ExternalMemory(cluster, 1 * MiB, 8)
    alloc = _StripeAllocator(em, n_nodes=2, disks_per_node=4)
    owners = [alloc.next_owner() for _ in range(10)]
    assert owners[:8] == [(n, d) for n in range(2) for d in range(4)]
    assert owners[8] == (0, 0)  # wraps


def test_stripe_allocator_replicas_stay_in_sync():
    cluster = Cluster(2)
    em = ExternalMemory(cluster, 1 * MiB, 8)
    a = _StripeAllocator(em, 2, 4)
    b = _StripeAllocator(em, 2, 4)
    assert [a.next_owner() for _ in range(13)] == [b.next_owner() for _ in range(13)]


# ---------------------------------------------------------------- report


def test_report_fmt_handles_mixed_types():
    from repro.bench.report import _fmt

    assert _fmt(0.0) == "0"
    assert _fmt(1234.5) == "1,234"
    assert _fmt(12.34) == "12.3"
    assert _fmt(0.001234) == "0.001234"
    assert _fmt("text") == "text"
    assert _fmt(7) == "7"
