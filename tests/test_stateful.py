"""Stateful (model-based) property tests for core data structures.

Hypothesis drives random operation sequences against each structure and a
trivially-correct Python model; any divergence or invariant violation is
shrunk to a minimal reproduction.
"""

import heapq

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro import Cluster, MiB
from repro.algos import LoserTree
from repro.em import ExternalMemory, LRUCache
from repro.sim import Pool, Simulator


class BlockStoreMachine(RuleBasedStateMachine):
    """Allocation/free/write/peek sequences against a dict model."""

    def __init__(self):
        super().__init__()
        cluster = Cluster(1)
        self.em = ExternalMemory(cluster, 1 * MiB, 8)
        self.store = self.em.store(0)
        self.model = {}  # bid -> tuple of keys
        self.counter = 0

    @rule()
    def allocate_and_fill(self):
        bid = self.store.allocate()
        assert bid not in self.model, "allocator handed out a live slot"
        keys = np.arange(self.counter, self.counter + 3, dtype=np.uint64)
        self.counter += 3
        self.store.store_without_io(bid, keys)
        self.model[bid] = tuple(keys.tolist())

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def free_one(self, data):
        bid = data.draw(st.sampled_from(sorted(self.model)))
        self.store.free(bid)
        del self.model[bid]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def peek_matches_model(self, data):
        bid = data.draw(st.sampled_from(sorted(self.model)))
        assert tuple(self.store.peek(bid).tolist()) == self.model[bid]

    @invariant()
    def usage_counters_consistent(self):
        assert self.store.blocks_in_use == len(self.model)
        assert self.store.peak_blocks >= self.store.blocks_in_use


TestBlockStore = BlockStoreMachine.TestCase
TestBlockStore.settings = settings(max_examples=30, deadline=None,
                                   stateful_step_count=40)


class LRUCacheMachine(RuleBasedStateMachine):
    """LRU behaviour against an ordered-list model."""

    CAPACITY = 4

    def __init__(self):
        super().__init__()
        self.cache = LRUCache(self.CAPACITY)
        self.order = []  # least-recent first
        self.values = {}

    def _touch(self, key):
        if key in self.order:
            self.order.remove(key)
        self.order.append(key)
        while len(self.order) > self.CAPACITY:
            evicted = self.order.pop(0)
            del self.values[evicted]

    @rule(key=st.integers(0, 9), value=st.integers())
    def put(self, key, value):
        self.cache.put(key, value)
        self.values[key] = value
        self._touch(key)

    @rule(key=st.integers(0, 9))
    def get(self, key):
        got = self.cache.get(key)
        if key in self.values:
            assert got == self.values[key]
            self._touch(key)
        else:
            assert got is None

    @invariant()
    def size_and_content_match(self):
        assert len(self.cache) == len(self.order)
        for key in self.order:
            assert key in self.cache


TestLRUCache = LRUCacheMachine.TestCase
TestLRUCache.settings = settings(max_examples=40, deadline=None,
                                 stateful_step_count=50)


class LoserTreeMachine(RuleBasedStateMachine):
    """k-way merging against heapq over random per-source streams."""

    K = 4

    def __init__(self):
        super().__init__()
        self.tree = LoserTree(self.K)
        self.next_values = [0] * self.K  # monotone per source
        self.armed = [False] * self.K
        self.exhausted = [False] * self.K
        self.model = []  # heap of (key, source)

    @rule(source=st.integers(0, K - 1), gap=st.integers(0, 5))
    def push(self, source, gap):
        if self.armed[source] or self.exhausted[source]:
            return
        self.next_values[source] += gap
        key = self.next_values[source]
        self.tree.push(source, key)
        heapq.heappush(self.model, (key, source))
        self.armed[source] = True

    @rule(source=st.integers(0, K - 1))
    def exhaust(self, source):
        if self.armed[source] or self.exhausted[source]:
            return
        self.tree.exhaust(source)
        self.exhausted[source] = True

    @precondition(lambda self: all(a or e for a, e in
                                   zip(self.armed, self.exhausted)))
    @rule()
    def pop_matches_model(self):
        got = self.tree.pop_winner()
        if not self.model:
            assert got is None
            return
        want = heapq.heappop(self.model)
        assert got is not None
        src, key, _value = got
        assert (key, src) == want
        self.armed[src] = False


TestLoserTree = LoserTreeMachine.TestCase
TestLoserTree.settings = settings(max_examples=40, deadline=None,
                                  stateful_step_count=60)


def test_pool_never_oversubscribes_under_random_traffic():
    """Many workers hammering a Pool: capacity respected, all finish."""
    rng = np.random.default_rng(0)
    sim = Simulator()
    pool = Pool(sim, capacity=5)
    in_use = [0]
    peak = [0]

    def worker(n, hold):
        yield pool.acquire(n)
        in_use[0] += n
        peak[0] = max(peak[0], in_use[0])
        assert in_use[0] <= 5
        yield sim.timeout(hold)
        in_use[0] -= n
        pool.release(n)

    procs = [
        sim.process(worker(int(rng.integers(1, 4)), float(rng.uniform(0.1, 2))))
        for _ in range(60)
    ]
    sim.run()
    assert all(p.triggered for p in procs)
    assert pool.available == 5
    assert peak[0] == 5  # saturated at least once
