"""Tests for the fabric model and the simulated MPI collectives."""

import pytest

from repro.cluster import Cluster, CollectiveMismatch, Fabric, MB, PAPER_MACHINE
from repro.sim import SimulationError, Simulator


# ----------------------------------------------------------------- Fabric


def test_transfer_seconds_volume_and_latency():
    sim = Simulator()
    fabric = Fabric(sim, PAPER_MACHINE, n_nodes=8)
    t = fabric.transfer_seconds(1300 * MB, active_nodes=1, messages=1)
    assert t == pytest.approx(1.0 + PAPER_MACHINE.net_latency)


def test_transfer_congestion_slows_transfers():
    sim = Simulator()
    fabric = Fabric(sim, PAPER_MACHINE, n_nodes=64)
    fast = fabric.transfer_seconds(100 * MB, active_nodes=2)
    slow = fabric.transfer_seconds(100 * MB, active_nodes=64)
    assert slow > fast


def test_collective_latency_logarithmic():
    sim = Simulator()
    fabric = Fabric(sim, PAPER_MACHINE, n_nodes=1024)
    assert fabric.collective_latency(1) == 0.0
    assert fabric.collective_latency(2) == PAPER_MACHINE.net_latency
    assert fabric.collective_latency(1024) == 10 * PAPER_MACHINE.net_latency


def test_traffic_recording():
    sim = Simulator()
    fabric = Fabric(sim, PAPER_MACHINE, n_nodes=4)
    fabric.record_traffic(1000.0, messages=3)
    assert fabric.bytes_sent == 1000.0
    assert fabric.n_messages == 3


def test_negative_transfer_rejected():
    sim = Simulator()
    fabric = Fabric(sim, PAPER_MACHINE, n_nodes=4)
    with pytest.raises(ValueError):
        fabric.transfer_seconds(-1, 2)


# ------------------------------------------------------------ Collectives


def test_barrier_synchronizes_ranks():
    cluster = Cluster(4)
    times = {}

    def pe(rank, cluster):
        yield cluster.sim.timeout(rank * 1.0)
        yield cluster.comm.barrier(rank)
        times[rank] = cluster.sim.now

    cluster.run_spmd(pe)
    release = max(times.values())
    assert all(t == pytest.approx(release) for t in times.values())
    assert release >= 3.0


def test_allreduce_sum_and_max():
    cluster = Cluster(4)

    def pe(rank, cluster):
        s = yield cluster.comm.allreduce(rank, rank + 1, lambda a, b: a + b)
        m = yield cluster.comm.allreduce(rank, rank, max)
        return (s, m)

    results = cluster.run_spmd(pe)
    assert all(r == (10, 3) for r in results)


def test_allgather_preserves_rank_order():
    cluster = Cluster(3)

    def pe(rank, cluster):
        return (yield cluster.comm.allgather(rank, f"r{rank}", nbytes=10))

    results = cluster.run_spmd(pe)
    assert all(r == ["r0", "r1", "r2"] for r in results)


def test_gather_delivers_only_to_root():
    cluster = Cluster(3)

    def pe(rank, cluster):
        return (yield cluster.comm.gather(rank, rank * 2, root=1, nbytes=8))

    results = cluster.run_spmd(pe)
    assert results[1] == [0, 2, 4]
    assert results[0] is None and results[2] is None


def test_bcast_from_root():
    cluster = Cluster(4)

    def pe(rank, cluster):
        value = "payload" if rank == 2 else None
        return (yield cluster.comm.bcast(rank, value, root=2, nbytes=100))

    assert cluster.run_spmd(pe) == ["payload"] * 4


def test_scatter_from_root():
    cluster = Cluster(3)

    def pe(rank, cluster):
        values = ["a", "b", "c"] if rank == 1 else None
        return (yield cluster.comm.scatter(rank, values, root=1, nbytes=30))

    assert cluster.run_spmd(pe) == ["a", "b", "c"]


def test_scatter_requires_full_value_list():
    cluster = Cluster(2)

    def pe(rank, cluster):
        values = ["only-one"] if rank == 0 else None
        yield cluster.comm.scatter(rank, values, root=0)

    with pytest.raises(ValueError):
        cluster.run_spmd(pe)


def test_alltoallv_routes_objects():
    cluster = Cluster(3)

    def pe(rank, cluster):
        send = [(rank, d) for d in range(3)]
        recv, recv_bytes = yield cluster.comm.alltoallv(rank, send, [8.0] * 3)
        return recv

    results = cluster.run_spmd(pe)
    for d in range(3):
        assert results[d] == [(s, d) for s in range(3)]


def test_alltoallv_timing_scales_with_volume():
    def run_with(volume):
        cluster = Cluster(2)

        def pe(rank, cluster):
            send = [None, None]
            sizes = [0.0, 0.0]
            sizes[1 - rank] = volume
            yield cluster.comm.alltoallv(rank, send, sizes)
            return cluster.sim.now

        return max(cluster.run_spmd(pe))

    assert run_with(1e9) > 2 * run_with(1e8)


def test_alltoallv_self_traffic_free():
    cluster = Cluster(2)

    def pe(rank, cluster):
        sizes = [0.0, 0.0]
        sizes[rank] = 1e12  # everything stays local
        yield cluster.comm.alltoallv(rank, [None, None], sizes)
        return cluster.sim.now

    times = cluster.run_spmd(pe)
    assert max(times) < 1.0  # no wire time charged
    assert cluster.total_network_bytes == 0.0


def test_collective_kind_mismatch_detected():
    cluster = Cluster(2)

    def pe(rank, cluster):
        if rank == 0:
            yield cluster.comm.barrier(rank)
        else:
            yield cluster.comm.allreduce(rank, 1, max)

    with pytest.raises(CollectiveMismatch):
        cluster.run_spmd(pe)


def test_gather_root_mismatch_detected():
    cluster = Cluster(2)

    def pe(rank, cluster):
        yield cluster.comm.gather(rank, rank, root=rank)

    with pytest.raises(CollectiveMismatch):
        cluster.run_spmd(pe)


def test_alltoallv_wrong_length_rejected():
    cluster = Cluster(3)

    def pe(rank, cluster):
        yield cluster.comm.alltoallv(rank, [None], [0.0])

    with pytest.raises((ValueError, SimulationError)):
        cluster.run_spmd(pe)


def test_collectives_match_in_order_across_ranks():
    """The n-th collective on each rank matches the n-th elsewhere."""
    cluster = Cluster(2)

    def pe(rank, cluster):
        a = yield cluster.comm.allreduce(rank, 1, lambda x, y: x + y)
        b = yield cluster.comm.allreduce(rank, 10, lambda x, y: x + y)
        return (a, b)

    assert cluster.run_spmd(pe) == [(2, 20), (2, 20)]


def test_missing_rank_deadlocks_cleanly():
    cluster = Cluster(2)

    def pe(rank, cluster):
        if rank == 0:
            yield cluster.comm.barrier(rank)
        else:
            yield cluster.sim.timeout(1.0)

    with pytest.raises(SimulationError, match="never finished"):
        cluster.run_spmd(pe)
