"""Schedule duality: the native fetch planner vs the simulator's oracle.

The native pipelined reader plans real-file fetches with
:func:`repro.native.pipeline.plan_fetch_order` (prediction order + the
Appendix-A buffered-writing dual); the simulator owns the independent
deadlock-freedom oracle :func:`repro.em.prefetch.schedule_is_valid`.
These tests feed both the *same* inputs: every plan the native side
emits, mapped back to prediction positions, must be a schedule the sim
oracle certifies for the same buffer pool — across buffer counts, file
counts, duplicate keys, and adversarial disk clusterings.
"""

import numpy as np
import pytest

from repro.em.prefetch import (
    naive_schedule,
    optimal_prefetch_schedule,
    prediction_order,
    schedule_is_valid,
    schedule_steps,
)
from repro.native.pipeline import plan_fetch_order, sequential_fetch_order


def _random_case(seed, n, n_files):
    """Shared input for both sides: (key, file, block) request triples."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, max(2, n // 2), n)  # duplicates on purpose
    file_ids = [int(f) for f in rng.integers(0, n_files, n)]
    triples = [(int(keys[i]), file_ids[i], i) for i in range(n)]
    return triples, file_ids


def _as_prediction_positions(fetch_order, triples):
    """A native plan (request indices) as a sim schedule (pred positions)."""
    pred = prediction_order(triples)
    pos_of = {req: pos for pos, req in enumerate(pred)}
    return [pos_of[req] for req in fetch_order], [
        triples[req][1] for req in pred
    ]


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("n,n_files", [(1, 1), (7, 2), (24, 3), (60, 6)])
@pytest.mark.parametrize("n_buffers", [1, 2, 4, 9])
def test_native_plan_is_valid_under_sim_oracle(seed, n, n_files, n_buffers):
    triples, file_ids = _random_case(seed, n, n_files)
    plan = plan_fetch_order(triples, file_ids, n_buffers)
    assert sorted(plan) == list(range(n))
    schedule, disk_in_pred = _as_prediction_positions(plan, triples)
    assert schedule_is_valid(schedule, disk_in_pred, n_buffers, n_files)


def test_plan_is_exactly_the_appendix_a_composition():
    # Pins the duality itself: the native planner IS prediction order
    # composed with the simulator's optimal schedule — same inputs, same
    # permutation, not merely "some valid plan".
    triples, file_ids = _random_case(17, 40, 4)
    pred = prediction_order(triples)
    disk_in_pred = [file_ids[i] for i in pred]
    sched = optimal_prefetch_schedule(disk_in_pred, 3, max(file_ids) + 1)
    assert plan_fetch_order(triples, file_ids, 3) == [pred[p] for p in sched]


def test_single_buffer_plan_degenerates_to_prediction_order():
    # With W=1 the only deadlock-free schedule fetches exactly in
    # consumption order; both sides must agree on that boundary.
    triples, file_ids = _random_case(5, 25, 3)
    plan = plan_fetch_order(triples, file_ids, 1)
    assert plan == prediction_order(triples)
    schedule, disk_in_pred = _as_prediction_positions(plan, triples)
    assert schedule_is_valid(schedule, disk_in_pred, 1, 3)


def test_sequential_fetch_order_is_valid_for_index_consumption():
    # The write-path helper: consumption order is the request list itself.
    rng = np.random.default_rng(8)
    file_ids = [int(f) for f in rng.integers(0, 4, 30)]
    for n_buffers in (1, 3, 8):
        plan = sequential_fetch_order(file_ids, n_buffers)
        # Identity prediction sequence: positions == request indices.
        assert schedule_is_valid(plan, file_ids, n_buffers, 4)


def test_oracle_is_not_vacuous():
    # The sim oracle must actually reject bad plans, or every test above
    # passes for free: fetching in reverse stalls a small pool.
    disk_ids = [0, 1, 0, 1, 0, 1]
    backwards = list(reversed(range(6)))
    assert not schedule_is_valid(backwards, disk_ids, 2, 2)
    assert schedule_is_valid(list(range(6)), disk_ids, 2, 2)


def test_native_plan_never_needs_more_steps_than_naive():
    # The reason the dual schedule exists (Appendix A): when one file's
    # blocks cluster early in the prediction sequence, fetching in plain
    # prediction order serializes on that file; the plan must not.
    n_files, n_buffers = 2, 4
    file_ids = [1, 1, 1, 1, 1, 0, 0, 1, 0, 0]
    n = len(file_ids)
    triples = [(i, file_ids[i], i) for i in range(n)]
    plan = plan_fetch_order(triples, file_ids, n_buffers)
    schedule, disk_in_pred = _as_prediction_positions(plan, triples)
    got = schedule_steps(schedule, disk_in_pred, n_buffers, n_files)
    naive = schedule_steps(
        naive_schedule(n), disk_in_pred, n_buffers, n_files
    )
    assert got is not None and naive is not None
    assert got <= naive
    assert got < naive  # the clustering above forces a real win
