"""Unit tests for the native spill-directory block store."""

import numpy as np
import pytest

from repro.native.blockstore import FileBlockStore
from repro.native.records import (
    NATIVE_DTYPE,
    RECORD_BYTES,
    generate_records,
    make_records,
    merge_record_arrays,
    read_records,
    record_count,
    sort_records,
)


@pytest.fixture
def store(tmp_path):
    return FileBlockStore(str(tmp_path), rank=0, block_records=8)


def some_records(n, start=0):
    keys = np.arange(start, start + n, dtype=np.uint64) * 7
    return make_records(keys, np.arange(start, start + n, dtype=np.uint64))


def test_roundtrip_and_accounting(store):
    records = some_records(20)
    path = store.input_path()
    store.write_file(path, records, tag="t")
    assert record_count(path) == 20
    back = store.read_range(path, 0, 20, tag="t")
    assert np.array_equal(back, records)
    assert store.bytes_written["t"] == 20 * RECORD_BYTES
    assert store.bytes_read["t"] == 20 * RECORD_BYTES
    assert store.reads["t"] == 1 and store.writes["t"] == 1


def test_read_block_short_last_block(store):
    records = some_records(20)  # 8 + 8 + 4 with block_records=8
    path = store.input_path()
    store.write_file(path, records, tag="t")
    assert len(store.read_block(path, 0, "t")) == 8
    assert len(store.read_block(path, 2, "t")) == 4
    assert np.array_equal(store.read_block(path, 2, "t"), records[16:])


def test_read_blocks_matches_per_block_reads(store):
    """The scatter read is bitwise the concatenation of its blocks."""
    records = some_records(20)  # blocks: 8 + 8 + 4
    path = store.input_path()
    store.write_file(path, records, tag="w")
    for ids in ([0, 1, 2], [2, 0, 1], [1], [0, 2], [2, 1, 0]):
        got = store.read_blocks(path, ids, tag="r")
        want = np.concatenate(
            [store.read_block(path, b, "r") for b in ids]
        )
        assert np.array_equal(got, want), ids


def test_read_blocks_short_block_mid_list(store):
    """A shuffled schedule can put the file's short last block anywhere."""
    records = some_records(20)
    path = store.input_path()
    store.write_file(path, records, tag="w")
    got = store.read_blocks(path, [0, 2, 1], tag="r")
    assert len(got) == 20
    assert np.array_equal(got[8:12], records[16:20])  # the short block
    assert np.array_equal(got[12:], records[8:16])


def test_read_blocks_coalesces_consecutive_ids(store):
    """Consecutive full blocks become one positioned read, not three."""
    records = some_records(32)  # four full blocks
    path = store.input_path()
    store.write_file(path, records, tag="w")
    got = store.read_blocks(path, [0, 1, 2, 3], tag="r")
    assert np.array_equal(got, records)
    assert store.reads["r"] == 1
    assert store.bytes_read["r"] == records.nbytes
    # A gap breaks the run: [0, 2, 3] is two reads.
    store.read_blocks(path, [0, 2, 3], tag="r2")
    assert store.reads["r2"] == 2


def test_read_blocks_empty_and_accounting(store):
    records = some_records(16)
    path = store.input_path()
    store.write_file(path, records, tag="w")
    empty = store.read_blocks(path, [], tag="r")
    assert len(empty) == 0 and empty.dtype == NATIVE_DTYPE
    assert "r" not in store.bytes_read
    store.read_blocks(path, [1], tag="r")
    assert store.bytes_read["r"] == 8 * RECORD_BYTES


def test_bytes_view_roundtrip():
    from repro.native.records import bytes_view, records_from_bytes

    records = some_records(12)
    view = bytes_view(records[3:9])
    assert isinstance(view, memoryview)
    assert len(view) == 6 * RECORD_BYTES
    assert np.array_equal(records_from_bytes(view), records[3:9])
    assert bytes(view) == records[3:9].tobytes()


def test_write_at_places_chunks_exactly(store):
    path = store.segment_path(0)
    store.preallocate(path, 16)
    lo, hi = some_records(8), some_records(8, start=100)
    with open(path, "r+b") as handle:
        store.write_at(handle, 8, hi.tobytes(), tag="t")
        store.write_at(handle, 0, lo.tobytes(), tag="t")
    back = read_records(path, 0, 16)
    assert np.array_equal(back[:8], lo)
    assert np.array_equal(back[8:], hi)


def test_paths_are_per_rank_and_per_run(store):
    assert store.input_path() != store.input_path(rank=1)
    assert store.piece_path(0) != store.piece_path(1)
    assert store.segment_path(2, rank=1) != store.segment_path(2, rank=0)
    assert "output_0" in store.output_path()


def test_probe_cache_blocks_and_hits(store):
    records = some_records(64)
    path = store.piece_path(0)
    store.write_file(path, records, tag="t")
    cache = store.probe_cache(capacity_blocks=2)
    # Two probes in the same block: one read, one hit.
    assert cache.key_at(path, 3, "t") == int(records["key"][3])
    assert cache.key_at(path, 5, "t") == int(records["key"][5])
    assert cache.block_reads == 1
    assert cache.hits == 1
    # Touch enough distinct blocks to evict, then re-touch the first.
    for pos in (8, 16, 24, 32):
        cache.key_at(path, pos, "t")
    reads_before = cache.block_reads
    cache.key_at(path, 3, "t")
    assert cache.block_reads == reads_before + 1  # was evicted, re-read


def test_sequential_reader_streams_all_blocks(store):
    records = some_records(26)
    path = store.segment_path(1)
    store.write_file(path, records, tag="t")
    from repro.native.blockstore import SequentialReader

    reader = SequentialReader(store, path, tag="t")
    blocks = list(reader.blocks())
    assert [len(b) for b in blocks] == [8, 8, 8, 2]
    assert np.array_equal(np.concatenate(blocks), records)
    assert reader.next_block() is None


def test_sequential_reader_detects_truncation(store, tmp_path):
    records = some_records(8)
    path = store.segment_path(2)
    store.write_file(path, records, tag="t")
    from repro.native.blockstore import SequentialReader

    reader = SequentialReader(store, path, tag="t", n_records=12)
    with pytest.raises(IOError):
        reader.next_block()
        reader.next_block()


def test_record_helpers():
    recs = generate_records(0, 100, seed=5)
    assert recs.dtype == NATIVE_DTYPE
    assert np.array_equal(recs["payload"], np.arange(100))
    s = sort_records(recs)
    assert np.all(s["key"][:-1] <= s["key"][1:])
    # Stable merge of sorted parts equals one global sort.
    a, b = s[::2].copy(), s[1::2].copy()
    merged = merge_record_arrays([a, b])
    assert np.array_equal(merged["key"], s["key"])


def test_generate_records_deterministic_and_seeded():
    a = generate_records(10, 50, seed=1)
    b = generate_records(10, 50, seed=1)
    c = generate_records(10, 50, seed=2)
    assert np.array_equal(a, b)
    assert not np.array_equal(a["key"], c["key"])
    # Slices of the global sequence agree with the whole.
    whole = generate_records(0, 100, seed=1)
    assert np.array_equal(whole[10:60], a)


def test_skew_generates_duplicates():
    recs = generate_records(0, 2000, seed=3, skew=True)
    assert len(np.unique(recs["key"])) < 2000
