"""Tests for pipelined sorting (paper Section VII)."""

import numpy as np
import pytest

from repro import Cluster, ExternalMemory
from repro.core.pipeline import (
    ArraySource,
    CollectingSink,
    PipelinedMergeSort,
    PipelineResult,
)
from tests.helpers import small_config


def run_pipeline(n_nodes=4, keys_per_node=None, seed=0, **overrides):
    cfg = small_config(**overrides)
    cluster = Cluster(n_nodes)
    em = ExternalMemory(cluster, cfg.block_bytes, cfg.block_elems)
    rng = np.random.default_rng(seed)
    n = keys_per_node if keys_per_node is not None else cfg.keys_per_node
    inputs = [
        rng.integers(0, 2 ** 50, n, dtype=np.uint64) for _ in range(n_nodes)
    ]
    sources = [ArraySource(k, cfg.block_elems) for k in inputs]
    sinks = [CollectingSink() for _ in range(n_nodes)]
    result = PipelinedMergeSort(cluster, cfg).sort(em, sources, sinks)
    return cluster, cfg, em, inputs, sinks, result


def test_pipeline_produces_globally_sorted_streams():
    _cl, _cfg, _em, inputs, sinks, _res = run_pipeline()
    got = np.concatenate([s.keys for s in sinks])
    want = np.sort(np.concatenate(inputs))
    assert np.array_equal(got, want)


def test_pipeline_streams_are_balanced():
    _cl, _cfg, _em, inputs, sinks, _res = run_pipeline()
    total = sum(len(k) for k in inputs)
    for rank, sink in enumerate(sinks):
        want = (rank + 1) * total // 4 - rank * total // 4
        assert len(sink.keys) == want


def test_pipeline_each_emission_sorted_and_monotone():
    _cl, _cfg, _em, _inputs, sinks, _res = run_pipeline()
    for sink in sinks:
        last = None
        for chunk in sink.chunks:
            assert np.all(chunk[:-1] <= chunk[1:])
            if last is not None and len(chunk):
                assert chunk[0] >= last
            if len(chunk):
                last = chunk[-1]


def test_pipeline_saves_the_input_and_output_passes():
    cl, cfg, _em, inputs, _sinks, result = run_pipeline()
    n_bytes = cfg.keys_to_bytes(sum(len(k) for k in inputs))
    # Runs are written and read once: ~2 passes instead of ~4.
    assert result.stats.total_io_bytes <= 2.8 * n_bytes
    assert result.stats.total_io_bytes >= 1.9 * n_bytes


def test_pipeline_unequal_source_lengths():
    cfg = small_config()
    cluster = Cluster(3)
    em = ExternalMemory(cluster, cfg.block_bytes, cfg.block_elems)
    rng = np.random.default_rng(1)
    lengths = [cfg.keys_per_node, cfg.keys_per_node // 2, 0]
    inputs = [rng.integers(0, 999, n, dtype=np.uint64) for n in lengths]
    sources = [ArraySource(k, cfg.block_elems) for k in inputs]
    sinks = [CollectingSink() for _ in range(3)]
    PipelinedMergeSort(cluster, cfg).sort(em, sources, sinks)
    got = np.concatenate([s.keys for s in sinks])
    assert np.array_equal(got, np.sort(np.concatenate(inputs)))


def test_pipeline_source_and_sink_costs_charged():
    _cl, _cfg, _em, _in, _sinks, cheap = run_pipeline(seed=3)
    cfg = small_config()
    cluster = Cluster(4)
    em = ExternalMemory(cluster, cfg.block_bytes, cfg.block_elems)
    rng = np.random.default_rng(3)
    inputs = [
        rng.integers(0, 2 ** 50, cfg.keys_per_node, dtype=np.uint64)
        for _ in range(4)
    ]
    sources = [ArraySource(k, cfg.block_elems, seconds_per_key=1e-4) for k in inputs]
    sinks = [CollectingSink(seconds_per_key=1e-4) for _ in range(4)]
    slow = PipelinedMergeSort(cluster, cfg).sort(em, sources, sinks)
    assert slow.stats.total_time > cheap.stats.total_time


def test_pipeline_rejects_wrong_endpoint_counts():
    cfg = small_config()
    cluster = Cluster(2)
    em = ExternalMemory(cluster, cfg.block_bytes, cfg.block_elems)
    with pytest.raises(ValueError):
        PipelinedMergeSort(cluster, cfg).sort(em, [ArraySource(np.empty(0, np.uint64), 4)], [])


def test_pipeline_result_fields():
    cl, cfg, _em, _in, sinks, result = run_pipeline()
    assert isinstance(result, PipelineResult)
    assert result.n_nodes == 4
    assert result.n_runs >= cfg.n_runs(cl.spec) - 1
    assert result.sinks == sinks


def test_array_source_block_iteration():
    src = ArraySource(np.arange(10, dtype=np.uint64), block_elems=4)
    sizes = []
    while True:
        block = src.next_block()
        if block is None:
            break
        sizes.append(len(block))
    assert sizes == [4, 4, 2]


def test_pipeline_adversarial_source_still_exact():
    """No randomization is possible in pipeline mode (paper §VII): a
    locally sorted source maximizes redistribution, but exact splitting
    keeps the output correct and balanced regardless."""
    cfg = small_config()
    cluster = Cluster(4)
    em = ExternalMemory(cluster, cfg.block_bytes, cfg.block_elems)
    rng = np.random.default_rng(9)
    inputs = [
        np.sort(rng.integers(0, 2 ** 50, cfg.keys_per_node, dtype=np.uint64))
        for _ in range(4)
    ]
    sources = [ArraySource(k, cfg.block_elems) for k in inputs]
    sinks = [CollectingSink() for _ in range(4)]
    result = PipelinedMergeSort(cluster, cfg).sort(em, sources, sinks)
    got = np.concatenate([s.keys for s in sinks])
    assert np.array_equal(got, np.sort(np.concatenate(inputs)))
    # The adversarial source moves far more data than a random one would.
    assert result.stats.counter_total("alltoall_sent_keys") > 0
