"""Cross-algorithm equivalence: every sorter agrees on the result.

CanonicalMergeSort, GlobalStripedMergeSort, NOW-Sort and the external
sample sort must all produce the same globally sorted key sequence for
the same input — they differ only in layout, I/O and communication.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CanonicalMergeSort,
    Cluster,
    ELEM_SORTBENCH_100B,
    ExternalSampleSort,
    GlobalStripedMergeSort,
    MiB,
    NowSort,
    generate_gensort_input,
    generate_input,
    input_keys,
)
from tests.helpers import small_config


def _global_output(algo_name, cluster, cfg, em, inputs):
    if algo_name == "canonical":
        res = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
        return np.concatenate(res.output_keys(em))
    if algo_name == "striped":
        res = GlobalStripedMergeSort(cluster, cfg).sort(em, inputs)
        return res.global_keys(em)
    if algo_name == "nowsort":
        res = NowSort(cluster, cfg).sort(em, inputs)
        return np.concatenate(res.output_keys(em))
    res = ExternalSampleSort(cluster, cfg).sort(em, inputs)
    return np.concatenate(res.output_keys(em))


ALGOS = ["canonical", "striped", "nowsort", "samplesort"]


@settings(max_examples=8, deadline=None)
@given(
    kind=st.sampled_from(["random", "worstcase", "duplicates", "skewed"]),
    n_nodes=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_all_algorithms_agree(kind, n_nodes, seed):
    cfg = small_config(
        data_per_node_bytes=16 * MiB, memory_bytes=8 * MiB, block_elems=8,
        seed=seed,
    )
    reference = None
    for algo in ALGOS:
        cluster = Cluster(n_nodes)
        em, inputs = generate_input(cluster, cfg, kind, seed=seed)
        got = _global_output(algo, cluster, cfg, em, inputs)
        if reference is None:
            reference = got
        else:
            assert np.array_equal(got, reference), f"{algo} disagrees"


def test_daytona_style_skewed_gensort():
    """Daytona category adversity: duplicate-heavy benchmark records.

    The Indy category assumes uniform keys; Daytona requires surviving
    arbitrary distributions — exactly where exact splitting shines.
    """
    cfg = small_config(
        element=ELEM_SORTBENCH_100B,
        data_per_node_bytes=16 * MiB,
        memory_bytes=8 * MiB,
        block_elems=8,
    )
    cluster = Cluster(4)
    em, inputs = generate_gensort_input(cluster, cfg, seed=5, skew=True)
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    from repro import validate_output

    report = validate_output(before, result.output_keys(em))
    assert report.ok, report.issues
    # Confirm the input really was duplicate-heavy.
    keys = np.concatenate(before)
    assert len(np.unique(keys)) <= 4096
