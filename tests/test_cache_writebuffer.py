"""Tests for the LRU cache and the streaming block writer."""

import numpy as np
import pytest

from repro.cluster import Cluster, MiB
from repro.em import ExternalMemory, LRUCache
from repro.em.writebuffer import SegmentBlock, StreamBlockWriter


# ------------------------------------------------------------------ LRU


def test_lru_basic_hit_miss():
    cache = LRUCache(2)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.hits == 1 and cache.misses == 1


def test_lru_evicts_least_recent():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a
    cache.put("c", 3)  # evicts b
    assert "b" not in cache
    assert "a" in cache and "c" in cache


def test_lru_zero_capacity_never_stores():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0


def test_lru_put_refreshes_existing():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)
    cache.put("c", 3)  # evicts b, not a
    assert cache.get("a") == 10
    assert "b" not in cache


def test_lru_hit_rate():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.get("a")
    cache.get("x")
    assert cache.hit_rate == pytest.approx(2 / 3)


def test_lru_clear_keeps_counters():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1


def test_lru_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


# -------------------------------------------------------------- writer


def _writer(block_elems=4):
    cluster = Cluster(1)
    em = ExternalMemory(cluster, 1 * MiB, block_elems)
    outstanding = []
    writer = StreamBlockWriter(em.store(0), "t", outstanding, max_outstanding=4)
    return cluster, em, writer


def run_writer(cluster, gen_fn):
    return cluster.sim.run_process(gen_fn())


def test_writer_emits_full_blocks():
    cluster, em, writer = _writer(block_elems=4)

    def body():
        yield from writer.add(np.arange(10, dtype=np.uint64))
        yield from writer.flush()
        yield from writer.drain()

    run_writer(cluster, body)
    assert [b.count for b in writer.blocks] == [4, 4, 2]
    assert writer.partial_blocks == 1
    assert writer.keys_written == 10
    got = np.concatenate([em.store(0).peek(b.bid) for b in writer.blocks])
    assert np.array_equal(got, np.arange(10, dtype=np.uint64))


def test_writer_first_keys_recorded():
    cluster, em, writer = _writer(block_elems=4)

    def body():
        yield from writer.add(np.arange(100, 108, dtype=np.uint64))
        yield from writer.flush()
        yield from writer.drain()

    run_writer(cluster, body)
    assert [b.first_key for b in writer.blocks] == [100, 104]
    assert writer.partial_blocks == 0


def test_writer_accumulates_across_adds():
    cluster, em, writer = _writer(block_elems=8)

    def body():
        for start in range(0, 20, 5):
            yield from writer.add(np.arange(start, start + 5, dtype=np.uint64))
        yield from writer.flush()
        yield from writer.drain()

    run_writer(cluster, body)
    assert sum(b.count for b in writer.blocks) == 20
    got = np.concatenate([em.store(0).peek(b.bid) for b in writer.blocks])
    assert np.array_equal(got, np.arange(20, dtype=np.uint64))


def test_writer_empty_add_and_flush_noop():
    cluster, em, writer = _writer()

    def body():
        yield from writer.add(np.empty(0, np.uint64))
        yield from writer.flush()
        yield from writer.drain()

    run_writer(cluster, body)
    assert writer.blocks == []


def test_writer_requires_outstanding_slot():
    cluster = Cluster(1)
    em = ExternalMemory(cluster, 1 * MiB, 4)
    with pytest.raises(ValueError):
        StreamBlockWriter(em.store(0), "t", [], max_outstanding=0)


def test_segment_block_fields():
    from repro.em import BID

    sb = SegmentBlock(BID(0, 1, 2), 7, 42)
    assert sb.bid.disk == 1 and sb.count == 7 and sb.first_key == 42
