"""Tests for prediction-sequence prefetch scheduling (Appendix A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.em import (
    naive_schedule,
    optimal_prefetch_schedule,
    prediction_order,
    schedule_is_valid,
    schedule_steps,
)


def test_prediction_order_sorts_by_key_then_run():
    entries = [(5, 0, 0), (3, 1, 0), (3, 0, 1), (1, 2, 0)]
    assert prediction_order(entries) == [3, 2, 1, 0]


def test_naive_schedule_identity():
    assert naive_schedule(4) == [0, 1, 2, 3]


def test_optimal_schedule_is_permutation():
    disks = [0, 1, 0, 1, 2, 2, 0]
    sched = optimal_prefetch_schedule(disks, n_buffers=2, n_disks=3)
    assert sorted(sched) == list(range(len(disks)))


def test_optimal_schedule_empty():
    assert optimal_prefetch_schedule([], 4, 2) == []


def test_optimal_schedule_requires_buffers():
    with pytest.raises(ValueError):
        optimal_prefetch_schedule([0], 0, 1)


def test_optimal_schedule_rejects_bad_disk_ids():
    with pytest.raises(ValueError):
        optimal_prefetch_schedule([0, 3], 2, 2)


def test_single_disk_schedule_is_prediction_order():
    sched = optimal_prefetch_schedule([0] * 6, n_buffers=3, n_disks=1)
    assert sched == list(range(6))


def test_optimal_schedule_valid_on_adversarial_sequence():
    # All early blocks on one disk, late blocks spread: naive with few
    # buffers stalls; the optimal schedule must stay valid.
    disks = [0] * 6 + [1, 2, 3] * 2
    w = 4
    sched = optimal_prefetch_schedule(disks, w, 4)
    assert schedule_is_valid(sched, disks, w, 4)


def test_validity_checker_rejects_non_permutation():
    assert not schedule_is_valid([0, 0], [0, 1], 2, 2)


def test_validity_checker_rejects_late_fetch():
    # Fetching the first-needed block last with one buffer cannot work.
    disks = [0, 0, 0]
    assert not schedule_is_valid([2, 1, 0], disks, 1, 1)
    assert schedule_steps([2, 1, 0], disks, 1, 1) is None


@settings(max_examples=200, deadline=None)
@given(
    disks=st.lists(st.integers(0, 3), min_size=1, max_size=60),
    buffers=st.integers(1, 12),
)
def test_optimal_schedule_always_valid(disks, buffers):
    """Duality guarantee: the schedule never starves the consumer."""
    sched = optimal_prefetch_schedule(disks, buffers, 4)
    assert sorted(sched) == list(range(len(disks)))
    assert schedule_is_valid(sched, disks, buffers, 4)


@settings(max_examples=100, deadline=None)
@given(disks=st.lists(st.integers(0, 3), min_size=1, max_size=40))
def test_naive_schedule_valid_with_ample_buffers(disks):
    """With W >= n the naive order trivially works."""
    sched = naive_schedule(len(disks))
    assert schedule_is_valid(sched, disks, len(disks), 4)


def test_optimal_beats_naive_on_bursty_sequence():
    """A sequence where prediction-order fetching idles the other disks.

    The optimal schedule pulls later blocks of idle disks forward during
    a one-disk burst, finishing in fewer lock-step I/O steps.
    """
    disks = [3, 0, 2, 3, 0, 0, 0, 3, 1, 3, 0, 2, 2, 2]
    w = 5
    opt = optimal_prefetch_schedule(disks, w, 4)
    assert schedule_is_valid(opt, disks, w, 4)
    so = schedule_steps(opt, disks, w, 4)
    sn = schedule_steps(naive_schedule(len(disks)), disks, w, 4)
    assert so is not None and sn is not None
    assert so < sn


def test_naive_never_faster_than_optimal_randomized():
    import numpy as np

    rng = np.random.default_rng(2)
    for _ in range(100):
        n = int(rng.integers(1, 60))
        disks = list(map(int, rng.integers(0, 4, n)))
        w = int(rng.integers(1, 12))
        opt = optimal_prefetch_schedule(disks, w, 4)
        so = schedule_steps(opt, disks, w, 4)
        sn = schedule_steps(naive_schedule(n), disks, w, 4)
        assert so is not None
        if sn is not None:
            assert so <= sn


# -- edge cases: W < D, idle disks, degenerate disk counts --------------------


def test_empty_sequence_allows_zero_disks():
    # n == 0 has nothing to validate: no blocks, no disks, empty schedule.
    assert optimal_prefetch_schedule([], 4, 0) == []


def test_nonempty_sequence_rejects_nonpositive_disk_count():
    with pytest.raises(ValueError):
        optimal_prefetch_schedule([0], 2, 0)
    with pytest.raises(ValueError):
        optimal_prefetch_schedule([0], 2, -1)


def test_idle_disks_are_harmless():
    # All blocks queue on one disk of four; three disks are empty the
    # whole time.  The schedule degrades to prediction order.
    sched = optimal_prefetch_schedule([2] * 10, 3, 4)
    assert sched == list(range(10))
    assert schedule_is_valid(sched, [2] * 10, 3, 4)


@settings(max_examples=200, deadline=None)
@given(
    disks=st.lists(st.integers(0, 7), min_size=1, max_size=60),
    buffers=st.integers(1, 3),
)
def test_schedule_valid_with_fewer_buffers_than_disks(disks, buffers):
    """W < D: the pool cannot cover the disks, yet the duality still
    yields a valid never-starving schedule (it just stripes narrower)."""
    sched = optimal_prefetch_schedule(disks, buffers, 8)
    assert sorted(sched) == list(range(len(disks)))
    assert schedule_is_valid(sched, disks, buffers, 8)
    assert schedule_steps(sched, disks, buffers, 8) is not None


# -- the native planner obeys the same invariants -----------------------------
#
# repro.native.pipeline builds its fetch orders from these primitives;
# the properties below are the ones its Prefetcher relies on: the plan
# is a permutation of the requests and, replayed against the prediction
# sequence, never starves a W-block buffer pool.


@settings(max_examples=150, deadline=None)
@given(
    reqs=st.lists(
        st.tuples(st.integers(0, 50), st.integers(0, 3)),
        min_size=1,
        max_size=40,
    ),
    buffers=st.integers(1, 8),
)
def test_plan_fetch_order_is_valid_schedule(reqs, buffers):
    from repro.native.pipeline import plan_fetch_order

    file_ids = [f for _k, f in reqs]
    seen: dict = {}
    triples = []
    for key, f in reqs:
        b = seen.get(f, 0)  # block index within its file: triples unique
        seen[f] = b + 1
        triples.append((key, f, b))
    order = plan_fetch_order(triples, file_ids, buffers)
    assert sorted(order) == list(range(len(reqs)))
    pred = prediction_order(triples)
    pos_in_pred = {req: pos for pos, req in enumerate(pred)}
    sched = [pos_in_pred[i] for i in order]
    disks = [file_ids[req] for req in pred]
    n_disks = max(file_ids) + 1
    assert schedule_is_valid(sched, disks, buffers, n_disks)
    assert schedule_steps(sched, disks, buffers, n_disks) is not None


@settings(max_examples=150, deadline=None)
@given(
    file_ids=st.lists(st.integers(0, 3), min_size=1, max_size=40),
    buffers=st.integers(1, 8),
)
def test_sequential_fetch_order_never_starves(file_ids, buffers):
    from repro.native.pipeline import sequential_fetch_order

    order = sequential_fetch_order(file_ids, buffers)
    assert sorted(order) == list(range(len(file_ids)))
    # Identity prediction: request indices double as prediction positions.
    assert schedule_is_valid(order, file_ids, buffers, max(file_ids) + 1)


def test_schedule_steps_counts_parallel_disks():
    # 4 blocks on 4 different disks with ample buffers: one step each,
    # plus the pipeline fill.
    disks = [0, 1, 2, 3]
    assert schedule_steps(naive_schedule(4), disks, 8, 4) == 1
    # All on one disk: strictly one per step.
    assert schedule_steps(naive_schedule(4), [0, 0, 0, 0], 8, 4) == 4
