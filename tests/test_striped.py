"""Tests for the globally striped mergesort (paper Section III)."""

import numpy as np
import pytest

from repro import Cluster, GlobalStripedMergeSort
from repro.workloads import generate_input, input_keys
from tests.helpers import small_config


def run_striped(kind="random", n_nodes=4, fan_in=None, **overrides):
    cfg = small_config(**overrides)
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, kind)
    before = np.sort(np.concatenate(input_keys(em, inputs)))
    sorter = GlobalStripedMergeSort(cluster, cfg, fan_in=fan_in)
    result = sorter.sort(em, inputs)
    return cluster, cfg, em, before, result


@pytest.mark.parametrize("kind", ["random", "worstcase", "duplicates", "sorted"])
@pytest.mark.parametrize("n_nodes", [1, 2, 4])
def test_striped_sorts_correctly(kind, n_nodes):
    _cl, _cfg, em, before, result = run_striped(kind, n_nodes)
    assert np.array_equal(before, result.global_keys(em))


def test_output_striped_round_robin_over_machine():
    _cl, _cfg, em, _before, result = run_striped("random", 4)
    nodes = [b.bid.node for b in result.output.blocks]
    disks = [(b.bid.node, b.bid.disk) for b in result.output.blocks]
    # Subsequent blocks land on subsequent disks of the machine.
    n_slots = 4 * 4
    for i in range(1, min(len(disks), n_slots)):
        prev = disks[i - 1][0] * 4 + disks[i - 1][1]
        cur = disks[i][0] * 4 + disks[i][1]
        assert cur == (prev + 1) % n_slots


def test_two_passes_of_io():
    _cl, cfg, _em, _before, result = run_striped("random", 4)
    n_bytes = cfg.total_bytes(4)
    assert result.stats.total_io_bytes == pytest.approx(4 * n_bytes, rel=0.1)
    assert result.merge_passes == 1


def test_communication_several_traversals():
    """§III: data is communicated ~4x (sort + striped write, twice)."""
    _cl, cfg, _em, _before, result = run_striped("random", 4)
    n_bytes = cfg.total_bytes(4)
    assert result.stats.network_bytes >= 2.0 * n_bytes
    assert result.stats.network_bytes <= 5.0 * n_bytes


def test_multiple_merge_passes_with_tiny_fan_in():
    _cl, _cfg, em, before, result = run_striped("random", 2, fan_in=2)
    assert result.merge_passes >= 2
    assert np.array_equal(before, result.global_keys(em))


def test_multi_pass_costs_more_io():
    _cl, cfg, _em, _b, single = run_striped("random", 2)
    _cl, _cfg, _em, _b, multi = run_striped("random", 2, fan_in=2)
    assert multi.stats.total_io_bytes > 1.4 * single.stats.total_io_bytes


def test_run_count_recorded():
    cl, cfg, _em, _before, result = run_striped("random", 2)
    assert result.n_runs == cfg.n_runs(cl.spec)


def test_striped_handles_single_node():
    _cl, _cfg, em, before, result = run_striped("random", 1)
    assert np.array_equal(before, result.global_keys(em))
