"""The TCP transport's own guarantees: framing, rendezvous, failure model.

The contract tests (test_comm_contract.py) prove TcpComm behaves like any
other ``Comm``; this file tests what only the socket transport has — the
wire format's integrity checks, the coordinator handshake, backoff, and
the three failure shapes (wedged peer, severed peer, announced GOODBYE).
"""

import random
import socket
import threading
import time

import pytest

from repro.native.comm_api import CommError, CommTimeout
from repro.net.framing import (
    FRAME_HEADER,
    KIND_GOODBYE,
    KIND_HELLO,
    KIND_MSG,
    KIND_RESULT,
    MAGIC,
    MAX_META_BYTES,
    VERSION,
    recv_frame,
    send_frame,
    send_raw_frame,
)
from repro.net.rendezvous import (
    Coordinator,
    backoff_delays,
    connect_with_backoff,
    join_mesh,
    parse_hostport,
)
from repro.net.tcp import TcpComm


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    yield a, b
    a.close()
    b.close()


def _drain(sock, nbytes):
    """Read exactly nbytes of raw framed stream off a socket."""
    buf = bytearray()
    while len(buf) < nbytes:
        chunk = sock.recv(nbytes - len(buf))
        assert chunk, "stream ended early"
        buf.extend(chunk)
    return buf


# -- framing ------------------------------------------------------------------


def test_control_frame_roundtrip(pair):
    a, b = pair
    sent = send_frame(a, KIND_HELLO, ("hello", 3, ("127.0.0.1", 9999), True))
    kind, msg, epoch, _fence, total = recv_frame(b)
    assert kind == KIND_HELLO
    assert msg == ("hello", 3, ("127.0.0.1", 9999), True)
    assert epoch == 0
    assert total == sent


def test_raw_payload_roundtrip_reattaches_buffer(pair):
    a, b = pair
    blob = bytes(range(256)) * 17  # >= RAW_THRESHOLD: gather-write path
    send_frame(a, KIND_MSG, ("__xch__", 7, ("piece", blob)))
    # The RAW split peels the *trailing* buffer of the outer tuple only;
    # here the buffer is nested, so it rides in the pickle.
    _kind, msg, _epoch, _fence, _total = recv_frame(b)
    assert bytes(msg[2][1]) == blob

    send_frame(a, KIND_MSG, ("chunk", 0, blob))
    _kind, msg, epoch, _fence, total = recv_frame(b)
    assert msg[0] == "chunk"
    assert isinstance(msg[2], bytearray)  # zero-copy receive buffer
    assert bytes(msg[2]) == blob
    assert total > len(blob)  # header + pickled meta + payload


def test_small_trailing_buffer_stays_in_the_pickle(pair):
    a, b = pair
    small = b"\x01" * 64  # below RAW_THRESHOLD
    send_frame(a, KIND_MSG, ("chunk", 1, small))
    _kind, msg, _epoch, _fence, _total = recv_frame(b)
    assert msg == ("chunk", 1, small)


def test_collective_tag_is_stamped_into_the_header(pair):
    a, b = pair
    send_frame(a, KIND_MSG, ("__ag__", 42, "payload"))
    _kind, _msg, epoch, _fence, _total = recv_frame(b)
    assert epoch == 42


def test_epoch_header_disagreement_is_rejected(pair):
    a, b = pair
    send_frame(a, KIND_MSG, ("__ag__", 5, None), epoch=9)
    with pytest.raises(CommError, match="epoch.*disagrees"):
        recv_frame(b)


def test_crc_corruption_is_rejected(pair):
    a, b = pair
    nbytes = send_frame(a, KIND_MSG, ("hello", 1))
    framed = _drain(b, nbytes)
    framed[FRAME_HEADER.size + 2] ^= 0xFF  # flip one meta byte in flight
    c, d = socket.socketpair()
    try:
        d.settimeout(5.0)
        c.sendall(framed)
        with pytest.raises(CommError, match="CRC mismatch"):
            recv_frame(d)
    finally:
        c.close()
        d.close()


def test_bad_magic_is_rejected(pair):
    a, b = pair
    a.sendall(b"XX" + bytes(FRAME_HEADER.size - 2))
    with pytest.raises(CommError, match="bad frame header"):
        recv_frame(b)


def test_unknown_kind_is_rejected(pair):
    a, b = pair
    a.sendall(FRAME_HEADER.pack(MAGIC, VERSION, 99, 0, 0, 0, 0, 0, 0, 0))
    with pytest.raises(CommError, match="unknown frame kind"):
        recv_frame(b)


def test_implausible_length_is_rejected(pair):
    a, b = pair
    a.sendall(
        FRAME_HEADER.pack(
            MAGIC, VERSION, KIND_MSG, 0, 0, 0, 0, MAX_META_BYTES + 1, 0, 0
        )
    )
    with pytest.raises(CommError, match="implausible frame lengths"):
        recv_frame(b)


def test_mid_frame_eof_is_a_torn_frame(pair):
    a, b = pair
    a.sendall(FRAME_HEADER.pack(MAGIC, VERSION, KIND_MSG, 0, 0, 0, 0, 100, 0, 0))
    a.sendall(b"only twenty bytes...")
    a.close()
    with pytest.raises(CommError, match="torn frame"):
        recv_frame(b)


def test_clean_eof_between_frames_is_none(pair):
    a, b = pair
    send_frame(a, KIND_MSG, ("hello", 1))
    a.close()
    assert recv_frame(b)[1] == ("hello", 1)
    assert recv_frame(b) is None


def test_raw_frame_carries_preencoded_bytes_and_bad_pickles_fail(pair):
    a, b = pair
    send_raw_frame(a, KIND_RESULT, b"this is not a pickle")
    with pytest.raises(CommError, match="undecodable frame meta"):
        recv_frame(b)


def test_wedged_sender_times_out_mid_frame(pair):
    a, b = pair
    a.sendall(FRAME_HEADER.pack(MAGIC, VERSION, KIND_MSG, 0, 0, 0, 0, 1024, 0, 0))
    b.settimeout(0.2)
    with pytest.raises(CommTimeout, match="wedged"):
        recv_frame(b)


# -- rendezvous helpers -------------------------------------------------------


def test_parse_hostport():
    assert parse_hostport("10.0.0.7:7070") == ("10.0.0.7", 7070)
    assert parse_hostport("7070") == ("127.0.0.1", 7070)
    assert parse_hostport(":7070") == ("127.0.0.1", 7070)
    with pytest.raises(ValueError, match="invalid port"):
        parse_hostport("host:notaport")
    with pytest.raises(ValueError, match="out of range"):
        parse_hostport("host:70000")


def test_backoff_delays_are_jittered_exponential_and_capped():
    gen = backoff_delays(random.Random(7))
    delays = [next(gen) for _ in range(10)]
    nominal = 0.05
    for d in delays:
        assert 0.5 * nominal <= d <= 1.5 * nominal
        nominal = min(2.0, nominal * 2.0)
    # Deterministic for a given seed (replayable connect traces).
    gen2 = backoff_delays(random.Random(7))
    assert delays == [next(gen2) for _ in range(10)]
    # The cap holds forever.
    for _ in range(20):
        assert next(gen) <= 2.0 * 1.5


def test_connect_with_backoff_outlives_a_late_listener():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    def listen_late():
        time.sleep(0.25)
        server = socket.socket()
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", port))
        server.listen(1)
        time.sleep(1.0)
        server.close()

    t = threading.Thread(target=listen_late, daemon=True)
    t.start()
    sock = connect_with_backoff(("127.0.0.1", port), time.monotonic() + 10.0)
    sock.close()
    t.join()


def test_connect_with_backoff_gives_up_at_the_deadline():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    t0 = time.monotonic()
    with pytest.raises(CommTimeout, match="could not connect"):
        connect_with_backoff(("127.0.0.1", port), t0 + 0.5)
    assert time.monotonic() - t0 < 5.0


# -- rendezvous end-to-end ----------------------------------------------------


def test_rendezvous_builds_a_full_mesh_and_delivers_the_job():
    n = 3
    coordinator = Coordinator(n)
    job_sent = {"what": "a pickled job", "n": n}
    results = {}

    def worker(rank):
        job, coord, socks = join_mesh(coordinator.addr, rank, connect_timeout=15.0)
        try:
            assert sorted(socks) == [p for p in range(n) if p != rank]
            # Prove every mesh edge is a live, correctly-paired channel.
            for peer, sock in socks.items():
                send_frame(sock, KIND_MSG, ("hi", rank))
            greetings = {}
            for peer, sock in socks.items():
                sock.settimeout(10.0)
                _kind, msg, _epoch, _fence, _n = recv_frame(sock)
                greetings[peer] = msg
            # The coordinator socket is the result channel.
            send_frame(coord, KIND_RESULT, ("done", rank))
            results[rank] = (job, greetings)
        finally:
            for sock in socks.values():
                sock.close()
            coord.close()

    threads = [threading.Thread(target=worker, args=(r,)) for r in range(n)]
    for t in threads:
        t.start()
    conns = coordinator.wait_for_workers(job_sent, time.monotonic() + 15.0)
    try:
        assert sorted(conns) == list(range(n))
        for rank, sock in conns.items():
            sock.settimeout(10.0)
            kind, msg, _epoch, _fence, _n = recv_frame(sock)
            assert kind == KIND_RESULT and msg == ("done", rank)
    finally:
        for sock in conns.values():
            sock.close()
        coordinator.close()
    for t in threads:
        t.join(timeout=15.0)
        assert not t.is_alive()
    for rank in range(n):
        job, greetings = results[rank]
        assert job == job_sent  # bare workers asked for and got the job
        assert greetings == {
            p: ("hi", p) for p in range(n) if p != rank
        }


def test_rendezvous_rejects_duplicate_ranks():
    coordinator = Coordinator(2)
    worker_errors = []

    def worker():
        try:
            join_mesh(coordinator.addr, 0, connect_timeout=10.0)
        except CommError as exc:
            worker_errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for t in threads:
        t.start()
    try:
        with pytest.raises(CommError, match="duplicate announcement for rank 0"):
            coordinator.wait_for_workers({}, time.monotonic() + 10.0)
    finally:
        coordinator.close()
    for t in threads:
        t.join(timeout=10.0)
        assert not t.is_alive()
    # Both workers see a clean CommError, not a hang: the coordinator
    # closed their rendezvous sockets before WELCOME.
    assert len(worker_errors) == 2


def test_coordinator_tolerates_probe_connections():
    coordinator = Coordinator(1)

    def probe_then_join():
        probe = socket.create_connection(coordinator.addr)
        probe.close()  # port scan / health check: no HELLO at all
        job, coord, socks = join_mesh(coordinator.addr, 0, connect_timeout=10.0)
        coord.close()

    t = threading.Thread(target=probe_then_join)
    t.start()
    try:
        conns = coordinator.wait_for_workers({"job": 1}, time.monotonic() + 10.0)
        for sock in conns.values():
            sock.close()
    finally:
        coordinator.close()
    t.join(timeout=10.0)
    assert not t.is_alive()


# -- TcpComm failure model ----------------------------------------------------


def _tcp_mesh(n, timeout=2.0, heartbeat_s=0.2):
    socks = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            a, b = socket.socketpair()
            socks[i][j] = a
            socks[j][i] = b
    return [
        TcpComm(r, n, socks[r], timeout=timeout, heartbeat_s=heartbeat_s)
        for r in range(n)
    ]


def test_wedged_peer_surfaces_as_mid_frame_timeout():
    comms = _tcp_mesh(2, timeout=0.5)
    try:
        comms[0].wedge()
        with pytest.raises(CommTimeout, match="peer 0 wedged mid-frame"):
            comms[1].recv_match(lambda p, m: True, timeout=5.0)
    finally:
        for c in comms:
            c.close()


def test_severed_peer_surfaces_as_dead_pe():
    comms = _tcp_mesh(2)
    try:
        comms[0].sever()
        with pytest.raises(CommError, match=r"dead PE"):
            comms[1].recv_match(lambda p, m: True, timeout=5.0)
    finally:
        for c in comms:
            c.close()


def test_goodbye_close_is_not_a_dead_pe():
    comms = _tcp_mesh(2)
    comms[0].close()
    try:
        # The peer's deliberate close must degrade to silence (timeout),
        # never to the dead-PE protocol error a kill produces.
        with pytest.raises(CommTimeout):
            comms[1].recv_match(lambda p, m: True, timeout=0.4)
        assert 0 not in comms[1].socks  # channel dropped after GOODBYE
    finally:
        comms[1].close()


def test_timeout_diagnoses_protocol_stall_vs_silent_peer():
    # Both alive and heartbeating: a timeout is a protocol stall.
    comms = _tcp_mesh(2, heartbeat_s=0.05)
    try:
        with pytest.raises(CommTimeout, match="protocol stall"):
            comms[0].recv_match(lambda p, m: False, timeout=0.5)
    finally:
        for c in comms:
            c.close()

    # A peer that never heartbeats (raw socket, no TcpComm behind it) is
    # named as silent.
    a, b = socket.socketpair()
    comm = TcpComm(0, 2, {1: a}, timeout=2.0, heartbeat_s=0.05)
    try:
        time.sleep(0.3)
        with pytest.raises(CommTimeout, match="peers silent past the heartbeat"):
            comm.recv_match(lambda p, m: True, timeout=0.2)
    finally:
        comm.close()
        b.close()


def test_heartbeats_flow_while_the_protocol_is_idle():
    comms = _tcp_mesh(2, heartbeat_s=0.05)
    try:
        # No protocol traffic at all; poll long enough for several beats.
        with pytest.raises(CommTimeout):
            comms[1].recv_match(lambda p, m: False, timeout=0.4)
        assert comms[1].socket_bytes_received >= FRAME_HEADER.size
        age = time.monotonic() - comms[1].last_heard[0]
        assert age < 1.0
    finally:
        for c in comms:
            c.close()
