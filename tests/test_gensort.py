"""Tests for the gensort/SortBenchmark record generator."""

import numpy as np
import pytest

from repro import (
    Cluster,
    CanonicalMergeSort,
    ELEM_SORTBENCH_100B,
    MiB,
    generate_gensort_input,
    input_keys,
    validate_output,
)
from repro.workloads.gensort import (
    KEY_BYTES,
    RECORD_BYTES,
    record_bytes,
    record_checksum,
    record_key_bytes,
    record_keys,
)
from tests.helpers import small_config


def test_keys_deterministic():
    assert np.array_equal(record_keys(0, 64, seed=3), record_keys(0, 64, seed=3))


def test_keys_depend_on_seed():
    assert not np.array_equal(record_keys(0, 64, seed=3), record_keys(0, 64, seed=4))


def test_skip_ahead_consistency():
    """Any sub-range regenerates identically — gensort's key property."""
    whole = record_keys(0, 1000, seed=7)
    for start, count in [(0, 10), (500, 100), (990, 10)]:
        assert np.array_equal(whole[start : start + count],
                              record_keys(start, count, seed=7))


def test_keys_roughly_uniform():
    keys = record_keys(0, 50_000, seed=1)
    # Mean of uniform uint64 is 2^63; allow 2% drift.
    assert abs(float(keys.mean()) / 2 ** 63 - 1.0) < 0.02


def test_skew_mode_duplicates():
    keys = record_keys(0, 10_000, seed=1, skew=True)
    assert len(np.unique(keys)) <= 4096


def test_key_bytes_prefix_matches_uint64_key():
    keys = record_keys(0, 100, seed=2)
    kb = record_key_bytes(0, 100, seed=2)
    assert kb.shape == (100, KEY_BYTES)
    prefix = kb[:, :8].copy().view(">u8").reshape(-1)
    assert np.array_equal(prefix.astype(np.uint64), keys)


def test_key_byte_order_matches_key_order():
    """Lexicographic byte order == numeric order of the uint64 keys."""
    keys = record_keys(0, 200, seed=5)
    kb = record_key_bytes(0, 200, seed=5)
    order_num = np.argsort(keys, kind="stable")
    order_lex = sorted(range(200), key=lambda i: bytes(kb[i]))
    assert list(order_num) == order_lex


def test_record_bytes_layout():
    recs = record_bytes(0, 3, seed=0)
    assert recs.shape == (3, RECORD_BYTES)
    # Record number field is ASCII digits.
    num = bytes(recs[2, KEY_BYTES : KEY_BYTES + 32]).decode()
    assert num == f"{2:032d}"
    assert recs[0, 98] == ord("\r") and recs[0, 99] == ord("\n")


def test_record_bytes_empty_range():
    assert record_bytes(0, 0).shape == (0, RECORD_BYTES)


def test_checksum_splits_additively():
    whole = record_checksum(0, 1000, seed=9)
    a = record_checksum(0, 400, seed=9)
    b = record_checksum(400, 600, seed=9)
    assert whole == (a + b) & 0xFFFFFFFFFFFFFFFF


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        record_keys(0, -1)


def test_generate_gensort_input_requires_100b_element():
    cfg = small_config()  # 16-byte element
    with pytest.raises(ValueError):
        generate_gensort_input(Cluster(1), cfg)


def test_gensort_end_to_end_sort():
    cfg = small_config(element=ELEM_SORTBENCH_100B, data_per_node_bytes=24 * MiB,
                       memory_bytes=8 * MiB)
    cluster = Cluster(3)
    em, inputs = generate_gensort_input(cluster, cfg, seed=13)
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    assert validate_output(before, result.output_keys(em)).ok


def test_gensort_nodes_hold_disjoint_index_ranges():
    cfg = small_config(element=ELEM_SORTBENCH_100B)
    cluster = Cluster(2)
    em, inputs = generate_gensort_input(cluster, cfg, seed=4)
    n = cfg.keys_per_node
    parts = input_keys(em, inputs)
    assert np.array_equal(parts[0], record_keys(0, n, seed=4))
    assert np.array_equal(parts[1], record_keys(n, n, seed=4))


def test_reconstruct_sorted_records_roundtrip():
    """Sort the keys, regenerate the records, validate at byte level."""
    from repro.workloads.gensort import reconstruct_sorted_records, valsort_records

    n = 300
    keys = record_keys(0, n, seed=21)
    sorted_keys = np.sort(keys)
    records = reconstruct_sorted_records(sorted_keys, n, seed=21)
    assert records.shape == (n, RECORD_BYTES)
    assert valsort_records(records)
    # Leading key bytes match the sorted key stream.
    prefix = records[:, :8].copy().view(">u8").reshape(-1)
    assert np.array_equal(prefix.astype(np.uint64), sorted_keys)
    # Every record number appears exactly once (true permutation).
    numbers = {
        bytes(records[i, 10:42]).decode() for i in range(n)
    }
    assert numbers == {f"{i:032d}" for i in range(n)}


def test_valsort_records_detects_disorder():
    from repro.workloads.gensort import valsort_records

    recs = record_bytes(0, 5, seed=2)
    order = np.argsort(record_keys(0, 5, seed=2))
    sorted_recs = recs[order]
    assert valsort_records(sorted_recs)
    swapped = sorted_recs[::-1].copy()
    if len(np.unique(record_keys(0, 5, seed=2))) > 1:
        assert not valsort_records(swapped)


def test_end_to_end_record_level_validation():
    """Cluster sort + record reconstruction + valsort, end to end."""
    from repro.workloads.gensort import reconstruct_sorted_records, valsort_records

    cfg = small_config(element=ELEM_SORTBENCH_100B, data_per_node_bytes=8 * MiB,
                       memory_bytes=4 * MiB, block_elems=8)
    cluster = Cluster(2)
    em, inputs = generate_gensort_input(cluster, cfg, seed=9)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    total = cfg.keys_per_node * 2
    all_sorted = np.concatenate(result.output_keys(em))
    records = reconstruct_sorted_records(all_sorted, total, seed=9)
    assert valsort_records(records)
