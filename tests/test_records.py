"""Tests for record types and vectorized key-array kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.records import (
    ELEM_PAPER_16B,
    ELEM_SORTBENCH_100B,
    KEY_DTYPE,
    ElementType,
    as_keys,
    checksum,
    exact_multiway_partition,
    is_sorted,
    merge_sorted_arrays,
    partition_by_splitters,
)

keys_lists = st.lists(st.integers(0, 50), max_size=30)


# ------------------------------------------------------------ ElementType


def test_paper_element_shape():
    assert ELEM_PAPER_16B.elem_bytes == 16
    assert ELEM_PAPER_16B.key_bytes == 8
    assert ELEM_PAPER_16B.payload_bytes == 8


def test_sortbench_element_shape():
    assert ELEM_SORTBENCH_100B.elem_bytes == 100
    assert ELEM_SORTBENCH_100B.key_bytes == 10
    assert ELEM_SORTBENCH_100B.payload_bytes == 90


def test_element_conversions_roundtrip():
    e = ELEM_SORTBENCH_100B
    assert e.count_to_bytes(10) == 1000
    assert e.bytes_to_count(1000) == 10


def test_element_key_larger_than_record_rejected():
    with pytest.raises(ValueError):
        ElementType("bad", elem_bytes=4, key_bytes=8)


# ----------------------------------------------------------------- kernels


def test_as_keys_coerces_dtype():
    arr = as_keys([3, 1, 2])
    assert arr.dtype == KEY_DTYPE


def test_is_sorted_cases():
    assert is_sorted(np.array([], dtype=KEY_DTYPE))
    assert is_sorted(np.array([5], dtype=KEY_DTYPE))
    assert is_sorted(np.array([1, 1, 2], dtype=KEY_DTYPE))
    assert not is_sorted(np.array([2, 1], dtype=KEY_DTYPE))


@settings(max_examples=100, deadline=None)
@given(st.lists(keys_lists, max_size=6))
def test_merge_sorted_arrays_equals_sorted_concat(lists):
    arrays = [np.sort(np.array(x, dtype=KEY_DTYPE)) for x in lists]
    got = merge_sorted_arrays(list(arrays))
    everything = [v for x in lists for v in x]
    assert list(got) == sorted(everything)


def test_merge_sorted_arrays_empty():
    assert len(merge_sorted_arrays([])) == 0
    assert len(merge_sorted_arrays([np.empty(0, KEY_DTYPE)])) == 0


def test_checksum_order_independent():
    a = np.array([1, 2, 3], dtype=KEY_DTYPE)
    b = np.array([3, 1, 2], dtype=KEY_DTYPE)
    assert checksum(a) == checksum(b)


def test_checksum_wraps_at_64_bits():
    big = np.array([2 ** 63, 2 ** 63, 5], dtype=KEY_DTYPE)
    assert checksum(big) == 5  # 2^64 wraps to zero


def test_checksum_empty():
    assert checksum(np.empty(0, KEY_DTYPE)) == 0


def test_checksum_detects_changes():
    a = np.arange(100, dtype=KEY_DTYPE)
    b = a.copy()
    b[17] += 1
    assert checksum(a) != checksum(b)


# ------------------------------------------------- exact multiway partition


def _check_partition(seqs, rank, positions):
    assert sum(positions) == rank
    left = [
        (int(s[i]), j, i) for j, s in enumerate(seqs) for i in range(positions[j])
    ]
    right = [
        (int(s[i]), j, i)
        for j, s in enumerate(seqs)
        for i in range(positions[j], len(s))
    ]
    if left and right:
        assert max(left) < min(right)


@settings(max_examples=200, deadline=None)
@given(st.lists(keys_lists, min_size=1, max_size=6), st.data())
def test_exact_multiway_partition_property(lists, data):
    seqs = [np.sort(np.array(x, dtype=KEY_DTYPE)) for x in lists]
    total = sum(len(s) for s in seqs)
    rank = data.draw(st.integers(0, total))
    positions = exact_multiway_partition(seqs, rank)
    _check_partition(seqs, rank, positions)


def test_exact_multiway_partition_trivial_ranks():
    seqs = [np.array([1, 2], dtype=KEY_DTYPE), np.array([0, 3], dtype=KEY_DTYPE)]
    assert exact_multiway_partition(seqs, 0) == [0, 0]
    assert exact_multiway_partition(seqs, 4) == [2, 2]


def test_exact_multiway_partition_ties_go_left_by_sequence():
    seqs = [np.array([5, 5], dtype=KEY_DTYPE), np.array([5, 5], dtype=KEY_DTYPE)]
    assert exact_multiway_partition(seqs, 1) == [1, 0]
    assert exact_multiway_partition(seqs, 3) == [2, 1]


def test_exact_multiway_partition_bad_rank_rejected():
    with pytest.raises(ValueError):
        exact_multiway_partition([np.array([1], dtype=KEY_DTYPE)], 2)


# -------------------------------------------------- partition_by_splitters


def test_partition_by_splitters_buckets():
    arr = np.array([1, 3, 5, 7, 9], dtype=KEY_DTYPE)
    splitters = np.array([4, 8], dtype=KEY_DTYPE)
    buckets = partition_by_splitters(arr, splitters)
    assert [list(b) for b in buckets] == [[1, 3], [5, 7], [9]]


def test_partition_by_splitters_boundary_goes_right():
    arr = np.array([4, 4, 5], dtype=KEY_DTYPE)
    buckets = partition_by_splitters(arr, np.array([4], dtype=KEY_DTYPE))
    assert [list(b) for b in buckets] == [[], [4, 4, 5]]


@settings(max_examples=100, deadline=None)
@given(keys_lists, st.lists(st.integers(0, 50), max_size=4))
def test_partition_by_splitters_conserves(values, splits):
    arr = np.sort(np.array(values, dtype=KEY_DTYPE))
    splitters = np.sort(np.array(splits, dtype=KEY_DTYPE))
    buckets = partition_by_splitters(arr, splitters)
    assert len(buckets) == len(splitters) + 1
    assert sum(len(b) for b in buckets) == len(arr)
    rebuilt = np.concatenate([b for b in buckets]) if len(arr) else arr
    assert np.array_equal(rebuilt, arr)


@settings(max_examples=100, deadline=None)
@given(st.lists(keys_lists, min_size=1, max_size=5), st.data())
def test_multi_rank_partition_matches_single(lists, data):
    from repro.records import exact_multiway_partition_multi

    seqs = [np.sort(np.array(x, dtype=KEY_DTYPE)) for x in lists]
    total = sum(len(s) for s in seqs)
    ranks = [data.draw(st.integers(0, total)) for _ in range(4)]
    multi = exact_multiway_partition_multi(seqs, ranks)
    for rank, positions in zip(ranks, multi):
        assert positions == exact_multiway_partition(seqs, rank)


def test_multi_rank_partition_rejects_bad_rank():
    from repro.records import exact_multiway_partition_multi

    with pytest.raises(ValueError):
        exact_multiway_partition_multi([np.array([1], dtype=KEY_DTYPE)], [2])
