"""Tests for replacement-selection run formation (§VII future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos import replacement_selection_runs, run_length_stats
from repro.records import is_sorted


def runs_of(keys, memory):
    return list(replacement_selection_runs(keys, memory))


def test_runs_are_sorted_and_conserving():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1000, 500)
    runs = runs_of(keys, memory=32)
    for run in runs:
        assert is_sorted(run)
    assert sorted(np.concatenate(runs).tolist()) == sorted(keys.tolist())


def test_sorted_input_yields_single_run():
    keys = np.arange(1000)
    runs = runs_of(keys, memory=16)
    assert len(runs) == 1
    assert len(runs[0]) == 1000


def test_reverse_sorted_input_degenerates_to_memory_runs():
    keys = np.arange(1000)[::-1]
    runs = runs_of(keys, memory=20)
    assert len(runs) == 50
    assert all(len(run) == 20 for run in runs)


def test_random_input_runs_approach_two_memory():
    """Knuth's snow-plow: expected run length 2M on random input."""
    rng = np.random.default_rng(1)
    stats = run_length_stats(rng.integers(0, 2 ** 60, 40_000), memory=256)
    assert 1.7 <= stats["length_over_memory"] <= 2.3


def test_stats_fields():
    stats = run_length_stats(np.arange(100), memory=10)
    assert stats["n_runs"] == 1
    assert stats["total_keys"] == 100
    assert stats["max_run_length"] == 100


def test_short_input_single_partial_run():
    runs = runs_of(np.array([3, 1, 2]), memory=10)
    assert len(runs) == 1
    assert list(runs[0]) == [1, 2, 3]


def test_empty_input():
    assert runs_of(np.empty(0, dtype=np.int64), memory=4) == []


def test_invalid_memory_rejected():
    with pytest.raises(ValueError):
        runs_of(np.arange(4), memory=0)


def test_duplicates_handled():
    keys = np.array([5, 5, 5, 1, 5, 5, 1])
    runs = runs_of(keys, memory=2)
    assert sorted(np.concatenate(runs).tolist()) == sorted(keys.tolist())
    for run in runs:
        assert is_sorted(run)


@settings(max_examples=150, deadline=None)
@given(
    keys=st.lists(st.integers(0, 100), max_size=200),
    memory=st.integers(1, 32),
)
def test_property_runs_sorted_conserving_and_long_enough(keys, memory):
    runs = runs_of(np.array(keys, dtype=np.uint64), memory)
    rebuilt = sorted(v for run in runs for v in run.tolist())
    assert rebuilt == sorted(keys)
    for run in runs:
        assert is_sorted(run)
    # Every run except possibly the last spans at least `memory` keys.
    for run in runs[:-1]:
        assert len(run) >= min(memory, len(keys))


def test_fewer_runs_than_load_sort():
    """The §VII payoff: ~half the runs of plain memory-load sorting."""
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 2 ** 60, 30_000)
    memory = 500
    load_sort_runs = -(-len(keys) // memory)
    rs_runs = run_length_stats(keys, memory)["n_runs"]
    assert rs_runs <= 0.65 * load_sort_runs
