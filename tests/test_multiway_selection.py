"""Tests for exact multiway selection (§IV-A, Appendix B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algos import (
    multiway_select,
    multiway_select_bisect,
    sample_initial_positions,
    select_coroutine,
)
from repro.records import KEY_DTYPE, exact_multiway_partition

seq_lists = st.lists(
    st.lists(st.integers(0, 40), max_size=25), min_size=1, max_size=6
)


def sorted_seqs(lists):
    return [np.sort(np.array(x, dtype=KEY_DTYPE)) for x in lists]


def check(seqs, rank, positions):
    assert sum(positions) == rank
    left = [(int(s[i]), j, i) for j, s in enumerate(seqs) for i in range(positions[j])]
    right = [
        (int(s[i]), j, i)
        for j, s in enumerate(seqs)
        for i in range(positions[j], len(s))
    ]
    if left and right:
        assert max(left) < min(right)


# ------------------------------------------------ step-halving (paper §IV-A)


@settings(max_examples=250, deadline=None)
@given(seq_lists, st.data())
def test_step_halving_matches_vectorized_partition(lists, data):
    seqs = sorted_seqs(lists)
    total = sum(len(s) for s in seqs)
    rank = data.draw(st.integers(0, total))
    res = multiway_select(seqs, rank)
    check(seqs, rank, res.positions)
    assert res.positions == exact_multiway_partition(seqs, rank)


def test_trivial_ranks_need_no_probes():
    seqs = sorted_seqs([[1, 2, 3], [4, 5]])
    assert multiway_select(seqs, 0).touches == 0
    assert multiway_select(seqs, 5).touches == 0
    assert multiway_select(seqs, 0).positions == [0, 0]
    assert multiway_select(seqs, 5).positions == [3, 2]


def test_boundary_element_is_left_maximum():
    seqs = sorted_seqs([[10, 20, 30], [15, 25]])
    res = multiway_select(seqs, 3)
    key, j, pos = res.boundary
    lefts = [
        (int(s[i]), jj, i)
        for jj, s in enumerate(seqs)
        for i in range(res.positions[jj])
    ]
    assert (key, j, pos) == max(lefts)


def test_duplicate_heavy_selection():
    seqs = sorted_seqs([[7] * 10, [7] * 10, [7] * 10])
    for rank in [0, 1, 15, 29, 30]:
        res = multiway_select(seqs, rank)
        check(seqs, rank, res.positions)


def test_invalid_rank_rejected():
    seqs = sorted_seqs([[1, 2]])
    with pytest.raises(ValueError):
        multiway_select(seqs, 3)
    with pytest.raises(ValueError):
        multiway_select(seqs, -1)


def test_empty_sequences_tolerated():
    seqs = sorted_seqs([[], [1, 2], []])
    res = multiway_select(seqs, 1)
    assert res.positions == [0, 1, 0]


def test_no_sequences_rejected():
    with pytest.raises(ValueError):
        multiway_select([], 0)


def test_coroutine_probe_protocol():
    """The coroutine yields (seq, pos) probes and accepts raw keys."""
    seqs = sorted_seqs([[5, 10], [1, 20]])
    gen = select_coroutine([2, 2], 2)
    probes = []
    try:
        req = next(gen)
        while True:
            probes.append(req)
            j, pos = req
            req = gen.send(int(seqs[j][pos]))
    except StopIteration as stop:
        result = stop.value
    assert result.positions == exact_multiway_partition(seqs, 2)
    assert len(set(probes)) == result.touches


def test_memoization_never_reprobes():
    seqs = sorted_seqs([list(range(30)), list(range(30))])
    gen = select_coroutine([30, 30], 31)
    seen = set()
    try:
        req = next(gen)
        while True:
            assert req not in seen, f"probe {req} repeated"
            seen.add(req)
            j, pos = req
            req = gen.send(int(seqs[j][pos]))
    except StopIteration:
        pass


# ------------------------------------------------------- warm start (App. B)


@settings(max_examples=150, deadline=None)
@given(seq_lists, st.integers(1, 6), st.data())
def test_sampled_warm_start_stays_exact(lists, k, data):
    seqs = sorted_seqs(lists)
    total = sum(len(s) for s in seqs)
    rank = data.draw(st.integers(0, total))
    samples = [s[::k] for s in seqs]
    pos0, step0 = sample_initial_positions(samples, k, rank, [len(s) for s in seqs])
    res = multiway_select(seqs, rank, init_positions=pos0, init_step=step0)
    check(seqs, rank, res.positions)
    assert res.positions == exact_multiway_partition(seqs, rank)


def test_warm_start_slashes_probe_count():
    rng = np.random.default_rng(3)
    seqs = [np.sort(rng.integers(0, 2 ** 40, 4000)).astype(KEY_DTYPE) for _ in range(8)]
    rank = 13000
    cold = multiway_select(seqs, rank)
    samples = [s[::64] for s in seqs]
    pos0, step0 = sample_initial_positions(samples, 64, rank, [len(s) for s in seqs])
    warm = multiway_select(seqs, rank, init_positions=pos0, init_step=step0)
    assert warm.positions == cold.positions
    assert warm.touches * 5 < cold.touches


def test_warm_start_zero_rank():
    pos, step = sample_initial_positions([np.array([1, 2])], 2, 0, [4])
    assert pos == [0]
    assert step == 2


def test_warm_start_invalid_sample_every():
    with pytest.raises(ValueError):
        sample_initial_positions([np.array([1])], 0, 1, [2])


# --------------------------------------------------------- bisection variant


@settings(max_examples=250, deadline=None)
@given(seq_lists, st.data())
def test_bisect_matches_vectorized_partition(lists, data):
    seqs = sorted_seqs(lists)
    total = sum(len(s) for s in seqs)
    rank = data.draw(st.integers(0, total))
    res = multiway_select_bisect(seqs, rank)
    assert res.positions == exact_multiway_partition(seqs, rank)


def test_bisect_probe_count_bounded():
    """O(R log^2 M)-ish even on adversarial long sequences."""
    rng = np.random.default_rng(4)
    seqs = [np.sort(rng.integers(0, 2 ** 50, 8192)).astype(KEY_DTYPE) for _ in range(8)]
    res = multiway_select_bisect(seqs, 30000)
    assert res.positions == exact_multiway_partition(seqs, 30000)
    assert res.touches < 8 * 13 * 13  # R * log^2(M) with slack


def test_bisect_honours_brackets():
    seqs = sorted_seqs([list(range(100)), list(range(100))])
    exact = exact_multiway_partition(seqs, 100)
    res = multiway_select_bisect(seqs, 100, lo=[40, 40], hi=[60, 60])
    assert res.positions == exact


def test_bisect_invalid_bracket_rejected():
    seqs = sorted_seqs([list(range(10))])
    with pytest.raises(ValueError):
        multiway_select_bisect(seqs, 5, lo=[8], hi=[2])


def test_bisect_duplicates_exact():
    seqs = sorted_seqs([[3] * 20, [3] * 20])
    for rank in [0, 1, 19, 20, 39, 40]:
        res = multiway_select_bisect(seqs, rank)
        assert res.positions == exact_multiway_partition(seqs, rank)


def test_fixup_swaps_reported():
    rng = np.random.default_rng(5)
    seqs = [np.sort(rng.integers(0, 1000, 50)).astype(KEY_DTYPE) for _ in range(4)]
    res = multiway_select(seqs, 100)
    assert res.fixup_swaps >= 0  # field exists and is non-negative


# ------------------------- splitter exactness on the conformance corpus


def corpus_runs(entry: str, n_runs: int, n_per_run: int, seed: int):
    """Sorted runs built from a conformance-corpus key distribution —
    the run shapes the selection phase actually faces."""
    from repro.testing import corpus

    return [
        np.sort(corpus.generate(entry, n_per_run, r, n_runs, seed))
        for r in range(n_runs)
    ]


WORST_CASES = ["dup_all", "staircase", "presorted", "zipf", "gensort_dup"]


@pytest.mark.parametrize("entry", WORST_CASES)
@pytest.mark.parametrize("n_workers", [1, 2, 3, 7])
def test_splitter_ranks_exactly_iN_over_P(entry, n_workers):
    """The paper's §IV-A invariant, not weakened to ±1: on every corpus
    worst case the selected splitters hit global rank i·N/P *exactly*,
    for every i and every run count."""
    from repro.testing import oracle

    runs = corpus_runs(entry, n_runs=4, n_per_run=97, seed=13)
    total = sum(len(s) for s in runs)
    splits = []
    for i in range(n_workers + 1):
        target = total if i == n_workers else i * total // n_workers
        res = multiway_select(runs, target)
        assert sum(res.positions) == target  # exact, not ±1
        assert oracle.partition_issues(runs, res.positions, target) == []
        splits.append(res.positions)
    assert oracle.splitter_rank_issues(splits, [len(s) for s in runs], n_workers) == []


@pytest.mark.parametrize("entry", WORST_CASES)
@pytest.mark.parametrize("n_workers", [2, 3, 7])
def test_bisect_splitters_match_step_halving_on_corpus(entry, n_workers):
    runs = corpus_runs(entry, n_runs=3, n_per_run=64, seed=8)
    total = sum(len(s) for s in runs)
    for i in range(1, n_workers):
        target = i * total // n_workers
        assert (
            multiway_select_bisect(runs, target).positions
            == multiway_select(runs, target).positions
            == exact_multiway_partition(runs, target)
        )


@pytest.mark.parametrize("entry", ["dup_all", "staircase"])
def test_sampled_warm_start_exact_on_duplicate_plateaus(entry):
    """The warm start (Appendix B) must not cost exactness on inputs
    where whole sample windows carry one repeated key."""
    runs = corpus_runs(entry, n_runs=4, n_per_run=128, seed=3)
    total = sum(len(s) for s in runs)
    for n_workers in (2, 3, 7):
        for i in range(1, n_workers):
            target = i * total // n_workers
            samples = [s[::16] for s in runs]
            pos0, step0 = sample_initial_positions(
                samples, 16, target, [len(s) for s in runs]
            )
            res = multiway_select(runs, target, init_positions=pos0, init_step=step0)
            assert sum(res.positions) == target
            assert res.positions == exact_multiway_partition(runs, target)
