"""Tests for SortConfig derivations and SortStats accounting."""

import pytest

from repro import ConfigError, MiB, PAPER_MACHINE, SortConfig
from repro.core.stats import PhaseTimer, SortStats
from repro.sim import Simulator

from tests.helpers import small_config


# ----------------------------------------------------------------- config


def test_block_and_key_accounting():
    cfg = SortConfig(
        data_per_node_bytes=64 * MiB, block_bytes=1 * MiB, block_elems=32
    )
    assert cfg.blocks_per_node == 64
    assert cfg.keys_per_node == 64 * 32
    assert cfg.bytes_per_key == 1 * MiB / 32
    assert cfg.total_keys(4) == 4 * 64 * 32
    assert cfg.total_bytes(4) == pytest.approx(4 * 64 * MiB)


def test_downscale_shrinks_simulated_blocks():
    cfg = SortConfig(
        data_per_node_bytes=64 * MiB, block_bytes=1 * MiB, downscale=4
    )
    assert cfg.blocks_per_node == 16
    # Represented bytes are unaffected by downscale per simulated block.
    assert cfg.keys_to_bytes(cfg.block_elems) == 1 * MiB


def test_runs_follow_memory_ratio():
    cfg = small_config()  # 48 MiB data, 16 MiB memory
    assert cfg.piece_blocks(PAPER_MACHINE) == 16
    assert cfg.n_runs(PAPER_MACHINE) == 3


def test_repr_elems_per_key():
    cfg = SortConfig(block_bytes=8 * MiB, block_elems=32)
    # 8 MiB / 32 keys = 256 KiB per key; at 16 B/element that's 16384.
    assert cfg.repr_elems_per_key == pytest.approx((8 * MiB / 32) / 16)


def test_memory_defaults_to_machine_spec():
    cfg = SortConfig(memory_bytes=None)
    assert cfg.resolve_memory_bytes(PAPER_MACHINE) == PAPER_MACHINE.usable_ram


def test_sample_every_defaults_to_block():
    cfg = SortConfig(block_elems=48)
    assert cfg.resolved_sample_every == 48
    assert cfg.with_overrides(sample_every=5).resolved_sample_every == 5


def test_validate_rejects_too_many_runs():
    cfg = SortConfig(
        data_per_node_bytes=1000 * MiB,
        memory_bytes=2 * MiB,
        block_bytes=1 * MiB,
    )
    with pytest.raises(ConfigError, match="two-pass"):
        cfg.validate(PAPER_MACHINE, 4)


def test_validate_rejects_unknown_selection():
    cfg = small_config(selection="telepathy")
    with pytest.raises(ConfigError):
        cfg.validate(PAPER_MACHINE, 2)


def test_validate_rejects_bad_mem_fraction():
    cfg = small_config(alltoall_mem_fraction=0.0)
    with pytest.raises(ConfigError):
        cfg.validate(PAPER_MACHINE, 2)


def test_with_overrides_is_functional():
    cfg = small_config()
    other = cfg.with_overrides(randomize=False)
    assert cfg.randomize and not other.randomize


def test_buffer_defaults_scale_with_disks():
    cfg = SortConfig()
    assert cfg.resolved_prefetch_buffers(PAPER_MACHINE) == 16
    assert cfg.resolved_write_buffers(PAPER_MACHINE) == 8


# ------------------------------------------------------------------ stats


def test_phase_timer_records_wall():
    cfg = small_config(downscale=10)
    stats = SortStats(cfg, 2)
    sim = Simulator()

    def body():
        timer = PhaseTimer(stats, 0, "merge", sim)
        yield sim.timeout(3.0)
        timer.stop()

    sim.run_process(body())
    assert stats.per_node[0]["merge"].wall == 3.0
    assert stats.wall_max("merge") == 3.0
    assert stats.wall_avg("merge") == 1.5


def test_phase_timer_double_stop_rejected():
    cfg = small_config()
    stats = SortStats(cfg, 1)
    sim = Simulator()
    timer = PhaseTimer(stats, 0, "merge", sim)
    timer.stop()
    with pytest.raises(RuntimeError):
        timer.stop()


def test_scaling_exempts_selection():
    cfg = small_config(downscale=10)
    stats = SortStats(cfg, 1)
    stats.record_wall(0, "merge", 2.0)
    stats.record_wall(0, "selection", 2.0)
    assert stats.scaled_wall_max("merge") == 20.0
    assert stats.scaled_wall_max("selection") == 2.0


def test_scaled_total_is_sum_of_phase_maxima():
    cfg = small_config(downscale=2)
    stats = SortStats(cfg, 2)
    stats.record_wall(0, "run_formation", 5.0)
    stats.record_wall(1, "run_formation", 3.0)
    stats.record_wall(0, "merge", 1.0)
    stats.record_wall(1, "merge", 2.0)
    stats.record_wall(0, "selection", 0.5)
    stats.record_wall(1, "selection", 0.25)
    stats.record_wall(0, "all_to_all", 0.0)
    stats.record_wall(1, "all_to_all", 0.0)
    assert stats.scaled_total_time == pytest.approx(2 * 5 + 2 * 2 + 0.5)


def test_counters_accumulate_and_total():
    cfg = small_config()
    stats = SortStats(cfg, 2)
    stats.add_counter(0, "x", 2)
    stats.add_counter(0, "x", 3)
    stats.add_counter(1, "x", 1)
    assert stats.counters[0]["x"] == 5
    assert stats.counter_total("x") == 6
    assert stats.counter_total("missing") == 0


def test_dynamic_phase_registration():
    cfg = small_config()
    stats = SortStats(cfg, 1)
    stats.record_wall(0, "distribute", 1.0)
    assert "distribute" in stats.phases


def test_summary_renders():
    cfg = small_config()
    stats = SortStats(cfg, 1)
    stats.total_time = 12.0
    text = stats.summary()
    assert "P=1" in text
    assert "run_formation" in text


def test_stats_to_dict_and_json(tmp_path):
    from tests.helpers import run_small_sort

    _cl, _cfg, _em, _b, result = run_small_sort("random", n_nodes=2)
    snap = result.stats.to_dict()
    assert snap["n_nodes"] == 2
    assert set(snap["phases"]) >= {"run_formation", "merge"}
    assert len(snap["per_node"]) == 2
    assert snap["total_time_scaled"] > 0
    path = result.stats.save_json(str(tmp_path / "stats.json"))
    import json

    with open(path) as handle:
        loaded = json.load(handle)
    assert loaded["phases"]["merge"]["bytes"] > 0
