"""Tests for the sweep engine and the capacity planner."""

import csv


import pytest

from repro import GiB, MiB
from repro.bench import METRICS, paper_config, plan_sort, save_csv, sweep


def tiny_base():
    return paper_config(
        data_per_node_bytes=1 * GiB,
        memory_bytes=256 * MiB,
        downscale=4,
        block_elems=8,
    )


# ------------------------------------------------------------------ sweep


def test_sweep_produces_cross_product_rows():
    rows = sweep(
        grid={"randomize": [True, False]},
        n_nodes=[1, 2],
        workload="worstcase",
        base_config=tiny_base(),
    )
    assert len(rows) == 4
    combos = {(row["randomize"], row["n_nodes"]) for row in rows}
    assert combos == {(True, 1), (True, 2), (False, 1), (False, 2)}


def test_sweep_rows_carry_all_metrics():
    rows = sweep(grid={}, n_nodes=[2], base_config=tiny_base())
    assert len(rows) == 1
    for metric in METRICS:
        assert metric in rows[0]
        assert rows[0][metric] >= 0


def test_sweep_detects_randomization_effect():
    rows = sweep(
        grid={"randomize": [True, False]},
        n_nodes=[4],
        workload="worstcase",
        base_config=tiny_base(),
    )
    by_flag = {row["randomize"]: row for row in rows}
    assert (
        by_flag[False]["alltoall_volume_ratio"]
        > by_flag[True]["alltoall_volume_ratio"]
    )


def test_save_csv_roundtrip(tmp_path):
    rows = sweep(grid={}, n_nodes=[1], base_config=tiny_base())
    path = save_csv(rows, str(tmp_path / "out.csv"))
    with open(path) as handle:
        loaded = list(csv.DictReader(handle))
    assert len(loaded) == 1
    assert float(loaded[0]["total_s"]) > 0


def test_save_csv_rejects_empty():
    with pytest.raises(ValueError):
        save_csv([], "nowhere.csv")


# ---------------------------------------------------------------- planner


def test_planner_accepts_the_papers_graysort():
    plan = plan_sort(1e14, 195, memory_bytes=12 * GiB, measure=False)
    assert plan.feasible
    assert plan.n_runs == 40
    assert any("two-pass limit" in f for f in plan.findings)


def test_planner_rejects_over_capacity_jobs():
    plan = plan_sort(1e15, 8, memory_bytes=4 * GiB, measure=False)
    assert not plan.feasible
    assert any("violated: two-pass" in f for f in plan.findings)
    assert plan.phase_seconds is None


def test_planner_flags_tight_redistribution_bound():
    # Tiny memory on a big machine: m / (P B log P) < 1.
    plan = plan_sort(
        1e12, 1024, memory_bytes=8 * GiB, measure=False
    )
    assert any("P·B·log P" in f and ("violated" in f or "marginal" in f)
               for f in plan.findings)


def test_planner_measurement_run_estimates_times():
    plan = plan_sort(2e12, 8, memory_bytes=8 * GiB, measure=True)
    assert plan.feasible
    assert plan.total_seconds > 0
    assert set(plan.phase_seconds) >= {"run_formation", "merge"}
    assert plan.throughput_gb_per_min > 0
    # Run formation and merge dominate, as in every figure of the paper.
    bulk = plan.phase_seconds["run_formation"] + plan.phase_seconds["merge"]
    assert bulk > 0.6 * plan.total_seconds


def test_planner_render_readable():
    plan = plan_sort(1e13, 16, memory_bytes=12 * GiB, measure=False)
    text = plan.render()
    assert "feasible: yes" in text
    assert "runs" in text


def test_planner_validates_nodes():
    with pytest.raises(ValueError):
        plan_sort(1e12, 0)
