"""Tests for the conformance subsystem's corpus, oracle and shrinker."""

import numpy as np
import pytest

from repro.testing import corpus, oracle
from repro.testing.differential import CaseSpec
from repro.testing import properties


# ---------------------------------------------------------------- the corpus


@pytest.mark.parametrize("name", corpus.entry_names())
def test_corpus_entries_deterministic(name):
    a = corpus.generate(name, 200, rank=1, n_ranks=3, seed=9)
    b = corpus.generate(name, 200, rank=1, n_ranks=3, seed=9)
    assert a.dtype == np.uint64
    assert np.array_equal(a, b)


@pytest.mark.parametrize("name", corpus.entry_names())
def test_corpus_entries_exact_count(name):
    for n in (0, 1, 31, 257):
        assert len(corpus.generate(name, n, 0, 2, seed=5)) == n


def test_corpus_seed_changes_random_entries():
    a = corpus.generate("uniform", 128, 0, 2, seed=1)
    b = corpus.generate("uniform", 128, 0, 2, seed=2)
    assert not np.array_equal(a, b)


def test_dup_all_is_constant():
    keys = corpus.generate("dup_all", 64, 0, 2, seed=0)
    assert len(np.unique(keys)) == 1


def test_presorted_is_globally_sorted():
    parts = [corpus.generate("presorted", 100, r, 3, seed=4) for r in range(3)]
    whole = np.concatenate(parts)
    assert np.array_equal(whole, np.sort(whole))


def test_reversed_is_globally_reverse_sorted():
    parts = [corpus.generate("reversed", 100, r, 3, seed=4) for r in range(3)]
    whole = np.concatenate(parts)
    assert np.array_equal(whole[::-1], np.sort(whole))


def test_staircase_is_locally_sorted_with_plateaus():
    keys = corpus.generate("staircase", 96, 1, 2, seed=0)
    assert np.array_equal(keys, np.sort(keys))
    assert len(np.unique(keys)) == 3  # 96 records / 32-record plateaus


def test_fig6_entries_are_flagged():
    assert corpus.ENTRIES["fig6_local_sorted"].fig6_mode
    assert corpus.ENTRIES["staircase"].fig6_mode
    assert not corpus.ENTRIES["uniform"].fig6_mode


def test_unknown_entry_rejected():
    with pytest.raises(ValueError, match="unknown corpus entry"):
        corpus.generate("quantum", 8, 0, 1, seed=0)


# ------------------------------------------------------------------- sizings


@pytest.mark.parametrize("name", sorted(corpus.SIZINGS))
def test_registry_sizings_feasible_on_both_backends(name):
    assert corpus.sizing_feasible(corpus.SIZINGS[name])


def test_sizings_straddle_the_boundaries():
    assert corpus.SIZINGS["m_minus_1"].n_per_rank == corpus.SIZINGS["m_plus_1"].n_per_rank - 2
    base_b = corpus.SIZINGS["block_minus_1"].block_records
    assert corpus.SIZINGS["block_minus_1"].n_per_rank % base_b == base_b - 1
    assert corpus.SIZINGS["block_plus_1"].n_per_rank % base_b == 1


def test_resolve_sizing_ad_hoc():
    sz = corpus.resolve_sizing("n511b32m384")
    assert (sz.n_per_rank, sz.block_records, sz.memory_records) == (511, 32, 384)
    assert corpus.resolve_sizing("base") is corpus.SIZINGS["base"]
    with pytest.raises(ValueError, match="unknown sizing"):
        corpus.resolve_sizing("n511")


def test_sizing_feasibility_rejects_pathologies():
    assert not corpus.sizing_feasible(corpus.Sizing("x", 0, 32, 384))
    assert not corpus.sizing_feasible(corpus.Sizing("x", 100, 1, 384))
    # Way past the two-pass limit: tiny memory, huge input.
    assert not corpus.sizing_feasible(corpus.Sizing("x", 10**6, 8, 96))


def test_quick_matrix_is_pruned():
    matrix = corpus.quick_matrix()
    assert len(matrix) <= 8
    assert all(e in corpus.ENTRIES and s in corpus.SIZINGS for e, s in matrix)


def test_full_matrix_covers_everything():
    matrix = corpus.full_matrix()
    assert len(matrix) == len(corpus.ENTRIES) * len(corpus.SIZINGS)


# ---------------------------------------------------------------- the oracle


def test_oracle_slices_sum_to_whole():
    parts = [corpus.generate("zipf", n, r, 3, seed=1) for r, n in enumerate((50, 61, 40))]
    out = oracle.expected_outputs(parts)
    assert [len(o) for o in out] == [
        oracle.canonical_share(151, 3, r) for r in range(3)
    ]
    assert np.array_equal(np.concatenate(out), np.sort(np.concatenate(parts)))


def test_oracle_empty_input():
    out = oracle.expected_outputs([], n_ranks=2)
    assert len(out) == 2 and all(len(o) == 0 for o in out)
    assert oracle.multiset_checksum(np.empty(0, dtype=np.uint64)) == 0


def test_multiset_checksum_order_independent_and_wraps():
    keys = np.array([2**64 - 1, 5, 7], dtype=np.uint64)
    assert oracle.multiset_checksum(keys) == oracle.multiset_checksum(keys[::-1])
    assert oracle.multiset_checksum(keys) == (2**64 - 1 + 5 + 7) % 2**64


def test_splitter_rank_issues_accepts_exact():
    # Two runs of lengths 4 and 6; P = 2; exact targets 0, 5, 10.
    splits = [[0, 0], [2, 3], [4, 6]]
    assert oracle.splitter_rank_issues(splits, [4, 6], 2) == []


def test_splitter_rank_issues_rejects_off_by_one():
    splits = [[0, 0], [2, 4], [4, 6]]  # row 1 sums to 6, target is 5
    issues = oracle.splitter_rank_issues(splits, [4, 6], 2)
    assert any("exact target" in i for i in issues)


def test_splitter_rank_issues_rejects_regression():
    splits = [[0, 0], [3, 2], [2, 6]]  # row 2 behind row 1 in run 0
    issues = oracle.splitter_rank_issues(splits, [4, 6], 2)
    assert any("behind" in i for i in issues)


def test_partition_issues_exactness():
    seqs = [np.array([1, 2, 3], dtype=np.uint64), np.array([2, 4], dtype=np.uint64)]
    assert oracle.partition_issues(seqs, [2, 1], 3) == []
    assert any("exact rank" in i for i in oracle.partition_issues(seqs, [2, 0], 3))
    bad = oracle.partition_issues(seqs, [1, 2], 3)  # left max 4 > right min 2
    assert any("partition property" in i for i in bad)


# ------------------------------------------------------------- replay tokens


def test_case_token_round_trip():
    spec = CaseSpec("staircase", "m_plus_1", n_workers=7, seed=123,
                    randomize=False, selection="bisect", backends=("sim",))
    assert CaseSpec.from_token(spec.to_token()) == spec
    assert "--replay" in spec.replay_command()


def test_case_token_ad_hoc_sizing():
    spec = CaseSpec("uniform", "n77b8m96", n_workers=1)
    back = CaseSpec.from_token(spec.to_token())
    assert back.sizing_obj.n_per_rank == 77


def test_bad_tokens_rejected():
    with pytest.raises(ValueError):
        CaseSpec.from_token("uniform:base")
    with pytest.raises(ValueError):
        CaseSpec.from_token("uniform:base:x2:s1:rand:sampled")
    with pytest.raises(ValueError):
        CaseSpec("uniform", "base", backends=("gpu",))


# ------------------------------------------------------------- the shrinker


def _synthetic_fails(spec):
    sz = spec.sizing_obj
    if sz.n_per_rank >= 50 and spec.n_workers >= 2:
        return ["synthetic failure"]
    return None


def test_shrinker_reaches_minimal_reproducer():
    big = CaseSpec("zipf", "n700b16m384", n_workers=7, selection="bisect")
    mini, issues, steps = properties.shrink(big, fails=_synthetic_fails)
    assert mini.sizing_obj.n_per_rank == 50
    assert mini.n_workers == 2
    assert mini.entry == "uniform" and mini.selection == "sampled"
    assert issues == ["synthetic failure"]
    assert steps <= 20  # logarithmic, not linear, in N


def test_shrinker_is_deterministic():
    big = CaseSpec("gensort_dup", "n600b8m192", n_workers=4)
    a = properties.shrink(big, fails=_synthetic_fails)[0]
    b = properties.shrink(big, fails=_synthetic_fails)[0]
    assert a == b


def test_shrinker_rejects_passing_spec():
    with pytest.raises(ValueError, match="passing spec"):
        properties.shrink(
            CaseSpec("uniform", "n10b8m96", n_workers=1), fails=_synthetic_fails
        )


def test_draw_spec_feasible_and_seeded():
    import random

    specs_a = [properties.draw_spec(random.Random(3)) for _ in range(10)]
    specs_b = [properties.draw_spec(random.Random(3)) for _ in range(10)]
    assert specs_a == specs_b
    for spec in specs_a:
        assert corpus.sizing_feasible(spec.sizing_obj)
