"""Reproducibility guarantees: identical configs, identical results.

The simulation draws all randomness from seeded generators and schedules
same-instant events in FIFO order, so every number the harness reports
is exactly reproducible — the property that makes the recorded
EXPERIMENTS.md tables meaningful.
"""

import numpy as np

from repro import GiB, MiB
from repro.bench import paper_config, run_canonical
from tests.helpers import run_small_sort


def tiny():
    return paper_config(
        data_per_node_bytes=1 * GiB,
        memory_bytes=256 * MiB,
        downscale=4,
        block_elems=8,
    )


def test_harness_runs_bit_identical():
    a = run_canonical(3, "worstcase", config=tiny())
    b = run_canonical(3, "worstcase", config=tiny())
    assert a.total_seconds == b.total_seconds
    assert a.alltoall_volume_ratio == b.alltoall_volume_ratio
    for phase in a.stats.phases:
        assert a.stats.wall_max(phase) == b.stats.wall_max(phase)
        assert a.stats.phase_bytes(phase) == b.stats.phase_bytes(phase)
    assert a.stats.counters == b.stats.counters


def test_different_seeds_differ():
    cfg = tiny()
    a = run_canonical(2, "random", config=cfg, seed=1)
    b = run_canonical(2, "random", config=cfg, seed=2)
    assert a.total_seconds != b.total_seconds


def test_per_node_stats_reproducible():
    _cl, _cfg, em1, _b, r1 = run_small_sort("skewed", n_nodes=3, seed=77)
    _cl, _cfg, em2, _b, r2 = run_small_sort("skewed", n_nodes=3, seed=77)
    for rank in range(3):
        for phase in r1.stats.phases:
            s1 = r1.stats.per_node[rank][phase]
            s2 = r2.stats.per_node[rank][phase]
            assert s1.wall == s2.wall
            assert s1.io == s2.io
    for a, b in zip(r1.output_keys(em1), r2.output_keys(em2)):
        assert np.array_equal(a, b)


def test_intervals_reproducible():
    _cl, _cfg, _em, _b, r1 = run_small_sort("random", n_nodes=2, seed=5)
    _cl, _cfg, _em, _b, r2 = run_small_sort("random", n_nodes=2, seed=5)
    assert r1.stats.intervals == r2.stats.intervals
