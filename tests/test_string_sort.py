"""Variable-length (string) record model: batches, codecs, store, job.

The end-to-end string sorts live in the conformance tiers
(tests/test_conformance_quick.py runs a quick-matrix slice of string
twins every commit; the full matrix runs nightly).  This file covers the
units underneath: :class:`~repro.native.records.VarlenBatch`, the LCP
front-coding codecs, the order-preserving integer embedding, the block
store's byte-addressed varlen I/O, and the job-level validation gates.
"""

import numpy as np
import pytest

from repro.core.config import ConfigError, SortConfig
from repro.native.blockstore import INDEX_TAG_SUFFIX, FileBlockStore
from repro.native.job import NativeJob
from repro.native.records import (
    RECORD_BYTES,
    VarlenBatch,
    bytes_view,
    embed_key,
    generate_string_batch,
    lcp_decode_batch,
    lcp_decode_keys,
    lcp_encode_batch,
    lcp_encode_keys,
    make_records,
    merge_record_arrays,
    merge_varlen_batches,
    read_varlen_file,
    records_from_bytes,
    resolve_model,
    resolve_string_family,
    string_checksum,
    string_key_from_u64,
    STRING_FAMILIES,
    logline_key_from_u64,
    unembed_key,
    url_key_from_u64,
    varlen_index_path,
    write_varlen_file,
)

KiB = 1024


# ----------------------------------------------------------- fixed satellites


def test_star_import_exposes_bytes_view():
    namespace = {}
    exec("from repro.native.records import *", namespace)
    assert "bytes_view" in namespace
    assert "VarlenBatch" in namespace


def test_merge_single_part_returns_read_only_view():
    part = make_records(
        np.array([1, 2, 3], dtype=np.uint64),
        np.array([0, 1, 2], dtype=np.uint64),
    )
    merged = merge_record_arrays([part])
    assert np.array_equal(merged, part)
    # The old fast path returned the caller's array itself: an in-place
    # mutation of the "merge result" silently corrupted the input.  Now
    # mutators fail loudly and the input stays intact.
    with pytest.raises(ValueError):
        merged["key"][0] = 99
    assert int(part["key"][0]) == 1


def test_bytes_view_roundtrip_non_contiguous():
    recs = make_records(
        np.arange(10, dtype=np.uint64), np.arange(10, dtype=np.uint64)
    )
    sliced = recs[::2]  # stride-2: not C-contiguous
    assert not sliced.flags["C_CONTIGUOUS"]
    back = records_from_bytes(bytes(bytes_view(sliced)))
    assert np.array_equal(back, sliced)


def test_records_from_bytes_rejects_ragged_buffer():
    with pytest.raises(ValueError):
        records_from_bytes(b"\x00" * (RECORD_BYTES + 1))


# -------------------------------------------------------------- VarlenBatch


def _batch(keys, start=0):
    return VarlenBatch.build(keys, range(start, start + len(keys)))


def test_varlen_batch_roundtrip_through_bytes():
    keys = [b"alpha", b"", b"beta", b"a" * 300, b"alpha"]
    batch = _batch(keys)
    assert len(batch) == 5
    assert batch.keys() == keys
    back = VarlenBatch.from_bytes(bytes(batch.bytes_view()))
    assert back.keys() == keys
    assert np.array_equal(back.payloads(), batch.payloads())


def test_varlen_batch_rejects_truncation_and_nul():
    batch = _batch([b"abc", b"defg"])
    whole = bytes(batch.bytes_view())
    with pytest.raises(ValueError):
        VarlenBatch.from_bytes(whole[:-1])
    with pytest.raises(ValueError):
        VarlenBatch.build([b"a\x00b"], [0])
    with pytest.raises(TypeError):
        VarlenBatch.build(["not-bytes"], [0])


def test_varlen_slice_take_sort_and_merge():
    keys = [b"m", b"c", b"x", b"c", b"a"]
    batch = _batch(keys)
    part = batch.slice(1, 4)
    assert part.keys() == [b"c", b"x", b"c"]
    assert [int(p) for p in part.payloads()] == [1, 2, 3]

    done = batch.sort()
    assert done.keys() == sorted(keys)
    # Stable: the two b"c" records keep input order (payload 1 before 3).
    assert [int(p) for p in done.payloads()] == [4, 1, 3, 0, 2]

    merged = merge_varlen_batches([_batch([b"a", b"c"]), _batch([b"b"], 2)])
    assert merged.keys() == [b"a", b"b", b"c"]


def test_varlen_empty_and_all_equal_keys():
    empty = VarlenBatch.empty()
    assert len(empty) == 0 and empty.keys() == []
    same = _batch([b"dup"] * 6)
    assert same.sort().keys() == [b"dup"] * 6
    wire, saved = lcp_encode_batch(same)
    # 5 of the 6 keys collapse to lcp=3, suffix="".
    assert saved == 15
    assert lcp_decode_batch(wire).keys() == [b"dup"] * 6


# ------------------------------------------------------------------ codecs


def test_lcp_keys_codec_roundtrip_and_identity():
    keys = [b"", b"sort", b"sorted", b"sorting", b"z"]
    wire, saved = lcp_encode_keys(keys)
    assert lcp_decode_keys(wire) == keys
    raw = sum(len(k) for k in keys)
    assert len(wire) == 4 + raw + 8 * len(keys) - saved
    assert saved == len(b"sort") + len(b"sort")  # "sorted", "sorting"


def test_lcp_batch_codec_roundtrip_and_identity():
    batch = generate_string_batch(0, 200, seed=7)
    srt = batch.sort()
    wire, saved = lcp_encode_batch(srt)
    assert saved > 0  # hex prefixes share bytes once sorted
    assert len(wire) == 4 + srt.nbytes + 4 * len(srt) - saved
    back = lcp_decode_batch(wire)
    assert back.keys() == srt.keys()
    assert np.array_equal(back.payloads(), srt.payloads())


def test_embed_key_preserves_order():
    keys = sorted([b"", b"a", b"aa", b"ab", b"b", b"ba", string_key_from_u64(5)])
    width = max(len(k) for k in keys) + 1
    embedded = [embed_key(k, width) for k in keys]
    assert embedded == sorted(embedded)
    assert len(set(embedded)) == len(keys)
    for k, e in zip(keys, embedded):
        assert unembed_key(e, width) == k
    with pytest.raises(ValueError):
        embed_key(b"toolong", len(b"toolong"))


def test_string_key_map_is_order_and_duplicate_preserving():
    values = [0, 1, 1, 22, 23, 2**64 - 1, 7, 7]
    keys = [string_key_from_u64(v) for v in values]
    assert sorted(keys) == [string_key_from_u64(v) for v in sorted(values)]
    assert (keys[1] == keys[2]) and (keys[6] == keys[7])
    lengths = {len(k) for k in keys}
    assert len(lengths) > 1  # really variable-length


@pytest.mark.parametrize("family", sorted(STRING_FAMILIES))
def test_every_string_family_is_order_and_duplicate_preserving(family):
    key_map = STRING_FAMILIES[family]
    rng = np.random.default_rng(11)
    values = [int(v) for v in rng.integers(0, 2**63, 500, dtype=np.uint64)]
    values += [0, 1, 1, 2**64 - 1, 2**63, 7, 7]
    keys = [key_map(v) for v in values]
    assert sorted(keys) == [key_map(v) for v in sorted(values)]
    assert key_map(7) == key_map(7)  # duplicates stay duplicates
    assert len({len(k) for k in keys}) > 1  # really variable-length


def test_real_workload_families_look_the_part():
    assert url_key_from_u64(12345).startswith(b"https://")
    assert b".example.com/" in url_key_from_u64(12345)
    line = logline_key_from_u64(10**6 + 250)
    assert line.startswith(b"00000000000001.000250Z ")
    assert resolve_string_family("url") is url_key_from_u64
    with pytest.raises(ValueError, match="unknown string family"):
        resolve_string_family("csv")


def test_string_checksum_order_independent():
    batch = generate_string_batch(0, 50, seed=3)
    srt = batch.sort()
    assert string_checksum(batch) == string_checksum(srt)
    assert string_checksum(batch.slice(0, 25), string_checksum(
        batch.slice(25, 50))) == string_checksum(batch)
    other = VarlenBatch.build([b"x"], [1])
    assert string_checksum(other) != string_checksum(batch)


# -------------------------------------------------------------- block store


@pytest.fixture
def store(tmp_path):
    return FileBlockStore(str(tmp_path), rank=0, block_records=8)


def straddling_batch(n=60):
    """Key lengths 0..n-1: record byte extents never align with the
    8-record block grid, so every block read starts and ends mid-file at
    an odd byte offset."""
    return VarlenBatch.build(
        [b"k" * (i % 37) for i in range(n)], range(n)
    )


def test_varlen_file_roundtrip_and_sidecar(store, tmp_path):
    batch = straddling_batch()
    path = store.input_path()
    store.write_varlen_file(path, batch, "run_formation")
    import os

    assert os.path.exists(varlen_index_path(path))
    assert store.varlen_record_count(path, "run_formation") == len(batch)
    back = store.read_varlen_range(path, 0, len(batch), "run_formation")
    assert back.keys() == batch.keys()
    # Index I/O is charged under its own tag: the data tag must carry
    # exactly the encoded volume (byte conservation).
    assert store.bytes_read["run_formation"] == batch.nbytes
    assert store.bytes_written["run_formation"] == batch.nbytes
    assert store.bytes_read["run_formation" + INDEX_TAG_SUFFIX] > 0
    store.remove(path)
    assert not os.path.exists(varlen_index_path(path))


def test_varlen_block_reads_match_range_reads(store):
    batch = straddling_batch()
    path = store.input_path()
    store.write_varlen_file(path, batch, "w")
    # 60 records / 8 per block = 8 blocks, last one short.
    whole = store.read_varlen_blocks(path, [0, 1, 2, 3, 4, 5, 6, 7], "r")
    assert whole.keys() == batch.keys()
    scattered = store.read_varlen_blocks(path, [7, 2, 3, 0], "r")
    want = (
        batch.slice(56, 60).keys() + batch.slice(16, 32).keys()
        + batch.slice(0, 8).keys()
    )
    assert scattered.keys() == want


def test_varlen_block_read_out_of_range_names_block(store):
    batch = straddling_batch(20)  # 3 blocks
    path = store.input_path()
    store.write_varlen_file(path, batch, "w")
    with pytest.raises(ValueError, match="block id 3"):
        store.read_varlen_blocks(path, [0, 3], "r")
    with pytest.raises(ValueError):
        store.read_varlen_range(path, 21, 1, "r")


def test_fixed_block_read_out_of_range_names_block(store):
    recs = make_records(
        np.arange(20, dtype=np.uint64), np.arange(20, dtype=np.uint64)
    )
    path = store.input_path()
    store.write_file(path, recs, "w")
    with pytest.raises(ValueError, match="block id 5"):
        store.read_blocks(path, [1, 5], "r")
    with pytest.raises(ValueError, match="block id -1"):
        store.read_blocks(path, [-1], "r")


def test_varlen_appender_streams(store):
    batch = straddling_batch(30)
    path = store.piece_path(0)
    appender = store.varlen_appender(path, "w")
    appender.append(batch.slice(0, 11))
    appender.append(batch.slice(11, 30))
    assert appender.n_records == 30
    appender.close()
    assert read_varlen_file(path).keys() == batch.keys()


def test_varlen_probe_cache_hits(store):
    batch = straddling_batch(32).sort()
    path = store.piece_path(0)
    store.write_varlen_file(path, batch, "w")
    cache = store.varlen_probe_cache(capacity_blocks=2)
    keys = batch.keys()
    assert cache.key_at(path, 9, "sel") == keys[9]
    assert cache.key_at(path, 10, "sel") == keys[10]  # same block: a hit
    assert cache.hits == 1
    assert cache.block_reads == 1


# ---------------------------------------------------------------- job gates


def _string_job(tmp_path, **overrides):
    cfg = SortConfig(
        data_per_node_bytes=128 * KiB,
        memory_bytes=48 * KiB,
        block_bytes=2 * KiB,
        seed=1,
    )
    base = dict(
        config=cfg,
        n_workers=2,
        spill_dir=str(tmp_path),
        records="string",
    )
    base.update(overrides)
    return NativeJob(**base)


def test_job_accepts_string_model(tmp_path):
    job = _string_job(tmp_path)
    assert job.varlen and job.model.name == "string"
    assert job.record_bytes == RECORD_BYTES  # nominal sizing unchanged
    assert job.describe()["records"] == "string"


def test_job_rejects_unknown_model(tmp_path):
    with pytest.raises(ConfigError, match="record model"):
        _string_job(tmp_path, records="elastic")


def test_string_job_rejects_unsupported_features(tmp_path):
    with pytest.raises(ConfigError, match="checkpoint"):
        _string_job(tmp_path, checkpoint=True)
    with pytest.raises(ConfigError, match="checkpoint"):
        _string_job(tmp_path, max_restarts=1)
    with pytest.raises(ConfigError, match="pipelined"):
        _string_job(tmp_path, prefetch_blocks=2)
    from repro.testing.chaos import ChaosSpec

    with pytest.raises(ConfigError, match="chaos"):
        _string_job(tmp_path, chaos=ChaosSpec(rank=0, kill_at="before:merge"))


def test_service_spec_carries_records(tmp_path):
    from repro.service.jobs import JobRejected, build_native_job

    job = build_native_job({"records": "string", "n_workers": 2}, str(tmp_path))
    assert job.records == "string"
    with pytest.raises(JobRejected):
        build_native_job({"records": "nope"}, str(tmp_path))


def test_resolve_model_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_model("utf32")
    assert resolve_model("fixed16").varlen is False
    assert resolve_model("string").varlen is True
