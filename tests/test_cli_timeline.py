"""Tests for the command-line sorter and the timeline rendering."""

import pytest

from repro.__main__ import build_parser, main
from tests.helpers import run_small_sort


# -------------------------------------------------------------------- CLI


def _cli(*argv):
    return main(list(argv))


def test_cli_default_run(capsys):
    assert _cli("--nodes", "2", "--data-mib", "24", "--memory-mib", "8") == 0
    out = capsys.readouterr().out
    assert "output valid" in out
    assert "run_formation" in out


def test_cli_worstcase_no_randomize(capsys):
    assert _cli(
        "--nodes", "2", "--workload", "worstcase", "--no-randomize",
        "--data-mib", "24", "--memory-mib", "8",
    ) == 0
    assert "output valid" in capsys.readouterr().out


def test_cli_timeline_flag(capsys):
    assert _cli(
        "--nodes", "2", "--data-mib", "24", "--memory-mib", "8", "--timeline"
    ) == 0
    out = capsys.readouterr().out
    assert "timeline over" in out
    assert "PE  0 |" in out


@pytest.mark.parametrize("algorithm", ["striped", "nowsort", "samplesort"])
def test_cli_other_algorithms(algorithm, capsys):
    assert _cli(
        "--algorithm", algorithm, "--nodes", "2",
        "--data-mib", "24", "--memory-mib", "8",
    ) == 0
    assert "output valid" in capsys.readouterr().out


def test_cli_skip_validation(capsys):
    assert _cli(
        "--nodes", "2", "--data-mib", "24", "--memory-mib", "8",
        "--skip-validation",
    ) == 0
    assert "output valid" not in capsys.readouterr().out


def test_cli_selection_strategy(capsys):
    assert _cli(
        "--nodes", "2", "--data-mib", "24", "--memory-mib", "8",
        "--selection", "bisect",
    ) == 0


def test_cli_parser_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--algorithm", "bogosort"])


# --------------------------------------------------------------- timeline


def test_timeline_has_one_row_per_pe():
    _cl, _cfg, _em, _b, result = run_small_sort("random", n_nodes=3)
    text = result.stats.timeline(width=40)
    rows = [line for line in text.splitlines() if line.startswith("PE")]
    assert len(rows) == 3
    for row in rows:
        body = row.split("|")[1]
        assert len(body) == 40


def test_timeline_phases_in_order():
    _cl, _cfg, _em, _b, result = run_small_sort("random", n_nodes=2)
    text = result.stats.timeline(width=60)
    row = next(line for line in text.splitlines() if line.startswith("PE  0"))
    body = row.split("|")[1]
    # run_formation before selection before all_to_all before merge
    assert body.index("r") < body.index("s") < body.index("a") < body.index("m")


def test_timeline_intervals_recorded():
    _cl, _cfg, _em, _b, result = run_small_sort("random", n_nodes=2)
    phases_seen = {(rank, phase) for rank, phase, _s, _e in result.stats.intervals}
    for rank in range(2):
        for phase in ("run_formation", "selection", "all_to_all", "merge"):
            assert (rank, phase) in phases_seen


def test_timeline_empty_stats():
    from repro.core.stats import SortStats
    from tests.helpers import small_config

    stats = SortStats(small_config(), 1)
    assert "no phase intervals" in stats.timeline()


def test_cli_utilization_flag(capsys):
    assert _cli(
        "--nodes", "2", "--data-mib", "24", "--memory-mib", "8",
        "--utilization",
    ) == 0
    out = capsys.readouterr().out
    assert "disk utilization over" in out
    assert "n0.d0" in out
