"""Edge cases across the stack: degenerate sizes, extreme parameters.

The small-but-nasty configurations a downstream user will eventually
feed the library: one block of data, one key per block pair, memory
exactly equal to the data, caches of size zero, sub-operation counts
forced high, merge phases with empty segments.
"""

import numpy as np
import pytest

from repro import (
    CanonicalMergeSort,
    Cluster,
    MiB,
    SortConfig,
    generate_input,
    input_keys,
    validate_output,
)
from repro.core.merge_phase import merge_phase
from repro.core.stats import SortStats
from tests.helpers import small_config


def sort_ok(cfg, kind="random", n_nodes=2):
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, kind)
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    report = validate_output(before, result.output_keys(em))
    assert report.ok, report.issues
    return result


def test_single_block_per_node():
    cfg = SortConfig(
        data_per_node_bytes=1 * MiB,
        memory_bytes=16 * MiB,
        block_bytes=1 * MiB,
        block_elems=8,
    )
    result = sort_ok(cfg)
    assert result.n_runs == 1


def test_memory_exactly_equals_data():
    cfg = SortConfig(
        data_per_node_bytes=16 * MiB,
        memory_bytes=16 * MiB,
        block_bytes=1 * MiB,
        block_elems=8,
    )
    result = sort_ok(cfg)
    assert result.n_runs == 1  # in-memory fast path


def test_memory_one_block_more_than_half():
    # Forces exactly R = 2 with minimal slack.
    cfg = SortConfig(
        data_per_node_bytes=16 * MiB,
        memory_bytes=9 * MiB,
        block_bytes=1 * MiB,
        block_elems=8,
    )
    result = sort_ok(cfg)
    assert result.n_runs == 2


def test_two_keys_per_block():
    cfg = small_config(block_elems=2, data_per_node_bytes=16 * MiB,
                       memory_bytes=8 * MiB)
    sort_ok(cfg)


def test_zero_capacity_selection_cache_still_correct():
    cfg = small_config(selection_cache_blocks=0)
    result = sort_ok(cfg, n_nodes=3)
    # Every probe now costs a block read.
    reads = result.stats.counter_total("selection_block_reads")
    assert reads > 0


def test_tiny_alltoall_memory_forces_many_subops():
    cfg = small_config(alltoall_mem_fraction=0.05, randomize=False)
    result = sort_ok(cfg, kind="worstcase", n_nodes=4)
    assert result.stats.counters[0]["alltoall_subops"] >= 4


def test_single_prefetch_buffer():
    cfg = small_config(prefetch_buffers=1, write_buffers=1)
    sort_ok(cfg, n_nodes=2)


def test_many_nodes_little_data_each():
    cfg = SortConfig(
        data_per_node_bytes=6 * MiB,
        memory_bytes=3 * MiB,
        block_bytes=1 * MiB,
        block_elems=8,
    )
    sort_ok(cfg, n_nodes=7)


def test_merge_phase_with_all_empty_segments():
    cfg = small_config()
    cluster = Cluster(1)
    from repro import ExternalMemory

    em = ExternalMemory(cluster, cfg.block_bytes, cfg.block_elems)
    stats = SortStats(cfg, 1)

    def pe(rank, cluster):
        piece = yield from merge_phase(rank, cluster, em, cfg, stats, [[], [], []])
        return piece

    pieces = cluster.run_spmd(pe)
    assert pieces[0].n_keys == 0


def test_sample_every_one_keeps_full_copy():
    cfg = small_config(sample_every=1, data_per_node_bytes=8 * MiB)
    result = sort_ok(cfg, n_nodes=2)
    # Selection should then touch almost nothing beyond the warm start.
    assert result.stats.counter_total("selection_fixup_swaps") <= 4


def test_huge_sample_every_degrades_gracefully():
    cfg = small_config(sample_every=10_000)
    sort_ok(cfg, n_nodes=3)


def test_extreme_duplicate_input_across_everything():
    cfg = small_config()
    sort_ok(cfg, kind="allequal", n_nodes=4)


@pytest.mark.parametrize("block_elems", [2, 3, 16, 64])
def test_odd_block_elem_counts(block_elems):
    cfg = small_config(block_elems=block_elems, data_per_node_bytes=12 * MiB,
                       memory_bytes=4 * MiB)
    sort_ok(cfg, n_nodes=2)
