"""Tests for the benchmark harness and report rendering."""

import os

import pytest

from repro import GiB, MiB
from repro.bench import (
    EXPERIMENTS,
    FigureResult,
    PE_COUNTS_FULL,
    PE_COUNTS_QUICK,
    format_table,
    paper_config,
    run_canonical,
    sortbench_config,
    write_report,
)
from repro.records import ELEM_PAPER_16B, ELEM_SORTBENCH_100B


def tiny_config(**overrides):
    """A paper-unit config small enough for unit tests."""
    params = dict(
        data_per_node_bytes=2 * GiB,
        memory_bytes=512 * MiB,
        block_bytes=8 * MiB,
        downscale=4,
        block_elems=8,
    )
    return paper_config(**{**params, **overrides})


def test_paper_config_defaults_match_section_vi():
    cfg = paper_config()
    assert cfg.element is ELEM_PAPER_16B
    assert cfg.data_per_node_bytes == 100 * GiB
    assert cfg.block_bytes == 8 * MiB
    assert cfg.randomize


def test_paper_config_run_count_close_to_machine_ratio():
    cfg = paper_config()
    from repro import PAPER_MACHINE

    # 100 GiB data / 12 GiB run memory => R = 9.
    assert cfg.n_runs(PAPER_MACHINE) == 9


def test_sortbench_config_uses_100_byte_records():
    cfg = sortbench_config(10 * GiB, downscale=8)
    assert cfg.element is ELEM_SORTBENCH_100B


def test_run_canonical_record_metrics():
    record = run_canonical(2, "random", config=tiny_config())
    assert record.validated
    assert record.total_bytes == pytest.approx(4 * GiB)
    assert record.total_seconds > 0
    assert record.throughput_gb_per_min > 0
    assert 0 <= record.alltoall_volume_ratio < 1.0
    assert record.phase_seconds("run_formation") > 0


def test_run_canonical_gensort_workload():
    cfg = tiny_config(element=ELEM_SORTBENCH_100B)
    record = run_canonical(2, "gensort", config=cfg)
    assert record.validated


def test_experiment_registry_covers_every_figure_and_table():
    for exp in ["fig2", "fig3", "fig4", "fig5", "fig6",
                "graysort", "minutesort", "terabytesort"]:
        assert exp in EXPERIMENTS
    assert any(name.startswith("ablation") for name in EXPERIMENTS)


def test_pe_sweeps():
    assert PE_COUNTS_FULL == [1, 2, 4, 8, 16, 32, 64]
    assert PE_COUNTS_QUICK == [1, 2, 4, 8]


def test_format_table_alignment():
    text = format_table(["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.25}])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_format_table_empty_rows():
    text = format_table(["col"], [])
    assert "col" in text


def test_figure_result_render_includes_claims_and_notes():
    result = FigureResult(
        name="x",
        title="T",
        header=["a"],
        rows=[{"a": 1}],
        paper_claims=["the paper says so"],
        notes=["we measured it"],
    )
    text = result.render()
    assert "the paper says so" in text
    assert "we measured it" in text


def test_write_report_creates_file(tmp_path):
    result = FigureResult("unit", "Unit", ["a"], [{"a": 1}])
    path = write_report(result, out_dir=str(tmp_path))
    assert os.path.exists(path)
    with open(path) as handle:
        assert "Unit" in handle.read()


def test_bench_cli_rejects_unknown_experiment():
    import pytest as _pytest

    from repro.bench.__main__ import main

    with _pytest.raises(SystemExit):
        main(["not_an_experiment"])


def test_bench_cli_out_dir(tmp_path):
    from repro.bench.__main__ import main

    assert main(["ablation_runlength", "--out-dir", str(tmp_path)]) == 0
    assert (tmp_path / "ablation_runlength.txt").exists()
