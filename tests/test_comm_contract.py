"""Contract test: every ``Comm`` implementation honors the same protocol.

Each test runs once per transport — ``PipeComm`` over multiprocessing
pipes, ``TcpComm`` over a socketpair mesh, and ``ShmComm`` over
shared-memory rings — driven by threads (the transports are indifferent
to whether their ends live in threads or processes, and threads keep
the tests fast and debuggable).  What this file pins down is the
*shared* semantics: stash-aware matching, epoch discipline of the
collectives, wire accounting, wedged-peer escalation, teardown thread
hygiene, and the protocol shape ``native/phases.py`` relies on, so a
new transport only has to pass this file to be trusted with the sort.
"""

import multiprocessing as mp
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.native.comm import PipeComm
from repro.native.comm_api import Comm, CommError, CommTimeout, MeshComm
from repro.native.shm import ShmComm, create_shm_mesh
from repro.net.tcp import TcpComm


def make_pipe_comms(n, timeout=30.0):
    conns = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            a, b = mp.Pipe(duplex=True)
            conns[i][j] = a
            conns[j][i] = b
    return [PipeComm(r, n, conns[r], timeout=timeout) for r in range(n)]


def make_tcp_comms(n, timeout=30.0):
    socks = [dict() for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            a, b = socket.socketpair()
            socks[i][j] = a
            socks[j][i] = b
    return [TcpComm(r, n, socks[r], timeout=timeout) for r in range(n)]


def make_shm_comms(n, timeout=30.0, ring_bytes=256 * 1024):
    mesh = create_shm_mesh(mp.get_context(), n, ring_bytes=ring_bytes)
    comms = [
        ShmComm(r, n, mesh.channels[r], timeout=timeout) for r in range(n)
    ]
    # Every endpoint has attached: the names can go right away (POSIX
    # keeps the memory alive until the last close), so even an aborted
    # test leaves nothing behind in /dev/shm.
    mesh.unlink()
    return comms


MAKERS = {"pipe": make_pipe_comms, "tcp": make_tcp_comms, "shm": make_shm_comms}


def run_all(comms, fn):
    with ThreadPoolExecutor(max_workers=len(comms)) as pool:
        futures = [pool.submit(fn, comm) for comm in comms]
        return [f.result(timeout=60) for f in futures]


@pytest.fixture(params=sorted(MAKERS))
def transport(request):
    return request.param


@pytest.fixture
def mesh3(transport):
    comms = MAKERS[transport](3)
    yield comms
    for c in comms:
        c.close()


@pytest.fixture
def mesh2(transport):
    comms = MAKERS[transport](2)
    yield comms
    for c in comms:
        c.close()


def test_implements_the_comm_protocol(mesh2):
    for c in mesh2:
        assert isinstance(c, Comm)
        assert isinstance(c, MeshComm)


def test_recv_match_stashes_out_of_order_messages(mesh2):
    def body(c):
        peer = 1 - c.rank
        c.post(peer, ("first", c.rank))
        c.post(peer, ("second", c.rank))
        _p, second = c.recv_match(lambda p, m: m[0] == "second")
        _p, first = c.recv_match(lambda p, m: m[0] == "first")
        return first[0], second[0]

    assert run_all(mesh2, body) == [("first", "second")] * 2


def test_barrier_and_allgather(mesh3):
    def body(c):
        out = []
        for round_no in range(3):
            c.barrier()
            out.append(c.allgather((c.rank, round_no)))
        return out

    results = run_all(mesh3, body)
    for r in results:
        assert r == results[0]
    assert results[0][1] == [(0, 1), (1, 1), (2, 1)]


def test_collectives_reject_stale_epochs(mesh2):
    """A parked message from an old epoch never satisfies a collective."""
    stale_epoch = 4090

    def body(c):
        peer = 1 - c.rank
        # A forged allgather contribution from a long-gone epoch.
        c.post(peer, ("__ag__", stale_epoch, "stale"))
        gathered = c.allgather(("fresh", c.rank))
        # The collective ignored the stale message; it is still parked.
        stale = c.try_recv_match(
            lambda p, m: m[0] == "__ag__" and m[1] == stale_epoch
        )
        return gathered, stale

    for gathered, stale in run_all(mesh2, body):
        assert gathered == [("fresh", 0), ("fresh", 1)]
        assert stale is not None and stale[1][2] == "stale"


def test_wire_accounting_per_phase_and_peer(mesh2):
    blob = b"\xab" * 2048

    def body(c):
        peer = 1 - c.rank
        c.set_phase("all_to_all")
        c.post(peer, ("chunk", 0, blob))
        c.recv_match(lambda p, m: m[0] == "chunk")
        c.flush()
        c.barrier()
        return c

    for c in run_all(mesh2, body):
        peer = 1 - c.rank
        assert c.wire_sent["all_to_all"] == len(blob)
        assert c.wire_recv["all_to_all"] == len(blob)
        assert c.peer_sent[peer] == len(blob)
        assert c.peer_recv[peer] == len(blob)
        assert c.bytes_sent == len(blob)
        if isinstance(c, TcpComm):
            # Kernel-level counts include framing: strictly larger.
            assert c.socket_bytes_sent > len(blob)
            assert c.socket_bytes_received > len(blob)


def test_exchange_delivers_every_chunk_once(mesh3):
    def body(c):
        got = []

        def outgoing():
            for dest in range(c.n_workers):
                for k in range(4):
                    yield dest, ("x", c.rank, k, bytes([dest, k]) * 200)

        c.exchange(outgoing(), lambda peer, m: got.append((peer, m[2], bytes(m[3]))))
        return sorted(got)

    results = run_all(mesh3, body)
    for rank, got in enumerate(results):
        assert len(got) == 12
        assert all(payload == bytes([rank, k]) * 200 for _s, k, payload in got)
        assert sorted({s for s, _k, _p in got}) == [0, 1, 2]


def test_recv_match_times_out(mesh2):
    with pytest.raises(CommTimeout):
        mesh2[0].recv_match(lambda p, m: True, timeout=0.1)


def test_wedged_peer_escalates_to_timeout(transport):
    """A peer that stops draining (nothing closed) must surface as
    CommTimeout, never a hang: the exchange deadline is the escape."""
    comms = MAKERS[transport](2, timeout=2.0)
    try:
        comms[1].wedge()

        def body0(c):
            def outgoing():
                for k in range(64):
                    yield 1, ("x", c.rank, k, b"\xcd" * 4096)

            with pytest.raises(CommTimeout):
                c.exchange(outgoing(), lambda p, m: None)
            return True

        assert run_all([comms[0]], body0) == [True]
    finally:
        for c in comms:
            c.close()


def _alive_sender_threads():
    return [
        t for t in threading.enumerate()
        if t.name.startswith("native-send-") and t.is_alive()
    ]


def test_close_after_comm_error_reaps_sender_thread(transport):
    """Regression: teardown after a mid-exchange failure must reap a
    sender thread blocked in a full channel, not leak it (with the
    channel fds pinned) for the life of the process."""
    before = set(threading.enumerate())
    comms = MAKERS[transport](2, timeout=1.0)
    for c in comms:
        c.SHUTDOWN_FLUSH_TIMEOUT = 0.2
        c.SHUTDOWN_JOIN_TIMEOUT = 1.0
    try:
        # Rank 1 never drains: rank 0's sender eventually blocks inside
        # _transmit with the OS buffer / ring full.
        blob = b"\xee" * (1 << 20)
        for k in range(64):
            comms[0].post(1, ("big", k, blob))
        # The forced failure a collective would raise mid-exchange.
        with pytest.raises((CommTimeout, CommError)):
            comms[0].flush(timeout=0.3)
    finally:
        for c in comms:
            c.close()
    deadline = time.monotonic() + 5.0
    while _alive_sender_threads() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _alive_sender_threads() == []
    leaked = [
        t for t in threading.enumerate()
        if t not in before and t.is_alive() and not t.daemon
    ]
    assert leaked == []


def test_selection_round_matches_across_transports(transport):
    """The probe service is transport-blind: same splits either way."""
    import numpy as np

    from repro.algos.multiway_selection import select_coroutine

    rng = np.random.default_rng(11)
    n, per = 3, 24
    arrays = [np.sort(rng.integers(0, 10**6, per, dtype=np.uint64)) for _ in range(n)]

    comms = MAKERS[transport](n)
    try:
        def body(c):
            lengths = [per] * n
            target = c.rank * (n * per) // n
            keys = arrays[c.rank]
            gen = select_coroutine(lengths, target)
            result = c.selection_round(
                gen,
                local_lookup=lambda pos: int(keys[pos]),
                owner_of=lambda seq: seq,
            )
            return result.positions

        results = run_all(comms, body)
        for rank, positions in enumerate(results):
            assert sum(positions) == rank * (n * per) // n
    finally:
        for c in comms:
            c.close()
