"""Ablation + auto-tuning suite: plans, sweeps, rankings, the policy,
and the service integration.

The measurement path is stubbed almost everywhere (the one-knob-off
*logic* is what's under test; the real measurement path has its own
end-to-end smoke at the bottom), so the suite runs in seconds.
"""

import json
import subprocess
import sys

import pytest

from repro.service.daemon import SortService
from repro.service.jobs import JobRejected, build_native_job
from repro.tuning import (
    KNOBS,
    QUICK_CONTEXTS,
    SUGGESTABLE_KNOBS,
    TuningPolicy,
    applicable_knobs,
    knob_by_name,
    plan_sweep,
    rank_knobs,
    run_id,
    run_sweep,
    suggest_job_knobs,
)
from repro.tuning.ablation import load_ablations

PIPE_CTX = dict(QUICK_CONTEXTS[0])
SHM_CTX = dict(QUICK_CONTEXTS[1])
assert PIPE_CTX["transport"] == "pipe" and SHM_CTX["transport"] == "shm"


def stub_measure(speed_of):
    """A measurement stub: settings -> fake bench result at speed_of(s)."""

    def measure(settings):
        speed = speed_of(settings)
        total_mib = settings["data_mib"] * settings["n_workers"]
        return {
            "ok": True,
            "total_mib": total_mib,
            "sort_phases_s": total_mib * 2**20 / (speed * 1e6),
            "phases": [
                {"phase": "run_formation", "mb_s": speed * 2},
                {"phase": "all_to_all", "mb_s": speed * 3},
                {"phase": "merge", "mb_s": speed * 2.5},
            ],
        }

    return measure


def flat_speed(_settings):
    return 10.0


# ------------------------------------------------------------------ planning


class TestPlan:
    def test_deterministic_and_repeat_free(self):
        a = plan_sweep(PIPE_CTX)
        b = plan_sweep(PIPE_CTX)
        assert [(s.id, s.settings) for s in a] == [
            (s.id, s.settings) for s in b
        ]
        ids = [s.id for s in a]
        assert len(ids) == len(set(ids))

    def test_baseline_first_then_declared_knob_order(self):
        plan = plan_sweep(PIPE_CTX)
        assert plan[0].knob is None
        varied = [s.knob for s in plan[1:]]
        declared = [k.name for k in KNOBS]
        assert varied == sorted(
            varied, key=declared.index
        ), "plan must follow the declared knob order"

    def test_run_ids_are_content_hashes(self):
        plan = plan_sweep(PIPE_CTX)
        for spec in plan:
            assert spec.id == run_id(PIPE_CTX, spec.settings)
            assert len(spec.id) == 12

    def test_gates_drop_shm_ring_on_pipe_context(self):
        assert "shm_ring_kib" not in {s.knob for s in plan_sweep(PIPE_CTX)}
        assert "shm_ring_kib" in {s.knob for s in plan_sweep(SHM_CTX)}

    def test_varying_transport_away_from_shm_drops_ring_setting(self):
        # The shm context's baseline carries shm_ring_kib; the run that
        # varies transport to tcp must not (the native layer rejects it).
        plan = plan_sweep(SHM_CTX)
        tcp = [
            s for s in plan
            if s.knob == "transport" and s.value == "tcp"
        ]
        assert tcp and "shm_ring_kib" not in tcp[0].settings

    def test_infeasible_variants_are_dropped(self):
        # At the quick sizing, block_kib=256 breaks the two-pass merge
        # limit; the planner must drop it rather than crash the sweep.
        plan = plan_sweep(PIPE_CTX)
        blocks = [s.value for s in plan if s.knob == "block_kib"]
        assert 16.0 in blocks and 256.0 not in blocks

    def test_context_pinned_baseline_collapses_variant(self):
        # A context that pins pending_sends=16 makes the 16 variant the
        # baseline; only the 1 variant remains for that knob.
        ctx = dict(PIPE_CTX, pending_sends=16)
        values = [
            s.value for s in plan_sweep(ctx) if s.knob == "pending_sends"
        ]
        assert values == [1]


class TestKnobs:
    def test_registry_lookup(self):
        assert knob_by_name("block_kib").baseline == 64.0
        with pytest.raises(KeyError):
            knob_by_name("warp_factor")

    def test_suggestable_is_a_strict_subset(self):
        names = {k.name for k in KNOBS}
        assert SUGGESTABLE_KNOBS < names
        assert "transport" not in SUGGESTABLE_KNOBS
        assert "algo" not in SUGGESTABLE_KNOBS

    def test_applicable_respects_gates(self):
        names = {k.name for k in applicable_knobs(dict(PIPE_CTX))}
        assert "prefetch_blocks" in names
        string_ctx = dict(PIPE_CTX, records="string")
        assert "prefetch_blocks" not in {
            k.name for k in applicable_knobs(string_ctx)
        }

    def test_checkpoint_cadence_settings_shape(self):
        knob = knob_by_name("checkpoint_cadence")
        assert knob.settings_for(0) == {"checkpoint": False}
        assert knob.settings_for(4) == {
            "checkpoint": True, "a2a_checkpoint_chunks": 4,
        }


# ------------------------------------------------------------------- sweeps


class TestRunSweep:
    def test_resume_skips_recorded_runs(self, tmp_path):
        path = str(tmp_path / "abl.json")
        calls = []

        def counting(settings):
            calls.append(settings)
            return stub_measure(flat_speed)(settings)

        run_sweep(PIPE_CTX, path=path, measure=counting)
        first = len(calls)
        assert first == len(plan_sweep(PIPE_CTX))
        run_sweep(PIPE_CTX, path=path, measure=counting)
        assert len(calls) == first, "a rerun must skip every recorded run"

    def test_interrupted_sweep_resumes_where_it_stopped(self, tmp_path):
        path = str(tmp_path / "abl.json")
        n = [0]

        def flaky(settings):
            n[0] += 1
            if n[0] == 4:
                raise RuntimeError("simulated crash")
            return stub_measure(flat_speed)(settings)

        with pytest.raises(RuntimeError):
            run_sweep(PIPE_CTX, path=path, measure=flaky)
        done_before = len(load_ablations(path)["sweeps"][0]["runs"])
        assert done_before == 3  # everything before the crash persisted
        run_sweep(PIPE_CTX, path=path, measure=stub_measure(flat_speed))
        doc = load_ablations(path)
        assert len(doc["sweeps"][0]["runs"]) == len(plan_sweep(PIPE_CTX))

    def test_ranking_orders_by_importance(self, tmp_path):
        def speed(settings):
            if settings.get("pending_sends") == 16:
                return 13.0  # +30%
            if settings.get("prefetch_blocks") == 4:
                return 9.0  # -10%
            return 10.0

        sweep = run_sweep(
            PIPE_CTX, path=str(tmp_path / "a.json"),
            measure=stub_measure(speed),
        )
        ranking = sweep["ranking"]
        assert ranking[0]["knob"] == "pending_sends"
        assert ranking[0]["importance"] == pytest.approx(0.3)
        assert ranking[0]["best_value"] == 16
        assert ranking[0]["best_gain"] == pytest.approx(0.3)
        by_name = {row["knob"]: row for row in ranking}
        # A knob that only hurts still ranks (importance is |delta|) but
        # its best_gain stays <= 0 so the policy never suggests it.
        assert by_name["prefetch_blocks"]["importance"] == pytest.approx(
            0.1
        )
        assert by_name["prefetch_blocks"]["best_gain"] <= 0.0
        imps = [row["importance"] for row in ranking]
        assert imps == sorted(imps, reverse=True)

    def test_two_contexts_keep_separate_sweeps(self, tmp_path):
        path = str(tmp_path / "a.json")
        run_sweep(PIPE_CTX, path=path, measure=stub_measure(flat_speed))
        run_sweep(SHM_CTX, path=path, measure=stub_measure(flat_speed))
        doc = load_ablations(path)
        assert len(doc["sweeps"]) == 2
        ctxs = [s["context"]["transport"] for s in doc["sweeps"]]
        assert ctxs == ["pipe", "shm"]

    def test_rank_omits_incomplete_knobs(self):
        plan = plan_sweep(PIPE_CTX)
        baseline = plan[0]
        record = {
            "ok": True, "sort_mb_s": 10.0,
            "phases": {"merge": 10.0}, "knob": None, "value": None,
        }
        sweep = {
            "context": PIPE_CTX,
            "runs": {baseline.id: dict(record)},
        }
        assert rank_knobs(sweep, plan) == []  # no knob fully measured


# ------------------------------------------------------------------- policy


def make_policy_doc(ranking, context=None):
    return {
        "schema": 1,
        "sweeps": [{
            "context": dict(context or PIPE_CTX),
            "runs": {},
            "ranking": ranking,
        }],
    }


def row(knob, gain, best, baseline_value=None, importance=None):
    return {
        "knob": knob,
        "importance": abs(gain) if importance is None else importance,
        "baseline_value": baseline_value,
        "best_value": best,
        "best_gain": gain,
    }


class TestPolicy:
    def test_suggests_only_winning_suggestable_knobs(self):
        policy = TuningPolicy(make_policy_doc([
            row("pending_sends", 0.2, 16, baseline_value=4),
            row("transport", 0.5, "shm", baseline_value="pipe"),
            row("block_kib", 0.01, 16.0, baseline_value=32.0),
            row("prefetch_blocks", -0.2, 0, baseline_value=0),
        ]))
        got = policy.suggest(
            data_mib=PIPE_CTX["data_mib"],
            memory_mib=PIPE_CTX["memory_mib"],
        )
        # transport: not suggestable; block_kib: below min gain;
        # prefetch: best == baseline.  Only pending_sends survives.
        assert got == {"pending_sends": 16}

    def test_identity_axes_must_match_exactly(self):
        policy = TuningPolicy(make_policy_doc(
            [row("pending_sends", 0.2, 16, baseline_value=4)]
        ))
        assert policy.suggest(2.0, 1.0, transport="shm") == {}
        assert policy.suggest(2.0, 1.0, algo="striped") == {}
        assert policy.suggest(2.0, 1.0, records="string") == {}

    def test_nearest_sizing_interpolation(self):
        small = dict(PIPE_CTX, data_mib=2.0, memory_mib=1.0)
        big = dict(PIPE_CTX, data_mib=256.0, memory_mib=64.0)
        doc = {
            "schema": 1,
            "sweeps": [
                {"context": small, "runs": {}, "ranking": [
                    row("pending_sends", 0.2, 1, baseline_value=4)]},
                {"context": big, "runs": {}, "ranking": [
                    row("pending_sends", 0.2, 16, baseline_value=4)]},
            ],
        }
        policy = TuningPolicy(doc)
        assert policy.suggest(3.0, 1.0) == {"pending_sends": 1}
        assert policy.suggest(200.0, 80.0) == {"pending_sends": 16}

    def test_missing_file_means_no_suggestions(self, tmp_path):
        policy = TuningPolicy.from_file(str(tmp_path / "nope.json"))
        assert policy.suggest(2.0, 1.0) == {}
        assert policy.n_sweeps == 0

    def test_malformed_file_is_silent_unless_strict(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert TuningPolicy.from_file(str(bad)).suggest(2.0, 1.0) == {}
        from repro.tuning import AblationError

        with pytest.raises(AblationError):
            TuningPolicy.from_file(str(bad), strict=True)

    def test_suggest_job_knobs_never_overrides_explicit(self):
        policy = TuningPolicy(make_policy_doc([
            row("pending_sends", 0.2, 16, baseline_value=4),
            row("block_kib", 0.2, 16.0, baseline_value=32.0),
        ]))
        spec = {
            "data_mib": PIPE_CTX["data_mib"],
            "memory_mib": PIPE_CTX["memory_mib"],
            "pending_sends": 2,
        }
        assert suggest_job_knobs(spec, policy) == {"block_kib": 16.0}
        assert suggest_job_knobs(dict(spec, block_kib=64.0), policy) == {}
        assert suggest_job_knobs(spec, None) == {}


# ------------------------------------------------------ service integration


SWEEP_CTX_FOR_SERVICE = {
    "n_workers": 2, "data_mib": 0.125, "memory_mib": 8.0,
    "block_kib": 64.0, "seed": 42, "transport": "pipe",
    "algo": "canonical", "records": "fixed16",
}


def service_policy(ranking):
    return TuningPolicy(make_policy_doc(ranking, SWEEP_CTX_FOR_SERVICE))


class TestServiceTuning:
    def test_suggested_knobs_visible_in_status_and_stats(self, tmp_path):
        policy = service_policy(
            [row("pending_sends", 0.2, 16, baseline_value=4)]
        )
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None,
            tuning=policy,
        ) as svc:
            jid = svc.submit(
                {"data_mib": 0.125, "memory_mib": 8.0, "timeout": 60.0}
            )
            job = svc.wait(jid, timeout=90)
            assert job.state == "DONE"
            status = svc.status(jid)
            assert status["tuned_knobs"] == {"pending_sends": 16}
            assert job.job.pending_sends == 16
            stats = svc.stats_snapshot()
            assert stats["tuning"] == {"enabled": True, "jobs_tuned": 1}

    def test_explicit_spec_value_beats_suggestion(self, tmp_path):
        policy = service_policy(
            [row("pending_sends", 0.2, 16, baseline_value=4)]
        )
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None,
            tuning=policy,
        ) as svc:
            jid = svc.submit({
                "data_mib": 0.125, "memory_mib": 8.0,
                "pending_sends": 2, "timeout": 60.0,
            })
            job = svc.wait(jid, timeout=90)
            assert job.state == "DONE"
            assert job.job.pending_sends == 2
            assert "tuned_knobs" not in svc.status(jid)
            assert svc.stats_snapshot()["tuning"]["jobs_tuned"] == 0

    def test_tuning_false_disables_suggestions(self, tmp_path):
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None,
            tuning=False,
        ) as svc:
            jid = svc.submit(
                {"data_mib": 0.125, "memory_mib": 8.0, "timeout": 60.0}
            )
            job = svc.wait(jid, timeout=90)
            assert job.state == "DONE"
            assert job.job.pending_sends == 4
            assert svc.stats_snapshot()["tuning"]["enabled"] is False

    def test_bad_suggestion_falls_back_to_untuned_spec(self, tmp_path):
        # A block size that trips the feasibility limit at this sizing
        # must not reject the job — the suggestion is dropped instead.
        policy = TuningPolicy(make_policy_doc(
            [row("block_kib", 0.5, 16384.0, baseline_value=64.0)],
            context=dict(
                SWEEP_CTX_FOR_SERVICE, data_mib=0.25, memory_mib=8.0
            ),
        ))
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None,
            tuning=policy,
        ) as svc:
            # The spec is feasible untuned; the suggested 16 MiB block
            # (bigger than M) is not.  The job must still run, untuned.
            jid = svc.submit({
                "data_mib": 0.25, "memory_mib": 8.0, "timeout": 60.0,
            })
            job = svc.wait(jid, timeout=90)
            assert "tuned_knobs" not in svc.status(jid)
            assert job.state == "DONE"
            assert job.job.config.block_bytes == 64 * 1024


# --------------------------------------------------- spec rejection wording


class TestSpecRejectionMessages:
    """Every family of bad spec value names the key and what's legal."""

    def check(self, spec, *needles):
        with pytest.raises(JobRejected) as err:
            build_native_job(spec, "/tmp")
        for needle in needles:
            assert needle in str(err.value), (spec, str(err.value))

    def test_choice_fields_name_key_and_accepted_values(self):
        self.check(
            {"transport": "tcp"}, "spec field 'transport'='tcp'",
            "'pipe', 'shm'",
        )
        self.check(
            {"selection": "bogus"}, "spec field 'selection'='bogus'",
            "'sampled', 'basic', 'bisect'",
        )
        self.check(
            {"records": "f32"}, "spec field 'records'='f32'",
            "'fixed16', 'string'",
        )
        self.check(
            {"algo": "quantum"}, "spec field 'algo'='quantum'",
            "'canonical', 'striped', 'guidesort'",
        )

    def test_numeric_fields_name_key_and_floor(self):
        self.check({"n_workers": 0}, "spec field 'n_workers'=0", ">= 1")
        self.check(
            {"data_mib": -1.0}, "spec field 'data_mib'=-1.0", "> 0"
        )
        self.check(
            {"pending_sends": 0}, "spec field 'pending_sends'=0", ">= 1"
        )
        self.check(
            {"sample_every": 0}, "spec field 'sample_every'=0", ">= 1"
        )

    def test_cross_field_shm_ring_requires_shm(self):
        self.check(
            {"shm_ring_kib": 64}, "spec field 'shm_ring_kib'=64",
            "transport='shm'",
        )
        # And on shm it passes through to the job.
        job = build_native_job(
            {"transport": "shm", "shm_ring_kib": 64}, "/tmp"
        )
        assert job.shm_ring_kib == 64
        assert job.ring_bytes == 64 * 1024

    def test_unknown_field_lists_accepted_keys(self):
        self.check({"warp": 9}, "unknown spec field 'warp'")


# ----------------------------------------------------------------- CLI + e2e


def run_cli(*args):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "tune", *args],
        capture_output=True, text=True,
    )
    return proc.returncode, proc.stdout, proc.stderr


class TestTuneCLI:
    def test_plan_check_passes(self):
        code, out, err = run_cli("plan", "--quick", "--check")
        assert code == 0, err
        assert "deterministic and repeat-free" in out

    def test_plan_json_lists_every_run(self):
        code, out, _err = run_cli("plan", "--quick", "--json")
        assert code == 0
        doc = json.loads(out)
        assert len(doc) == len(QUICK_CONTEXTS)
        for sweep in doc:
            assert sweep["runs"][0]["knob"] is None

    def test_report_on_missing_file_is_calm(self, tmp_path):
        code, out, _err = run_cli(
            "report", "--file", str(tmp_path / "none.json")
        )
        assert code == 0
        assert "no sweeps recorded" in out

    def test_suggest_reads_a_real_file(self, tmp_path):
        path = tmp_path / "abl.json"
        path.write_text(json.dumps(make_policy_doc(
            [row("pending_sends", 0.2, 16, baseline_value=4)]
        )))
        code, out, _err = run_cli(
            "suggest", "--data-mib", str(PIPE_CTX["data_mib"]),
            "--memory-mib", str(PIPE_CTX["memory_mib"]),
            "--file", str(path), "--json",
        )
        assert code == 0, out
        assert json.loads(out) == {"knobs": {"pending_sends": 16}}

    def test_unknown_subcommand_exits_2(self):
        code, _out, err = run_cli("frobnicate")
        assert code == 2
        assert "plan,run,report,suggest" in err


def test_tiny_real_sweep_end_to_end(tmp_path):
    """One real measured context through ``run_sweep`` (no stub)."""
    ctx = {
        "n_workers": 2, "data_mib": 0.25, "memory_mib": 0.125,
        "block_kib": 8.0, "seed": 7, "transport": "pipe",
        "algo": "canonical", "records": "fixed16",
    }
    path = str(tmp_path / "abl.json")
    sweep = run_sweep(
        ctx, path=path, spill_dir=str(tmp_path / "spill"), timeout=120.0
    )
    assert sweep["ranking"], "a full sweep must produce a ranking"
    doc = load_ablations(path)
    for run in doc["sweeps"][0]["runs"].values():
        assert run["ok"] and run["sort_mb_s"] > 0
