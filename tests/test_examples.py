"""Smoke tests: every example script runs end-to-end at tiny scale."""

import os
import runpy
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "sortbenchmark.py",
    "worstcase_randomization.py",
    "robust_splitting.py",
    "striped_vs_canonical.py",
    "pipelined_kruskal.py",
    "capacity_planning.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", "tiny")
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_quickstart_reports_valid_output(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", "tiny")
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Output valid" in out
    assert "run_formation" in out


def test_worstcase_example_shows_randomization_gain(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", "tiny")
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "worstcase_randomization.py"),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "Randomization cuts the redistribution volume" in out


def test_kruskal_example_verifies_against_networkx(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", "tiny")
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "pipelined_kruskal.py"), run_name="__main__"
    )
    out = capsys.readouterr().out
    assert "networkx agrees" in out


def test_bench_cli_runs(tmp_path):
    env = dict(os.environ, REPRO_BENCH_DIR=str(tmp_path))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "ablation_striped"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "CanonicalMergeSort" in proc.stdout
    assert (tmp_path / "ablation_striped.txt").exists()
