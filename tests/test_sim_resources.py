"""Unit tests for Server, Pool and Rendezvous."""

import pytest

from repro.sim import Pool, Rendezvous, Server, SimulationError, Simulator


# ---------------------------------------------------------------- Server


def test_server_fifo_single_capacity():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    done = []

    def client(i):
        yield srv.request(1.0, result=i)
        done.append((sim.now, i))

    for i in range(3):
        sim.process(client(i))
    sim.run()
    assert done == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_server_parallel_capacity():
    sim = Simulator()
    srv = Server(sim, capacity=2)
    done = []

    def client(i):
        yield srv.request(1.0)
        done.append((sim.now, i))

    for i in range(4):
        sim.process(client(i))
    sim.run()
    assert [t for t, _ in done] == [1.0, 1.0, 2.0, 2.0]


def test_server_callable_service_evaluated_at_start():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    starts = []

    def service(req):
        starts.append(sim.now)
        return 2.0

    def client():
        yield srv.request(service)

    sim.process(client())
    sim.process(client())
    sim.run()
    assert starts == [0.0, 2.0]


def test_server_busy_time_by_tag():
    sim = Simulator()
    srv = Server(sim, capacity=1)

    def client(tag, dur):
        yield srv.request(dur, tag=tag)

    sim.process(client("a", 1.0))
    sim.process(client("b", 2.0))
    sim.process(client("a", 3.0))
    sim.run()
    assert srv.busy_time == 6.0
    assert srv.busy_by_tag == {"a": 4.0, "b": 2.0}
    assert srv.n_served == 3


def test_server_wait_time_tracking():
    sim = Simulator()
    srv = Server(sim, capacity=1)
    reqs = []

    def client():
        req = srv.request(1.0)
        reqs.append(req)
        yield req

    sim.process(client())
    sim.process(client())
    sim.run()
    assert reqs[0].wait_time == 0.0
    assert reqs[1].wait_time == 1.0
    assert srv.total_wait == 1.0


def test_server_negative_service_rejected():
    sim = Simulator()
    srv = Server(sim, capacity=1)

    def client():
        yield srv.request(-1.0)

    proc = sim.process(client())
    with pytest.raises(Exception):
        sim.run()
        _ = proc.value


def test_server_capacity_validation():
    with pytest.raises(ValueError):
        Server(Simulator(), capacity=0)


def test_server_queue_length():
    sim = Simulator()
    srv = Server(sim, capacity=1)

    def client():
        yield srv.request(1.0)

    sim.process(client())
    sim.process(client())
    sim.process(client())

    def observer():
        yield sim.timeout(0.5)
        return (srv.in_service, srv.queue_length)

    obs = sim.process(observer())
    sim.run()
    assert obs.value == (1, 2)


# ------------------------------------------------------------------ Pool


def test_pool_acquire_release():
    sim = Simulator()
    pool = Pool(sim, capacity=2)
    log = []

    def worker(i):
        yield pool.acquire(1)
        log.append((sim.now, "got", i))
        yield sim.timeout(1.0)
        pool.release(1)

    for i in range(3):
        sim.process(worker(i))
    sim.run()
    assert log == [(0.0, "got", 0), (0.0, "got", 1), (1.0, "got", 2)]


def test_pool_fifo_blocks_small_behind_large():
    sim = Simulator()
    pool = Pool(sim, capacity=4)
    log = []

    def holder():
        yield pool.acquire(3)
        yield sim.timeout(2.0)
        pool.release(3)

    def big():
        yield sim.timeout(0.1)
        yield pool.acquire(3)
        log.append(("big", sim.now))
        pool.release(3)

    def small():
        yield sim.timeout(0.2)
        yield pool.acquire(1)
        log.append(("small", sim.now))
        pool.release(1)

    sim.process(holder())
    sim.process(big())
    sim.process(small())
    sim.run()
    # FIFO: small (which would fit) waits behind big.
    assert log[0][0] == "big"


def test_pool_try_acquire():
    sim = Simulator()
    pool = Pool(sim, capacity=1)
    assert pool.try_acquire(1)
    assert not pool.try_acquire(1)
    pool.release(1)
    assert pool.try_acquire(1)


def test_pool_over_release_rejected():
    sim = Simulator()
    pool = Pool(sim, capacity=1)
    with pytest.raises(SimulationError):
        pool.release(1)


def test_pool_impossible_acquire_rejected():
    sim = Simulator()
    pool = Pool(sim, capacity=2)
    with pytest.raises(SimulationError):
        pool.acquire(3)


def test_pool_negative_capacity_rejected():
    with pytest.raises(ValueError):
        Pool(Simulator(), capacity=-1)


# ------------------------------------------------------------- Rendezvous


def test_rendezvous_releases_all_with_values():
    sim = Simulator()

    def resolve(payloads):
        total = sum(payloads.values())
        return {rank: (0.5 * rank, total) for rank in payloads}

    rv = Rendezvous(sim, parties=3, resolve=resolve)
    results = {}

    def party(rank):
        yield sim.timeout(rank * 1.0)
        value = yield rv.arrive(rank, rank + 1)
        results[rank] = (sim.now, value)

    for rank in range(3):
        sim.process(party(rank))
    sim.run()
    # Last arrival at t=2; releases at 2 + 0.5 * rank with the sum 6.
    assert results == {0: (2.0, 6), 1: (2.5, 6), 2: (3.0, 6)}


def test_rendezvous_double_arrival_rejected():
    sim = Simulator()
    rv = Rendezvous(sim, parties=2, resolve=lambda p: {r: (0, None) for r in p})
    rv.arrive(0)
    with pytest.raises(SimulationError):
        rv.arrive(0)


def test_rendezvous_resolver_must_cover_all_ranks():
    sim = Simulator()
    rv = Rendezvous(sim, parties=2, resolve=lambda p: {0: (0, None)})
    rv.arrive(0)
    with pytest.raises(SimulationError):
        rv.arrive(1)


def test_rendezvous_single_party():
    sim = Simulator()
    rv = Rendezvous(sim, parties=1, resolve=lambda p: {0: (1.0, "solo")})

    def party():
        return (yield rv.arrive(0))

    assert sim.run_process(party()) == "solo"
    assert sim.now == 1.0


def test_rendezvous_arrival_after_resolution_rejected():
    sim = Simulator()
    rv = Rendezvous(sim, parties=1, resolve=lambda p: {0: (0.0, None)})
    rv.arrive(0)
    with pytest.raises(SimulationError):
        rv.arrive(1)
