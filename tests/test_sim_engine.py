"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def body():
        yield sim.timeout(2.5)
        return "done"

    assert sim.run_process(body()) == "done"
    assert sim.now == 2.5


def test_timeout_value_delivered():
    sim = Simulator()

    def body():
        got = yield sim.timeout(1.0, value=41)
        return got + 1

    assert sim.run_process(body()) == 42


def test_zero_delay_timeout():
    sim = Simulator()

    def body():
        yield sim.timeout(0.0)
        return sim.now

    assert sim.run_process(body()) == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []

    def body(tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        sim.process(body(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_processes_interleave_by_time():
    sim = Simulator()
    trace = []

    def body(tag, delay):
        yield sim.timeout(delay)
        trace.append((sim.now, tag))

    sim.process(body("slow", 3.0))
    sim.process(body("fast", 1.0))
    sim.run()
    assert trace == [(1.0, "fast"), (3.0, "slow")]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()

    def opener():
        yield sim.timeout(5.0)
        gate.succeed("open!")

    def waiter():
        msg = yield gate
        return (sim.now, msg)

    sim.process(opener())
    proc = sim.process(waiter())
    sim.run()
    assert proc.value == (5.0, "open!")


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def failer():
        yield sim.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            return f"caught {exc}"

    sim.process(failer())
    proc = sim.process(waiter())
    sim.run()
    assert proc.value == "caught boom"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_waiting_on_already_triggered_event():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(7)

    def body():
        got = yield ev
        return got

    assert sim.run_process(body()) == 7


def test_multiple_waiters_one_event():
    sim = Simulator()
    gate = sim.event()

    def opener():
        yield sim.timeout(1.0)
        gate.succeed("x")

    def waiter():
        return (yield gate)

    sim.process(opener())
    procs = [sim.process(waiter()) for _ in range(3)]
    sim.run()
    assert [p.value for p in procs] == ["x", "x", "x"]


def test_process_is_event_with_return_value():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 99

    def parent():
        result = yield sim.process(child())
        return result + 1

    assert sim.run_process(parent()) == 100


def test_yield_from_subgenerator():
    sim = Simulator()

    def sub():
        yield sim.timeout(1.0)
        return "sub"

    def body():
        got = yield from sub()
        yield sim.timeout(1.0)
        return got + "/top"

    assert sim.run_process(body()) == "sub/top"
    assert sim.now == 2.0


def test_exception_propagates_from_child_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("child died")

    def parent():
        with pytest.raises(ValueError, match="child died"):
            yield sim.process(child())
        return "survived"

    assert sim.run_process(parent()) == "survived"


def test_all_of_collects_values():
    sim = Simulator()

    def body():
        evs = [sim.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        values = yield sim.all_of(evs)
        return values

    assert sim.run_process(body()) == [3.0, 1.0, 2.0]
    assert sim.now == 3.0


def test_any_of_returns_first():
    sim = Simulator()

    def body():
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        first = yield sim.any_of([fast, slow])
        return (first.value, sim.now)

    # sim.now is captured inside: run() afterwards drains the slow timeout.
    assert sim.run_process(body()) == ("fast", 1.0)


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def body():
        got = yield sim.all_of([])
        return got

    assert sim.run_process(body()) == []


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []

    def body():
        yield sim.timeout(10.0)
        fired.append(True)

    sim.process(body())
    sim.run(until=4.0)
    assert sim.now == 4.0
    assert not fired
    sim.run()
    assert fired


def test_deadlock_detection():
    sim = Simulator()
    never = sim.event()

    def body():
        yield never

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(body())


def test_interrupt_throws_into_process():
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            return f"interrupted: {intr.cause}"

    def attacker(proc):
        yield sim.timeout(1.0)
        proc.interrupt("test cause")

    proc = sim.process(victim())
    sim.process(attacker(proc))
    sim.run()
    assert proc.value == "interrupted: test cause"


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)

    proc = sim.process(body())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yield_non_event_raises():
    sim = Simulator()

    def body():
        yield 42

    proc = sim.process(body())
    sim.run()
    assert proc.triggered
    with pytest.raises(Exception):
        _ = proc.value


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_simulator_not_reentrant():
    sim = Simulator()

    def body():
        with pytest.raises(SimulationError):
            sim.run()
        yield sim.timeout(0.1)
        return True

    assert sim.run_process(body()) is True
