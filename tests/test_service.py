"""Sort-service suite: concurrency, admission, cancellation, isolation.

Everything here drives a real :class:`~repro.service.daemon.SortService`
— warm pool processes, fresh per-job meshes, the JSON control plane —
at test scale (hundreds of KiB per job).  The acceptance pillars:

* N concurrent jobs come back bitwise identical to single-shot
  ``--backend native`` runs of the same specs;
* admission control provably serializes jobs whose combined memory
  cost exceeds the service budget;
* killing a pool worker mid-job fails (or recovers) only the job it
  was running — a concurrent job and the pool itself are unaffected;
* spill-namespace isolation: cleanup of an aborted job can never touch
  a concurrent job's blocks.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.native.blockstore import FileBlockStore, purge_namespace
from repro.native.comm_api import pack_fence
from repro.native.driver import NativeSorter
from repro.native.records import NATIVE_DTYPE
from repro.net.framing import (
    KIND_CTRL,
    KIND_RESULT,
    recv_frame,
    send_frame,
    send_json_frame,
)
from repro.service import JobRejected, SortClient, SortService
from repro.service.jobs import build_native_job
from repro.testing.chaos import ChaosSpec

KiB = 1024

#: A quick two-worker job (~0.3 s): 128 KiB/node in 2 KiB blocks.
SMALL = {
    "data_mib": 128 / 1024,
    "memory_mib": 48 / 1024,
    "block_kib": 2.0,
    "n_workers": 2,
    "seed": 42,
    "timeout": 120.0,
}
#: A slower job (~2 s): 1 MiB/node, 12 runs — wide enough windows to
#: cancel it mid-flight or kill one of its workers.
SLOW = {
    "data_mib": 1.0,
    "memory_mib": 0.25,
    "block_kib": 2.0,
    "n_workers": 2,
    "seed": 7,
    "timeout": 120.0,
}


def wait_for(predicate, timeout=30.0, interval=0.01, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


def output_bytes(job, outputs):
    """Concatenated output-file bytes of a finished sort, rank order."""
    chunks = []
    for meta in sorted(outputs, key=lambda m: m.rank):
        with open(meta.path, "rb") as handle:
            chunks.append(handle.read())
    return b"".join(chunks)


def single_shot(spec, spill_dir):
    """The oracle: the same spec through the single-shot driver."""
    return NativeSorter(build_native_job(dict(spec), str(spill_dir))).run()


# ------------------------------------------------------------ wire plumbing


class TestCompositeFence:
    def test_pack_fence_layout(self):
        assert pack_fence(0, 0) == 0
        assert pack_fence(0, 3) == 3
        assert pack_fence(1, 0) == 1 << 8
        assert pack_fence(7, 5) == (7 << 8) | 5
        # The epoch half wraps at a byte; the job half carries a u32.
        assert pack_fence(0, 256) == 0
        assert pack_fence(2**32 - 1, 255) == ((2**32 - 1) << 8) | 255

    def test_fence_roundtrips_on_the_wire(self):
        a, b = socket.socketpair()
        try:
            fence = pack_fence(7, 5)
            send_frame(a, KIND_RESULT, ("hello",), epoch=5, fence=fence)
            kind, msg, epoch, got, _ = recv_frame(b)
            assert (kind, msg, epoch) == (KIND_RESULT, ("hello",), 5)
            assert got == fence
        finally:
            a.close()
            b.close()

    def test_distinct_jobs_same_epoch_differ(self):
        # The regression the composite fence exists for: two jobs at
        # the same epoch must never share a fence value.
        assert pack_fence(1, 0) != pack_fence(2, 0)
        assert pack_fence(1, 1) != pack_fence(2, 1)

    def test_json_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            obj = {"cmd": "submit", "spec": {"data_mib": 1.5, "label": "x"}}
            send_json_frame(a, KIND_CTRL, obj)
            kind, msg, _epoch, _fence, _n = recv_frame(b)
            assert kind == KIND_CTRL
            assert msg == obj
        finally:
            a.close()
            b.close()


# -------------------------------------------------------- spill namespacing


class TestSpillNamespacing:
    def test_namespaced_paths_cannot_collide(self, tmp_path):
        plain = FileBlockStore(str(tmp_path), 0, 8)
        spaced = FileBlockStore(str(tmp_path), 0, 8, namespace="j1-abc")
        assert plain.input_path() != spaced.input_path()
        assert os.path.basename(spaced.input_path()) == "j1-abc_input_0.dat"
        assert os.path.basename(spaced.manifest_path()) == (
            "j1-abc_manifest_0.jsonl"
        )

    def test_purge_removes_exactly_one_namespace(self, tmp_path):
        records = np.zeros(8, dtype=NATIVE_DTYPE)
        stores = {
            ns: FileBlockStore(str(tmp_path), 0, 8, namespace=ns)
            for ns in ("j1-aaaa", "j2-bbbb")
        }
        for store in stores.values():
            store.write_file(store.input_path(), records, "generate")
            store.write_file(store.output_path(), records, "merge")
        removed = purge_namespace(str(tmp_path), "j1-aaaa")
        assert removed == 2
        left = sorted(os.listdir(tmp_path))
        assert left == ["j2-bbbb_input_0.dat", "j2-bbbb_output_0.dat"]
        # Idempotent, and safe on a missing directory.
        assert purge_namespace(str(tmp_path), "j1-aaaa") == 0
        assert purge_namespace(str(tmp_path / "absent"), "x") == 0

    def test_purge_requires_namespace(self, tmp_path):
        with pytest.raises(ValueError):
            purge_namespace(str(tmp_path), "")


# ------------------------------------------------------------- concurrency


class TestConcurrentJobs:
    def test_three_concurrent_jobs_match_single_shot(self, tmp_path):
        """≥3 jobs in flight at once, each bitwise equal to its oracle."""
        specs = [
            dict(SMALL, seed=seed, label=f"seed-{seed}")
            for seed in (11, 22, 33)
        ]
        oracles = [
            output_bytes(r.job, r.outputs)
            for r in (
                single_shot(s, tmp_path / f"oracle-{i}")
                for i, s in enumerate(specs)
            )
        ]
        with SortService(
            pool_size=6, spill_root=str(tmp_path / "svc"), listen=None
        ) as svc:
            ids = [svc.submit(s) for s in specs]
            jobs = [svc.wait(jid, timeout=120) for jid in ids]
            for job, oracle in zip(jobs, oracles):
                assert job.state == "DONE", job.error
                assert job.result.validate().ok
                assert output_bytes(job.job, job.result.outputs) == oracle

    def test_back_to_back_jobs_reuse_the_same_workers(self, tmp_path):
        """Satellite 1: the pool is warm — same PIDs serve job after job."""
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None
        ) as svc:
            pids_before = [h.pid for h in svc.pool.handles]
            first = svc.wait(svc.submit(dict(SMALL)), timeout=120)
            second = svc.wait(svc.submit(dict(SMALL, seed=9)), timeout=120)
            assert first.state == "DONE", first.error
            assert second.state == "DONE", second.error
            assert [h.pid for h in svc.pool.handles] == pids_before
            assert svc.pool.respawns == 0
            assert all(h.jobs_run == 2 for h in svc.pool.handles)
            # And the reused workers produced byte-identical output to
            # a cold single-shot run of the same spec.
            oracle = single_shot(dict(SMALL, seed=9), tmp_path / "oracle")
            assert output_bytes(second.job, second.result.outputs) == (
                output_bytes(oracle.job, oracle.outputs)
            )


# ------------------------------------------------------------ shm transport


class TestShmTransportJobs:
    def test_shm_job_matches_pipe_job_bitwise(self, tmp_path):
        """A ``transport: shm`` spec runs on the warm pool over
        shared-memory rings and produces byte-identical output."""
        from repro.native.shm import list_shm_segments

        before = set(list_shm_segments())
        with SortService(
            pool_size=2, spill_root=str(tmp_path / "svc"), listen=None
        ) as svc:
            shm = svc.wait(svc.submit(dict(SMALL, transport="shm")), timeout=120)
            pipe = svc.wait(svc.submit(dict(SMALL, transport="pipe")), timeout=120)
            assert shm.state == "DONE", shm.error
            assert pipe.state == "DONE", pipe.error
            assert output_bytes(shm.job, shm.result.outputs) == (
                output_bytes(pipe.job, pipe.result.outputs)
            )
            # The attempt finalized: its ring segments are already gone.
            assert set(list_shm_segments()) - before == set()
        assert set(list_shm_segments()) - before == set()

    def test_tcp_spec_is_rejected(self, tmp_path):
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None
        ) as svc:
            with pytest.raises(JobRejected):
                svc.submit(dict(SMALL, transport="tcp"))


# ------------------------------------------------------------ algo backends


class TestAlgoSpecs:
    @pytest.mark.parametrize("algo", ["striped", "guidesort"])
    def test_algo_spec_round_trips_through_submit(self, tmp_path, algo):
        """An ``algo`` spec reaches the compiled job and the warm pool
        runs that backend to the same bytes as a cold single-shot run."""
        spec = dict(SMALL, algo=algo, label=algo)
        oracle = single_shot(spec, tmp_path / "oracle")
        with SortService(
            pool_size=2, spill_root=str(tmp_path / "svc"), listen=None
        ) as svc:
            job = svc.wait(svc.submit(spec), timeout=120)
            assert job.state == "DONE", job.error
            assert job.job.algo == algo
            assert job.result.validate().ok
            assert output_bytes(job.job, job.result.outputs) == (
                output_bytes(oracle.job, oracle.outputs)
            )

    def test_unknown_algo_is_rejected(self, tmp_path):
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None
        ) as svc:
            with pytest.raises(JobRejected):
                svc.submit(dict(SMALL, algo="quicksort"))
            # Rejections never occupy the queue.
            assert svc.stats_snapshot()["jobs"]["submitted"] == 0


# ---------------------------------------------------------------- admission


class TestAdmissionControl:
    def test_over_budget_jobs_are_serialized(self, tmp_path):
        """Two jobs fit alone but not together: the second must wait."""
        mem_cost = 2 * int(0.25 * 2**20)  # P=2 workers x 256 KiB
        with SortService(
            pool_size=4,
            spill_root=str(tmp_path),
            listen=None,
            memory_budget_bytes=mem_cost + mem_cost // 2,
        ) as svc:
            first = svc.submit(dict(SLOW, label="first"))
            wait_for(
                lambda: svc.status(first)["state"] == "RUNNING",
                what="first job running",
            )
            second = svc.submit(dict(SLOW, seed=8, label="second"))
            # The pool has 4 idle-capable workers; only the budget can
            # be holding the second job back.
            assert svc.status(second)["state"] == "QUEUED"
            ja = svc.wait(first, timeout=120)
            jb = svc.wait(second, timeout=120)
            assert ja.state == "DONE", ja.error
            assert jb.state == "DONE", jb.error
            # Provable serialization: the second attempt began only
            # after the first released its reservation.
            assert jb.started >= ja.finished
            assert jb.admission_wait > 0

    def test_queue_when_pool_is_busy(self, tmp_path):
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None
        ) as svc:
            first = svc.submit(dict(SLOW))
            wait_for(
                lambda: svc.status(first)["state"] == "RUNNING",
                what="first job running",
            )
            second = svc.submit(dict(SMALL))
            assert svc.status(second)["state"] == "QUEUED"
            assert svc.status(second)["queue_position"] == 0
            assert svc.wait(first, timeout=120).state == "DONE"
            assert svc.wait(second, timeout=120).state == "DONE"

    def test_infeasible_jobs_are_rejected_outright(self, tmp_path):
        with SortService(
            pool_size=2,
            spill_root=str(tmp_path),
            listen=None,
            memory_budget_bytes=4 * 2**20,
        ) as svc:
            with pytest.raises(JobRejected):
                svc.submit(dict(SMALL, n_workers=3))
            with pytest.raises(JobRejected):
                svc.submit(dict(SMALL, memory_mib=16.0))
            with pytest.raises(JobRejected):
                svc.submit(dict(SMALL, bogus_knob=1))
            # Rejections never occupy the queue.
            assert svc.stats_snapshot()["jobs"]["submitted"] == 0


# ------------------------------------------------------------- cancellation


class TestCancellation:
    def test_cancel_while_queued(self, tmp_path):
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None
        ) as svc:
            runner = svc.submit(dict(SLOW))
            wait_for(
                lambda: svc.status(runner)["state"] == "RUNNING",
                what="runner running",
            )
            queued = svc.submit(dict(SMALL))
            assert svc.status(queued)["state"] == "QUEUED"
            assert svc.cancel(queued) == "CANCELLED"
            job = svc.wait(queued, timeout=10)
            assert job.state == "CANCELLED"
            assert svc.wait(runner, timeout=120).state == "DONE"

    def test_cancel_while_running_frees_the_pool(self, tmp_path):
        with SortService(
            pool_size=2, spill_root=str(tmp_path), listen=None
        ) as svc:
            victim = svc.submit(dict(SLOW))
            wait_for(
                lambda: svc.status(victim)["state"] == "RUNNING",
                what="victim running",
            )
            svc.cancel(victim)
            job = svc.wait(victim, timeout=60)
            assert job.state == "CANCELLED"
            # No worker died for this: the interrupt channel aborted the
            # job inside the still-warm processes.
            assert svc.pool.respawns == 0
            after = svc.wait(svc.submit(dict(SMALL)), timeout=120)
            assert after.state == "DONE", after.error
            # The cancelled job's spill namespace was purged; the
            # follow-up job's output files are intact.
            leftovers = [
                name
                for name in os.listdir(tmp_path)
                if name.startswith(job.namespace)
            ]
            assert leftovers == []


# ------------------------------------------------- failure isolation (chaos)


class TestFailureIsolation:
    def test_kill_worker_fails_only_its_job(self, tmp_path):
        """Kill a pool worker mid-job-A: B finishes clean, A recovers."""
        with SortService(
            pool_size=4, spill_root=str(tmp_path), listen=None
        ) as svc:
            a = svc.submit(dict(SLOW, label="victim", max_restarts=1))
            pids = wait_for(
                lambda: svc.worker_pids(a), what="victim job dispatched"
            )
            b = svc.submit(dict(SLOW, seed=8, label="bystander"))
            os.kill(pids[0], signal.SIGKILL)
            jb = svc.wait(b, timeout=120)
            ja = svc.wait(a, timeout=120)
            assert jb.state == "DONE", jb.error
            assert jb.policy.restarts_used == 0
            assert ja.state == "DONE", ja.error
            assert ja.policy.restarts_used >= 1
            assert svc.pool.respawns >= 1
            assert ja.result.validate().ok and jb.result.validate().ok
            # The recovered job still matches its single-shot oracle.
            oracle = single_shot(
                {k: v for k, v in SLOW.items()}, tmp_path / "oracle"
            )
            assert output_bytes(ja.job, ja.result.outputs) == (
                output_bytes(oracle.job, oracle.outputs)
            )

    def test_kill_without_restarts_fails_just_that_job(self, tmp_path):
        with SortService(
            pool_size=4, spill_root=str(tmp_path), listen=None
        ) as svc:
            a = svc.submit(dict(SLOW, label="doomed"))
            pids = wait_for(
                lambda: svc.worker_pids(a), what="doomed job dispatched"
            )
            b = svc.submit(dict(SMALL, label="bystander"))
            os.kill(pids[0], signal.SIGKILL)
            ja = svc.wait(a, timeout=60)
            jb = svc.wait(b, timeout=120)
            assert ja.state == "FAILED"
            assert "died" in ja.error
            assert jb.state == "DONE", jb.error
            # The pool healed: a fresh job runs fine afterwards.
            again = svc.wait(svc.submit(dict(SMALL, seed=5)), timeout=120)
            assert again.state == "DONE", again.error

    def test_abort_cleanup_cannot_touch_a_concurrent_job(self, tmp_path):
        """Satellite 2 end-to-end: job A aborts with cleanup_on_abort
        while job B runs in the same spill root; B's blocks survive."""
        chaos = ChaosSpec(rank=0, kill_at="before:merge")
        with SortService(
            pool_size=4, spill_root=str(tmp_path), listen=None
        ) as svc:
            b = svc.submit(dict(SLOW, label="survivor"))
            a = svc.submit(
                dict(
                    SMALL,
                    label="aborter",
                    chaos=chaos,
                    cleanup_on_abort=True,
                )
            )
            ja = svc.wait(a, timeout=60)
            jb = svc.wait(b, timeout=120)
            assert ja.state == "FAILED"
            assert jb.state == "DONE", jb.error
            names = os.listdir(tmp_path)
            assert not any(n.startswith(ja.job.spill_namespace) for n in names)
            survivors = [
                n for n in names if n.startswith(jb.job.spill_namespace)
            ]
            assert survivors, "the surviving job's files must remain"
            assert jb.result.validate().ok


# ------------------------------------------------------------ control plane


class TestControlPlane:
    def test_wire_submit_status_result_cancel(self, tmp_path):
        with SortService(pool_size=2, spill_root=str(tmp_path)) as svc:
            with SortClient(svc.addr) as client:
                assert client.ping()
                jid = client.submit(dict(SMALL, label="wire"))
                reply = client.result(jid, timeout=120)
                assert reply["job"]["state"] == "DONE"
                result = reply["result"]
                assert result["validation"]["total_keys"] == 16384
                assert len(result["outputs"]) == 2
                assert all(
                    os.path.exists(o["path"]) for o in result["outputs"]
                )
                listing = client.jobs()
                assert [j["id"] for j in listing] == [jid]
                stats = client.stats()
                assert stats["jobs"]["done"] == 1
                assert stats["pool"]["size"] == 2

    def test_wire_rejection_and_unknown_command(self, tmp_path):
        from repro.service.jobs import ServiceError

        with SortService(pool_size=2, spill_root=str(tmp_path)) as svc:
            with SortClient(svc.addr) as client:
                with pytest.raises(ServiceError, match="workers"):
                    client.submit(dict(SMALL, n_workers=9))
                with pytest.raises(ServiceError, match="unknown job"):
                    client.status("j999")

    def test_concurrent_wire_clients(self, tmp_path):
        """Several clients, each its own socket, racing submits."""
        with SortService(pool_size=4, spill_root=str(tmp_path)) as svc:
            outcomes = {}

            def one(i):
                with SortClient(svc.addr) as client:
                    jid = client.submit(dict(SMALL, seed=100 + i))
                    outcomes[i] = client.result(jid, timeout=120)

            threads = [
                threading.Thread(target=one, args=(i,)) for i in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert len(outcomes) == 3
            assert all(
                r["job"]["state"] == "DONE" for r in outcomes.values()
            )

    def test_shutdown_cancels_everything(self, tmp_path):
        svc = SortService(pool_size=2, spill_root=str(tmp_path), listen=None)
        running = svc.submit(dict(SLOW))
        wait_for(
            lambda: svc.status(running)["state"] == "RUNNING",
            what="job running",
        )
        queued = svc.submit(dict(SMALL))
        svc.close()
        assert svc.status(running)["state"] == "CANCELLED"
        assert svc.status(queued)["state"] == "CANCELLED"
        assert all(not h.proc.is_alive() for h in svc.pool.handles)
