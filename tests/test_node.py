"""Unit tests for the Node compute/disk aggregation layer."""

import pytest

from repro.cluster import Cluster, MiB, PAPER_MACHINE
from repro.bench.sortbench import _congested_spec


def test_compute_charges_time_and_tags():
    cluster = Cluster(1)
    node = cluster.nodes[0]

    def body():
        yield node.compute(1.5, tag="a")
        yield node.compute(0.5, tag="b")
        yield node.compute(1.0, tag="a")

    cluster.sim.run_process(body())
    assert node.compute_time == pytest.approx(3.0)
    assert node.compute_by_tag == {"a": pytest.approx(2.5), "b": pytest.approx(0.5)}
    assert cluster.sim.now == pytest.approx(3.0)


def test_compute_factor_scales_charges():
    cluster = Cluster(1)
    node = cluster.nodes[0]
    node.compute_factor = 3.0

    def body():
        yield node.compute(1.0)

    cluster.sim.run_process(body())
    assert cluster.sim.now == pytest.approx(3.0)
    assert node.compute_time == pytest.approx(3.0)


def test_negative_compute_rejected():
    cluster = Cluster(1)
    with pytest.raises(ValueError):
        cluster.nodes[0].compute(-1.0)


def test_sort_compute_uses_machine_model():
    cluster = Cluster(1)
    node = cluster.nodes[0]

    def body():
        yield node.sort_compute(1e6, 16, tag="rf")

    cluster.sim.run_process(body())
    assert cluster.sim.now == pytest.approx(PAPER_MACHINE.sort_seconds(1e6, 16))
    assert node.compute_by_tag["rf"] > 0


def test_disk_aggregation_helpers():
    cluster = Cluster(1)
    node = cluster.nodes[0]

    def body():
        yield node.disks[0].write(0, 4 * MiB, tag="x")
        yield node.disks[1].write(0, 2 * MiB, tag="x")
        yield node.disks[1].read(0, 2 * MiB, tag="y")

    cluster.sim.run_process(body())
    assert node.bytes_written == 6 * MiB
    assert node.bytes_read == 2 * MiB
    assert node.disk_busy_time_for("x") == pytest.approx(
        node.disks[0].busy_time_for("x") + node.disks[1].busy_time_for("x")
    )
    assert node.max_disk_busy_time_for("x") == pytest.approx(
        max(node.disks[0].busy_time_for("x"), node.disks[1].busy_time_for("x"))
    )
    assert node.disk_busy_time > 0


def test_cluster_disk_count_and_totals():
    cluster = Cluster(3)
    assert cluster.n_disks == 12

    def pe(rank, cluster):
        yield cluster.nodes[rank].disks[0].write(0, 1 * MiB, tag="t")

    cluster.run_spmd(pe)
    assert cluster.total_bytes_written == 3 * MiB
    assert cluster.total_io_bytes == 3 * MiB


def test_congested_spec_pins_full_fabric_bandwidth():
    spec = _congested_spec(195)
    want = PAPER_MACHINE.net_bandwidth(195)
    # A 16-node slice under this spec sees the 195-node fabric everywhere.
    assert spec.net_bandwidth(2) == pytest.approx(want)
    assert spec.net_bandwidth(16) == pytest.approx(want)
