"""Native fault injection: every failure is fast, diagnosable, never a hang.

The quick tier (unmarked tests) injects one representative of each fault
family — worker death, torn/wedged result pipe, stalled PE, spill-disk
ENOSPC with a torn write — and asserts the driver surfaces a clean
:class:`NativeSortError` well inside the test timeout.  The full
kill-at-every-phase-boundary sweep runs nightly (``-m conformance``).
"""

import time

import numpy as np
import pytest

from repro.core.config import SortConfig
from repro.native import NativeJob, NativeSorter
from repro.native.driver import NativeSortError
from repro.testing.chaos import (
    KILL_EXIT_CODE,
    ChaosSpec,
    kill_points,
    run_chaos_case,
    run_chaos_sweep,
)

RB = 16


def chaos_job(tmp_path, spec, n_per_rank=512, n_workers=2, timeout=8.0,
              block=32, mem=384, **job_kw):
    return NativeJob(
        config=SortConfig(
            data_per_node_bytes=n_per_rank * RB,
            memory_bytes=mem * RB,
            block_bytes=block * RB,
            block_elems=block,
            seed=7,
        ),
        n_workers=n_workers,
        spill_dir=str(tmp_path / "spill"),
        timeout=timeout,
        chaos=spec,
        **job_kw,
    )


def assert_fails_fast(job, budget=30.0, match=None):
    start = time.monotonic()
    with pytest.raises(NativeSortError) as excinfo:
        NativeSorter(job).run()
    elapsed = time.monotonic() - start
    assert elapsed < budget, f"error took {elapsed:.1f}s (budget {budget}s)"
    if match is not None:
        assert match in str(excinfo.value), str(excinfo.value)
    return excinfo.value


# ------------------------------------------------------------- quick tier


def test_kill_after_run_formation_fails_fast(tmp_path):
    job = chaos_job(tmp_path, ChaosSpec(rank=0, kill_at="after:run_formation"))
    err = assert_fails_fast(job, match="worker 0")
    assert str(KILL_EXIT_CODE) in str(err)  # the exit code is diagnosable


def test_kill_nonzero_rank_named_in_error(tmp_path):
    job = chaos_job(tmp_path, ChaosSpec(rank=1, kill_at="before:merge"))
    assert_fails_fast(job, match="worker 1")


def test_wedged_result_pipe_does_not_hang_driver(tmp_path):
    # The worker writes a frame header promising 1 MiB and dies: a naive
    # driver blocks forever inside Connection.recv.
    job = chaos_job(tmp_path, ChaosSpec(rank=0, wedged_result_at="before:report"))
    assert_fails_fast(job, match="worker 0")


def test_torn_result_pickle_is_an_error_not_a_crash(tmp_path):
    job = chaos_job(tmp_path, ChaosSpec(rank=0, torn_result_at="before:report"))
    assert_fails_fast(job, match="worker 0")


def test_stalled_peer_times_out_with_diagnostic(tmp_path):
    # Rank 1 sleeps "forever" entering the all-to-all; rank 0's exchange
    # must detect the stall at the comm timeout, not spin until the
    # driver's outer deadline.
    job = chaos_job(
        tmp_path,
        ChaosSpec(rank=1, stall_at="before:all_to_all", stall_seconds=3600.0),
        timeout=4.0,
    )
    err = assert_fails_fast(job, budget=20.0)
    assert "stalled or dead" in str(err) or "timed out" in str(err)


def test_enospc_surfaces_worker_traceback(tmp_path):
    job = chaos_job(tmp_path, ChaosSpec(rank=0, enospc_after_bytes=4096))
    err = assert_fails_fast(job, match="worker 0 failed")
    assert "ENOSPC" in str(err) or "spill device full" in str(err)


def test_enospc_write_is_torn_not_clean(tmp_path):
    """The injected failure leaves a partial file, like a real full disk."""
    spec = ChaosSpec(rank=0, enospc_after_bytes=1024, torn_write_bytes=40)
    job = chaos_job(tmp_path, spec)
    with pytest.raises(NativeSortError):
        NativeSorter(job).run()
    spill = tmp_path / "spill"
    sizes = {p.name: p.stat().st_size for p in spill.iterdir()}
    assert any(size % RB for size in sizes.values()), (
        f"expected one torn (non-record-aligned) file, got {sizes}"
    )


def test_slow_link_still_sorts_correctly(tmp_path):
    # recv_delay is a degradation, not a fault: output must stay valid.
    job = chaos_job(tmp_path, ChaosSpec(rank=0, recv_delay_s=0.002))
    result = NativeSorter(job).run()
    report = result.validate()
    assert report.ok, report.issues
    keys = np.concatenate(result.output_keys())
    assert np.array_equal(keys, np.sort(keys))
    result.cleanup()


def test_clean_run_unaffected_by_wired_hooks(tmp_path):
    # A no-op spec exercises every hook call site without injecting.
    job = chaos_job(tmp_path, ChaosSpec(rank=0))
    result = NativeSorter(job).run()
    assert result.validate().ok
    result.cleanup()


def test_run_chaos_case_flags_hang_and_bogus_success(tmp_path):
    # A terminal fault that "succeeds" must be reported as a failure.
    verdict = run_chaos_case(
        ChaosSpec(rank=0, kill_at="after:run_formation"),
        str(tmp_path / "a"),
        budget=30.0,
    )
    assert verdict["ok"]
    # Budget of ~zero: even an instant clean error counts as too slow,
    # proving the harness enforces the latency contract.
    verdict = run_chaos_case(
        ChaosSpec(rank=0, kill_at="after:run_formation"),
        str(tmp_path / "b"),
        budget=0.0,
    )
    assert not verdict["ok"]


@pytest.mark.parametrize("pipelined", [False, True], ids=["sync", "pipelined"])
def test_rerun_after_kill_in_same_spill_dir(tmp_path, pipelined):
    """A clean rerun over a crashed attempt's spill dir must succeed.

    The kill leaves the directory mid-redistribution — some run pieces
    already deleted, segments half-written.  The rerun regenerates and
    overwrites everything; ``store.remove()`` being idempotent is what
    keeps its teardown from tripping over the already-missing files.
    """
    knobs = (
        {"prefetch_blocks": 4, "write_behind_blocks": 4} if pipelined else {}
    )
    job = chaos_job(
        tmp_path, ChaosSpec(rank=0, kill_at="after:all_to_all"), **knobs
    )
    assert_fails_fast(job, match="worker 0")
    clean = chaos_job(tmp_path, None, **knobs)
    result = NativeSorter(clean).run()
    report = result.validate()
    assert report.ok, report.issues
    result.cleanup()


def test_enospc_inside_write_behind_thread_fails_fast(tmp_path):
    """The torn disk-full write fires on the write-behind *thread*.

    The threshold sits past the 8 KiB input slice (written synchronously
    by generate), so the failing write is a run-formation piece spill —
    deferred to the writer thread when write-behind is on.  The latched
    error must re-raise on the worker's main thread and surface as a
    NativeSortError, not a hang or a silent success.
    """
    job = chaos_job(
        tmp_path,
        ChaosSpec(rank=0, enospc_after_bytes=9000),
        prefetch_blocks=4,
        write_behind_blocks=4,
    )
    err = assert_fails_fast(job, match="worker 0 failed")
    assert "ENOSPC" in str(err) or "spill device full" in str(err)


def test_kill_points_cover_every_phase_boundary():
    points = kill_points()
    for phase in ("run_formation", "selection", "all_to_all", "merge"):
        assert f"before:{phase}" in points
        assert f"after:{phase}" in points
    assert not any(p.endswith(":generate") for p in points)
    assert any(
        p.endswith(":generate") for p in kill_points(include_generate=True)
    )


# ----------------------------------------------------------- nightly tier


@pytest.mark.conformance
def test_full_kill_sweep_every_boundary(tmp_path):
    verdicts = run_chaos_sweep(str(tmp_path), budget=30.0)
    assert len(verdicts) == len(kill_points())
    bad = [v for v in verdicts if not v["ok"]]
    assert not bad, bad


@pytest.mark.conformance
@pytest.mark.parametrize("rank", [0, 1, 2])
def test_kill_any_rank_three_workers(tmp_path, rank):
    job = chaos_job(
        tmp_path, ChaosSpec(rank=rank, kill_at="before:selection"), n_workers=3
    )
    assert_fails_fast(job, match=f"worker {rank}")
