"""End-to-end integration tests for CanonicalMergeSort.

These are the headline guarantees of the paper's Section IV: a correct,
exactly balanced, canonical output (PE i holds ranks (i−1)N/P+1 .. iN/P),
about two passes of I/O, communication close to one traversal of the
data, and graceful degradation (never worse than ~three passes) on
adversarial inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CanonicalMergeSort,
    Cluster,
    ConfigError,
    MiB,
    generate_input,
    input_keys,
    validate_output,
)
from tests.helpers import run_small_sort, small_config


@pytest.mark.parametrize("kind", [
    "random", "worstcase", "sorted", "reversed", "skewed", "duplicates", "allequal",
])
@pytest.mark.parametrize("n_nodes", [1, 4])
def test_sorts_correctly_across_workloads(kind, n_nodes):
    _cl, _cfg, em, before, result = run_small_sort(kind, n_nodes=n_nodes)
    report = validate_output(before, result.output_keys(em))
    assert report.ok, report.issues


@pytest.mark.parametrize("n_nodes", [2, 3, 5])
def test_sorts_correctly_odd_node_counts(n_nodes):
    _cl, _cfg, em, before, result = run_small_sort("random", n_nodes=n_nodes)
    assert validate_output(before, result.output_keys(em)).ok


def test_output_is_exactly_balanced():
    _cl, cfg, em, before, result = run_small_sort("skewed", n_nodes=4)
    total = sum(len(p) for p in before)
    outs = result.output_keys(em)
    for rank, part in enumerate(outs):
        want = (rank + 1) * total // 4 - rank * total // 4
        assert len(part) == want


def test_two_pass_io_for_random_input():
    cl, cfg, _em, _before, result = run_small_sort("random", n_nodes=4)
    n_bytes = cfg.total_bytes(4)
    # Two passes = read+write twice = 4N, plus small redistribution slack.
    assert result.stats.total_io_bytes <= 4.6 * n_bytes
    assert result.stats.total_io_bytes >= 3.9 * n_bytes


def test_worstcase_never_exceeds_three_passes():
    cl, cfg, _em, _before, result = run_small_sort(
        "worstcase", n_nodes=4, randomize=False
    )
    n_bytes = cfg.total_bytes(4)
    # "our algorithm degrades to a three-pass algorithm" = 6N + overheads.
    assert result.stats.total_io_bytes <= 7.0 * n_bytes


def test_communication_close_to_one_traversal():
    cl, cfg, _em, _before, result = run_small_sort("random", n_nodes=4)
    n_bytes = cfg.total_bytes(4)
    # Best case: the internal-sort exchange is the only data movement;
    # expected (P-1)/P of N plus samples and small redistribution.
    assert result.stats.network_bytes <= 1.4 * n_bytes


def test_randomization_reduces_worstcase_alltoall():
    _cl, cfg, _em, _b, with_rand = run_small_sort(
        "worstcase", n_nodes=4, randomize=True
    )
    _cl, _cfg, _em, _b, without = run_small_sort(
        "worstcase", n_nodes=4, randomize=False
    )
    vol_with = with_rand.stats.phase_bytes("all_to_all")
    vol_without = without.stats.phase_bytes("all_to_all")
    assert vol_without > 2.0 * vol_with


def test_deterministic_given_seed():
    _cl, _cfg, em1, _b1, r1 = run_small_sort("random", n_nodes=3, seed=42)
    _cl, _cfg, em2, _b2, r2 = run_small_sort("random", n_nodes=3, seed=42)
    for a, b in zip(r1.output_keys(em1), r2.output_keys(em2)):
        assert np.array_equal(a, b)
    assert r1.stats.total_time == r2.stats.total_time


def test_runs_match_configured_r():
    cl, cfg, _em, _b, result = run_small_sort("random", n_nodes=4)
    assert result.n_runs == cfg.n_runs(cl.spec)


def test_stats_have_all_phases():
    _cl, _cfg, _em, _b, result = run_small_sort("random", n_nodes=2)
    for phase in ("run_formation", "selection", "all_to_all", "merge"):
        assert result.stats.wall_max(phase) >= 0.0
    assert result.stats.total_time > 0.0


def test_in_place_peak_space_bounded():
    """§IV-E: temporary overhead stays a small multiple of the input."""
    _cl, cfg, em, _b, result = run_small_sort("worstcase", n_nodes=4,
                                              randomize=False)
    for rank in range(4):
        assert result.stats.peak_blocks[rank] <= 2.1 * cfg.blocks_per_node + 8


def test_single_run_fast_path_two_ios_per_block():
    cl, cfg, em, before, result = run_small_sort(
        "random", n_nodes=4, data_per_node_bytes=8 * MiB
    )
    assert result.n_runs == 1
    assert validate_output(before, result.output_keys(em)).ok
    n_bytes = cfg.total_bytes(4)
    assert result.stats.total_io_bytes == pytest.approx(2 * n_bytes, rel=0.05)
    assert result.stats.phases == ["run_formation", "merge"]


def test_single_node_cluster_needs_no_network():
    cl, _cfg, em, before, result = run_small_sort("random", n_nodes=1)
    assert validate_output(before, result.output_keys(em)).ok
    assert cl.total_network_bytes == 0.0


def test_infeasible_config_rejected_up_front():
    cfg = small_config(data_per_node_bytes=2000 * MiB, memory_bytes=2 * MiB)
    with pytest.raises(ConfigError):
        CanonicalMergeSort(Cluster(2), cfg)


def test_input_length_mismatch_rejected():
    cfg = small_config()
    cluster = Cluster(2)
    em, inputs = generate_input(cluster, cfg, "random")
    sorter = CanonicalMergeSort(cluster, cfg)
    with pytest.raises(ValueError):
        sorter.sort(em, inputs[:1])


def test_overlap_only_changes_time_not_output():
    _cl, _cfg, em1, _b, r1 = run_small_sort("random", n_nodes=3, overlap=True)
    _cl, _cfg, em2, _b, r2 = run_small_sort("random", n_nodes=3, overlap=False)
    for a, b in zip(r1.output_keys(em1), r2.output_keys(em2)):
        assert np.array_equal(a, b)
    assert r2.stats.total_time >= r1.stats.total_time


@pytest.mark.parametrize("strategy", ["sampled", "basic", "bisect"])
def test_selection_strategy_does_not_change_output(strategy):
    _cl, _cfg, em, before, result = run_small_sort(
        "duplicates", n_nodes=4, selection=strategy
    )
    assert validate_output(before, result.output_keys(em)).ok


@settings(max_examples=12, deadline=None)
@given(
    n_nodes=st.integers(1, 4),
    kind=st.sampled_from(["random", "worstcase", "skewed", "duplicates"]),
    randomize=st.booleans(),
    seed=st.integers(0, 2 ** 16),
)
def test_property_sort_is_always_valid(n_nodes, kind, randomize, seed):
    """Randomized end-to-end property: every configuration sorts."""
    cfg = small_config(
        data_per_node_bytes=12 * MiB,
        memory_bytes=4 * MiB,
        block_elems=8,
        randomize=randomize,
        seed=seed,
    )
    cluster = Cluster(n_nodes)
    em, inputs = generate_input(cluster, cfg, kind)
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cluster, cfg).sort(em, inputs)
    report = validate_output(before, result.output_keys(em))
    assert report.ok, report.issues
