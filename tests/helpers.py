"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro import Cluster, MiB, SortConfig
from repro.workloads import generate_input, input_keys


def small_config(**overrides) -> SortConfig:
    """A tiny but non-degenerate sort configuration (R = 3 runs)."""
    params = dict(
        data_per_node_bytes=48 * MiB,
        memory_bytes=16 * MiB,
        block_bytes=1 * MiB,
        block_elems=16,
        seed=1234,
    )
    params.update(overrides)
    return SortConfig(**params)


def make_sorted_arrays(rng: np.random.Generator, n_seqs: int, max_len: int,
                       key_high: int = 1000):
    """Random sorted uint64 sequences for selection/merge tests."""
    return [
        np.sort(rng.integers(0, key_high, rng.integers(0, max_len + 1)))
        .astype(np.uint64)
        for _ in range(n_seqs)
    ]


def run_small_sort(kind: str = "random", n_nodes: int = 4, **config_overrides):
    """End-to-end CanonicalMergeSort at test scale; returns rich context."""
    from repro import CanonicalMergeSort

    cfg = small_config(**config_overrides)
    cl = Cluster(n_nodes)
    em, inputs = generate_input(cl, cfg, kind)
    before = input_keys(em, inputs)
    result = CanonicalMergeSort(cl, cfg).sort(em, inputs)
    return cl, cfg, em, before, result
