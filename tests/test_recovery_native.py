"""End-to-end recovery: native jobs survive PE death at phase boundaries.

The quick tier runs one representative of each fault family through the
differential recovery harness (clean twin vs chaos + ``max_restarts=1``;
the resumed sort must agree *bitwise* with the undisturbed run), plus
the satellite regressions: abort-path spill cleanup, the torn-result
GOODBYE diagnostic, the CLI recovery surface, and the ``:recover``
conformance token.  The full kill/sever/wedge sweep over both
transports runs nightly (``-m conformance``).
"""

import json
import os
import time

import pytest

from repro.core.config import SortConfig
from repro.native import NativeJob, NativeSorter
from repro.native.driver import NativeSortError
from repro.testing import differential
from repro.testing.chaos import ChaosSpec, run_chaos_case, run_chaos_sweep

RB = 16


def recovery_job(tmp_path, spec, max_restarts=1, n_per_rank=512, n_workers=2,
                 timeout=6.0, block=32, mem=384, **job_kw):
    return NativeJob(
        config=SortConfig(
            data_per_node_bytes=n_per_rank * RB,
            memory_bytes=mem * RB,
            block_bytes=block * RB,
            block_elems=block,
            seed=7,
        ),
        n_workers=n_workers,
        spill_dir=str(tmp_path / "spill"),
        timeout=timeout,
        chaos=spec,
        max_restarts=max_restarts,
        **job_kw,
    )


def assert_recovered(verdict):
    assert verdict["ok"], verdict["outcome"]
    assert verdict["restarts"] >= 1
    return verdict["recovery"]


# ------------------------------------------------------------- quick tier


def test_boundary_kill_recovers_bitwise(tmp_path):
    """A rank killed at a phase boundary resumes and matches the oracle."""
    verdict = run_chaos_case(
        ChaosSpec(rank=0, kill_at="after:run_formation"),
        str(tmp_path), job_timeout=6.0, recover=True,
    )
    rec = assert_recovered(verdict)
    # Run formation finished before the kill: its blocks are never
    # re-read, and suspects prove their pieces by CRC instead.
    assert rec["rf_blocks_reread"] == 0
    assert rec["crc_blocks_verified"] > 0


def test_mid_exchange_kill_skips_delivered_chunks(tmp_path):
    """A death *inside* all-to-all replays only undelivered chunk ranges."""
    verdict = run_chaos_case(
        ChaosSpec(rank=0, kill_after_a2a_chunks=3),
        str(tmp_path), job_timeout=6.0, recover=True,
    )
    rec = assert_recovered(verdict)
    assert rec["rf_blocks_reread"] == 0
    # The watermark journal made pre-crash deliveries durable; the
    # resumed exchange skipped them rather than resending.
    assert rec["chunks_skipped"] > 0


def test_severed_mesh_recovers(tmp_path):
    verdict = run_chaos_case(
        ChaosSpec(rank=0, sever_comm_at="before:all_to_all"),
        str(tmp_path), job_timeout=6.0, recover=True,
    )
    rec = assert_recovered(verdict)
    assert rec["rf_blocks_reread"] == 0


def test_wedged_rank_recovers(tmp_path):
    verdict = run_chaos_case(
        ChaosSpec(rank=0, wedge_comm_at="before:all_to_all"),
        str(tmp_path), job_timeout=4.0, budget=60.0, recover=True,
    )
    rec = assert_recovered(verdict)
    assert rec["rf_blocks_reread"] == 0


def test_tcp_kill_recovers_through_resume_rendezvous(tmp_path):
    """TCP restart re-runs the coordinator handshake as a RESUME."""
    verdict = run_chaos_case(
        ChaosSpec(rank=1, kill_at="after:selection"),
        str(tmp_path), job_timeout=8.0, budget=60.0,
        transport="tcp", recover=True,
    )
    rec = assert_recovered(verdict)
    assert rec["rf_blocks_reread"] == 0


def test_restart_budget_exhausted_still_aborts_fast(tmp_path):
    """max_restarts=0 keeps the fail-fast contract even with manifests."""
    job = recovery_job(
        tmp_path, ChaosSpec(rank=0, kill_at="after:selection"),
        max_restarts=0, checkpoint=True,
    )
    start = time.monotonic()
    with pytest.raises(NativeSortError, match="worker 0"):
        NativeSorter(job).run()
    assert time.monotonic() - start < 30.0


def test_recovery_counters_ride_the_stats_report(tmp_path):
    job = recovery_job(tmp_path, ChaosSpec(rank=0, kill_at="after:run_formation"))
    result = NativeSorter(job).run()
    assert result.stats.restarts == 1
    assert len(result.stats.recovery_events) == 1
    event = result.stats.recovery_events[0]
    assert event["epoch"] == 0 and event["rank"] == 0
    rec = result.stats.recovery_dict()
    assert rec["restarts"] == 1
    assert rec["phases_restored"] > 0
    assert "recovery" in result.stats.to_dict()
    assert "restart" in result.stats.summary()


# ------------------------------------------------------------- spill cleanup


def test_final_abort_removes_spill_dir_when_asked(tmp_path):
    job = recovery_job(
        tmp_path, ChaosSpec(rank=0, kill_at="after:selection"),
        max_restarts=0, checkpoint=True, cleanup_on_abort=True,
    )
    with pytest.raises(NativeSortError):
        NativeSorter(job).run()
    assert not os.path.exists(job.spill_dir)


def test_abort_keeps_spill_dir_by_default(tmp_path):
    """A populated spill dir is evidence; only opt-in cleanup removes it."""
    job = recovery_job(
        tmp_path, ChaosSpec(rank=0, kill_at="after:selection"),
        max_restarts=0, checkpoint=True,
    )
    with pytest.raises(NativeSortError):
        NativeSorter(job).run()
    assert os.path.isdir(job.spill_dir)
    assert any(f.startswith("manifest_") for f in os.listdir(job.spill_dir))


def test_successful_resume_keeps_the_outputs(tmp_path):
    """cleanup_on_abort never touches a job that recovered and finished."""
    job = recovery_job(
        tmp_path, ChaosSpec(rank=0, kill_at="after:run_formation"),
        cleanup_on_abort=True,
    )
    result = NativeSorter(job).run()
    assert result.stats.restarts == 1
    for meta in result.outputs:
        assert os.path.exists(meta.path)


# ------------------------------------------------------------- torn result


@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_goodbye_after_partial_result_is_a_torn_result(
    tmp_path, monkeypatch, transport
):
    """A half-sent result frame followed by GOODBYE is *torn*, not clean.

    The deliberate-GOODBYE diagnostic exists for a worker that closes
    its result channel without ever starting a report; once result bytes
    are in flight, a GOODBYE means the message was cut off and must
    surface as an unreadable/wedged result, never as the polite close.
    """
    monkeypatch.setattr("repro.native.driver.RESULT_RECV_TIMEOUT", 1.5)
    job = recovery_job(
        tmp_path, ChaosSpec(rank=0, goodbye_result_at="before:report"),
        max_restarts=0, transport=transport,
        timeout=8.0 if transport == "tcp" else 6.0,
    )
    with pytest.raises(NativeSortError) as info:
        NativeSorter(job).run()
    text = str(info.value)
    assert "deliberately" not in text
    assert ("wedged" in text) or ("unreadable" in text), text


# ------------------------------------------------------------- CLI surface


def test_cli_checkpoint_json_reports_recovery(tmp_path, capsys):
    from repro.__main__ import main

    code = main([
        "--backend", "native", "--nodes", "2",
        "--spill-dir", str(tmp_path), "--json", "--checkpoint",
        "--max-restarts", "2",
        "--data-mib", "0.125", "--memory-mib", "0.046875",
        "--block-mib", "0.001953125",
    ])
    out = capsys.readouterr().out
    assert code == 0
    report = json.loads(out)
    assert report["validation"]["ok"] is True
    assert report["config"]["checkpoint"] is True
    assert report["config"]["max_restarts"] == 2
    rec = report["recovery"]
    assert rec["restarts"] == 0 and rec["events"] == []


# ------------------------------------------------------------- conformance hooks


def test_recover_token_roundtrip():
    spec = differential.CaseSpec(
        entry="uniform", sizing="base", backends=("native",), recover=True
    )
    token = spec.to_token()
    assert token.endswith(":recover")
    assert differential.CaseSpec.from_token(token) == spec


def test_recovery_variants_are_native_only_recover_twins():
    base = differential.CaseSpec(entry="uniform", sizing="base")
    twins = differential.recovery_variants([base])
    assert len(twins) == 1
    assert twins[0].backends == ("native",)
    assert twins[0].recover and twins[0].entry == base.entry


def test_conformance_recover_case_matches_oracle(tmp_path):
    spec = differential.CaseSpec(
        entry="uniform", sizing="single_run", backends=("native",),
        recover=True,
    )
    result = differential.run_native_case(spec, workdir=str(tmp_path))
    assert result.ok, result.divergences


# ------------------------------------------------------------- nightly tier


@pytest.mark.conformance
@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_recovery_sweep_survives_every_fault(tmp_path, transport):
    verdicts = run_chaos_sweep(
        str(tmp_path), job_timeout=6.0, budget=60.0,
        transport=transport, recover=True,
    )
    bad = [v for v in verdicts if not v["ok"]]
    assert not bad, "\n".join(f"{v['fault']}: {v['outcome']}" for v in bad)
