"""Tests for run pieces, distributed runs, streaming writer/reader."""

import numpy as np
import pytest

from repro.cluster import Cluster, MiB
from repro.em import DistributedRun, ExternalMemory, LocalRunPiece, PieceReader, write_piece


def setup(n_nodes=1, block_elems=8):
    cluster = Cluster(n_nodes)
    em = ExternalMemory(cluster, 1 * MiB, block_elems)
    return cluster, em


def write_keys(cluster, store, keys, sample_every=4):
    def body():
        piece = yield from write_piece(store, keys, tag="t", sample_every=sample_every)
        return piece

    return cluster.sim.run_process(body())


def test_write_piece_layout_and_metadata():
    cluster, em = setup()
    keys = np.arange(20, dtype=np.uint64)
    piece = write_keys(cluster, em.store(0), keys)
    assert piece.n_keys == 20
    assert piece.counts == [8, 8, 4]
    assert list(piece.first_keys) == [0, 8, 16]
    assert np.array_equal(piece.sample_keys, keys[::4])
    contents = np.concatenate([em.store(0).peek(b) for b in piece.blocks])
    assert np.array_equal(contents, keys)


def test_write_piece_empty():
    cluster, em = setup()
    piece = write_keys(cluster, em.store(0), np.empty(0, np.uint64))
    assert piece.n_keys == 0
    assert piece.blocks == []


def test_write_piece_rejects_unsorted_when_checked():
    cluster, em = setup()
    keys = np.array([3, 1, 2], dtype=np.uint64)

    def body():
        yield from write_piece(em.store(0), keys, tag="t", sample_every=2,
                               check_sorted=True)

    with pytest.raises(Exception):
        cluster.sim.run_process(body())


def test_write_piece_invalid_sample_every():
    cluster, em = setup()

    def body():
        yield from write_piece(em.store(0), np.arange(4, dtype=np.uint64),
                               tag="t", sample_every=0)

    with pytest.raises(Exception):
        cluster.sim.run_process(body())


def test_block_of_lookup():
    cluster, em = setup()
    keys = np.arange(20, dtype=np.uint64)
    piece = write_keys(cluster, em.store(0), keys)
    assert piece.block_of(0) == (0, 0)
    assert piece.block_of(7) == (0, 7)
    assert piece.block_of(8) == (1, 0)
    assert piece.block_of(19) == (2, 3)
    with pytest.raises(IndexError):
        piece.block_of(20)


def test_block_start():
    cluster, em = setup()
    piece = write_keys(cluster, em.store(0), np.arange(20, dtype=np.uint64))
    assert [piece.block_start(i) for i in range(3)] == [0, 8, 16]


def test_free_all_releases_blocks():
    cluster, em = setup()
    piece = write_keys(cluster, em.store(0), np.arange(20, dtype=np.uint64))
    assert em.store(0).blocks_in_use == 3
    piece.free_all(em.store(0))
    assert em.store(0).blocks_in_use == 0
    assert len(piece) == 0


def test_distributed_run_locate():
    cluster, em = setup(n_nodes=2)
    p0 = write_keys(cluster, em.store(0), np.arange(10, dtype=np.uint64))
    p1 = write_keys(cluster, em.store(1), np.arange(10, 25, dtype=np.uint64))
    run = DistributedRun(0, [p0, p1])
    assert len(run) == 25
    assert run.locate(0) == (0, 0)
    assert run.locate(9) == (0, 9)
    assert run.locate(10) == (1, 0)
    assert run.locate(24) == (1, 14)
    with pytest.raises(IndexError):
        run.locate(25)
    assert run.offsets == [0, 10]


def test_piece_reader_returns_blocks_in_order():
    cluster, em = setup()
    keys = np.arange(40, dtype=np.uint64)
    piece = write_keys(cluster, em.store(0), keys)

    def body():
        reader = PieceReader(em.store(0), piece.blocks, tag="t", depth=2)
        arrays = yield from reader.read_all()
        return np.concatenate(arrays)

    got = cluster.sim.run_process(body())
    assert np.array_equal(got, keys)


def test_piece_reader_next_block_eof():
    cluster, em = setup()
    piece = write_keys(cluster, em.store(0), np.arange(8, dtype=np.uint64))

    def body():
        reader = PieceReader(em.store(0), piece.blocks, tag="t")
        first = yield from reader.next_block()
        second = yield from reader.next_block()
        return (first, second)

    first, second = cluster.sim.run_process(body())
    assert np.array_equal(first, np.arange(8, dtype=np.uint64))
    assert second is None


def test_piece_reader_depth_validation():
    cluster, em = setup()
    with pytest.raises(ValueError):
        PieceReader(em.store(0), [], tag="t", depth=0)


def test_piece_metadata_mismatch_rejected():
    with pytest.raises(ValueError):
        LocalRunPiece(
            node=0,
            blocks=[],
            counts=[1],
            first_keys=np.empty(0, np.uint64),
            sample_keys=np.empty(0, np.uint64),
            sample_every=1,
        )
