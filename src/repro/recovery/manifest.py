"""Per-rank manifest journal: the durable half of checkpoint/recovery.

Each native worker appends fsynced JSON records to
``manifest_<rank>.jsonl`` inside its spill directory.  The journal is a
write-ahead log of *completed deterministic facts*: which phases
finished, the run inventory (with per-block CRCs of the locally stored
piece files), the chosen splitters, the all-to-all chunk watermarks per
(run, sender) channel, and the merge output offset.  A record is always
written *before* the barrier that lets peers advance past the same
point, so the invariant holds: if any rank passed the barrier after
phase X, every rank has durably recorded X.

On restart the worker replays the journal into a :class:`ResumeState`.
A torn final line (the process died mid-append) is expected and
silently dropped; corruption anywhere else raises
:class:`CorruptManifest`.  The journal opens with the job fingerprint —
a digest of every input that shapes the deterministic computation — so
a stale manifest from a different job can never poison a resume
(:class:`ManifestMismatch`).
"""

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

MANIFEST_VERSION = 1

#: Phase indices used for the "highest completed phase" agreement.
PHASE_INDEX = {
    "generate": 0,
    "run_formation": 1,
    "selection": 2,
    "all_to_all": 3,
    "merge": 4,
}


class CorruptManifest(RuntimeError):
    """The manifest is damaged somewhere other than its final line."""


class ManifestMismatch(RuntimeError):
    """The manifest on disk belongs to a different job fingerprint."""


def job_fingerprint(job) -> str:
    """Digest of everything that shapes the deterministic computation.

    Execution knobs (transport, timeouts, pipelining depth, pending
    sends) are deliberately excluded: they change *how* the job runs,
    never *what* it computes, so a resume may legally alter them.
    """
    config = job.config
    ident = {
        "version": MANIFEST_VERSION,
        "n_workers": int(job.n_workers),
        "skew": bool(getattr(job, "skew", False)),
        "generate": bool(getattr(job, "generate", True)),
        "data_per_node_bytes": int(config.data_per_node_bytes),
        "memory_bytes": None if config.memory_bytes is None else int(config.memory_bytes),
        "block_bytes": int(config.block_bytes),
        "randomize": bool(config.randomize),
        "selection": str(config.selection),
        "seed": int(config.seed),
        "sample_every": int(job.sample_every),
    }
    blob = json.dumps(ident, sort_keys=True).encode("ascii")
    return hashlib.sha256(blob).hexdigest()[:16]


def _encode_pairs(pairs: Dict[Tuple[int, int], int]) -> Dict[str, int]:
    return {f"{a}:{b}": int(v) for (a, b), v in pairs.items()}


def _decode_pairs(enc: Dict[str, int]) -> Dict[Tuple[int, int], int]:
    out = {}
    for key, value in enc.items():
        a, b = key.split(":")
        out[(int(a), int(b))] = int(value)
    return out


@dataclass
class ResumeState:
    """Everything a restarted rank can restore without re-reading data."""

    fingerprint: Optional[str] = None
    last_epoch: int = 0
    generate_done: bool = False
    #: run_id -> {"n", "samples", "every", "crcs", "checksum"} for runs
    #: whose piece file is durably on disk (mid-run-formation resume).
    rf_runs: Dict[int, dict] = field(default_factory=dict)
    rf_done: bool = False
    rf_checksum: int = 0
    selection_splits: Optional[List[List[int]]] = None
    #: (run, sender) -> contiguous chunk count already received.
    a2a_marks: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: (run, block) -> first key, harvested before the crash.
    a2a_first_keys: Dict[Tuple[int, int], int] = field(default_factory=dict)
    a2a_seg_len: Optional[List[int]] = None
    a2a_block_first_keys: Optional[List[List[int]]] = None
    merge_records_out: int = 0
    merge_meta: Optional[dict] = None

    @property
    def completed_index(self) -> int:
        """Highest fully-completed phase index, or -1 for none."""
        if self.merge_meta is not None:
            return PHASE_INDEX["merge"]
        if self.a2a_seg_len is not None:
            return PHASE_INDEX["all_to_all"]
        if self.selection_splits is not None:
            return PHASE_INDEX["selection"]
        if self.rf_done:
            return PHASE_INDEX["run_formation"]
        if self.generate_done:
            return PHASE_INDEX["generate"]
        return -1

    def contiguous_rf_runs(self) -> int:
        """Longest durable prefix of completed runs (0, 1, ..., k-1)."""
        k = 0
        while k in self.rf_runs:
            k += 1
        return k

    @classmethod
    def from_records(cls, records: List[dict]) -> "ResumeState":
        state = cls()
        for rec in records:
            kind = rec.get("t")
            if kind == "attempt":
                if int(rec.get("epoch", 0)) == 0:
                    # Epoch 0 means a fresh job overwrote this path; any
                    # earlier records belong to a dead lineage.
                    state = cls()
                state.fingerprint = rec.get("fp")
                state.last_epoch = int(rec.get("epoch", 0))
            elif kind == "generate":
                state.generate_done = True
            elif kind == "rf_run":
                state.rf_runs[int(rec["run"])] = {
                    "run": int(rec["run"]),
                    "n": int(rec["n"]),
                    "samples": [int(s) for s in rec["samples"]],
                    "every": int(rec["every"]),
                    "crcs": [int(c) for c in rec["crcs"]],
                    "checksum": int(rec["checksum"]),
                }
            elif kind == "rf_done":
                state.rf_done = True
                state.rf_checksum = int(rec["checksum"])
                for run in rec["runs"]:
                    state.rf_runs[int(run["run"])] = {
                        "run": int(run["run"]),
                        "n": int(run["n"]),
                        "samples": [int(s) for s in run["samples"]],
                        "every": int(run["every"]),
                        "crcs": [int(c) for c in run["crcs"]],
                        "checksum": int(run.get("checksum", 0)),
                    }
            elif kind == "selection":
                state.selection_splits = [
                    [int(x) for x in row] for row in rec["splits"]
                ]
            elif kind == "a2a_mark":
                # Marks are cumulative snapshots; keys are deltas.
                state.a2a_marks = _decode_pairs(rec["marks"])
                state.a2a_first_keys.update(_decode_pairs(rec["keys"]))
            elif kind == "a2a_done":
                state.a2a_seg_len = [int(x) for x in rec["seg_len"]]
                state.a2a_block_first_keys = [
                    [int(k) for k in run_keys] for run_keys in rec["first_keys"]
                ]
            elif kind == "merge_mark":
                state.merge_records_out = int(rec["records"])
            elif kind == "merge":
                state.merge_meta = {
                    "rank": int(rec["rank"]),
                    "path": rec["path"],
                    "n_records": int(rec["n_records"]),
                    "first_key": (
                        None if rec["first_key"] is None else int(rec["first_key"])
                    ),
                    "last_key": (
                        None if rec["last_key"] is None else int(rec["last_key"])
                    ),
                    "checksum": int(rec["checksum"]),
                    "sorted_ok": bool(rec["sorted_ok"]),
                }
        return state


class RankJournal:
    """Append-only fsynced JSONL journal for one rank's manifest."""

    def __init__(self, path: str, fingerprint: str, rank: int):
        self.path = path
        self.fingerprint = fingerprint
        self.rank = rank
        self._handle = None

    # -- lifecycle ----------------------------------------------------

    def begin_epoch(self, epoch: int) -> None:
        """Open the journal: epoch 0 truncates, later epochs append."""
        mode = "w" if epoch == 0 else "a"
        self._handle = open(self.path, mode, encoding="ascii")
        self.append(
            {"t": "attempt", "fp": self.fingerprint, "rank": self.rank,
             "epoch": int(epoch)}
        )

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- typed record writers ----------------------------------------

    def generate_done(self) -> None:
        self.append({"t": "generate"})

    def rf_run_done(self, run: int, n: int, samples, every: int,
                    crcs, checksum: int) -> None:
        self.append({
            "t": "rf_run", "run": int(run), "n": int(n),
            "samples": [int(s) for s in samples], "every": int(every),
            "crcs": [int(c) for c in crcs], "checksum": int(checksum),
        })

    def rf_done(self, runs: List[dict], checksum: int) -> None:
        self.append({"t": "rf_done", "checksum": int(checksum), "runs": runs})

    def selection_done(self, splits) -> None:
        self.append({
            "t": "selection",
            "splits": [[int(x) for x in row] for row in splits],
        })

    def a2a_mark(self, marks: Dict[Tuple[int, int], int],
                 new_keys: Dict[Tuple[int, int], int]) -> None:
        self.append({
            "t": "a2a_mark",
            "marks": _encode_pairs(marks),
            "keys": _encode_pairs(new_keys),
        })

    def a2a_done(self, seg_len, block_first_keys) -> None:
        self.append({
            "t": "a2a_done",
            "seg_len": [int(x) for x in seg_len],
            "first_keys": [
                [int(k) for k in run_keys] for run_keys in block_first_keys
            ],
        })

    def merge_mark(self, records_out: int) -> None:
        self.append({"t": "merge_mark", "records": int(records_out)})

    def merge_done(self, meta: dict) -> None:
        self.append({
            "t": "merge", "rank": int(meta["rank"]), "path": meta["path"],
            "n_records": int(meta["n_records"]),
            "first_key": (
                None if meta["first_key"] is None else int(meta["first_key"])
            ),
            "last_key": (
                None if meta["last_key"] is None else int(meta["last_key"])
            ),
            "checksum": int(meta["checksum"]),
            "sorted_ok": bool(meta["sorted_ok"]),
        })

    # -- replay -------------------------------------------------------

    @staticmethod
    def load_records(path: str) -> List[dict]:
        """Parse the journal, tolerating only a torn final line."""
        with open(path, "rb") as handle:
            raw_lines = handle.read().split(b"\n")
        if raw_lines and raw_lines[-1] == b"":
            raw_lines.pop()
        records = []
        for idx, raw in enumerate(raw_lines):
            try:
                records.append(json.loads(raw))
            except (ValueError, UnicodeDecodeError):
                if idx == len(raw_lines) - 1:
                    break  # torn tail: the append died with the process
                raise CorruptManifest(
                    f"{path}: unreadable record at line {idx + 1} "
                    "(not the final line, so this is corruption, not a crash)"
                )
        return records

    def load_resume(self) -> Optional[ResumeState]:
        """Rebuild resume state, or None when no manifest exists yet."""
        if not os.path.exists(self.path):
            return None
        records = self.load_records(self.path)
        if not records:
            return None
        state = ResumeState.from_records(records)
        if state.fingerprint != self.fingerprint:
            raise ManifestMismatch(
                f"{self.path}: manifest fingerprint {state.fingerprint!r} "
                f"does not match this job ({self.fingerprint!r}); refusing "
                "to resume from another job's spill directory"
            )
        return state
