"""Driver-side restart policy: how many epochs a job may burn.

The :class:`~repro.native.driver.NativeSorter` supervisor loop consults
a :class:`RestartPolicy` after each failed attempt.  The policy records
the failure (epoch, suspect rank, first line of the error) and answers
one question: may we try again?  The accumulated
:class:`RestartEvent` log rides into ``NativeStats`` so ``--json``
reports show exactly what the job survived.
"""

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class RestartEvent:
    """One failed attempt, as surfaced in recovery reports."""

    epoch: int
    rank: Optional[int]
    error: str

    def to_dict(self) -> dict:
        return {"epoch": self.epoch, "rank": self.rank, "error": self.error}


class RestartPolicy:
    """Bounded-restart policy with a suspect-rank memory."""

    def __init__(self, max_restarts: int):
        self.max_restarts = int(max_restarts)
        self.events: List[RestartEvent] = []

    @property
    def restarts_used(self) -> int:
        return len(self.events)

    def record_failure(self, epoch: int, rank: Optional[int],
                       error: str) -> bool:
        """Log a failed attempt; return True when a restart is allowed."""
        first_line = str(error).strip().splitlines()
        self.events.append(RestartEvent(
            epoch=int(epoch),
            rank=None if rank is None else int(rank),
            error=(first_line[0] if first_line else "")[:240],
        ))
        return self.restarts_used <= self.max_restarts

    def suspects(self) -> tuple:
        """Ranks implicated by the most recent failure (best effort)."""
        if not self.events or self.events[-1].rank is None:
            return ()
        return (self.events[-1].rank,)

    def to_dicts(self) -> List[dict]:
        return [event.to_dict() for event in self.events]
