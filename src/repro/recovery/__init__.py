"""Checkpoint/recovery subsystem for the native backend.

CANONICALMERGESORT's defining property — runs are *globally sorted but
stored locally*, and every later phase is a deterministic function of
durable local state — makes phase-boundary checkpointing nearly free.
This package supplies the durable state machinery:

* :mod:`repro.recovery.manifest` — the per-rank manifest journal each
  worker writes into its spill directory (fsynced JSON records: job
  fingerprint, completed phases, run inventory with block CRCs, chosen
  splitters, all-to-all chunk watermarks, merge output offset) and the
  :class:`~repro.recovery.manifest.ResumeState` a restarted worker
  rebuilds from it;
* :mod:`repro.recovery.supervisor` — the driver-side restart policy:
  how many epochs a job may burn, which ranks are suspect, and the
  recovery event log that surfaces in ``--json`` reports.

See ``docs/RECOVERY.md`` for the full design: what is and is not redone
per phase, the epoch fencing of stale frames, and the o(N) recovery
I/O bound.
"""

from .manifest import (
    CorruptManifest,
    ManifestMismatch,
    RankJournal,
    ResumeState,
    job_fingerprint,
)
from .supervisor import RestartEvent, RestartPolicy

__all__ = [
    "CorruptManifest",
    "ManifestMismatch",
    "RankJournal",
    "ResumeState",
    "job_fingerprint",
    "RestartEvent",
    "RestartPolicy",
]
