"""Machine calibration: the paper's evaluation cluster as a parameter set.

The experiments in Rahn/Sanders/Singler ran on a 200-node Intel Xeon
cluster (Section VI):

* 2 x quad-core Xeon X5355 @ 2.667 GHz per node (8 cores), 16 GiB RAM,
* 4 x Seagate Barracuda 7200.10 (250 GB) per node, RAID-0, XFS,
  measured peak streaming rates 60-71 MiB/s per disk (average 67 MiB/s),
* 288-port InfiniBand 4xDDR switch, point-to-point > 1300 MB/s,
  degrading to as low as 400 MB/s when most nodes communicate.

:class:`MachineSpec` captures those numbers plus internal-computation rate
constants calibrated so that, for 16-byte elements, run formation is
slightly compute-bound (the grey gap of the paper's Figure 3) while for
100-byte SortBenchmark records the sort is entirely I/O-bound ("for such
large elements, the algorithm is not compute-bound at all", Section VI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["MachineSpec", "PAPER_MACHINE", "MiB", "GiB", "MB", "GB"]

MiB = float(1 << 20)
GiB = float(1 << 30)
MB = 1e6
GB = 1e9


@dataclass(frozen=True)
class MachineSpec:
    """Hardware parameters and computation-rate calibration for one node."""

    # --- CPU ---------------------------------------------------------------
    cores_per_node: int = 8
    clock_hz: float = 2.667e9
    #: Efficiency of shared-memory parallel sort/merge across cores
    #: (memory-bandwidth limits keep this well below 1 on the 2007 Xeons).
    parallel_efficiency: float = 0.55

    # --- memory ------------------------------------------------------------
    ram_bytes: float = 16 * GiB
    #: Fraction of RAM usable for run data (rest: buffers, OS, program).
    usable_ram_fraction: float = 0.75
    #: Sustained per-node memory bandwidth (copy streams), bytes/s.
    mem_bandwidth: float = 5.0e9

    # --- disks ---------------------------------------------------------------
    disks_per_node: int = 4
    #: Average sustained streaming bandwidth per disk, bytes/s.
    disk_bandwidth: float = 67 * MiB
    #: Spread of per-disk bandwidth, matching the measured 60..71 MiB/s
    #: range ("natural spreading of disk performance", Section VI).
    disk_bandwidth_spread: float = 5.5 * MiB
    #: Average positioning time charged on non-sequential access (seek +
    #: rotational latency of a 7200 rpm Barracuda).
    disk_seek_time: float = 0.012
    #: Positioning-cost discount for short forward jumps: batched reads
    #: are issued in elevator (ascending-offset) order, as the paper's
    #: offline disk scheduling remark for run formation suggests.
    forward_seek_factor: float = 0.35
    #: Long-run derating of streaming bandwidth (inner tracks, filesystem
    #: overhead, startup/finalization; the paper observes ~50 MiB/s of the
    #: 67 MiB/s peak, i.e. "more than 2/3 of the maximum").
    disk_derating: float = 0.88

    # --- network -------------------------------------------------------------
    #: Point-to-point peak bandwidth between two nodes, bytes/s.
    net_p2p_bandwidth: float = 1300 * MB
    #: Floor under full-fabric congestion, bytes/s (measured "as low as
    #: 400 MB/s" when most nodes are used).
    net_min_bandwidth: float = 400 * MB
    #: Congestion coefficient: effective per-node bandwidth is
    #: ``max(min_bw, p2p / (1 + congestion * (active_nodes - 1)))``.
    #: 0.0113 reproduces the 1300 -> ~400 MB/s decay at ~200 nodes.
    net_congestion: float = 0.0113
    #: One-way small-message latency (InfiniBand DDR + MPI stack), seconds.
    net_latency: float = 4.0e-6

    # --- internal computation rates -----------------------------------------
    #: Comparison-sort cost: seconds per element-comparison-level on one
    #: core, i.e. sorting n elements costs ``n * log2(n) * sort_cost``
    #: before the key-size factor.  Calibrated to GCC parallel-mode STL
    #: introsort on the X5355 (~10 ns per element-level for 16-byte
    #: elements).
    sort_cost_per_level: float = 1.0e-8
    #: Multiway-merge cost: seconds per element per log2(k) level on one
    #: core (loser trees touch fewer cache lines than sorting).
    merge_cost_per_level: float = 8.0e-9
    #: Fixed per-element handling cost (copy in/out, key extraction).
    touch_cost: float = 2.0e-9

    # ---------------------------------------------------------------------
    # Derived quantities
    # ---------------------------------------------------------------------

    @property
    def node_disk_bandwidth(self) -> float:
        """Aggregate streaming disk bandwidth of one node (RAID-0)."""
        return self.disks_per_node * self.disk_bandwidth * self.disk_derating

    @property
    def usable_ram(self) -> float:
        """Bytes of RAM available to hold run data on one node."""
        return self.ram_bytes * self.usable_ram_fraction

    def net_bandwidth(self, active_nodes: int) -> float:
        """Effective per-node network bandwidth with ``active_nodes`` busy."""
        if active_nodes <= 1:
            return self.net_p2p_bandwidth
        bw = self.net_p2p_bandwidth / (1.0 + self.net_congestion * (active_nodes - 1))
        return max(self.net_min_bandwidth, bw)

    def parallel_cores(self) -> float:
        """Effective core count after parallel efficiency."""
        return max(1.0, self.cores_per_node * self.parallel_efficiency)

    # -- computation cost model --------------------------------------------

    def _bandwidth_floor(self, n_bytes: float, passes: float) -> float:
        """Time floor from memory bandwidth for ``passes`` sweeps of data."""
        return passes * n_bytes / self.mem_bandwidth

    def sort_seconds(self, n_elements: float, elem_bytes: float) -> float:
        """Model of shared-memory parallel sort of ``n_elements``.

        Comparison work scales with ``n log n`` over the effective cores;
        a memory-bandwidth floor models the data movement (roughly four
        sweeps for an out-of-place parallel mergesort).
        """
        if n_elements <= 1:
            return 0.0
        levels = math.log2(max(2.0, n_elements))
        key_factor = self._key_factor(elem_bytes)
        cpu = n_elements * (levels * self.sort_cost_per_level * key_factor + self.touch_cost)
        cpu /= self.parallel_cores()
        return max(cpu, self._bandwidth_floor(n_elements * elem_bytes, 4.0))

    def merge_seconds(self, n_elements: float, arity: int, elem_bytes: float) -> float:
        """Model of shared-memory parallel ``arity``-way merge."""
        if n_elements <= 0 or arity <= 1:
            return self._bandwidth_floor(n_elements * elem_bytes, 2.0)
        levels = math.log2(max(2.0, arity))
        key_factor = self._key_factor(elem_bytes)
        cpu = n_elements * (levels * self.merge_cost_per_level * key_factor + self.touch_cost)
        cpu /= self.parallel_cores()
        return max(cpu, self._bandwidth_floor(n_elements * elem_bytes, 2.0))

    def scan_seconds(self, n_bytes: float) -> float:
        """Model of a single linear sweep over ``n_bytes`` (partitioning)."""
        return self._bandwidth_floor(n_bytes, 1.0)

    def _key_factor(self, elem_bytes: float) -> float:
        """Comparison-cost scaling with element size.

        Small elements (16 B) are comparison-dominated; big SortBenchmark
        records (100 B) cost a little more per comparison (10-byte string
        keys, worse cache density) but far fewer comparisons per byte, so
        large-element sorts become I/O-bound exactly as in the paper.
        """
        return 1.0 + elem_bytes / 200.0

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """A copy of the spec with selected fields replaced."""
        return replace(self, **kwargs)


#: The cluster of the paper's Section VI, as a ready-made spec.
PAPER_MACHINE = MachineSpec()
