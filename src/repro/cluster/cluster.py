"""Cluster assembly: simulator + nodes + fabric + communicator.

A :class:`Cluster` is the execution environment of every sorting algorithm
in this package.  SPMD code is expressed as one generator per rank; the
cluster spawns all of them as simulation processes and runs the event loop
to completion::

    cluster = Cluster(n_nodes=8)

    def pe_main(rank, cluster):
        yield cluster.comm.barrier(rank)
        return rank

    results = cluster.run_spmd(pe_main)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

import numpy as np

from ..sim.engine import SimulationError, Simulator
from .machine import PAPER_MACHINE, MachineSpec
from .mpi import Comm
from .network import Fabric
from .node import Node

__all__ = ["Cluster"]


class Cluster:
    """A distributed-memory machine of ``n_nodes`` identical nodes."""

    def __init__(
        self,
        n_nodes: int,
        spec: MachineSpec = PAPER_MACHINE,
        seed: Optional[int] = 0,
    ):
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        self.spec = spec
        self.sim = Simulator()
        rng = np.random.default_rng(seed) if seed is not None else None
        self.nodes: List[Node] = [
            Node(self.sim, spec, node_id=i, rng=rng) for i in range(n_nodes)
        ]
        self.fabric = Fabric(self.sim, spec, n_nodes)
        self.comm = Comm(self.fabric, n_nodes)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_disks(self) -> int:
        """Total disk count of the machine (the paper's ``D``)."""
        return sum(len(node.disks) for node in self.nodes)

    def run_spmd(
        self,
        pe_main: Callable[[int, "Cluster"], Generator],
        ranks: Optional[List[int]] = None,
    ) -> List[Any]:
        """Run one process per rank to completion; return their results.

        ``pe_main(rank, cluster)`` must be a generator function.  Raises if
        any process deadlocks (typically a collective someone never joined).
        """
        if ranks is None:
            ranks = list(range(self.n_nodes))
        procs = [
            self.sim.process(pe_main(rank, self), name=f"pe{rank}") for rank in ranks
        ]
        self.sim.run()
        stuck = [p.name for p in procs if not p.triggered]
        if stuck:
            raise SimulationError(
                f"SPMD processes never finished: {stuck} "
                "(deadlock — likely a mismatched collective)"
            )
        return [p.value for p in procs]

    # -- aggregate statistics ---------------------------------------------------

    @property
    def total_bytes_read(self) -> float:
        return sum(node.bytes_read for node in self.nodes)

    @property
    def total_bytes_written(self) -> float:
        return sum(node.bytes_written for node in self.nodes)

    @property
    def total_io_bytes(self) -> float:
        """All disk traffic, reads plus writes (the paper's I/O volume)."""
        return self.total_bytes_read + self.total_bytes_written

    @property
    def total_network_bytes(self) -> float:
        return self.fabric.bytes_sent

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Cluster P={self.n_nodes} D={self.n_disks}>"
