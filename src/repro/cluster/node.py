"""Compute node: cores, RAM and locally attached disks.

A node corresponds to one PE of the paper ("one cluster node corresponds to
one PE"): communication happens between nodes, while the cores and the four
RAID-0 disks inside a node are exploited as *hierarchical parallelism*
(Section IV-E).  The node offers

* its array of :class:`~repro.cluster.disk.Disk` objects,
* timed compute operations (``sort``, ``merge``, ``scan``) whose durations
  come from the calibrated :class:`~repro.cluster.machine.MachineSpec`
  cost model and are attributed to the caller's phase tag.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..sim.engine import Simulator, Timeout
from .disk import Disk
from .machine import MachineSpec

__all__ = ["Node"]


class Node:
    """One PE: 8 cores, 16 GiB RAM and 4 local disks in the paper config."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        node_id: int,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.node_id = node_id
        self.disks: List[Disk] = [
            Disk(sim, spec, name=f"n{node_id}.d{d}", rng=rng)
            for d in range(spec.disks_per_node)
        ]
        #: Seconds of internal computation, per phase tag.
        self.compute_by_tag: Dict[str, float] = {}
        self.compute_time = 0.0
        #: Multiplier applied to all computation times (fault injection:
        #: > 1 models throttling or a co-scheduled job).
        self.compute_factor = 1.0

    # -- disk statistics ------------------------------------------------------

    @property
    def disk_busy_time(self) -> float:
        """Total disk-service seconds over the node's disks."""
        return sum(d.busy_time for d in self.disks)

    def disk_busy_time_for(self, tag: str) -> float:
        """Disk-service seconds attributed to phase ``tag``."""
        return sum(d.busy_time_for(tag) for d in self.disks)

    def max_disk_busy_time_for(self, tag: str) -> float:
        """Busy time of the most loaded disk for ``tag``.

        With RAID-0 striping the phase cannot finish before its most loaded
        disk does, so this is the per-PE "I/O time" the paper's Figure 3
        plots.
        """
        if not self.disks:
            return 0.0
        return max(d.busy_time_for(tag) for d in self.disks)

    @property
    def bytes_read(self) -> float:
        return sum(d.bytes_read for d in self.disks)

    @property
    def bytes_written(self) -> float:
        return sum(d.bytes_written for d in self.disks)

    # -- computation ----------------------------------------------------------

    def _charge(self, seconds: float, tag: Optional[str]) -> Timeout:
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        seconds *= self.compute_factor
        self.compute_time += seconds
        if tag is not None:
            self.compute_by_tag[tag] = self.compute_by_tag.get(tag, 0.0) + seconds
        return self.sim.timeout(seconds)

    def compute(self, seconds: float, tag: Optional[str] = None) -> Timeout:
        """Spend ``seconds`` of modeled computation time."""
        return self._charge(seconds, tag)

    def sort_compute(
        self, n_elements: float, elem_bytes: float, tag: Optional[str] = None
    ) -> Timeout:
        """Timed event for a local parallel sort of ``n_elements``."""
        return self._charge(self.spec.sort_seconds(n_elements, elem_bytes), tag)

    def merge_compute(
        self, n_elements: float, arity: int, elem_bytes: float, tag: Optional[str] = None
    ) -> Timeout:
        """Timed event for a local parallel ``arity``-way merge."""
        return self._charge(self.spec.merge_seconds(n_elements, arity, elem_bytes), tag)

    def scan_compute(self, n_bytes: float, tag: Optional[str] = None) -> Timeout:
        """Timed event for one linear sweep over ``n_bytes``."""
        return self._charge(self.spec.scan_seconds(n_bytes), tag)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} disks={len(self.disks)}>"
