"""Interconnect model.

The paper's cluster uses a 288-port InfiniBand 4xDDR switch: point-to-point
bandwidth above 1300 MB/s that collapses to roughly 400 MB/s when most of
the fabric is loaded ("the fabric gets overloaded").  We model the fabric
with an *effective per-node bandwidth* that decays with the number of
concurrently communicating nodes (see :meth:`MachineSpec.net_bandwidth`)
plus a small per-message latency.

Collective operations are timed analytically from their volume matrices by
:mod:`repro.cluster.mpi`; this module provides the underlying cost
functions and tracks global traffic statistics.
"""

from __future__ import annotations

import math

from ..sim.engine import Simulator
from .machine import MachineSpec

__all__ = ["Fabric"]


class Fabric:
    """The switched interconnect shared by all nodes of a cluster."""

    def __init__(self, sim: Simulator, spec: MachineSpec, n_nodes: int):
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes
        #: Total bytes ever injected into the fabric.
        self.bytes_sent = 0.0
        #: Total messages (for latency accounting / diagnostics).
        self.n_messages = 0

    def effective_bandwidth(self, active_nodes: int) -> float:
        """Per-node bandwidth (bytes/s) with ``active_nodes`` communicating."""
        return self.spec.net_bandwidth(min(active_nodes, self.n_nodes))

    def transfer_seconds(self, nbytes: float, active_nodes: int, messages: int = 1) -> float:
        """Cost of moving ``nbytes`` off (or onto) one node.

        ``active_nodes`` sets the congestion level; ``messages`` adds
        per-message latency (a fine-grained exchange of many small pieces
        is slower than one large message of equal volume).
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        bw = self.effective_bandwidth(active_nodes)
        return nbytes / bw + messages * self.spec.net_latency

    def record_traffic(self, nbytes: float, messages: int = 1) -> None:
        """Account traffic that was timed elsewhere (collectives)."""
        self.bytes_sent += nbytes
        self.n_messages += messages

    def collective_latency(self, parties: int) -> float:
        """Software/startup latency of a collective over ``parties`` ranks.

        Tree-structured dissemination: O(log2 P) message latencies.
        """
        if parties <= 1:
            return 0.0
        return math.ceil(math.log2(parties)) * self.spec.net_latency
