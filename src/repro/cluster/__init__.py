"""Simulated distributed-memory cluster (nodes, disks, fabric, MPI)."""

from .cluster import Cluster
from .disk import Disk
from .faults import inject_disk_slowdown, inject_disk_stall, inject_node_slowdown
from .machine import GB, GiB, MB, MachineSpec, MiB, PAPER_MACHINE
from .mpi import CollectiveMismatch, Comm
from .network import Fabric
from .node import Node

__all__ = [
    "Cluster",
    "Disk",
    "inject_disk_slowdown",
    "inject_disk_stall",
    "inject_node_slowdown",
    "MachineSpec",
    "PAPER_MACHINE",
    "Comm",
    "CollectiveMismatch",
    "Fabric",
    "Node",
    "MiB",
    "GiB",
    "MB",
    "GB",
]
