"""Hard-disk model.

Each disk is a single-channel FIFO :class:`~repro.sim.resources.Server`.
A request's service time is ``positioning + bytes / bandwidth`` where the
positioning penalty is charged only when the access is not sequential with
respect to the previous request completed on that disk — streaming a run
block-by-block therefore runs at (derated) full bandwidth, while the random
block accesses of a non-randomized worst case pay seeks, exactly the
behaviour the paper relies on.

Per-disk bandwidth is drawn once (seeded) from the measured 60..71 MiB/s
spread, which produces the per-node running-time variance visible in the
paper's Figure 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..sim.engine import Simulator
from ..sim.resources import Server, ServiceRequest
from .machine import MachineSpec

__all__ = ["Disk"]


class Disk:
    """One rotating disk attached to a node."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        name: str,
        rng: Optional[np.random.Generator] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.name = name
        spread = spec.disk_bandwidth_spread
        if rng is not None and spread > 0:
            jitter = rng.uniform(-spread, spread)
        else:
            jitter = 0.0
        #: This disk's sustained bandwidth (bytes/s), derated for inner
        #: tracks / filesystem overhead as measured in the paper.
        self.bandwidth = (spec.disk_bandwidth + jitter) * spec.disk_derating
        self.seek_time = spec.disk_seek_time
        self.server = Server(sim, capacity=1, name=name)
        self._head_pos: Optional[float] = None  # byte offset after last access
        self.bytes_read = 0.0
        self.bytes_written = 0.0
        self.read_bytes_by_tag: dict = {}
        self.write_bytes_by_tag: dict = {}
        self.n_seeks = 0
        self.n_requests = 0

    # -- statistics ---------------------------------------------------------

    @property
    def busy_time(self) -> float:
        """Total seconds this disk spent servicing requests."""
        return self.server.busy_time

    def busy_time_for(self, tag: str) -> float:
        """Seconds of service time attributed to phase ``tag``."""
        return self.server.busy_by_tag.get(tag, 0.0)

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written

    # -- access -------------------------------------------------------------

    def access(
        self,
        offset: float,
        nbytes: float,
        write: bool,
        tag: Optional[str] = None,
        result=None,
    ) -> ServiceRequest:
        """Submit a read or write of ``nbytes`` at byte ``offset``.

        Returns the request event; it fires with ``result`` when the
        transfer completes.  The seek decision is made when service starts,
        against the head position left by the previously serviced request.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes!r}")
        self.n_requests += 1
        if write:
            self.bytes_written += nbytes
            if tag is not None:
                self.write_bytes_by_tag[tag] = self.write_bytes_by_tag.get(tag, 0.0) + nbytes
        else:
            self.bytes_read += nbytes
            if tag is not None:
                self.read_bytes_by_tag[tag] = self.read_bytes_by_tag.get(tag, 0.0) + nbytes

        def service(_req: ServiceRequest) -> float:
            seek = 0.0
            if self._head_pos is None or abs(self._head_pos - offset) > 0.5:
                if self._head_pos is not None and offset > self._head_pos:
                    # Short forward jump: elevator-ordered batch access.
                    seek = self.seek_time * self.spec.forward_seek_factor
                else:
                    seek = self.seek_time
                self.n_seeks += 1
            self._head_pos = offset + nbytes
            return seek + nbytes / self.bandwidth

        return self.server.request(service, tag=tag, result=result)

    def read(self, offset: float, nbytes: float, tag: Optional[str] = None, result=None):
        """Submit a read; see :meth:`access`."""
        return self.access(offset, nbytes, write=False, tag=tag, result=result)

    def write(self, offset: float, nbytes: float, tag: Optional[str] = None, result=None):
        """Submit a write; see :meth:`access`."""
        return self.access(offset, nbytes, write=True, tag=tag, result=result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Disk {self.name} bw={self.bandwidth / 2**20:.1f} MiB/s>"
