"""Simulated MPI collectives.

The paper's implementation communicates through MPI (MVAPICH); the
collective that matters is ``MPI_Alltoallv`` — which the authors had to
re-implement to break the 32-bit 2 GiB count limit.  Here the collectives
are simulated: SPMD processes from all ranks arrive at a
:class:`~repro.sim.resources.Rendezvous`, a resolver computes each rank's
completion time from the exchanged byte volumes under the fabric's
congestion model, and the payloads themselves (Python objects / numpy
arrays) are handed to their destinations by reference.

Collective matching works like MPI's ordering rule: the *n*-th collective
call on each rank matches the *n*-th call on every other rank.  Mismatched
operation kinds raise immediately instead of deadlocking.

Because the real data volumes are *represented* (a simulated block stands
for an 8 MiB paper block), every operation takes explicit byte counts; the
arrays carried alongside are only the keys the algorithms actually need.

This simulated ``Comm`` is the modeled sibling of the native backend's
*executed* communicators — :class:`repro.native.comm.PipeComm` and
:class:`repro.net.tcp.TcpComm`, which implement the
:class:`repro.native.comm_api.Comm` protocol over real channels.  The
surfaces differ (simulated collectives carry explicit represented byte
counts; the native protocol moves real payloads), but phase for phase
they express the same communication pattern, so the simulator's traffic
predictions can be checked against the native transports' measured
per-phase wire bytes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..sim.engine import Event, SimulationError
from ..sim.resources import Rendezvous
from .network import Fabric

__all__ = ["Comm", "CollectiveMismatch", "MAX_INT32_BYTES"]

#: MPI's 32-bit count limit the paper had to work around (Section V).  Our
#: alltoallv accounts an extra latency per 2 GiB chunk to model the split
#: the authors implemented.
MAX_INT32_BYTES = float(2 ** 31)


class CollectiveMismatch(SimulationError):
    """Ranks issued different collective operations at the same match point."""


class _Op:
    """Payload wrapper carrying the op kind for mismatch detection."""

    __slots__ = ("kind", "data")

    def __init__(self, kind: str, data: Any):
        self.kind = kind
        self.data = data


class Comm:
    """An MPI-like communicator over ``size`` ranks."""

    def __init__(self, fabric: Fabric, size: int):
        self.fabric = fabric
        self.size = size
        self._counters: List[int] = [0] * size
        self._pending: Dict[int, Rendezvous] = {}

    # -- matching -------------------------------------------------------------

    def _arrive(self, rank: int, kind: str, data: Any) -> Event:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range 0..{self.size - 1}")
        op_index = self._counters[rank]
        self._counters[rank] += 1
        rv = self._pending.get(op_index)
        if rv is None:
            rv = Rendezvous(
                self.fabric.sim,
                parties=self.size,
                resolve=lambda payloads, idx=op_index: self._resolve(idx, payloads),
                name=f"coll#{op_index}",
            )
            self._pending[op_index] = rv
        return rv.arrive(rank, _Op(kind, data))

    def _resolve(self, op_index: int, payloads: Dict[int, _Op]) -> Dict[int, Tuple[float, Any]]:
        self._pending.pop(op_index, None)
        kinds = {op.kind for op in payloads.values()}
        if len(kinds) != 1:
            raise CollectiveMismatch(
                f"collective #{op_index} mixes operations {sorted(kinds)}"
            )
        kind = kinds.pop()
        resolver = getattr(self, f"_resolve_{kind}")
        return resolver({rank: op.data for rank, op in payloads.items()})

    # -- barrier ----------------------------------------------------------------

    def barrier(self, rank: int) -> Event:
        """Synchronize all ranks; fires after the collective latency."""
        return self._arrive(rank, "barrier", None)

    def _resolve_barrier(self, payloads: Dict[int, Any]) -> Dict[int, Tuple[float, Any]]:
        delay = self.fabric.collective_latency(self.size)
        return {rank: (delay, None) for rank in payloads}

    # -- allreduce ---------------------------------------------------------------

    def allreduce(self, rank: int, value: Any, op: Callable[[Any, Any], Any]) -> Event:
        """Reduce ``value`` over all ranks with binary ``op``; all get the result."""
        return self._arrive(rank, "allreduce", (value, op))

    def _resolve_allreduce(self, payloads) -> Dict[int, Tuple[float, Any]]:
        ranks = sorted(payloads)
        op = payloads[ranks[0]][1]
        acc = payloads[ranks[0]][0]
        for r in ranks[1:]:
            acc = op(acc, payloads[r][0])
        delay = 2.0 * self.fabric.collective_latency(self.size)
        self.fabric.record_traffic(0.0, messages=self.size)
        return {rank: (delay, acc) for rank in payloads}

    # -- allgather ----------------------------------------------------------------

    def allgather(self, rank: int, value: Any, nbytes: float = 0.0) -> Event:
        """Every rank contributes ``value``; all receive the list by rank."""
        return self._arrive(rank, "allgather", (value, nbytes))

    def _resolve_allgather(self, payloads) -> Dict[int, Tuple[float, Any]]:
        gathered = [payloads[r][0] for r in sorted(payloads)]
        total_bytes = sum(payloads[r][1] for r in payloads)
        recv_bytes = total_bytes  # each rank receives everyone's contribution
        bw = self.fabric.effective_bandwidth(self.size)
        delay = self.fabric.collective_latency(self.size) + recv_bytes / bw
        self.fabric.record_traffic(total_bytes * max(0, self.size - 1), self.size)
        return {rank: (delay, gathered) for rank in payloads}

    # -- gather / broadcast ----------------------------------------------------------

    def gather(self, rank: int, value: Any, root: int = 0, nbytes: float = 0.0) -> Event:
        """Collect one value per rank at ``root`` (others receive ``None``)."""
        return self._arrive(rank, "gather", (value, root, nbytes))

    def _resolve_gather(self, payloads) -> Dict[int, Tuple[float, Any]]:
        roots = {payloads[r][1] for r in payloads}
        if len(roots) != 1:
            raise CollectiveMismatch(f"gather roots disagree: {sorted(roots)}")
        root = roots.pop()
        gathered = [payloads[r][0] for r in sorted(payloads)]
        total_bytes = sum(payloads[r][2] for r in payloads)
        bw = self.fabric.effective_bandwidth(self.size)
        base = self.fabric.collective_latency(self.size)
        self.fabric.record_traffic(total_bytes, self.size)
        out: Dict[int, Tuple[float, Any]] = {}
        for rank in payloads:
            if rank == root:
                out[rank] = (base + total_bytes / bw, gathered)
            else:
                out[rank] = (base, None)
        return out

    def bcast(self, rank: int, value: Any, root: int = 0, nbytes: float = 0.0) -> Event:
        """Broadcast ``value`` from ``root``; every rank receives it."""
        return self._arrive(rank, "bcast", (value, root, nbytes))

    def _resolve_bcast(self, payloads) -> Dict[int, Tuple[float, Any]]:
        roots = {payloads[r][1] for r in payloads}
        if len(roots) != 1:
            raise CollectiveMismatch(f"bcast roots disagree: {sorted(roots)}")
        root = roots.pop()
        value, _root, nbytes = payloads[root]
        bw = self.fabric.effective_bandwidth(self.size)
        delay = self.fabric.collective_latency(self.size) + nbytes / bw
        self.fabric.record_traffic(nbytes * max(0, self.size - 1), self.size)
        return {rank: (delay, value) for rank in payloads}

    # -- scatter -----------------------------------------------------------------

    def scatter(self, rank: int, values, root: int = 0, nbytes: float = 0.0) -> Event:
        """Distribute ``values[i]`` from ``root`` to rank ``i``.

        Only the root's ``values`` are used (others pass None, as in MPI);
        ``nbytes`` is the total payload leaving the root.
        """
        return self._arrive(rank, "scatter", (values, root, nbytes))

    def _resolve_scatter(self, payloads) -> Dict[int, Tuple[float, Any]]:
        roots = {payloads[r][1] for r in payloads}
        if len(roots) != 1:
            raise CollectiveMismatch(f"scatter roots disagree: {sorted(roots)}")
        root = roots.pop()
        values, _root, nbytes = payloads[root]
        if values is None or len(values) != self.size:
            raise ValueError(
                f"scatter root must supply {self.size} values, got "
                f"{None if values is None else len(values)}"
            )
        bw = self.fabric.effective_bandwidth(self.size)
        delay = self.fabric.collective_latency(self.size) + nbytes / bw
        self.fabric.record_traffic(nbytes * max(0, self.size - 1) / max(1, self.size),
                                   self.size)
        return {rank: (delay, values[rank]) for rank in payloads}

    # -- alltoallv -------------------------------------------------------------------

    def alltoallv(
        self,
        rank: int,
        send: Sequence[Any],
        send_bytes: Sequence[float],
    ) -> Event:
        """Personalized all-to-all exchange.

        ``send[j]`` is the object destined for rank ``j`` and
        ``send_bytes[j]`` its represented volume.  The event fires with
        ``(recv, recv_bytes)`` where ``recv[j]`` is the object rank ``j``
        sent here.  Per-rank completion time is
        ``max(bytes out, bytes in) / effective bandwidth`` (full-duplex
        NICs) plus latency per message and per 2 GiB chunk (the MPI 32-bit
        split of Section V).
        """
        if len(send) != self.size or len(send_bytes) != self.size:
            raise ValueError(
                f"alltoallv from rank {rank}: expected {self.size} entries, "
                f"got {len(send)} objects / {len(send_bytes)} sizes"
            )
        return self._arrive(rank, "alltoallv", (list(send), list(send_bytes)))

    def _resolve_alltoallv(self, payloads) -> Dict[int, Tuple[float, Any]]:
        size = self.size
        spec = self.fabric.spec
        # Volume matrix, diagonal (self traffic) excluded from the network.
        out_bytes = [0.0] * size
        in_bytes = [0.0] * size
        out_msgs = [0] * size
        total = 0.0
        for s in payloads:
            _objs, sizes = payloads[s]
            for d in range(size):
                if d == s:
                    continue
                v = sizes[d]
                if v < 0:
                    raise ValueError(f"negative alltoallv volume {v} ({s}->{d})")
                if v > 0:
                    out_bytes[s] += v
                    in_bytes[d] += v
                    # one message plus the 2 GiB chunking of Section V
                    out_msgs[s] += 1 + int(v // MAX_INT32_BYTES)
                    total += v
        active = sum(1 for r in range(size) if out_bytes[r] > 0 or in_bytes[r] > 0)
        bw = self.fabric.effective_bandwidth(max(1, active))
        base = self.fabric.collective_latency(size)
        self.fabric.record_traffic(total, sum(out_msgs))
        out: Dict[int, Tuple[float, Any]] = {}
        for rank in payloads:
            recv = [payloads[s][0][rank] for s in range(size)]
            recv_bytes = [payloads[s][1][rank] for s in range(size)]
            wire = max(out_bytes[rank], in_bytes[rank]) / bw
            delay = base + wire + out_msgs[rank] * spec.net_latency
            out[rank] = (delay, (recv, recv_bytes))
        return out
