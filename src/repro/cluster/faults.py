"""Performance-fault injection.

The paper's outlook (§VII) raises fault tolerance as the open question
for very large machines.  Data-loss tolerance needs redundancy the
algorithm does not have (the authors note Google pays a factor ~3 in
disks for it); what *can* be studied on this simulator is the class of
faults that dominates in practice long before disks die: **stragglers** —
disks that degrade, disks that stall, nodes that lose compute capacity.

Injectors are plain functions that schedule state changes on the
simulation clock.  They never corrupt data (the sort must stay correct
under every injection — the failure-injection tests assert exactly that);
they only bend the performance model, so their visible effect is the
per-PE imbalance of Figure 3 growing until the slowest PE gates every
phase barrier.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from .cluster import Cluster

__all__ = [
    "inject_disk_slowdown",
    "inject_disk_stall",
    "inject_node_slowdown",
]


def _at(sim: Simulator, when: float, fn) -> None:
    if when < sim.now:
        raise ValueError(f"cannot schedule a fault in the past ({when} < {sim.now})")
    sim._schedule_call(fn, when - sim.now)


def inject_disk_slowdown(
    cluster: Cluster,
    node: int,
    disk: int,
    factor: float,
    at: float = 0.0,
    duration: Optional[float] = None,
) -> None:
    """Degrade one disk's bandwidth by ``factor`` (> 1 = slower).

    Models the long tail of rotating disks: remapped sectors, inner
    tracks, a failing head.  ``duration=None`` leaves the disk degraded
    for the rest of the run.
    """
    if factor <= 0:
        raise ValueError(f"slowdown factor must be positive, got {factor}")
    target = cluster.nodes[node].disks[disk]
    healthy = target.bandwidth

    def degrade():
        target.bandwidth = healthy / factor

    def recover():
        target.bandwidth = healthy

    _at(cluster.sim, at, degrade)
    if duration is not None:
        _at(cluster.sim, at + duration, recover)


def inject_disk_stall(
    cluster: Cluster,
    node: int,
    disk: int,
    at: float,
    duration: float,
) -> None:
    """Freeze one disk for ``duration`` seconds from time ``at``.

    Models a device timeout / bus reset: requests already queued (and any
    submitted during the stall) wait the stall out, then drain in order.
    """
    if duration < 0:
        raise ValueError(f"negative stall duration {duration}")
    target = cluster.nodes[node].disks[disk]

    def stall():
        # A maximal-priority dummy request occupies the server.
        target.server.request(duration, tag="fault_stall")

    _at(cluster.sim, at, stall)


def inject_node_slowdown(
    cluster: Cluster,
    node: int,
    factor: float,
    at: float = 0.0,
    duration: Optional[float] = None,
) -> None:
    """Scale one node's computation times by ``factor`` (> 1 = slower).

    Models thermal throttling, a co-scheduled job, or a memory DIMM
    running in degraded mode.
    """
    if factor <= 0:
        raise ValueError(f"slowdown factor must be positive, got {factor}")
    target = cluster.nodes[node]

    def degrade():
        target.compute_factor = factor

    def recover():
        target.compute_factor = 1.0

    _at(cluster.sim, at, degrade)
    if duration is not None:
        _at(cluster.sim, at + duration, recover)
