"""repro — reproduction of *Scalable Distributed-Memory External Sorting*
(Rahn, Sanders, Singler; ICDE 2010 / arXiv:0910.2582).

The package implements the paper's CANONICALMERGESORT (the DEMSort
algorithm that led the 2009 Indy GraySort), the globally striped
mergesort of its Section III, the exact multiway-selection machinery,
and the NOW-Sort / sample-sort baselines — all running on a simulated
distributed-memory cluster calibrated to the paper's 200-node Xeon
machine (see DESIGN.md for the substitution rationale).

Quickstart::

    from repro import (
        Cluster, SortConfig, CanonicalMergeSort,
        generate_input, input_keys, validate_output, MiB,
    )

    config = SortConfig(
        data_per_node_bytes=64 * MiB,
        memory_bytes=16 * MiB,
        block_bytes=1 * MiB,
    )
    cluster = Cluster(n_nodes=8)
    em, inputs = generate_input(cluster, config, kind="random")
    result = CanonicalMergeSort(cluster, config).sort(em, inputs)
    print(result.stats.summary())
    validate_output(input_keys(em, inputs), result.output_keys(em)).raise_if_failed()
"""

from .baselines import ExternalSampleSort, NowSort, NowSortResult
from .cluster import GB, GiB, MB, MachineSpec, MiB, PAPER_MACHINE, Cluster
from .core import (
    CanonicalMergeSort,
    ConfigError,
    PHASES,
    SortConfig,
    SortResult,
    SortStats,
)
from .cluster.faults import (
    inject_disk_slowdown,
    inject_disk_stall,
    inject_node_slowdown,
)
from .core.pipeline import (
    ArraySource,
    BlockSource,
    CollectingSink,
    PipelinedMergeSort,
    PipelineResult,
    Sink,
)
from .core.striped import GlobalStripedMergeSort, StripedSortResult
from .em import ExternalMemory
from .records import ELEM_PAPER_16B, ELEM_SORTBENCH_100B, ElementType
from .workloads import (
    WORKLOADS,
    ValidationReport,
    generate_input,
    input_keys,
    validate_output,
)
from .workloads.gensort import generate_gensort_input

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine / cluster
    "Cluster",
    "MachineSpec",
    "PAPER_MACHINE",
    "MiB",
    "GiB",
    "MB",
    "GB",
    # core algorithms
    "CanonicalMergeSort",
    "GlobalStripedMergeSort",
    "PipelinedMergeSort",
    "PipelineResult",
    "BlockSource",
    "ArraySource",
    "Sink",
    "CollectingSink",
    "inject_disk_slowdown",
    "inject_disk_stall",
    "inject_node_slowdown",
    "SortConfig",
    "SortResult",
    "StripedSortResult",
    "SortStats",
    "ConfigError",
    "PHASES",
    # substrate
    "ExternalMemory",
    # record types
    "ElementType",
    "ELEM_PAPER_16B",
    "ELEM_SORTBENCH_100B",
    # baselines
    "NowSort",
    "NowSortResult",
    "ExternalSampleSort",
    # workloads
    "WORKLOADS",
    "generate_input",
    "generate_gensort_input",
    "input_keys",
    "validate_output",
    "ValidationReport",
]
