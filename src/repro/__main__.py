"""Command-line sorter: run one distributed external sort.

Two backends share this entry point:

* ``--backend sim`` (default) runs the discrete-event *simulation* of
  the paper's cluster — seconds of real time model hours of cluster
  time, and every figure of the paper can be reproduced;
* ``--backend native`` runs the same CANONICALMERGESORT **for real**:
  worker processes as PEs, a spill directory of record files as the
  disk farm, pipes as the interconnect.

Usage::

    python -m repro --nodes 8 --workload random
    python -m repro --nodes 8 --workload worstcase --no-randomize --timeline
    python -m repro --algorithm striped --nodes 4
    python -m repro --backend native --nodes 4 --spill-dir /tmp/sort \\
        --data-mib 64 --memory-mib 16
    python -m repro --backend native --nodes 2 --spill-dir /tmp/sort --json
    python -m repro --backend native --nodes 4 --spill-dir /tmp/sort \\
        --transport tcp
    python -m repro worker --connect 127.0.0.1:7070 --rank 1
    python -m repro serve --pool 4 --spill-root /tmp/sort-svc \\
        --listen 127.0.0.1:7099
    python -m repro submit --connect 127.0.0.1:7099 --data-mib 8 --wait
    python -m repro jobs --connect 127.0.0.1:7099 --stats
    python -m repro tune run --quick   # knob ablation sweep (docs/TUNING.md)

Data sizes are given in MiB per node — *represented* bytes for the
simulator, real record bytes for the native backend.  ``--json`` replaces
the human-readable report with one JSON object on stdout (config,
per-phase wall times, I/O volumes, validation verdict).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from . import (
    CanonicalMergeSort,
    Cluster,
    ExternalSampleSort,
    GlobalStripedMergeSort,
    MiB,
    NowSort,
    SortConfig,
    WORKLOADS,
    generate_input,
    input_keys,
    validate_output,
)

ALGORITHMS = ("canonical", "striped", "nowsort", "samplesort")

#: Native backend registry names (repro.native.algos); a separate axis
#: from the sim-only ``--algorithm`` above.
NATIVE_ALGORITHMS = ("canonical", "striped", "guidesort")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a distributed external sort: simulated cluster "
        "of the Rahn/Sanders/Singler paper, or native processes on real files.",
    )
    parser.add_argument(
        "--backend", choices=("sim", "native"), default="sim",
        help="simulate the paper's cluster, or really sort files with "
        "worker processes",
    )
    parser.add_argument("--nodes", type=int, default=8, help="number of PEs")
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="random",
        help="input distribution",
    )
    parser.add_argument(
        "--algorithm", choices=ALGORITHMS, default="canonical",
        help="which sorter to run (sim backend only)",
    )
    parser.add_argument(
        "--data-mib", type=float, default=96.0,
        help="data per node, MiB (represented for sim, real for native)",
    )
    parser.add_argument(
        "--memory-mib", type=float, default=32.0,
        help="run memory per node, MiB",
    )
    parser.add_argument(
        "--block-mib", type=float, default=1.0, help="block size B, MiB"
    )
    parser.add_argument(
        "--downscale", type=float, default=1.0,
        help="simulate 1/downscale of the blocks; times are rescaled",
    )
    parser.add_argument(
        "--no-randomize", action="store_true",
        help="disable run-formation block randomization (Figure 6 mode)",
    )
    parser.add_argument(
        "--selection", choices=("sampled", "basic", "bisect"),
        default="sampled", help="multiway-selection strategy",
    )
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--timeline", action="store_true",
        help="print the per-PE phase Gantt chart (sim backend)",
    )
    parser.add_argument(
        "--utilization", action="store_true",
        help="print the per-disk utilization heat strips (sim backend)",
    )
    parser.add_argument(
        "--skip-validation", action="store_true",
        help="skip output validation (timing-only runs)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON object (config, phase walls, I/O volume) "
        "instead of the human-readable report",
    )
    # -- native backend -------------------------------------------------------
    parser.add_argument(
        "--spill-dir", default=None,
        help="directory for the native backend's record files (required "
        "with --backend native)",
    )
    parser.add_argument(
        "--keep-spill", action="store_true",
        help="keep the native output files instead of deleting the spill dir",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="native per-message receive timeout, seconds",
    )
    parser.add_argument(
        "--transport", choices=("pipe", "tcp", "shm"), default="pipe",
        help="native interconnect: multiprocessing pipes (single host), "
        "real TCP sockets with rendezvous, or zero-copy shared-memory "
        "rings (single host; see docs/TRANSPORT.md)",
    )
    parser.add_argument(
        "--pending-sends", type=int, default=4, metavar="N",
        help="native exchange backpressure: at most N chunks queued to "
        "the sender before the producer blocks",
    )
    parser.add_argument(
        "--listen", default="127.0.0.1:0", metavar="HOST:PORT",
        help="TCP transport: rendezvous endpoint the driver listens on "
        "(port 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--no-spawn", action="store_true",
        help="TCP transport: spawn no worker processes; wait for "
        "externally launched 'python -m repro worker' PEs instead",
    )
    parser.add_argument(
        "--prefetch-blocks", type=int, default=0, metavar="W",
        help="native read-ahead budget in blocks (0 = synchronous reads); "
        "fetches follow the paper's optimal prefetch schedule",
    )
    parser.add_argument(
        "--write-behind", type=int, default=0, metavar="BLOCKS",
        help="native write-behind budget in blocks (0 = synchronous writes)",
    )
    parser.add_argument(
        "--max-restarts", type=int, default=0, metavar="N",
        help="native recovery: restart a failed job up to N times, "
        "resuming from the per-rank manifests (implies checkpointing; "
        "see docs/RECOVERY.md)",
    )
    parser.add_argument(
        "--checkpoint", action="store_true",
        help="native recovery: journal per-rank manifests at phase "
        "boundaries even when --max-restarts is 0",
    )
    parser.add_argument(
        "--records", choices=("fixed16", "string"), default="fixed16",
        help="native record model: the paper's fixed 16-byte records or "
        "length-prefixed byte-string keys with LCP-compressed splitters "
        "(see docs/NATIVE.md)",
    )
    parser.add_argument(
        "--algo", choices=NATIVE_ALGORITHMS, default="canonical",
        help="native sort backend: the paper's canonical pipeline, the "
        "globally striped mergesort, or the guide-sequence merge "
        "(see docs/NATIVE.md)",
    )
    parser.add_argument(
        "--shm-ring-kib", type=int, default=None, metavar="KIB",
        help="shm transport: data capacity of each directed ring buffer "
        "in KiB (default 1024; rejected for pipe/tcp jobs — this is a "
        "tuning knob, see docs/TUNING.md)",
    )
    return parser


def _config_dict(config: SortConfig, nodes: int) -> dict:
    return {
        "n_nodes": nodes,
        "data_per_node_bytes": config.data_per_node_bytes,
        "memory_bytes": config.memory_bytes,
        "block_bytes": config.block_bytes,
        "downscale": config.downscale,
        "randomize": config.randomize,
        "selection": config.selection,
        "seed": config.seed,
    }


def _emit(args, report: dict) -> None:
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))


def run_sim(args, config: SortConfig) -> int:
    if args.algo != "canonical":
        print("--algo picks the native backend; the sim backend is driven "
              "by --algorithm", file=sys.stderr)
        return 2
    cluster = Cluster(args.nodes)
    tracer = None
    if args.utilization:
        from .sim import Tracer

        tracer = Tracer.attach(cluster)
    em, inputs = generate_input(cluster, config, kind=args.workload)
    before = None if args.skip_validation else input_keys(em, inputs)

    say = (lambda *a, **k: None) if args.json else print
    say(
        f"{args.algorithm} sort: {config.total_bytes(args.nodes) / 2**30:.2f} GiB "
        f"({args.workload}) on {args.nodes} PEs / {cluster.n_disks} disks, "
        f"R = {config.n_runs(cluster.spec)} runs"
    )

    if args.algorithm == "canonical":
        result = CanonicalMergeSort(cluster, config).sort(em, inputs)
        outputs = result.output_keys(em)
        balanced = True
    elif args.algorithm == "striped":
        result = GlobalStripedMergeSort(cluster, config).sort(em, inputs)
        outputs = [result.global_keys(em)]
        before = [np.concatenate(before)] if before is not None else None
        balanced = False
    elif args.algorithm == "nowsort":
        result = NowSort(cluster, config).sort(em, inputs)
        outputs = result.output_keys(em)
        balanced = False
    else:
        result = ExternalSampleSort(cluster, config).sort(em, inputs)
        outputs = result.output_keys(em)
        balanced = False

    say()
    say(result.stats.summary())
    if args.timeline:
        say()
        say(result.stats.timeline())
    if tracer is not None:
        say()
        say(tracer.utilization_table())

    stats_dict = result.stats.to_dict()
    report = {
        "backend": "sim",
        "algorithm": args.algorithm,
        "workload": args.workload,
        "config": _config_dict(config, args.nodes),
        "total_time": stats_dict["total_time_simulated"],
        "total_time_scaled": stats_dict["total_time_scaled"],
        "phases": {
            phase: {
                "wall": p["wall_max"],
                "wall_scaled": p["wall_scaled"],
                "io_bytes": p["bytes"],
            }
            for phase, p in stats_dict["phases"].items()
        },
        "io_bytes": sum(p["bytes"] for p in stats_dict["phases"].values()),
        "network_bytes": stats_dict["network_bytes"],
    }

    code = 0
    if before is not None:
        vreport = validate_output(before, outputs, balanced=balanced)
        report["validation"] = {"ok": vreport.ok, "issues": vreport.issues,
                                "total_keys": vreport.total_keys}
        if not vreport.ok:
            say("\nVALIDATION FAILED:")
            for issue in vreport.issues:
                say(f"  - {issue}")
            code = 1
        else:
            say(f"\noutput valid ({vreport.total_keys} keys, "
                f"checksum {vreport.checksum:#018x})")
    _emit(args, report)
    return code


def run_native(args, config: SortConfig) -> int:
    from .core.config import ConfigError
    from .native import NativeJob, NativeSorter
    from .native.driver import NativeSortError

    if args.spill_dir is None:
        print("--backend native requires --spill-dir", file=sys.stderr)
        return 2
    if args.workload not in ("random", "skewed"):
        print(
            f"--backend native supports workloads 'random' and 'skewed', "
            f"not {args.workload!r}",
            file=sys.stderr,
        )
        return 2
    if args.algorithm != "canonical":
        print("--backend native only runs the canonical algorithm",
              file=sys.stderr)
        return 2

    say = (lambda *a, **k: None) if args.json else print
    try:
        job = NativeJob(
            config=config,
            n_workers=args.nodes,
            spill_dir=args.spill_dir,
            skew=(args.workload == "skewed"),
            timeout=args.timeout,
            transport=args.transport,
            pending_sends=args.pending_sends,
            listen=args.listen,
            spawn_workers=not args.no_spawn,
            prefetch_blocks=args.prefetch_blocks,
            write_behind_blocks=args.write_behind,
            max_restarts=args.max_restarts,
            checkpoint=args.checkpoint,
            cleanup_on_abort=not args.keep_spill,
            records=args.records,
            algo=args.algo,
            shm_ring_kib=args.shm_ring_kib,
        )
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2

    say(
        f"native sort: {job.total_records * job.record_bytes / 2**30:.2f} GiB "
        f"({args.workload}) on {args.nodes} worker processes, "
        f"R = {job.n_runs} runs, spill dir {args.spill_dir}"
    )

    try:
        result = NativeSorter(job).run()
    except NativeSortError as exc:
        print(f"native sort failed: {exc}", file=sys.stderr)
        return 1
    say()
    say(result.stats.summary())

    report = result.stats.to_dict()
    report["config"] = job.describe()
    report["config"]["workload"] = args.workload
    report["io_bytes"] = result.stats.total_io_bytes
    report["phases"] = {
        phase: {
            "wall": p["wall_max"],
            "io_bytes": p["bytes"],
            "throughput_mb_s": p["throughput_mb_s"],
            "stall_s": p["stall_s"],
            "overlap_ratio": p["overlap_ratio"],
            "wire_sent": p["wire_sent"],
            "wire_recv": p["wire_recv"],
            "wire_volume": p["wire_volume"],
        }
        for phase, p in report["phases"].items()
    }

    code = 0
    if not args.skip_validation:
        vreport = result.validate()
        report["validation"] = {"ok": vreport.ok, "issues": vreport.issues,
                                "total_keys": vreport.total_keys}
        if not vreport.ok:
            say("\nVALIDATION FAILED:")
            for issue in vreport.issues:
                say(f"  - {issue}")
            code = 1
        else:
            say(f"\noutput valid ({vreport.total_keys} records, "
                f"checksum {vreport.checksum:#018x})")
    if not args.keep_spill:
        result.cleanup()
    else:
        say(f"\noutputs kept: {args.spill_dir}/output_<rank>.dat")
    _emit(args, report)
    return code


def run_worker(argv) -> int:
    """``python -m repro worker``: join a TCP sort as one externally
    launched PE (another terminal, another host — see docs/TRANSPORT.md).

    The driver side runs ``--backend native --transport tcp --no-spawn``;
    this side dials its rendezvous endpoint, receives the job and the
    peer table over the wire, sorts, and reports back.
    """
    from .native.worker import tcp_worker_main
    from .net.rendezvous import parse_hostport

    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Join a native TCP sort as one worker PE.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the driver's rendezvous endpoint",
    )
    parser.add_argument(
        "--rank", type=int, required=True, help="this PE's rank (0-based)"
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=60.0,
        help="seconds to keep retrying the rendezvous dial (with backoff)",
    )
    args = parser.parse_args(argv)
    if args.rank < 0:
        print(f"--rank must be >= 0, got {args.rank}", file=sys.stderr)
        return 2
    try:
        addr = parse_hostport(args.connect)
    except ValueError as exc:
        print(f"bad --connect: {exc}", file=sys.stderr)
        return 2
    tcp_worker_main(args.rank, addr, connect_timeout=args.connect_timeout)
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "conformance":
        # The conformance harness has its own parser and exit semantics:
        # python -m repro conformance --quick | --full | --chaos | ...
        from .testing.cli import main as conformance_main

        return conformance_main(argv[1:])
    if argv and argv[0] == "worker":
        return run_worker(argv[1:])
    if argv and argv[0] == "tune":
        # The ablation + auto-tuning harness (docs/TUNING.md):
        # python -m repro tune plan|run|report|suggest ...
        from .tuning.cli import main as tune_main

        return tune_main(argv[1:])
    if argv and argv[0] in ("serve", "submit", "jobs"):
        # The sort service (docs/SERVICE.md): a persistent daemon plus
        # its thin submit/inspect clients, each with its own parser.
        from .service import cli as service_cli

        handler = {
            "serve": service_cli.run_serve,
            "submit": service_cli.run_submit,
            "jobs": service_cli.run_jobs,
        }[argv[0]]
        return handler(argv[1:])
    args = build_parser().parse_args(argv)
    config = SortConfig(
        data_per_node_bytes=args.data_mib * MiB,
        memory_bytes=args.memory_mib * MiB,
        block_bytes=args.block_mib * MiB,
        downscale=args.downscale,
        randomize=not args.no_randomize,
        selection=args.selection,
        seed=args.seed,
    )
    if args.backend == "native":
        return run_native(args, config)
    return run_sim(args, config)


if __name__ == "__main__":
    sys.exit(main())
