"""Command-line sorter: run one simulated distributed external sort.

Usage::

    python -m repro --nodes 8 --workload random
    python -m repro --nodes 8 --workload worstcase --no-randomize --timeline
    python -m repro --algorithm striped --nodes 4
    python -m repro --algorithm nowsort --workload skewed

Data sizes are given in MiB of *represented* data per node; the defaults
give a three-run sort that finishes in a second or two of real time.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import (
    CanonicalMergeSort,
    Cluster,
    ExternalSampleSort,
    GlobalStripedMergeSort,
    MiB,
    NowSort,
    SortConfig,
    WORKLOADS,
    generate_input,
    input_keys,
    validate_output,
)

ALGORITHMS = ("canonical", "striped", "nowsort", "samplesort")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a distributed external sort on the simulated "
        "cluster of the Rahn/Sanders/Singler paper.",
    )
    parser.add_argument("--nodes", type=int, default=8, help="number of PEs")
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="random",
        help="input distribution",
    )
    parser.add_argument(
        "--algorithm", choices=ALGORITHMS, default="canonical",
        help="which sorter to run",
    )
    parser.add_argument(
        "--data-mib", type=float, default=96.0,
        help="represented data per node, MiB",
    )
    parser.add_argument(
        "--memory-mib", type=float, default=32.0,
        help="run memory per node, MiB",
    )
    parser.add_argument(
        "--block-mib", type=float, default=1.0, help="block size B, MiB"
    )
    parser.add_argument(
        "--downscale", type=float, default=1.0,
        help="simulate 1/downscale of the blocks; times are rescaled",
    )
    parser.add_argument(
        "--no-randomize", action="store_true",
        help="disable run-formation block randomization (Figure 6 mode)",
    )
    parser.add_argument(
        "--selection", choices=("sampled", "basic", "bisect"),
        default="sampled", help="multiway-selection strategy",
    )
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--timeline", action="store_true",
        help="print the per-PE phase Gantt chart",
    )
    parser.add_argument(
        "--utilization", action="store_true",
        help="print the per-disk utilization heat strips",
    )
    parser.add_argument(
        "--skip-validation", action="store_true",
        help="skip output validation (timing-only runs)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = SortConfig(
        data_per_node_bytes=args.data_mib * MiB,
        memory_bytes=args.memory_mib * MiB,
        block_bytes=args.block_mib * MiB,
        downscale=args.downscale,
        randomize=not args.no_randomize,
        selection=args.selection,
        seed=args.seed,
    )
    cluster = Cluster(args.nodes)
    tracer = None
    if args.utilization:
        from .sim import Tracer

        tracer = Tracer.attach(cluster)
    em, inputs = generate_input(cluster, config, kind=args.workload)
    before = None if args.skip_validation else input_keys(em, inputs)

    print(
        f"{args.algorithm} sort: {config.total_bytes(args.nodes) / 2**30:.2f} GiB "
        f"({args.workload}) on {args.nodes} PEs / {cluster.n_disks} disks, "
        f"R = {config.n_runs(cluster.spec)} runs"
    )

    if args.algorithm == "canonical":
        result = CanonicalMergeSort(cluster, config).sort(em, inputs)
        outputs = result.output_keys(em)
        balanced = True
    elif args.algorithm == "striped":
        result = GlobalStripedMergeSort(cluster, config).sort(em, inputs)
        outputs = [result.global_keys(em)]
        before = [np.concatenate(before)] if before is not None else None
        balanced = False
    elif args.algorithm == "nowsort":
        result = NowSort(cluster, config).sort(em, inputs)
        outputs = result.output_keys(em)
        balanced = False
    else:
        result = ExternalSampleSort(cluster, config).sort(em, inputs)
        outputs = result.output_keys(em)
        balanced = False

    print()
    print(result.stats.summary())
    if args.timeline:
        print()
        print(result.stats.timeline())
    if tracer is not None:
        print()
        print(tracer.utilization_table())
    if before is not None:
        report = validate_output(before, outputs, balanced=balanced)
        if not report.ok:
            print("\nVALIDATION FAILED:")
            for issue in report.issues:
                print(f"  - {issue}")
            return 1
        print(f"\noutput valid ({report.total_keys} keys, "
              f"checksum {report.checksum:#018x})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
