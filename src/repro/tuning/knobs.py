"""The tunable knob space, declared as typed specs.

Every constant the native backend grew over the PRs — prefetch depth,
write-behind budget, exchange backpressure, block (all-to-all chunk)
granularity, the transport substrate, the shm ring capacity, the
checkpoint cadence, the algorithm backend — is declared here as one
:class:`Knob`: a name, its baseline value, the alternative values an
ablation tries, and the ``(records, algo, transport)`` gates under
which the knob is applicable at all (the native layer rejects e.g.
pipelined I/O on non-canonical backends, so the planner must never
schedule such a run).

The paper (Rahn/Sanders/Singler, ICDE 2010) tunes these constants by
hand per machine; the ablation driver (:mod:`repro.tuning.ablation`)
turns each into a measured per-phase MB/s delta, and the policy
(:mod:`repro.tuning.policy`) turns the deltas into per-job suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Knob",
    "KNOBS",
    "CONTEXT_FIELDS",
    "SUGGESTABLE_KNOBS",
    "knob_by_name",
    "applicable_knobs",
]

#: Fields that define an ablation *context* (what stays fixed across a
#: sweep): the sizing plus the identity axes the policy looks up by.
CONTEXT_FIELDS = (
    "n_workers",
    "data_mib",
    "memory_mib",
    "block_kib",
    "seed",
    "transport",
    "algo",
    "records",
)

#: Knobs the service's auto-tuner may fill in on a submitted spec.
#: Identity axes (transport, algo) are the policy's *lookup key*, never
#: a suggestion; block_kib is suggestable because it only changes the
#: internal chunk granularity, not the output.
SUGGESTABLE_KNOBS = frozenset(
    ("pending_sends", "prefetch_blocks", "write_behind_blocks",
     "shm_ring_kib", "block_kib")
)


@dataclass(frozen=True)
class Knob:
    """One tunable: baseline, sweep values, and applicability gates."""

    #: Bench/spec keyword the knob drives (also the plan's display name).
    name: str
    #: The value a run gets when this knob is *not* the one being varied.
    baseline: object
    #: Values the one-knob-varied runs try (baseline-equal values are
    #: dropped at planning time, so sweeping a context whose baseline
    #: already equals a variant never duplicates the baseline run).
    variants: Tuple
    #: Applicability gates: None = any value of that axis is fine.
    transports: Optional[Tuple[str, ...]] = None
    algos: Optional[Tuple[str, ...]] = None
    records: Optional[Tuple[str, ...]] = None
    #: One-line meaning, surfaced by ``tune plan`` / docs.
    description: str = ""

    def applicable(self, context: dict) -> bool:
        """Whether this knob can be varied under ``context``'s gates."""
        if self.transports is not None and (
            context.get("transport", "pipe") not in self.transports
        ):
            return False
        if self.algos is not None and (
            context.get("algo", "canonical") not in self.algos
        ):
            return False
        if self.records is not None and (
            context.get("records", "fixed16") not in self.records
        ):
            return False
        return True

    def baseline_in(self, context: dict) -> object:
        """The baseline value under ``context`` (context may pin it)."""
        return context.get(self.name, self.baseline)

    def variants_in(self, context: dict):
        """Sweep values under ``context``, minus the baseline value."""
        base = self.baseline_in(context)
        return tuple(v for v in self.variants if v != base)

    def settings_for(self, value) -> dict:
        """Bench kwargs that set this knob to ``value``."""
        if self.name == "checkpoint_cadence":
            # 0 = checkpointing off (the baseline); > 0 = journal
            # manifests with an all-to-all watermark every N chunks.
            if not value:
                return {"checkpoint": False}
            return {"checkpoint": True, "a2a_checkpoint_chunks": int(value)}
        return {self.name: value}


#: The declared knob space, in rough order of the ROADMAP item-5 list.
#: Gates mirror the NativeJob validation matrix: the pipelined I/O
#: layer and the recovery journal are canonical/fixed16-only today.
KNOBS: Tuple[Knob, ...] = (
    Knob(
        "prefetch_blocks", 0, (4, 16),
        algos=("canonical",), records=("fixed16",),
        description="read-ahead budget W in blocks (Appendix-A schedule)",
    ),
    Knob(
        "write_behind_blocks", 0, (4, 16),
        algos=("canonical",), records=("fixed16",),
        description="write-behind budget in blocks (bounded writer thread)",
    ),
    Knob(
        "pending_sends", 4, (1, 16),
        description="exchange backpressure: max chunks parked per sender",
    ),
    Knob(
        "block_kib", 64.0, (16.0, 256.0),
        description="block size B in KiB — the all-to-all chunk and every "
        "disk-I/O granule",
    ),
    Knob(
        "transport", "pipe", ("pipe", "tcp", "shm"),
        description="interconnect substrate (pipes, sockets, shm rings)",
    ),
    Knob(
        "shm_ring_kib", 1024, (64, 4096),
        transports=("shm",),
        description="shm transport: per-channel ring capacity in KiB",
    ),
    Knob(
        "checkpoint_cadence", 0, (4, 32),
        algos=("canonical",), records=("fixed16",),
        description="recovery journal: 0 = off, N = manifest watermark "
        "every N all-to-all chunks (the insurance premium, measured)",
    ),
    Knob(
        "algo", "canonical", ("canonical", "striped", "guidesort"),
        records=("fixed16",),
        description="sort backend (PR 9 bake-off: canonical vs striped "
        "vs guidesort crossovers become tuner decisions)",
    ),
)


def knob_by_name(name: str) -> Knob:
    for knob in KNOBS:
        if knob.name == name:
            return knob
    raise KeyError(f"unknown knob {name!r}; known: {[k.name for k in KNOBS]}")


def applicable_knobs(context: dict):
    """Knobs the planner may vary under ``context``, in declared order."""
    return tuple(k for k in KNOBS if k.applicable(context))
