"""Ablation driver: baseline + one-knob-varied runs, ranked deltas.

The driver turns the declared knob space (:mod:`repro.tuning.knobs`)
into a deterministic **run plan** for a given *context* (sizing +
transport + algo + records):

* one **baseline** run with every applicable knob at its baseline value;
* one run per ``(knob, variant)`` pair, identical to the baseline
  except for that single knob (classic one-factor ablation — the delta
  against the baseline is attributable to exactly one knob).

Every run gets a **stable content-hashed run ID** (sha256 over the
canonical JSON of its context + settings): re-planning is reproducible
byte for byte, re-running *resumes* (runs already recorded in the
output file are skipped), and two plans can never silently alias
different settings under one ID.

Execution goes through the **existing measurement path** —
``benchmarks/bench_native.py``'s ``run_native_bench`` (imported by
file location, since the benchmarks tree is deliberately not a
package) — so ablation numbers and trajectory numbers come from the
same code and are directly comparable.

Results land in a schema-versioned ``benchmarks/BENCH_ablations.json``
next to the perf trajectory, with an importance-ranked report per
sweep: for each knob, the best variant's throughput gain over the
baseline and the per-phase MB/s deltas behind it.  The file is gated
by ``tools/bench_gate.py --ablations`` in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .knobs import KNOBS, applicable_knobs

__all__ = [
    "ABLATION_SCHEMA",
    "DEFAULT_ABLATIONS_FILE",
    "QUICK_CONTEXTS",
    "FULL_CONTEXTS",
    "AblationError",
    "RunSpec",
    "run_id",
    "plan_sweep",
    "load_ablations",
    "save_ablations",
    "run_sweep",
    "rank_knobs",
    "load_bench_module",
]

ABLATION_SCHEMA = 1

#: Repo root relative to the installed package: src/repro/tuning/ ->
#: src/repro -> src -> repo.  The benchmarks tree and the committed
#: ablation file live there (same trick bench_native itself uses in
#: reverse to find src/).
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)
DEFAULT_ABLATIONS_FILE = os.path.join(
    _REPO_ROOT, "benchmarks", "BENCH_ablations.json"
)
_BENCH_NATIVE = os.path.join(_REPO_ROOT, "benchmarks", "bench_native.py")

#: The quick sweep (``tune run --quick``): tiny sizings, one context
#: per in-host transport, finishes in a couple of minutes on a laptop.
#: Both contexts matter: the policy looks suggestions up by transport,
#: and the service schedules pipe and shm jobs alike.
QUICK_CONTEXTS = (
    {
        "n_workers": 2, "data_mib": 2.0, "memory_mib": 1.0,
        "block_kib": 32.0, "seed": 12345,
        "transport": "pipe", "algo": "canonical", "records": "fixed16",
    },
    {
        "n_workers": 2, "data_mib": 2.0, "memory_mib": 1.0,
        "block_kib": 32.0, "seed": 12345,
        "transport": "shm", "algo": "canonical", "records": "fixed16",
    },
)

#: The full sweep: the trajectory sizing over every in-host transport
#: plus TCP (longer; meant for nightly CI or a real tuning pass).
FULL_CONTEXTS = (
    {
        "n_workers": 4, "data_mib": 8.0, "memory_mib": 4.0,
        "block_kib": 64.0, "seed": 12345,
        "transport": "pipe", "algo": "canonical", "records": "fixed16",
    },
    {
        "n_workers": 4, "data_mib": 8.0, "memory_mib": 4.0,
        "block_kib": 64.0, "seed": 12345,
        "transport": "tcp", "algo": "canonical", "records": "fixed16",
    },
    {
        "n_workers": 4, "data_mib": 8.0, "memory_mib": 4.0,
        "block_kib": 64.0, "seed": 12345,
        "transport": "shm", "algo": "canonical", "records": "fixed16",
    },
)


class AblationError(RuntimeError):
    """A plan, file, or measurement problem the caller must surface."""


@dataclass(frozen=True)
class RunSpec:
    """One planned measurement: its ID, the knob it varies, settings."""

    id: str
    #: None for the baseline run.
    knob: Optional[str]
    #: The varied value (None for the baseline run).
    value: object = None
    #: Full kwargs for the measurement path (context + every knob).
    settings: dict = field(default_factory=dict)


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def run_id(context: dict, settings: dict) -> str:
    """Stable content hash of one run: same inputs, same ID, forever."""
    digest = hashlib.sha256(
        _canonical({"context": context, "settings": settings}).encode()
    ).hexdigest()
    return digest[:12]


def _effective_context(context: dict, overrides: dict) -> dict:
    """The context after a varied knob's settings are applied.

    Varying an identity axis (transport, algo) changes which *other*
    knobs are applicable — a run that switches an shm context to tcp
    must not carry ``shm_ring_kib``, which the native layer rejects.
    """
    out = dict(context)
    for key, value in overrides.items():
        if key in out:
            out[key] = value
    return out


def _settings(context: dict, overrides: dict) -> dict:
    """Full bench kwargs: context + baseline knobs + ``overrides``."""
    effective = _effective_context(context, overrides)
    settings = dict(effective)
    for knob in applicable_knobs(effective):
        settings.update(knob.settings_for(knob.baseline_in(effective)))
    settings.update(overrides)
    return settings


def _feasible(settings: dict) -> bool:
    """Would the native layer even accept this combination?

    A varied knob can break a *cross-field* constraint the per-knob
    gates cannot express — e.g. a bigger block at a small quick-sweep
    sizing trips the paper's two-pass merge limit N = O(M²/(P B)).
    The planner drops such runs (deterministically: this is a pure
    function of the settings) instead of letting the sweep crash.
    """
    from ..core.config import ConfigError, SortConfig
    from ..native.job import NativeJob

    try:
        NativeJob(
            config=SortConfig(
                data_per_node_bytes=settings["data_mib"] * 2**20,
                memory_bytes=settings["memory_mib"] * 2**20,
                block_bytes=settings["block_kib"] * 1024,
                seed=settings["seed"],
            ),
            n_workers=settings["n_workers"],
            spill_dir=".",
            transport=settings.get("transport", "pipe"),
            pending_sends=settings.get("pending_sends", 4),
            prefetch_blocks=settings.get("prefetch_blocks", 0),
            write_behind_blocks=settings.get("write_behind_blocks", 0),
            checkpoint=settings.get("checkpoint", False),
            a2a_checkpoint_chunks=settings.get("a2a_checkpoint_chunks", 8),
            records=settings.get("records", "fixed16"),
            algo=settings.get("algo", "canonical"),
            shm_ring_kib=settings.get("shm_ring_kib"),
        )
        return True
    except ConfigError:
        return False


def plan_sweep(context: dict) -> List[RunSpec]:
    """The deterministic run plan for one context.

    Baseline first, then one run per (knob, variant) in declared knob
    order — stable across processes and platforms, so ``tune plan`` is
    reproducible and run IDs never drift.  Variants the native layer
    would reject at this sizing are dropped (see :func:`_feasible`);
    an infeasible *baseline* is a bad context and raises.
    """
    base_settings = _settings(context, {})
    if not _feasible(base_settings):
        raise AblationError(
            f"context {context!r} is infeasible at its own baseline "
            "settings — fix the sweep sizing"
        )
    plan: List[RunSpec] = [
        RunSpec(id=run_id(context, base_settings), knob=None,
                settings=base_settings)
    ]
    seen = {plan[0].id}
    for knob in applicable_knobs(context):
        for value in knob.variants_in(context):
            settings = _settings(context, knob.settings_for(value))
            rid = run_id(context, settings)
            if rid in seen:
                # A variant that collapses to the baseline (or another
                # variant) under this context's gates is a repeat, and
                # repeats are never scheduled.
                continue
            if not _feasible(settings):
                continue
            seen.add(rid)
            plan.append(
                RunSpec(id=rid, knob=knob.name, value=value,
                        settings=settings)
            )
    return plan


# ------------------------------------------------------------ file handling


def load_ablations(path: str) -> dict:
    """Load (or initialize) the ablation results document."""
    if not os.path.exists(path):
        return {"schema": ABLATION_SCHEMA, "sweeps": []}
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except json.JSONDecodeError as exc:
        raise AblationError(f"{path}: not valid JSON: {exc}") from exc
    if doc.get("schema") != ABLATION_SCHEMA:
        raise AblationError(
            f"{path}: schema {doc.get('schema')!r} != {ABLATION_SCHEMA}"
        )
    if not isinstance(doc.get("sweeps"), list):
        raise AblationError(f"{path}: sweeps must be a list")
    return doc


def save_ablations(doc: dict, path: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _find_sweep(doc: dict, context: dict) -> Optional[dict]:
    for sweep in doc["sweeps"]:
        if sweep.get("context") == context:
            return sweep
    return None


# -------------------------------------------------------------- measurement


def load_bench_module():
    """Import ``benchmarks/bench_native.py`` by file location.

    The benchmarks tree is intentionally not a package (it carries its
    own ``sys.path`` bootstrap for standalone use); the tuner loads it
    from the repo checkout so both share one measurement path.
    """
    import importlib.util

    path = os.environ.get("REPRO_BENCH_NATIVE", _BENCH_NATIVE)
    if not os.path.exists(path):
        raise AblationError(
            f"measurement path {path} not found: the ablation driver "
            "needs the repo's benchmarks/bench_native.py (set "
            "REPRO_BENCH_NATIVE to point at it)"
        )
    spec = importlib.util.spec_from_file_location("_repro_bench_native", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _default_measure(settings: dict, spill_dir: Optional[str],
                     timeout: float) -> dict:
    from ..core.config import ConfigError

    bench = load_bench_module()
    try:
        return bench.run_native_bench(
            spill_dir=spill_dir, timeout=timeout, baseline=False, **settings
        )
    except ConfigError as exc:
        # The planner's feasibility filter should have dropped this
        # run; surface any residual mismatch as a sweep error, not a
        # traceback.
        raise AblationError(
            f"native layer rejected run settings {settings!r}: {exc}"
        ) from exc


def _distill(result: dict) -> dict:
    """The per-run record kept in the file (throughputs only)."""
    if not result.get("ok", False):
        raise AblationError(
            f"ablation run failed validation: {result.get('issues')}"
        )
    total_mib = result["total_mib"]
    sort_s = result["sort_phases_s"]
    return {
        "ok": True,
        "sort_mb_s": (
            total_mib * 2**20 / sort_s / 1e6 if sort_s else 0.0
        ),
        "phases": {
            row["phase"]: row["mb_s"] for row in result["phases"]
        },
    }


def run_sweep(
    context: dict,
    path: str = DEFAULT_ABLATIONS_FILE,
    spill_dir: Optional[str] = None,
    timeout: float = 600.0,
    measure: Optional[Callable[[dict], dict]] = None,
    log: Callable[[str], None] = lambda msg: None,
) -> dict:
    """Execute the plan for ``context``; resume, record, rank, save.

    Runs whose ID already appears in the file's sweep for this context
    are **skipped** (that is what makes reruns resume and repeats
    free).  Every completed run is saved immediately, so an interrupted
    sweep loses at most the run in flight.  Returns the sweep dict.
    """
    doc = load_ablations(path)
    sweep = _find_sweep(doc, context)
    if sweep is None:
        sweep = {"context": dict(context), "runs": {}, "ranking": []}
        doc["sweeps"].append(sweep)
    plan = plan_sweep(context)
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    for i, spec in enumerate(plan):
        if spec.id in sweep["runs"] and sweep["runs"][spec.id].get("ok"):
            log(f"[{i + 1}/{len(plan)}] {spec.id} "
                f"({spec.knob or 'baseline'}) already recorded, skipping")
            continue
        label = (
            "baseline" if spec.knob is None
            else f"{spec.knob}={spec.value!r}"
        )
        log(f"[{i + 1}/{len(plan)}] {spec.id} running {label} ...")
        raw = (
            measure(spec.settings) if measure is not None
            else _default_measure(spec.settings, spill_dir, timeout)
        )
        record = _distill(raw)
        record.update({
            "knob": spec.knob,
            "value": spec.value,
            "settings": spec.settings,
            "stamp": stamp,
        })
        sweep["runs"][spec.id] = record
        sweep["ranking"] = rank_knobs(sweep, plan)
        save_ablations(doc, path)
    sweep["ranking"] = rank_knobs(sweep, plan)
    save_ablations(doc, path)
    return sweep


# ------------------------------------------------------------------ ranking


def rank_knobs(sweep: dict, plan: Optional[List[RunSpec]] = None) -> List[dict]:
    """Importance-ranked knob report for one sweep.

    Importance is the largest absolute relative change any variant of
    the knob produced on end-to-end sort throughput; the per-phase
    MB/s deltas behind it ride along so a reader can see *where* the
    time went (e.g. shm ring size moves all_to_all, prefetch moves the
    merge).  Knobs whose runs are not all recorded yet are omitted —
    a partial sweep never reports a misleading rank.
    """
    if plan is None:
        plan = plan_sweep(sweep["context"])
    by_id = sweep["runs"]
    baseline = next((s for s in plan if s.knob is None), None)
    if baseline is None or baseline.id not in by_id:
        return []
    base = by_id[baseline.id]
    base_sort = base["sort_mb_s"] or 1e-12
    ranking: List[dict] = []
    knobs: Dict[str, List[RunSpec]] = {}
    for spec in plan:
        if spec.knob is not None:
            knobs.setdefault(spec.knob, []).append(spec)
    for name, specs in knobs.items():
        if not all(s.id in by_id and by_id[s.id].get("ok") for s in specs):
            continue
        variants = []
        best = None
        for spec in specs:
            rec = by_id[spec.id]
            delta = rec["sort_mb_s"] - base["sort_mb_s"]
            variants.append({
                "value": spec.value,
                "run_id": spec.id,
                "sort_mb_s": rec["sort_mb_s"],
                "sort_delta_mb_s": delta,
                "phase_deltas_mb_s": {
                    phase: rec["phases"].get(phase, 0.0)
                    - base["phases"].get(phase, 0.0)
                    for phase in sorted(
                        set(rec["phases"]) | set(base["phases"])
                    )
                },
            })
            if best is None or rec["sort_mb_s"] > best[1]:
                best = (spec.value, rec["sort_mb_s"])
        importance = max(
            abs(v["sort_delta_mb_s"]) / base_sort for v in variants
        )
        ranking.append({
            "knob": name,
            "importance": importance,
            "baseline_value": _baseline_value(name, sweep["context"]),
            "baseline_sort_mb_s": base["sort_mb_s"],
            "best_value": best[0],
            "best_sort_mb_s": best[1],
            "best_gain": (best[1] - base["sort_mb_s"]) / base_sort,
            "variants": variants,
        })
    ranking.sort(key=lambda row: (-row["importance"], row["knob"]))
    return ranking


def _baseline_value(name: str, context: dict):
    for knob in KNOBS:
        if knob.name == name:
            return knob.baseline_in(context)
    return None
