"""``python -m repro tune``: plan / run / report / suggest.

::

    python -m repro tune plan --quick            # show the run plan
    python -m repro tune plan --quick --check    # CI: determinism + no repeats
    python -m repro tune run --quick             # execute (resumes, skips)
    python -m repro tune report                  # ranked knob importance
    python -m repro tune suggest --data-mib 64 --memory-mib 8 \\
        --transport shm                          # what would the tuner pick?

``run`` writes/updates ``benchmarks/BENCH_ablations.json`` (override
with ``--file``); re-running skips every run already recorded, so an
interrupted sweep resumes where it stopped.  ``plan --check`` verifies
the two invariants CI pins on every push: the plan is deterministic
(two generations agree byte for byte) and repeat-free (no two runs
share an ID or settings).
"""

from __future__ import annotations

import argparse
import json
import sys

from .ablation import (
    DEFAULT_ABLATIONS_FILE,
    FULL_CONTEXTS,
    QUICK_CONTEXTS,
    AblationError,
    load_ablations,
    plan_sweep,
    run_sweep,
)
from .policy import DEFAULT_MIN_GAIN, TuningPolicy

__all__ = ["main"]


def _contexts(args):
    return QUICK_CONTEXTS if args.quick else FULL_CONTEXTS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick", action="store_true",
        help="the small two-context sweep (minutes, CI-sized) instead of "
        "the full trajectory-sized one",
    )
    parser.add_argument("--json", action="store_true")


def _context_label(ctx: dict) -> str:
    return (
        f"{ctx['transport']}/{ctx['algo']}/{ctx['records']} "
        f"{ctx['data_mib']:g} MiB x {ctx['n_workers']} workers, "
        f"M={ctx['memory_mib']:g} MiB, B={ctx['block_kib']:g} KiB"
    )


def run_plan(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune plan",
        description="Show (or check) the deterministic ablation run plan.",
    )
    _add_common(parser)
    parser.add_argument(
        "--check", action="store_true",
        help="verify plan determinism and the no-repeat invariant; "
        "exit 1 on violation (the CI smoke)",
    )
    args = parser.parse_args(argv)
    problems = []
    plans = []
    for ctx in _contexts(args):
        plan = plan_sweep(ctx)
        plans.append((ctx, plan))
        if args.check:
            again = plan_sweep(ctx)
            if [(s.id, s.settings) for s in plan] != [
                (s.id, s.settings) for s in again
            ]:
                problems.append(
                    f"{_context_label(ctx)}: plan is not deterministic"
                )
            ids = [s.id for s in plan]
            if len(ids) != len(set(ids)):
                problems.append(
                    f"{_context_label(ctx)}: duplicate run IDs in the plan"
                )
            settings = [
                json.dumps(s.settings, sort_keys=True) for s in plan
            ]
            if len(settings) != len(set(settings)):
                problems.append(
                    f"{_context_label(ctx)}: two runs share identical "
                    "settings (a repeat would be measured twice)"
                )
    if args.check:
        for p in problems:
            print(f"PLAN CHECK FAILED: {p}", file=sys.stderr)
        if problems:
            return 1
        total = sum(len(plan) for _ctx, plan in plans)
        print(
            f"tune plan --check: {len(plans)} context(s), {total} runs, "
            "deterministic and repeat-free"
        )
        return 0
    if args.json:
        print(json.dumps(
            [
                {
                    "context": ctx,
                    "runs": [
                        {"id": s.id, "knob": s.knob, "value": s.value,
                         "settings": s.settings}
                        for s in plan
                    ],
                }
                for ctx, plan in plans
            ],
            indent=2, sort_keys=True,
        ))
        return 0
    for ctx, plan in plans:
        print(f"context: {_context_label(ctx)}  ({len(plan)} runs)")
        for s in plan:
            what = "baseline" if s.knob is None else f"{s.knob}={s.value!r}"
            print(f"  {s.id}  {what}")
    return 0


def run_run(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune run",
        description="Execute the ablation sweep (resumable; repeats skipped).",
    )
    _add_common(parser)
    parser.add_argument(
        "--file", default=DEFAULT_ABLATIONS_FILE,
        help="ablation results JSON (default benchmarks/BENCH_ablations.json)",
    )
    parser.add_argument(
        "--spill-dir", default=None,
        help="spill directory for the measurement sorts (default: a "
        "temporary directory per run)",
    )
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)
    say = (lambda msg: None) if args.json else print
    sweeps = []
    try:
        for ctx in _contexts(args):
            say(f"sweep: {_context_label(ctx)}")
            sweeps.append(run_sweep(
                ctx, path=args.file, spill_dir=args.spill_dir,
                timeout=args.timeout, log=say,
            ))
    except AblationError as exc:
        print(f"ablation failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(sweeps, indent=2, sort_keys=True))
    else:
        print()
        print(_render_report(load_ablations(args.file)))
    return 0


def _render_report(doc: dict) -> str:
    lines = []
    for sweep in doc.get("sweeps", []):
        lines.append(f"context: {_context_label(sweep['context'])}")
        ranking = sweep.get("ranking", [])
        if not ranking:
            lines.append("  (no complete knob measurements yet)")
            continue
        lines.append(
            f"  {'knob':<20}{'importance':>11}{'baseline':>10}"
            f"{'best':>10}{'gain':>8}"
        )
        for row in ranking:
            lines.append(
                f"  {row['knob']:<20}{row['importance']:>10.1%} "
                f"{row['baseline_value']!r:>9}{row['best_value']!r:>10}"
                f"{row['best_gain']:>8.1%}"
            )
    return "\n".join(lines) if lines else "no sweeps recorded"


def run_report(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune report",
        description="Print the importance-ranked knob report.",
    )
    parser.add_argument("--file", default=DEFAULT_ABLATIONS_FILE)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    try:
        doc = load_ablations(args.file)
    except AblationError as exc:
        print(f"bad ablation file: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_render_report(doc))
    return 0


def run_suggest(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune suggest",
        description="What knob settings would the auto-tuner pick for a "
        "job of this shape?",
    )
    parser.add_argument("--data-mib", type=float, required=True)
    parser.add_argument("--memory-mib", type=float, default=8.0)
    parser.add_argument(
        "--transport", choices=("pipe", "tcp", "shm"), default="pipe"
    )
    parser.add_argument(
        "--algo", choices=("canonical", "striped", "guidesort"),
        default="canonical",
    )
    parser.add_argument(
        "--records", choices=("fixed16", "string"), default="fixed16"
    )
    parser.add_argument("--file", default=DEFAULT_ABLATIONS_FILE)
    parser.add_argument(
        "--min-gain", type=float, default=DEFAULT_MIN_GAIN,
        help="minimum end-to-end gain before a knob is suggested "
        "(default 0.05)",
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    try:
        policy = TuningPolicy.from_file(
            args.file, min_gain=args.min_gain, strict=True
        )
    except AblationError as exc:
        print(f"bad ablation file: {exc}", file=sys.stderr)
        return 1
    knobs = policy.suggest(
        data_mib=args.data_mib, memory_mib=args.memory_mib,
        transport=args.transport, algo=args.algo, records=args.records,
    )
    if args.json:
        print(json.dumps({"knobs": knobs}, indent=2, sort_keys=True))
    elif not knobs:
        print("no suggestions (defaults are best, or no matching sweep)")
    else:
        for name in sorted(knobs):
            print(f"{name} = {knobs[name]!r}")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    commands = {
        "plan": run_plan,
        "run": run_run,
        "report": run_report,
        "suggest": run_suggest,
    }
    if not argv or argv[0] not in commands:
        print(
            "usage: python -m repro tune {plan,run,report,suggest} ... "
            "(see docs/TUNING.md)",
            file=sys.stderr,
        )
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
