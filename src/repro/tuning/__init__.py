"""Ablation driver + auto-tuning policy (ROADMAP item 5).

Three layers:

* :mod:`repro.tuning.knobs` — the tunable knob space as typed specs
  with ``(records, algo, transport)`` applicability gates;
* :mod:`repro.tuning.ablation` — deterministic one-knob-varied run
  plans (content-hashed run IDs, resume-by-skip), executed through the
  ``benchmarks/bench_native.py`` measurement path, ranked into
  ``benchmarks/BENCH_ablations.json``;
* :mod:`repro.tuning.policy` — ``(sizing, transport, algo, records)
  -> knob settings`` lookup consumed by the sort service at admission.

CLI: ``python -m repro tune {plan,run,report,suggest}``.
"""

from .ablation import (
    ABLATION_SCHEMA,
    DEFAULT_ABLATIONS_FILE,
    FULL_CONTEXTS,
    QUICK_CONTEXTS,
    AblationError,
    RunSpec,
    load_ablations,
    plan_sweep,
    rank_knobs,
    run_id,
    run_sweep,
    save_ablations,
)
from .knobs import (
    CONTEXT_FIELDS,
    KNOBS,
    SUGGESTABLE_KNOBS,
    Knob,
    applicable_knobs,
    knob_by_name,
)
from .policy import DEFAULT_MIN_GAIN, TuningPolicy, suggest_job_knobs

__all__ = [
    "ABLATION_SCHEMA",
    "DEFAULT_ABLATIONS_FILE",
    "FULL_CONTEXTS",
    "QUICK_CONTEXTS",
    "AblationError",
    "RunSpec",
    "load_ablations",
    "plan_sweep",
    "rank_knobs",
    "run_id",
    "run_sweep",
    "save_ablations",
    "CONTEXT_FIELDS",
    "KNOBS",
    "SUGGESTABLE_KNOBS",
    "Knob",
    "applicable_knobs",
    "knob_by_name",
    "DEFAULT_MIN_GAIN",
    "TuningPolicy",
    "suggest_job_knobs",
]
