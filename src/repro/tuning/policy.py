"""Auto-tuner policy: distilled ablation data -> per-job knob settings.

:class:`TuningPolicy` reads the ablation document
(``benchmarks/BENCH_ablations.json``) and answers one question: *for a
job shaped like this, which knobs should be set to what?*

The lookup key is ``(data_mib, memory_mib, transport, algo, records)``:

* ``transport`` / ``algo`` / ``records`` must match a sweep's context
  **exactly** — knob gates differ across them (an shm ring size means
  nothing to a pipe job), so interpolating across identity axes would
  suggest invalid or meaningless settings;
* ``data_mib`` / ``memory_mib`` pick the **nearest sweep by sizing**
  (log-scale distance, since knob behaviour tracks ratios like N/M,
  not absolute bytes).

Suggestions are **conservative by construction**:

* only knobs whose best variant beat the sweep's baseline by at least
  ``min_gain`` (default 5%) end-to-end are suggested — noise-level
  deltas keep the defaults;
* only :data:`~repro.tuning.knobs.SUGGESTABLE_KNOBS` are ever
  suggested (identity axes are the lookup key, never a suggestion);
* no matching sweep, a missing file, or a malformed file mean **no
  suggestions at all** — the fallback is always the defaults the
  system has run on since PR 1, never an extrapolation.

:func:`suggest_job_knobs` is the service-facing entry: given a client
spec dict, it returns the knob assignments for keys the client left
unset.  Explicit user values always win — the function never returns a
key present in the spec.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from .ablation import (
    ABLATION_SCHEMA,
    DEFAULT_ABLATIONS_FILE,
    AblationError,
    load_ablations,
)
from .knobs import SUGGESTABLE_KNOBS

__all__ = ["TuningPolicy", "suggest_job_knobs", "DEFAULT_MIN_GAIN"]

#: Minimum end-to-end relative gain before a knob earns a suggestion.
DEFAULT_MIN_GAIN = 0.05

#: Spec keys whose defaults shape the lookup when the client omits them
#: (mirrors repro.service.jobs.SPEC_FIELDS defaults).
_LOOKUP_DEFAULTS = {
    "data_mib": 1.0,
    "memory_mib": 8.0,
    "transport": "pipe",
    "algo": "canonical",
    "records": "fixed16",
}


class TuningPolicy:
    """Nearest-sizing knob lookup over an ablation document."""

    def __init__(self, doc: Optional[dict] = None,
                 min_gain: float = DEFAULT_MIN_GAIN):
        doc = doc or {"schema": ABLATION_SCHEMA, "sweeps": []}
        self._sweeps = [
            sweep for sweep in doc.get("sweeps", [])
            if isinstance(sweep, dict)
            and isinstance(sweep.get("context"), dict)
            and isinstance(sweep.get("ranking"), list)
        ]
        self.min_gain = float(min_gain)

    @classmethod
    def from_file(cls, path: str = DEFAULT_ABLATIONS_FILE,
                  min_gain: float = DEFAULT_MIN_GAIN,
                  strict: bool = False) -> "TuningPolicy":
        """Load a policy; a missing/bad file yields an *empty* policy
        (suggesting nothing) unless ``strict``."""
        try:
            return cls(load_ablations(path), min_gain=min_gain)
        except AblationError:
            if strict:
                raise
            return cls(None, min_gain=min_gain)

    @property
    def n_sweeps(self) -> int:
        return len(self._sweeps)

    def _nearest_sweep(self, data_mib: float, memory_mib: float,
                       transport: str, algo: str,
                       records: str) -> Optional[dict]:
        best, best_dist = None, None
        for sweep in self._sweeps:
            ctx = sweep["context"]
            if (
                ctx.get("transport") != transport
                or ctx.get("algo") != algo
                or ctx.get("records") != records
            ):
                continue
            try:
                dist = abs(
                    math.log(max(data_mib, 1e-9) / ctx["data_mib"])
                ) + abs(
                    math.log(max(memory_mib, 1e-9) / ctx["memory_mib"])
                )
            except (KeyError, TypeError, ValueError, ZeroDivisionError):
                continue
            if best_dist is None or dist < best_dist:
                best, best_dist = sweep, dist
        return best

    def suggest(self, data_mib: float, memory_mib: float,
                transport: str = "pipe", algo: str = "canonical",
                records: str = "fixed16") -> Dict[str, object]:
        """Knob settings for a job of this shape (may be empty)."""
        sweep = self._nearest_sweep(
            data_mib, memory_mib, transport, algo, records
        )
        if sweep is None:
            return {}
        out: Dict[str, object] = {}
        for row in sweep["ranking"]:
            name = row.get("knob")
            if name not in SUGGESTABLE_KNOBS:
                continue
            gain = row.get("best_gain", 0.0)
            if not isinstance(gain, (int, float)) or gain < self.min_gain:
                continue
            if row.get("best_value") == row.get("baseline_value"):
                continue
            out[name] = row["best_value"]
        return out


def suggest_job_knobs(
    spec: dict, policy: Optional[TuningPolicy]
) -> Dict[str, object]:
    """Fill-in knobs for a service spec: only keys the client left unset.

    The lookup context is taken from the spec where present and from
    the service defaults where not — so a client that only says
    ``{"data_mib": 64, "transport": "shm"}`` is looked up as an shm
    canonical fixed16 job of 64 MiB/worker.  Keys already in ``spec``
    are never returned: explicit user values always win.
    """
    if policy is None:
        return {}
    lookup = {
        key: spec.get(key, default)
        for key, default in _LOOKUP_DEFAULTS.items()
    }
    suggested = policy.suggest(
        data_mib=float(lookup["data_mib"]),
        memory_mib=float(lookup["memory_mib"]),
        transport=str(lookup["transport"]),
        algo=str(lookup["algo"]),
        records=str(lookup["records"]),
    )
    return {k: v for k, v in suggested.items() if k not in spec}
