"""SortBenchmark records: a gensort/valsort work-alike.

The SortBenchmark (Jim Gray's benchmark, sortbenchmark.org) fixes the
record format the paper's headline results use: 100-byte records with a
10-byte key.  The official ``gensort`` tool generates records
deterministically from the record index; ``valsort`` validates order,
count and a checksum.  This module reproduces those semantics:

* records are a pure function of ``(seed, index)`` — any sub-range can be
  generated independently, exactly like gensort's skip-ahead;
* keys are uniform random 10-byte strings ("Indy" rules); the simulation
  carries the leading 8 bytes as its uint64 key, which orders identically
  for the benchmark's uniform keys up to ties that the remaining 2 bytes
  would break with probability 2⁻⁶⁴ per pair;
* a duplicate-heavy "daytona-skew" mode exercises the Daytona category's
  requirement to survive arbitrary key distributions.

The byte-level record materialization (:func:`record_bytes`) exists for
the examples and round-trip tests; the cluster-scale benchmarks only
carry the keys plus represented byte volumes, per the scaling discipline.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..cluster.cluster import Cluster
from ..core.config import SortConfig
from ..em.block import BID
from ..em.context import ExternalMemory
from ..records.element import ELEM_SORTBENCH_100B

__all__ = [
    "RECORD_BYTES",
    "KEY_BYTES",
    "record_keys",
    "record_key_bytes",
    "record_bytes",
    "record_checksum",
    "generate_gensort_input",
]

RECORD_BYTES = 100
KEY_BYTES = 10

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 mix function (uint64 -> uint64)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK
        z = x
        z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
        z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
        z = z ^ (z >> np.uint64(31))
    return z


def _mix(seed: int, indices: np.ndarray, stream: int) -> np.ndarray:
    base = np.uint64((seed * 0x9E3779B97F4A7C15 + stream * 0xD1B54A32D192ED03)
                     & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        return _splitmix64(indices.astype(np.uint64) ^ base)


def record_keys(
    start: int, count: int, seed: int = 0, skew: bool = False
) -> np.ndarray:
    """Leading-8-byte keys of records ``start .. start+count-1``.

    ``skew=True`` produces the duplicate-heavy distribution used to mimic
    Daytona-category adversity (a few thousand distinct keys).
    """
    if count < 0:
        raise ValueError(f"negative record count {count}")
    idx = np.arange(start, start + count, dtype=np.uint64)
    keys = _mix(seed, idx, stream=1)
    if skew:
        keys = keys % np.uint64(4096)
    return keys


def record_key_bytes(start: int, count: int, seed: int = 0) -> np.ndarray:
    """The full 10-byte keys as a ``(count, 10)`` uint8 array."""
    idx = np.arange(start, start + count, dtype=np.uint64)
    hi = _mix(seed, idx, stream=1)  # leading 8 bytes (big-endian order)
    lo = _mix(seed, idx, stream=2)  # trailing 2 bytes
    out = np.empty((count, KEY_BYTES), dtype=np.uint8)
    out[:, :8] = hi.byteswap().view(np.uint8).reshape(count, 8)
    out[:, 8] = (lo & np.uint64(0xFF)).astype(np.uint8)
    out[:, 9] = ((lo >> np.uint64(8)) & np.uint64(0xFF)).astype(np.uint8)
    return out


def record_bytes(start: int, count: int, seed: int = 0) -> np.ndarray:
    """Full 100-byte records as a ``(count, 100)`` uint8 array.

    Layout mirrors gensort's ASCII records: 10 key bytes, then a 32-digit
    zero-padded record number, then filler derived from the index.
    """
    out = np.zeros((count, RECORD_BYTES), dtype=np.uint8)
    out[:, :KEY_BYTES] = record_key_bytes(start, count, seed)
    numbers = np.array(
        [list(f"{i:032d}".encode()) for i in range(start, start + count)],
        dtype=np.uint8,
    ).reshape(count, 32) if count else np.zeros((0, 32), np.uint8)
    out[:, KEY_BYTES : KEY_BYTES + 32] = numbers
    filler = _mix(seed, np.arange(start, start + count, dtype=np.uint64), stream=3)
    for j in range(7):
        out[:, KEY_BYTES + 32 + 8 * j : KEY_BYTES + 32 + 8 * (j + 1)] = (
            filler.byteswap().view(np.uint8).reshape(count, 8)
        )
    out[:, 98:] = ord("\r"), ord("\n")
    return out


def record_checksum(start: int, count: int, seed: int = 0) -> int:
    """Order-independent checksum of a record range (valsort-style)."""
    keys = record_keys(start, count, seed)
    with np.errstate(over="ignore"):
        return int(np.bitwise_and(np.add.reduce(keys) if count else np.uint64(0), _MASK))


def generate_gensort_input(
    cluster: Cluster,
    config: SortConfig,
    seed: int = 0,
    skew: bool = False,
) -> Tuple[ExternalMemory, List[List[BID]]]:
    """Place SortBenchmark records across the cluster.

    Node ``rank`` holds records ``rank·(N/P) .. (rank+1)·(N/P)−1`` in
    index order (unsorted keys), matching the benchmark's on-disk input.
    The config should use the 100-byte element type.
    """
    if config.element is not ELEM_SORTBENCH_100B:
        raise ValueError("gensort input requires the 100-byte SortBenchmark element")
    em = ExternalMemory(cluster, config.block_bytes, config.block_elems)
    inputs: List[List[BID]] = []
    n = config.keys_per_node
    be = config.block_elems
    for rank in range(cluster.n_nodes):
        keys = record_keys(rank * n, n, seed=seed, skew=skew)
        store = em.store(rank)
        blocks: List[BID] = []
        for s in range(0, n, be):
            bid = store.allocate()
            store.store_without_io(bid, keys[s : s + be])
            blocks.append(bid)
        inputs.append(blocks)
    return em, inputs


def reconstruct_sorted_records(
    sorted_keys: np.ndarray, total_records: int, seed: int = 0
) -> np.ndarray:
    """Materialize the full 100-byte records for a sorted key stream.

    The benchmark's records are a pure function of their index, so after
    sorting the (leading-8-byte) keys the full records — including the
    trailing 2 key bytes and the 90-byte payload — can be regenerated and
    emitted in key order.  Returns a ``(len(sorted_keys), 100)`` uint8
    array whose rows are in non-decreasing 10-byte-key order.

    Demo-scale only (it regenerates the whole key table to invert the
    key -> index mapping); the cluster-scale benchmarks carry keys plus
    represented volumes instead.
    """
    all_keys = record_keys(0, total_records, seed=seed)
    order = np.argsort(all_keys, kind="stable")
    table_keys = all_keys[order]
    # Locate each sorted output key; duplicates resolve in index order,
    # matching the sort's (key, position) tie-breaking.
    starts = np.searchsorted(table_keys, sorted_keys, side="left")
    seen: dict = {}
    indices = np.empty(len(sorted_keys), dtype=np.int64)
    for i, start in enumerate(starts):
        key = int(sorted_keys[i])
        offset = seen.get(key, 0)
        seen[key] = offset + 1
        indices[i] = order[start + offset]
    out = np.empty((len(sorted_keys), RECORD_BYTES), dtype=np.uint8)
    for i, idx in enumerate(indices):
        out[i] = record_bytes(int(idx), 1, seed=seed)[0]
    return out


def valsort_records(records: np.ndarray) -> bool:
    """valsort's record-level check: 10-byte keys non-decreasing."""
    if len(records) < 2:
        return True
    keys = records[:, :KEY_BYTES]
    prev = bytes(keys[0])
    for row in keys[1:]:
        cur = bytes(row)
        if cur < prev:
            return False
        prev = cur
    return True
