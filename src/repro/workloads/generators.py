"""Input workload generators.

The paper's experiments distinguish two input regimes:

* **random** input — uniformly distributed keys; every run already has a
  similar distribution, so redistribution is nearly free (Figure 2);
* **worst-case** input — constructed so that, without randomization,
  consecutive local blocks carry a narrow key range: the r-th chunk of
  every PE then forms a run covering only a thin global key slice, and
  almost all data must move in the external all-to-all (Figures 4-6).
  Locally sorting each node's uniformly drawn keys across its blocks
  achieves exactly this.

Additional generators (skewed, duplicate-heavy, globally pre-sorted,
reverse-sorted) exercise the robustness claims: exact splitting keeps the
output perfectly balanced regardless of distribution, the property the
NOW-Sort baseline lacks.

Every generator places its blocks through
:meth:`~repro.em.blockmanager.BlockStore.store_without_io` — the input
exists on disk before the clock starts, as the sort benchmark rules
require.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from ..cluster.cluster import Cluster
from ..em.block import BID
from ..em.context import ExternalMemory
from ..records.element import KEY_DTYPE
from ..core.config import SortConfig

__all__ = ["generate_input", "WORKLOADS", "input_keys"]

#: Key domain: full 64-bit range keeps duplicate probability negligible
#: for the random workloads while duplicate-heavy generators force ties.
_KEY_HIGH = np.uint64(2 ** 63)


def _random_keys(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.integers(0, _KEY_HIGH, n, dtype=np.uint64)


def _gen_random(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Uniformly random keys (the paper's random input)."""
    return _random_keys(rng, n)


def _gen_worstcase(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Locally sorted keys: adversarial for non-randomized run formation."""
    return np.sort(_random_keys(rng, n))


def _slice_bounds(index: int, n_nodes: int) -> tuple:
    """Key range of the ``index``-th of ``n_nodes`` equal domain slices."""
    width = int(_KEY_HIGH)
    return (index * width // n_nodes, (index + 1) * width // n_nodes)


def _gen_sorted(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Globally sorted input: node ``rank`` holds the rank-th key slice."""
    lo, hi = _slice_bounds(rank, n_nodes)
    return np.sort(rng.integers(lo, hi, n, dtype=np.uint64))


def _gen_reversed(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Globally *reverse* sorted: every element must cross the machine."""
    lo, hi = _slice_bounds(n_nodes - 1 - rank, n_nodes)
    return np.sort(rng.integers(lo, hi, n, dtype=np.uint64))[::-1].copy()


def _gen_skewed(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Heavily skewed (Zipf-flavoured) keys: most mass near zero."""
    exponent = rng.pareto(1.1, n)
    keys = np.minimum(exponent * 1e15, float(_KEY_HIGH) - 1).astype(np.uint64)
    return keys


def _gen_duplicates(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Tiny key domain: massive duplication stresses exact tie-breaking."""
    return rng.integers(0, 8, n, dtype=np.uint64)


def _gen_allequal(rng: np.random.Generator, n: int, rank: int, n_nodes: int) -> np.ndarray:
    """Degenerate single-key input."""
    return np.full(n, 42, dtype=np.uint64)


WORKLOADS: Dict[str, Callable] = {
    "random": _gen_random,
    "worstcase": _gen_worstcase,
    "sorted": _gen_sorted,
    "reversed": _gen_reversed,
    "skewed": _gen_skewed,
    "duplicates": _gen_duplicates,
    "allequal": _gen_allequal,
}


def generate_input(
    cluster: Cluster,
    config: SortConfig,
    kind: str = "random",
    seed: int = None,
) -> Tuple[ExternalMemory, List[List[BID]]]:
    """Create the external-memory context and place the input blocks.

    Returns ``(em, inputs)`` where ``inputs[rank]`` lists the block IDs of
    node ``rank``'s input, in on-disk order.  Each node receives exactly
    ``config.keys_per_node`` keys chopped into ``config.block_elems``-key
    blocks striped round-robin over its disks.
    """
    if kind not in WORKLOADS:
        raise ValueError(f"unknown workload {kind!r}; choose from {sorted(WORKLOADS)}")
    gen = WORKLOADS[kind]
    seed = config.seed if seed is None else seed
    em = ExternalMemory(cluster, config.block_bytes, config.block_elems)
    inputs: List[List[BID]] = []
    n = config.keys_per_node
    be = config.block_elems
    for rank in range(cluster.n_nodes):
        kind_tag = int.from_bytes(kind.encode()[:4].ljust(4, b"\0"), "little")
        rng = np.random.default_rng((seed, kind_tag, rank))
        keys = np.ascontiguousarray(gen(rng, n, rank, cluster.n_nodes), dtype=KEY_DTYPE)
        if len(keys) != n:
            raise AssertionError(f"workload {kind} produced {len(keys)} != {n} keys")
        store = em.store(rank)
        blocks: List[BID] = []
        for start in range(0, n, be):
            bid = store.allocate()
            store.store_without_io(bid, keys[start : start + be])
            blocks.append(bid)
        inputs.append(blocks)
    return em, inputs


def input_keys(em: ExternalMemory, inputs: List[List[BID]]) -> List[np.ndarray]:
    """Materialize each node's input keys (validation only, no I/O)."""
    out = []
    for rank, blocks in enumerate(inputs):
        store = em.store(rank)
        if blocks:
            out.append(np.concatenate([store.peek(bid) for bid in blocks]))
        else:
            out.append(np.empty(0, dtype=KEY_DTYPE))
    return out
