"""Workload generators, gensort-style records and output validation."""

from .generators import WORKLOADS, generate_input, input_keys
from .validation import ValidationReport, validate_output

__all__ = [
    "WORKLOADS",
    "generate_input",
    "input_keys",
    "ValidationReport",
    "validate_output",
]
