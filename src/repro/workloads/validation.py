"""Output validation (the SortBenchmark's ``valsort`` contract).

A sort is accepted when

* every node's output is non-decreasing,
* node boundaries are ordered (last key of PE i ≤ first key of PE i+1),
* PE i holds exactly the elements of ranks (i−1)·N/P+1 .. i·N/P
  (the canonical balance property of the paper's output specification),
* the key multiset is conserved: element count and an order-independent
  checksum match the input (duplicate-insensitive up to 64-bit sum
  collisions, like valsort's).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..records.arrays import checksum, is_sorted

__all__ = ["ValidationReport", "validate_output"]


@dataclass
class ValidationReport:
    """Result of validating a distributed sorted output."""

    ok: bool
    issues: List[str]
    total_keys: int
    checksum: int

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError("output validation failed: " + "; ".join(self.issues))


def validate_output(
    input_parts: List[np.ndarray],
    output_parts: List[np.ndarray],
    balanced: bool = True,
) -> ValidationReport:
    """Validate sorted ``output_parts`` (per rank) against ``input_parts``.

    ``balanced=True`` additionally enforces the canonical exact-quantile
    output sizes (skip for baselines without that guarantee, e.g.
    NOW-Sort on skewed inputs).
    """
    issues: List[str] = []
    n_in = sum(len(p) for p in input_parts)
    n_out = sum(len(p) for p in output_parts)
    if n_in != n_out:
        issues.append(f"count mismatch: {n_in} in, {n_out} out")

    for rank, part in enumerate(output_parts):
        if not is_sorted(part):
            issues.append(f"rank {rank} output is not sorted")

    last = None
    for rank, part in enumerate(output_parts):
        if len(part) == 0:
            continue
        if last is not None and part[0] < last:
            issues.append(f"boundary violation between rank {rank - 1} and {rank}")
        last = part[-1]

    if balanced and n_in == n_out and output_parts:
        n_nodes = len(output_parts)
        for rank, part in enumerate(output_parts):
            want = (rank + 1) * n_out // n_nodes - rank * n_out // n_nodes
            if len(part) != want:
                issues.append(
                    f"rank {rank} holds {len(part)} keys, canonical share is {want}"
                )

    sum_in = 0
    sum_out = 0
    for p in input_parts:
        sum_in = (sum_in + checksum(p)) & 0xFFFFFFFFFFFFFFFF
    for p in output_parts:
        sum_out = (sum_out + checksum(p)) & 0xFFFFFFFFFFFFFFFF
    if sum_in != sum_out:
        issues.append(f"checksum mismatch: {sum_in:#x} in, {sum_out:#x} out")

    # Strong multiset equality (feasible at simulation scale; valsort can
    # only afford the checksum, we can afford the whole truth).
    if n_in == n_out and not issues:
        all_in = np.sort(np.concatenate([p for p in input_parts if len(p)])) \
            if n_in else np.empty(0)
        all_out = np.concatenate([p for p in output_parts if len(p)]) \
            if n_out else np.empty(0)
        if not np.array_equal(all_in, all_out):
            issues.append("output is not a permutation of the input")

    return ValidationReport(
        ok=not issues,
        issues=issues,
        total_keys=n_out,
        checksum=sum_out,
    )
