"""Streaming k-way merge built on the loser tree.

This is the element-wise reference merge (used by tests and by the
internal merging of small sequences); the bulk data plane uses the
vectorized batch merge in :mod:`repro.records.arrays`, which the paper
explicitly allows ("we could even afford to replace batch merging by
fully-fledged parallel sorting of batches").
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

from ..records.element import KEY_DTYPE
from .losertree import LoserTree

__all__ = ["merge_iterables", "merge_arrays"]


def merge_iterables(sources: Sequence[Iterable]) -> Iterator:
    """Lazily merge sorted iterables into one sorted stream.

    Stable across sources: ties are emitted in source order (the package's
    canonical (key, sequence) tie-breaking).
    """
    iterators: List[Iterator] = [iter(s) for s in sources]
    if not iterators:
        return
    tree = LoserTree(len(iterators))
    for i, it in enumerate(iterators):
        first = next(it, None)
        if first is None:
            tree.exhaust(i)
        else:
            tree.push(i, first)
    while True:
        popped = tree.pop_winner()
        if popped is None:
            return
        source, key, _value = popped
        yield key
        nxt = next(iterators[source], None)
        if nxt is None:
            tree.exhaust(source)
        else:
            tree.push(source, nxt)


def merge_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise loser-tree merge of sorted key arrays (reference)."""
    merged = list(merge_iterables([a.tolist() for a in arrays]))
    return np.asarray(merged, dtype=KEY_DTYPE) if merged else np.empty(0, KEY_DTYPE)
