"""Exact multiway selection (paper Section IV-A and Appendix B).

Given R sorted sequences, *multiway selection* finds the element of global
rank ``r`` together with splitter positions ``p_j`` that partition every
sequence with respect to that element: ``sum(p_j) == r`` and every element
left of a splitter precedes every element right of one.  Ties are broken
by (key, sequence, position), making the partition unique.

The algorithm is the paper's step-size-halving search: splitter positions
start at 0 (or at sample-derived positions, Appendix B) with step ``s``;
while fewer than ``r`` elements lie left of the splitters, the splitter
whose *next* element is smallest advances by ``s``; then ``s`` is halved
and splitters whose *previous* element is largest retreat by ``s`` while
more than ``r`` elements lie left.  After the ``s = 1`` round the count is
exact; a final swap loop restores the partition property (it runs zero
times on the paths the geometric search already fixed, and guarantees
exactness unconditionally).  The number of sequence elements touched is
O(R log M) from a cold start and O(R log B) from a sample start.

The core is written as an *effect coroutine*: it yields ``(sequence,
position)`` probe requests and is sent back raw keys.  The in-memory
driver (:func:`multiway_select`) answers from arrays; the external driver
in :mod:`repro.core.selection_phase` answers by performing (cached,
possibly remote) block I/O on the simulated cluster.  One implementation,
two execution environments.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SelectionResult",
    "select_coroutine",
    "multiway_select",
    "sample_initial_positions",
]


@dataclass
class SelectionResult:
    """Outcome of a multiway selection."""

    #: Splitter position per sequence; ``sum(positions) == rank``.
    positions: List[int]
    #: Number of distinct sequence elements probed.
    touches: int
    #: The largest element left of the splitters as a ``(key, seq, pos)``
    #: triple, or None when ``rank == 0``.
    boundary: Optional[Tuple[int, int, int]]
    #: Corrective swaps the final fixup loop performed (0 whenever the
    #: geometric search already landed on the exact partition).
    fixup_swaps: int = 0


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def select_coroutine(
    lengths: Sequence[int],
    rank: int,
    init_positions: Optional[Sequence[int]] = None,
    init_step: Optional[int] = None,
) -> Generator[Tuple[int, int], int, SelectionResult]:
    """The selection algorithm as a probe coroutine.

    Yields ``(sequence, position)`` probe requests; must be sent the raw
    integer key at that position.  Returns a :class:`SelectionResult`.
    """
    lengths = [int(n) for n in lengths]
    n_seqs = len(lengths)
    if n_seqs == 0:
        raise ValueError("need at least one sequence")
    for n in lengths:
        if n < 0:
            raise ValueError(f"negative sequence length {n}")
    total = sum(lengths)
    if not 0 <= rank <= total:
        raise ValueError(f"rank {rank} outside 0..{total}")

    # Trivial ranks need no probes at all.
    if rank == 0:
        return SelectionResult([0] * n_seqs, 0, None)
    if rank == total:
        # boundary = global maximum; not needed by callers for this case.
        return SelectionResult(list(lengths), 0, None)

    if init_positions is None:
        positions = [0] * n_seqs
    else:
        positions = [min(max(0, int(p)), lengths[j]) for j, p in enumerate(init_positions)]
    step = init_step if init_step is not None else _next_pow2(max(lengths))
    if step < 1:
        raise ValueError(f"init_step must be >= 1, got {init_step}")

    memo = {}

    def probe(j: int, pos: int):
        """Key triple at (j, pos); yields an I/O request on memo miss."""
        cached = memo.get((j, pos))
        if cached is None:
            raw = yield (j, pos)
            cached = (int(raw), j, pos)
            memo[(j, pos)] = cached
        return cached

    # Lazy heaps over the elements adjacent to the splitters.
    right_heap: List[Tuple[Tuple[int, int, int], int, int]] = []  # (key, j, pos)
    left_heap: List[Tuple[Tuple[int, int, int], int, int]] = []  # (negated key, j, pos)

    def arm(j: int):
        """(Re)register sequence j's boundary-adjacent elements."""
        pos = positions[j]
        if pos < lengths[j]:
            key = yield from probe(j, pos)
            heapq.heappush(right_heap, (key, j, pos))
        if pos > 0:
            key = yield from probe(j, pos - 1)
            k, jj, pp = key
            heapq.heappush(left_heap, ((-k, -jj, -pp), j, pos))

    for j in range(n_seqs):
        yield from arm(j)

    def min_right() -> Optional[int]:
        """Sequence whose next (right-of-splitter) element is smallest."""
        while right_heap:
            _key, j, pos = right_heap[0]
            if positions[j] == pos and pos < lengths[j]:
                return j
            heapq.heappop(right_heap)
        return None

    def max_left() -> Optional[int]:
        """Sequence whose last (left-of-splitter) element is largest."""
        while left_heap:
            _key, j, pos = left_heap[0]
            if positions[j] == pos and pos > 0:
                return j
            heapq.heappop(left_heap)
        return None

    count = sum(positions)
    # Generous safety bound: geometric rounds touch O(R log M) elements,
    # the fixup loop is linear in displacement; runaway means a bug.
    budget = 64 * (n_seqs + 4) * (2 + int(np.log2(max(2, step)))) + 8 * total + 1024

    def move(j: int, delta: int):
        positions[j] += delta
        yield from arm(j)

    def charge():
        nonlocal budget
        budget -= 1
        if budget < 0:
            raise AssertionError("multiway selection exceeded its work budget")

    def increase(s: int):
        """Advance the smallest-next splitter by ``s`` until count > rank."""
        nonlocal count
        while count <= rank:
            j = min_right()
            assert j is not None, "increase phase ran out of elements"
            delta = min(s, lengths[j] - positions[j])
            yield from move(j, delta)
            count += delta
            charge()

    def decrease(s: int):
        """Retreat the largest-previous splitter by ``s`` while count > rank."""
        nonlocal count
        while count > rank:
            j = max_left()
            assert j is not None, "decrease phase ran out of elements"
            delta = min(s, positions[j])
            yield from move(j, -delta)
            count -= delta
            charge()

    # The paper's alternation: grow with step s, halve, shrink, repeat,
    # finishing with unit steps so the count lands exactly on ``rank``.
    yield from increase(step)
    while step > 1:
        step //= 2
        yield from decrease(step)
        yield from increase(step)
    yield from decrease(1)

    # Fixup: enforce the partition property by swapping extremal elements.
    swaps = 0
    while True:
        ja = max_left()
        jb = min_right()
        if ja is None or jb is None:
            break
        a_key = memo[(ja, positions[ja] - 1)]
        b_key = memo[(jb, positions[jb])]
        if a_key < b_key:
            break
        yield from move(ja, -1)
        yield from move(jb, +1)
        swaps += 1
        charge()

    ja = max_left()
    boundary = memo[(ja, positions[ja] - 1)] if ja is not None else None
    return SelectionResult(list(positions), len(memo), boundary, swaps)


def select_bisect_coroutine(
    lengths: Sequence[int],
    rank: int,
    lo: Optional[Sequence[int]] = None,
    hi: Optional[Sequence[int]] = None,
) -> Generator[Tuple[int, int], int, SelectionResult]:
    """Provably exact multiway selection by interval bisection.

    Maintains per-sequence intervals ``[lo_j, hi_j]`` bracketing the exact
    splitter positions.  Each round picks a pivot element (the middle of
    the widest interval), locates it in every sequence by binary search
    restricted to the intervals, and — depending on whether the pivot's
    global rank is above or below ``rank`` — clamps all intervals from one
    side.  Pivot monotonicity makes the clamps safe; the pivot's own
    interval at least halves, so the algorithm terminates in
    O(R log max_j M_j) rounds.

    This is the deterministic fallback behind the *scalable* selection of
    Appendix B: its probe count is worst-case bounded, independent of the
    input distribution, whereas the step-halving search of Section IV-A is
    a (much cheaper on average) heuristic search that the fixup loop makes
    exact.
    """
    lengths = [int(n) for n in lengths]
    n_seqs = len(lengths)
    total = sum(lengths)
    if not 0 <= rank <= total:
        raise ValueError(f"rank {rank} outside 0..{total}")
    if rank == 0:
        return SelectionResult([0] * n_seqs, 0, None)
    if rank == total:
        return SelectionResult(list(lengths), 0, None)

    los = [0] * n_seqs if lo is None else [max(0, int(x)) for x in lo]
    his = list(lengths) if hi is None else [min(lengths[j], int(x)) for j, x in enumerate(hi)]
    for j in range(n_seqs):
        if los[j] > his[j]:
            raise ValueError(f"empty bracket for sequence {j}: [{los[j]}, {his[j]}]")

    memo = {}

    def probe(j: int, pos: int):
        cached = memo.get((j, pos))
        if cached is None:
            raw = yield (j, pos)
            cached = (int(raw), j, pos)
            memo[(j, pos)] = cached
        return cached

    while True:
        widths = [his[j] - los[j] for j in range(n_seqs)]
        if sum(widths) == 0:
            break
        jp = max(range(n_seqs), key=lambda j: widths[j])
        mid = (los[jp] + his[jp]) // 2
        pivot = yield from probe(jp, mid)
        # Locate the pivot in every sequence: first position (within the
        # bracket) whose element is >= pivot in (key, seq, pos) order.
        cuts = [0] * n_seqs
        for j in range(n_seqs):
            a, b = los[j], his[j]
            while a < b:
                m = (a + b) // 2
                elem = yield from probe(j, m)
                if elem < pivot:
                    a = m + 1
                else:
                    b = m
            cuts[j] = a
        t = sum(cuts)
        if t >= rank:
            # Exact positions are <= the pivot cut everywhere.
            for j in range(n_seqs):
                his[j] = min(his[j], cuts[j])
        else:
            # The pivot itself belongs to the left part.
            for j in range(n_seqs):
                los[j] = max(los[j], cuts[j])
            los[jp] = max(los[jp], mid + 1)
        for j in range(n_seqs):
            if los[j] > his[j]:  # pragma: no cover - invariant guard
                raise AssertionError("bisection brackets crossed")

    positions = los
    boundary = None
    best = None
    for j in range(n_seqs):
        if positions[j] > 0:
            elem = yield from probe(j, positions[j] - 1)
            if best is None or elem > best:
                best = elem
    boundary = best
    return SelectionResult(list(positions), len(memo), boundary)


def multiway_select_bisect(
    seqs: List[np.ndarray],
    rank: int,
    lo: Optional[Sequence[int]] = None,
    hi: Optional[Sequence[int]] = None,
) -> SelectionResult:
    """Run the bisection selection against in-memory sorted arrays."""
    gen = select_bisect_coroutine([len(s) for s in seqs], rank, lo=lo, hi=hi)
    try:
        j, pos = next(gen)
        while True:
            j, pos = gen.send(int(seqs[j][pos]))
    except StopIteration as stop:
        return stop.value


def multiway_select(
    seqs: List[np.ndarray],
    rank: int,
    init_positions: Optional[Sequence[int]] = None,
    init_step: Optional[int] = None,
) -> SelectionResult:
    """Run the selection against in-memory sorted arrays."""
    gen = select_coroutine(
        [len(s) for s in seqs], rank, init_positions=init_positions, init_step=init_step
    )
    try:
        j, pos = next(gen)
        while True:
            j, pos = gen.send(int(seqs[j][pos]))
    except StopIteration as stop:
        return stop.value


def sample_initial_positions(
    samples: List[np.ndarray],
    sample_every: int,
    rank: int,
    lengths: Sequence[int],
) -> Tuple[List[int], int]:
    """Sample-based warm start (Appendix B).

    ``samples[j]`` holds every ``sample_every``-th element of sequence
    ``j`` (starting at position 0).  Returns initial splitter positions
    close to the exact ones and the matching initial step size
    (``sample_every``), so the selection only refines within one sample
    gap per sequence.
    """
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    n_seqs = len(samples)
    counts = [len(s) for s in samples]
    total_samples = sum(counts)
    if total_samples == 0 or rank == 0:
        return [0] * n_seqs, sample_every
    keys = np.concatenate([np.asarray(s) for s in samples if len(s)])
    runs = np.concatenate(
        [np.full(len(s), j, dtype=np.int64) for j, s in enumerate(samples) if len(s)]
    )
    idxs = np.concatenate(
        [np.arange(len(s), dtype=np.int64) for s in samples if len(s)]
    )
    order = np.lexsort((idxs, runs, keys))
    # The sample whose global element rank is closest below ``rank``.
    t = min(rank // sample_every, total_samples - 1)
    prefix = order[: t + 1]
    positions = [0] * n_seqs
    if t >= 0:
        run_counts = np.bincount(runs[prefix], minlength=n_seqs)
        for j in range(n_seqs):
            # Sample i sits at position i*K; including c samples of run j
            # places the splitter just after the c-th sample's position.
            c = int(run_counts[j])
            pos = 0 if c == 0 else (c - 1) * sample_every
            positions[j] = min(pos, int(lengths[j]))
    return positions, sample_every
