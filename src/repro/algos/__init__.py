"""Core algorithms: loser-tree merging and exact multiway selection."""

from .losertree import LoserTree
from .multiway_merge import merge_arrays, merge_iterables
from .replacement_selection import replacement_selection_runs, run_length_stats
from .multiway_selection import (
    SelectionResult,
    multiway_select,
    multiway_select_bisect,
    sample_initial_positions,
    select_bisect_coroutine,
    select_coroutine,
)

__all__ = [
    "LoserTree",
    "merge_arrays",
    "merge_iterables",
    "SelectionResult",
    "multiway_select",
    "multiway_select_bisect",
    "sample_initial_positions",
    "select_bisect_coroutine",
    "select_coroutine",
    "replacement_selection_runs",
    "run_length_stats",
]
