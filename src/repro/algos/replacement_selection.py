"""Replacement-selection run formation (Knuth §5.4.1; paper §VII).

The paper's outlook: "Run formation could perhaps be improved to allow
longer runs [14, Section 5.4.1].  The main effect is that by decreasing
the number of runs, we can further increase the block size."  This module
implements the classic *snow-plow* algorithm the citation refers to: a
heap of M elements streams the input into sorted runs whose expected
length on random input is **2·M** — halving R and therefore doubling the
affordable block size in the merge phase.

The well-known distribution-dependence is implemented faithfully and
tested: random input gives ~2M runs, already-sorted input gives one run
of length N, and reverse-sorted input degenerates to runs of exactly M.

Python-heapq note: the "current run" heap holds plain keys, elements for
the *next* run wait in a side list — equivalent to the classic two-epoch
tagging and simpler to verify.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List

import numpy as np

from ..records.element import KEY_DTYPE

__all__ = ["replacement_selection_runs", "run_length_stats"]


def replacement_selection_runs(
    keys: Iterable[int],
    memory: int,
) -> Iterator[np.ndarray]:
    """Split a key stream into sorted runs using ``memory`` heap slots.

    Yields each run as a sorted uint64 array.  Expected run length for
    random input is ``2 * memory`` (Knuth's snow-plow argument); at least
    ``memory`` for any input with enough remaining elements.
    """
    if memory < 1:
        raise ValueError(f"need at least one memory slot, got {memory}")
    stream = iter(keys)

    heap: List[int] = []
    for value in stream:
        heap.append(int(value))
        if len(heap) == memory:
            break
    heapq.heapify(heap)

    while heap:
        run: List[int] = []
        frozen: List[int] = []  # elements reserved for the next run
        while heap:
            smallest = heapq.heappop(heap)
            run.append(smallest)
            nxt = next(stream, None)
            if nxt is None:
                continue
            nxt = int(nxt)
            if nxt >= smallest:
                heapq.heappush(heap, nxt)  # still fits the current run
            else:
                frozen.append(nxt)  # would break sortedness: next run
        yield np.asarray(run, dtype=KEY_DTYPE)
        heap = frozen
        heapq.heapify(heap)


def run_length_stats(keys: Iterable[int], memory: int) -> dict:
    """Run-count/length summary for a stream (used by the ablation)."""
    lengths = [len(run) for run in replacement_selection_runs(keys, memory)]
    total = sum(lengths)
    return {
        "n_runs": len(lengths),
        "total_keys": total,
        "mean_run_length": total / len(lengths) if lengths else 0.0,
        "max_run_length": max(lengths) if lengths else 0,
        "min_run_length": min(lengths) if lengths else 0,
        "length_over_memory": (total / len(lengths) / memory) if lengths else 0.0,
    }
