"""Loser-tree priority structure for k-way merging.

The classic tournament tree used by multiway mergesort (Knuth TAOCP vol. 3,
and the MCSTL multiway merge the paper builds on): internal nodes store the
*loser* of the comparison between their subtrees, the overall winner sits
at the root.  Replacing the winner and replaying its path costs
``ceil(log2 k)`` comparisons.

Items are compared as ``(key, source)`` so the merge is stable across
sources — the same (key, sequence) tie-breaking the exact splitting uses.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = ["LoserTree"]

#: Sentinel larger than every real key tuple.
_INF = (float("inf"), float("inf"))


class LoserTree:
    """Tournament tree over ``k`` sources.

    Use :meth:`push` to provide the next item of a source (or mark it done
    with :meth:`exhaust`) and :meth:`pop_winner` to extract the minimum.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"need at least one source, got {k}")
        self.k = k
        size = 1
        while size < k:
            size *= 2
        self._size = size
        self._keys: List[Tuple] = [_INF] * size
        self._values: List[Any] = [None] * size
        self._exhausted = [i >= k for i in range(size)]
        self._loser: List[int] = [0] * size  # internal node -> losing leaf
        self._winner: Optional[int] = None
        self._initialized = False
        self._armed = [False] * size

    def push(self, source: int, key: Any, value: Any = None) -> None:
        """Provide the next item of ``source`` (must currently be empty)."""
        self._check_source(source)
        if self._armed[source]:
            raise RuntimeError(f"source {source} already holds an item")
        self._keys[source] = (key, source)
        self._values[source] = value
        self._armed[source] = True
        if self._initialized:
            self._replay(source)

    def exhaust(self, source: int) -> None:
        """Mark ``source`` as permanently empty."""
        self._check_source(source)
        if self._armed[source]:
            raise RuntimeError(f"source {source} still holds an item")
        self._exhausted[source] = True
        self._keys[source] = _INF
        if self._initialized:
            self._replay(source)

    @property
    def winner_source(self) -> Optional[int]:
        """Source of the current minimum, or None when all are exhausted."""
        self._ensure_ready()
        w = self._winner
        assert w is not None
        return None if self._keys[w] is _INF else w

    def pop_winner(self) -> Optional[Tuple[int, Any, Any]]:
        """Remove and return ``(source, key, value)`` of the minimum.

        The caller must then :meth:`push` the source's next item (or
        :meth:`exhaust` it) before the next pop.  Returns None when every
        source is exhausted.
        """
        self._ensure_ready()
        w = self._winner
        assert w is not None
        if self._keys[w] is _INF:
            return None
        key, _src = self._keys[w]
        value = self._values[w]
        self._keys[w] = _INF
        self._values[w] = None
        self._armed[w] = False
        return (w, key, value)

    # -- internals -----------------------------------------------------------

    def _check_source(self, source: int) -> None:
        if not 0 <= source < self.k:
            raise IndexError(f"source {source} out of range 0..{self.k - 1}")

    def _ensure_ready(self) -> None:
        for i in range(self.k):
            if not self._armed[i] and not self._exhausted[i]:
                raise RuntimeError(f"source {i} has no item and is not exhausted")
        if not self._initialized:
            self._full_rebuild()
            self._initialized = True

    def _full_rebuild(self) -> None:
        """Recompute all internal nodes from the leaves (O(k))."""
        size = self._size
        winner_of: List[int] = [0] * (2 * size)
        for leaf in range(size):
            winner_of[size + leaf] = leaf
        for node in range(size - 1, 0, -1):
            a = winner_of[2 * node]
            b = winner_of[2 * node + 1]
            if self._keys[a] <= self._keys[b]:
                win, lose = a, b
            else:
                win, lose = b, a
            winner_of[node] = win
            self._loser[node] = lose
        self._winner = winner_of[1]

    def _replay(self, leaf: int) -> None:
        """Replay matches from ``leaf`` to the root."""
        node = (self._size + leaf) // 2
        winner = leaf
        while node >= 1:
            contender = self._loser[node]
            if self._keys[contender] < self._keys[winner]:
                self._loser[node] = winner
                winner = contender
            node //= 2
        self._winner = winner
