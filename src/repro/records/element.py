"""Element (record) types.

The paper evaluates two record shapes:

* the scalability experiments (Figures 2-6) use 16-byte elements with
  64-bit keys — small enough that "internal computation efficiency is as
  important as high I/O throughput" (Section VI);
* the SortBenchmark experiments use the benchmark's canonical 100-byte
  records with 10-byte keys, for which "the algorithm is not compute-bound
  at all".

Keys are carried as unsigned 64-bit integers throughout the package (a
10-byte SortBenchmark key is compared by its leading 8 bytes here, which
preserves ordering for the uniformly random Indy inputs; the full 10-byte
key is retained in the gensort record payloads for validation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ElementType", "ELEM_PAPER_16B", "ELEM_SORTBENCH_100B", "KEY_DTYPE"]

#: Numpy dtype used for keys everywhere in the package.
KEY_DTYPE = np.uint64


@dataclass(frozen=True)
class ElementType:
    """Shape of one record: total size and key size in bytes."""

    name: str
    elem_bytes: int
    key_bytes: int

    def __post_init__(self):
        if self.elem_bytes < self.key_bytes:
            raise ValueError(
                f"element of {self.elem_bytes} B cannot contain a "
                f"{self.key_bytes} B key"
            )

    @property
    def payload_bytes(self) -> int:
        """Non-key bytes per record."""
        return self.elem_bytes - self.key_bytes

    def count_to_bytes(self, n_elements: float) -> float:
        """Represented bytes of ``n_elements`` records."""
        return n_elements * self.elem_bytes

    def bytes_to_count(self, n_bytes: float) -> float:
        """Record count representing ``n_bytes``."""
        return n_bytes / self.elem_bytes


#: 16-byte elements with 64-bit keys (Figures 2-6 of the paper).
ELEM_PAPER_16B = ElementType("paper16", elem_bytes=16, key_bytes=8)

#: SortBenchmark records: 100 bytes, 10-byte key (GraySort/MinuteSort).
ELEM_SORTBENCH_100B = ElementType("sortbench100", elem_bytes=100, key_bytes=10)
