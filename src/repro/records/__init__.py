"""Record types and vectorized key-array kernels."""

from .arrays import (
    as_keys,
    checksum,
    exact_multiway_partition,
    exact_multiway_partition_multi,
    is_sorted,
    merge_sorted_arrays,
    partition_by_splitters,
)
from .element import ELEM_PAPER_16B, ELEM_SORTBENCH_100B, KEY_DTYPE, ElementType

__all__ = [
    "ElementType",
    "ELEM_PAPER_16B",
    "ELEM_SORTBENCH_100B",
    "KEY_DTYPE",
    "as_keys",
    "checksum",
    "exact_multiway_partition",
    "exact_multiway_partition_multi",
    "is_sorted",
    "merge_sorted_arrays",
    "partition_by_splitters",
]
