"""Vectorized kernels over key arrays.

These are the data-plane primitives: merging sorted key arrays, checking
sortedness, checksums for valsort-style validation, and the *exact
multiway partition* used to split P (or R) sorted sequences at a global
rank.  Ties are broken by (sequence index, position), which makes the
multiset totally ordered and the partition unique — the same trick the
exact splitting in the paper relies on.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .element import KEY_DTYPE

__all__ = [
    "as_keys",
    "is_sorted",
    "merge_sorted_arrays",
    "checksum",
    "exact_multiway_partition",
    "exact_multiway_partition_multi",
    "partition_by_splitters",
]

_CHECKSUM_MOD = np.uint64(0xFFFFFFFFFFFFFFFF)


def as_keys(values: Sequence[int]) -> np.ndarray:
    """Coerce a sequence of non-negative ints to the canonical key dtype."""
    arr = np.asarray(values, dtype=np.int64) if not isinstance(values, np.ndarray) else values
    return arr.astype(KEY_DTYPE, copy=False)


def is_sorted(arr: np.ndarray) -> bool:
    """True when ``arr`` is non-decreasing."""
    if len(arr) < 2:
        return True
    return bool(np.all(arr[:-1] <= arr[1:]))


def merge_sorted_arrays(arrays: List[np.ndarray]) -> np.ndarray:
    """Merge sorted key arrays into one sorted array.

    Semantically a k-way merge; implemented as concatenate + sort, which
    for keys is observationally identical (the paper itself notes that
    batch merging may be replaced by "fully-fledged parallel sorting of
    batches without performing more work than during run formation").
    """
    arrays = [a for a in arrays if len(a)]
    if not arrays:
        return np.empty(0, dtype=KEY_DTYPE)
    if len(arrays) == 1:
        return arrays[0]
    out = np.concatenate(arrays)
    out.sort(kind="stable")
    return out


def checksum(arr: np.ndarray) -> int:
    """Order-independent 64-bit checksum (valsort-style sum of keys)."""
    if len(arr) == 0:
        return 0
    with np.errstate(over="ignore"):
        total = np.bitwise_and(
            np.add.reduce(arr.astype(np.uint64)), _CHECKSUM_MOD
        )
    return int(total)


def exact_multiway_partition(seqs: List[np.ndarray], rank: int) -> List[int]:
    """Split sorted sequences exactly at global ``rank``.

    Returns positions ``p_j`` with ``sum(p_j) == rank`` such that every
    element left of a splitter precedes (in (key, sequence, position)
    order) every element right of any splitter.  Equal keys are assigned
    to the left parts in ascending sequence order, making the result
    unique and deterministic.
    """
    lengths = [len(s) for s in seqs]
    total = sum(lengths)
    if not 0 <= rank <= total:
        raise ValueError(f"rank {rank} outside 0..{total}")
    if rank == 0:
        return [0] * len(seqs)
    if rank == total:
        return lengths
    concat = np.concatenate([s for s in seqs if len(s)])
    boundary = np.partition(concat, rank - 1)[rank - 1]
    lows = [int(np.searchsorted(s, boundary, side="left")) for s in seqs]
    highs = [int(np.searchsorted(s, boundary, side="right")) for s in seqs]
    remaining = rank - sum(lows)
    if remaining < 0:
        raise AssertionError("partition invariant violated (rank under-run)")
    positions = []
    for j in range(len(seqs)):
        take = min(highs[j] - lows[j], remaining)
        positions.append(lows[j] + take)
        remaining -= take
    if remaining != 0:
        raise AssertionError("partition invariant violated (ties exhausted)")
    return positions


def exact_multiway_partition_multi(
    seqs: List[np.ndarray], ranks: Sequence[int]
) -> List[List[int]]:
    """Exact partitions of the same sequences at many ranks at once.

    Equivalent to ``[exact_multiway_partition(seqs, r) for r in ranks]``
    but sorts the concatenation once and answers every rank with two
    vectorized searches per sequence — the difference between O(P) and
    O(P²·log) work when the internal sort splits at all P quantiles.
    """
    lengths = [len(s) for s in seqs]
    total = sum(lengths)
    ranks = [int(r) for r in ranks]
    for rank in ranks:
        if not 0 <= rank <= total:
            raise ValueError(f"rank {rank} outside 0..{total}")
    ordered = np.sort(np.concatenate([s for s in seqs if len(s)])) \
        if total else np.empty(0, dtype=KEY_DTYPE)
    boundaries = np.asarray(
        [ordered[rank - 1] if rank > 0 else 0 for rank in ranks], dtype=KEY_DTYPE
    )
    # Per sequence, locate every boundary once (vectorized).
    lows = [np.searchsorted(s, boundaries, side="left") for s in seqs]
    highs = [np.searchsorted(s, boundaries, side="right") for s in seqs]
    out: List[List[int]] = []
    for i, rank in enumerate(ranks):
        if rank == 0:
            out.append([0] * len(seqs))
            continue
        if rank == total:
            out.append(list(lengths))
            continue
        remaining = rank - int(sum(low[i] for low in lows))
        if remaining < 0:
            raise AssertionError("partition invariant violated (rank under-run)")
        positions = []
        for j in range(len(seqs)):
            take = min(int(highs[j][i] - lows[j][i]), remaining)
            positions.append(int(lows[j][i]) + take)
            remaining -= take
        if remaining != 0:
            raise AssertionError("partition invariant violated (ties exhausted)")
        out.append(positions)
    return out


def partition_by_splitters(arr: np.ndarray, splitters: np.ndarray) -> List[np.ndarray]:
    """Cut a sorted array into ``len(splitters)+1`` buckets.

    Bucket ``i`` receives keys in ``[splitters[i-1], splitters[i])``;
    used by the NOW-Sort baseline.
    """
    bounds = np.searchsorted(arr, splitters, side="left")
    pieces: List[np.ndarray] = []
    prev = 0
    for b in bounds:
        pieces.append(arr[prev:b])
        prev = int(b)
    pieces.append(arr[prev:])
    return pieces
