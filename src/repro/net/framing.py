"""Length-prefixed binary framing for the TCP transport.

A TCP stream has no message boundaries, so every message travels as one
*frame*:

.. code-block:: text

    offset  size  field
    0       2     magic  "RS"
    2       1     version (2)
    3       1     kind    (MSG / HELLO / WELCOME / MESH / RESULT / ... / CTRL)
    4       1     flags   (bit 0: RAW payload; bit 1: JSON meta)
    5       1     fence   (u8, epoch half of the (job, epoch) fence)
    6       4     job     (u32, job half of the (job, epoch) fence)
    10      4     epoch   (u32, collective epoch tag; 0 = untagged)
    14      4     meta_len    (u32, pickled — or JSON — message bytes)
    18      8     payload_len (u64, raw record bytes; 0 unless FLAG_RAW)
    26      4     crc     (u32, CRC-32 over meta then payload)
    30      ...   meta || payload

Three paths share this layout:

* **Control messages** pickle the whole tuple into ``meta`` and carry no
  payload.
* **Bulk record chunks** — an exchange message whose tuple ends in a
  large bytes-like item — split off that item: the tuple *minus* the
  trailing buffer is pickled into ``meta`` and the buffer itself rides
  as the raw payload (``FLAG_RAW``).  The send side pushes header, meta
  and the caller's buffer with one gather write (``sendmsg``), so record
  bytes are never copied into a concatenation; the receive side reads
  the payload straight into a preallocated ``bytearray`` and reattaches
  it as the tuple's last element (``np.frombuffer`` accepts it without a
  copy).  Exchange traffic arrives one level down —
  ``("__xch__", epoch, ("a2a", ..., buf))`` — so the splitter also peels
  a buffer that ends the message's *last nested tuple* and marks the
  frame ``FLAG_NESTED`` so the receive side reattaches it at the right
  depth.  Without the nested case every all-to-all chunk would silently
  fall back to a full pickle (a copy of every record byte).
* **Service control-plane messages** (``FLAG_JSON``, normally with
  ``KIND_CTRL``) carry UTF-8 JSON in ``meta`` instead of a pickle —
  the sort service's client protocol, language-neutral and free of the
  arbitrary-code surface unpickling would give a remote client.  Sent
  with :func:`send_json_frame`; :func:`recv_frame` decodes them
  transparently.

The **fence** is composite: the u8 ``fence`` byte carries the sender's
*job epoch* (restart attempt number, modulo 256) and the u32 ``job``
field carries its *job tag* (the sort service's numeric job identity; 0
for single-shot runs).  :func:`~repro.native.comm_api.pack_fence`
combines the two into one integer — ``(job << 8) | epoch`` — which is
what the ``fence`` argument and return value below hold.  After a
recovery restart the mesh is rebuilt, but a wedged pre-restart process
can in principle still hold a socket and push stale MSG frames — and on
a warm service pool a late frame could even belong to another *job*;
the comm layer drops any MSG frame whose composite fence disagrees with
its own (counted, never raised), so an epoch can never consume a dead
epoch's traffic and a job can never consume another job's.  Handshake
and result kinds carry the fence too, for observability, but only MSG
is fenced.

Integrity: a wrong magic/version, an implausible length, a CRC mismatch,
an undecodable pickle, or an epoch tag that disagrees with the decoded
message all raise :class:`~repro.native.comm_api.CommError`; mid-frame
EOF (a peer died while sending) does too.  A socket timeout mid-frame
surfaces as :class:`~repro.native.comm_api.CommTimeout` — a wedged peer,
not a dead one.  EOF *between* frames returns ``None`` (clean close).
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import zlib
from typing import Optional, Tuple

from ..native.comm_api import CommError, CommTimeout, message_epoch

__all__ = [
    "FRAME_HEADER",
    "MAGIC",
    "VERSION",
    "FLAG_RAW",
    "FLAG_JSON",
    "FLAG_NESTED",
    "split_raw_nested",
    "reattach_payload",
    "KIND_MSG",
    "KIND_HELLO",
    "KIND_WELCOME",
    "KIND_MESH",
    "KIND_RESULT",
    "KIND_HEARTBEAT",
    "KIND_GOODBYE",
    "KIND_RESUME",
    "KIND_CTRL",
    "MAX_META_BYTES",
    "MAX_PAYLOAD_BYTES",
    "encode_frame",
    "send_frame",
    "send_raw_frame",
    "send_json_frame",
    "recv_frame",
]

MAGIC = b"RS"
VERSION = 2

FRAME_HEADER = struct.Struct("!2sBBBBIIIQI")

#: Frame kinds.  MSG carries comm traffic; HELLO/WELCOME/MESH belong to
#: the rendezvous handshake; RESULT is the worker's report to the
#: driver; HEARTBEAT keeps idle connections observably alive; GOODBYE
#: announces a deliberate close (EOF without one = dead PE); RESUME is
#: the epoch>0 rendezvous reply — the job plus its manifest digest;
#: CTRL is the sort service's JSON client protocol (submit/status/...).
KIND_MSG = 0
KIND_HELLO = 1
KIND_WELCOME = 2
KIND_MESH = 3
KIND_RESULT = 4
KIND_HEARTBEAT = 5
KIND_GOODBYE = 6
KIND_RESUME = 7
KIND_CTRL = 8

_KINDS = frozenset(
    (KIND_MSG, KIND_HELLO, KIND_WELCOME, KIND_MESH, KIND_RESULT,
     KIND_HEARTBEAT, KIND_GOODBYE, KIND_RESUME, KIND_CTRL)
)

FLAG_RAW = 0x01
FLAG_JSON = 0x02
#: The RAW payload was peeled from the message's trailing *nested*
#: tuple (the exchange shape) rather than the outer tuple; the receive
#: side must reattach it one level down.
FLAG_NESTED = 0x04

#: Sanity bounds: a header claiming more than this is garbage (a torn
#: stream or a non-frame peer), not a plausible message.
MAX_META_BYTES = 64 * 2**20
MAX_PAYLOAD_BYTES = 4 * 2**30

#: A trailing buffer at least this large takes the zero-copy RAW path;
#: smaller ones aren't worth the second crc32 pass.
RAW_THRESHOLD = 256


def _split_raw(msg: tuple):
    """``(meta_tuple, payload)`` — peel a trailing buffer, if any.

    ``bytes``/``bytearray`` below :data:`RAW_THRESHOLD` stay in the
    pickled meta (the RAW machinery is not worth 17 extra header bytes
    for tiny control payloads); a ``memoryview`` is peeled at *any*
    size — views exist only on the zero-copy hot path and can never be
    pickled, so a short final chunk must still ride the RAW path.
    """
    if isinstance(msg, tuple) and msg:
        tail = msg[-1]
        if isinstance(tail, memoryview) or (
            isinstance(tail, (bytes, bytearray))
            and len(tail) >= RAW_THRESHOLD
        ):
            return msg[:-1], tail
    return msg, None


def split_raw_nested(msg: tuple):
    """``(meta_msg, payload, nested)`` — peel a large trailing buffer.

    Checks the outer tuple first, then one level down (the exchange
    wrapper ``("__xch__", epoch, ("a2a", ..., buf))``); ``nested`` says
    which case fired so :func:`reattach_payload` can undo the split.
    """
    meta, payload = _split_raw(msg)
    if payload is not None:
        return meta, payload, False
    if isinstance(msg, tuple) and msg and isinstance(msg[-1], tuple):
        inner_meta, payload = _split_raw(msg[-1])
        if payload is not None:
            return msg[:-1] + (inner_meta,), payload, True
    return msg, None, False


def reattach_payload(msg: tuple, payload, nested: bool):
    """Reattach a RAW ``payload`` where :func:`split_raw_nested` took it."""
    if not isinstance(msg, tuple) or not msg:
        raise CommError("RAW frame whose meta is not a tuple")
    if nested:
        if not isinstance(msg[-1], tuple):
            raise CommError("nested RAW frame whose trailing meta is not a tuple")
        return msg[:-1] + (msg[-1] + (payload,),)
    return msg + (payload,)


def _send_all(sock: socket.socket, parts) -> int:
    """Gather-write ``parts`` (bytes-likes) fully; returns total bytes."""
    views = [memoryview(p) for p in parts if len(p)]
    total = sum(len(v) for v in views)
    if not views:
        return 0
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - non-POSIX fallback
        sock.sendall(b"".join(views))
        return total
    while views:
        n = sock.sendmsg(views)
        while n:
            if n >= len(views[0]):
                n -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][n:]
                n = 0
    return total


def _frame_parts(kind: int, msg, epoch: Optional[int], fence: int):
    if epoch is None:
        epoch = message_epoch(msg)
    meta_msg, payload, nested = split_raw_nested(msg)
    meta = pickle.dumps(meta_msg, protocol=pickle.HIGHEST_PROTOCOL)
    flags = 0
    payload_len = 0
    crc = zlib.crc32(meta)
    parts = [b"", meta]
    if payload is not None:
        flags |= FLAG_RAW | (FLAG_NESTED if nested else 0)
        payload_len = len(payload)
        crc = zlib.crc32(payload, crc)
        parts.append(payload)
    parts[0] = FRAME_HEADER.pack(
        MAGIC, VERSION, kind, flags, fence & 0xFF, (fence >> 8) & 0xFFFFFFFF,
        epoch, len(meta), payload_len, crc
    )
    return parts


def send_frame(
    sock: socket.socket, kind: int, msg, epoch: Optional[int] = None,
    fence: int = 0
) -> int:
    """Frame and send one message; returns bytes pushed to the socket.

    ``epoch`` defaults to the message's own collective tag (see
    :func:`~repro.native.comm_api.message_epoch`); ``fence`` is the
    sender's composite (job, epoch) fence (see
    :func:`~repro.native.comm_api.pack_fence`; a bare job epoch < 256
    still works — its job half is simply 0).  Bulk chunks take the
    gather-write RAW path — the record buffer goes from the caller's
    memory to the kernel without an intermediate copy.
    """
    return _send_all(sock, _frame_parts(kind, msg, epoch, fence))


def encode_frame(kind: int, msg, epoch: Optional[int] = None,
                 fence: int = 0) -> bytes:
    """Encode a frame to bytes without sending it (tests and chaos)."""
    return b"".join(bytes(p) for p in _frame_parts(kind, msg, epoch, fence))


def send_raw_frame(
    sock: socket.socket, kind: int, meta: bytes, fence: int = 0
) -> int:
    """Send pre-encoded bytes as a frame's meta, without pickling.

    The chaos harness uses this to deliver *deliberately* corrupt pickle
    bytes through an intact frame — the framing layer must pass them and
    the unpickling layer must reject them.
    """
    header = FRAME_HEADER.pack(
        MAGIC, VERSION, kind, 0, fence & 0xFF, (fence >> 8) & 0xFFFFFFFF,
        0, len(meta), 0, zlib.crc32(meta)
    )
    return _send_all(sock, [header, meta])


def send_json_frame(
    sock: socket.socket, kind: int, obj, fence: int = 0
) -> int:
    """Send ``obj`` as a UTF-8 JSON frame (``FLAG_JSON``, no payload).

    The sort service's control plane: a client need not (and must not)
    rely on pickle, so a malicious or buggy peer can at worst deliver
    bad JSON — rejected as a :class:`CommError` — never executable
    bytes.  ``obj`` must be JSON-serializable.
    """
    meta = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(meta) > MAX_META_BYTES:
        raise CommError(
            f"JSON control message of {len(meta)} bytes exceeds the "
            f"{MAX_META_BYTES}-byte frame bound"
        )
    header = FRAME_HEADER.pack(
        MAGIC, VERSION, kind, FLAG_JSON, fence & 0xFF,
        (fence >> 8) & 0xFFFFFFFF, 0, len(meta), 0, zlib.crc32(meta)
    )
    return _send_all(sock, [header, meta])


def _recv_exact(
    sock: socket.socket, view: memoryview, what: str, allow_eof: bool = False
) -> bool:
    """Fill ``view`` from the socket; False on clean EOF at offset 0."""
    got = 0
    n = len(view)
    while got < n:
        try:
            k = sock.recv_into(view[got:])
        except socket.timeout as exc:
            raise CommTimeout(
                f"socket timed out mid-{what} ({got}/{n} bytes in): "
                "peer wedged"
            ) from exc
        if k == 0:
            if got == 0 and allow_eof:
                return False
            raise CommError(
                f"connection closed mid-{what} ({got}/{n} bytes in): "
                "torn frame"
            )
        got += k
    return True


def recv_frame(
    sock: socket.socket,
) -> Optional[Tuple[int, object, int, int, int]]:
    """Receive one frame: ``(kind, msg, epoch, fence, total_bytes)``.

    ``None`` means the peer closed the connection cleanly at a frame
    boundary.  Any mid-frame EOF, bad magic, implausible length, CRC
    mismatch, undecodable meta or epoch/tag disagreement raises
    :class:`CommError`; a receive timeout raises :class:`CommTimeout`.
    The composite fence — ``(job << 8) | epoch_byte``, see
    :func:`~repro.native.comm_api.pack_fence` — is returned raw:
    fencing policy (drop stale MSG frames) lives in the comm layer,
    which knows its own (job, epoch) identity.
    """
    header = bytearray(FRAME_HEADER.size)
    if not _recv_exact(sock, memoryview(header), "header", allow_eof=True):
        return None
    (magic, version, kind, flags, fence_lo, job, epoch, meta_len,
     payload_len, crc) = FRAME_HEADER.unpack(header)
    fence = (job << 8) | fence_lo
    if magic != MAGIC or version != VERSION:
        raise CommError(
            f"bad frame header (magic {magic!r}, version {version}): "
            "stream corrupt or peer speaks another protocol"
        )
    if kind not in _KINDS:
        raise CommError(f"unknown frame kind {kind}")
    if meta_len > MAX_META_BYTES or payload_len > MAX_PAYLOAD_BYTES:
        raise CommError(
            f"implausible frame lengths (meta {meta_len}, payload "
            f"{payload_len}): stream corrupt"
        )
    if payload_len and not flags & FLAG_RAW:
        raise CommError("frame carries a payload but FLAG_RAW is unset")
    if flags & FLAG_JSON and flags & FLAG_RAW:
        raise CommError("frame claims both JSON meta and a RAW payload")
    if flags & FLAG_NESTED and not flags & FLAG_RAW:
        raise CommError("frame claims a nested payload but FLAG_RAW is unset")
    meta = bytearray(meta_len)
    _recv_exact(sock, memoryview(meta), "meta")
    want_crc = zlib.crc32(meta)
    payload: Optional[bytearray] = None
    if flags & FLAG_RAW:
        payload = bytearray(payload_len)
        _recv_exact(sock, memoryview(payload), "payload")
        want_crc = zlib.crc32(payload, want_crc)
    if want_crc != crc:
        raise CommError(
            f"frame CRC mismatch ({crc:#010x} claimed, {want_crc:#010x} "
            "computed): bytes corrupted in flight"
        )
    try:
        if flags & FLAG_JSON:
            msg = json.loads(bytes(meta).decode("utf-8"))
        else:
            msg = pickle.loads(bytes(meta))
    except Exception as exc:
        raise CommError(f"undecodable frame meta: {exc!r}") from exc
    if payload is not None:
        # Reattach the record buffer without copying it: downstream
        # consumers (np.frombuffer, struct.unpack_from, file writes)
        # all accept a bytearray.
        msg = reattach_payload(msg, payload, bool(flags & FLAG_NESTED))
    if kind == KIND_MSG and epoch != message_epoch(msg):
        raise CommError(
            f"frame epoch tag {epoch} disagrees with message epoch "
            f"{message_epoch(msg)}: stream out of step"
        )
    total = FRAME_HEADER.size + meta_len + payload_len
    return kind, msg, epoch, fence, total
