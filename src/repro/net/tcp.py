"""TCP transport: CANONICALMERGESORT's interconnect over real sockets.

:class:`TcpComm` is the multi-host sibling of
:class:`repro.native.comm.PipeComm`: the same
:class:`~repro.native.comm_api.MeshComm` core (collectives, stash,
chunked exchange, probe service, sender thread), with the two channel
primitives implemented over a full mesh of connected TCP sockets (built
by :func:`repro.net.rendezvous.join_mesh`) and the framing of
:mod:`repro.net.framing`.

Beyond the pipe transport it adds what a real network needs:

* **Heartbeats** — whenever the sender thread has been idle for
  ``heartbeat_s``, it pushes a tiny HEARTBEAT frame to every peer.
  Heartbeats refresh the receiver's ``last_heard`` clock and are
  otherwise invisible (never stashed, never matched).  A
  :class:`~repro.native.comm_api.CommTimeout` therefore names which
  peers have gone silent — distinguishing "the protocol is stuck" from
  "the peer is gone".
* **Idle timeouts** — a peer that stops mid-frame (wedged socket, dead
  NIC with the connection still open) trips the per-socket receive
  timeout and surfaces as :class:`CommTimeout`; a closed connection
  surfaces immediately as :class:`CommError`.  Never a hang.
* **True wire accounting** — ``socket_bytes_sent`` / ``_received``
  count every byte pushed to and pulled from the kernel, framing
  included, alongside the payload-estimate accounting of the core.
  The gap between the two is the transport's measured overhead (the
  o(N) part of the paper's N + o(N) story, on a real wire).
"""

from __future__ import annotations

import select
import socket
import time
from typing import Dict

from ..native.comm_api import (
    DEFAULT_PENDING_SENDS,
    DEFAULT_TIMEOUT,
    CommError,
    CommTimeout,
    MeshComm,
)
from .framing import (
    FRAME_HEADER,
    KIND_GOODBYE,
    KIND_HEARTBEAT,
    KIND_MSG,
    MAGIC,
    VERSION,
    recv_frame,
    send_frame,
)

__all__ = ["TcpComm", "DEFAULT_HEARTBEAT_S"]

#: Default sender-idle interval between heartbeat frames.
DEFAULT_HEARTBEAT_S = 5.0


class TcpComm(MeshComm):
    """Point-to-point and collective communication over a socket mesh."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        socks: Dict[int, socket.socket],
        timeout: float = DEFAULT_TIMEOUT,
        pending_sends: int = DEFAULT_PENDING_SENDS,
        chaos=None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        job_epoch: int = 0,
        job_tag: int = 0,
    ):
        if heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.socks = socks
        self.heartbeat_s = heartbeat_s
        super().__init__(
            rank,
            n_workers,
            peers=list(socks),
            timeout=timeout,
            pending_sends=pending_sends,
            chaos=chaos,
            job_epoch=job_epoch,
            job_tag=job_tag,
        )
        for sock in socks.values():
            sock.settimeout(None)
        #: Monotonic timestamp of the last frame (any kind) per peer.
        self.last_heard: Dict[int, float] = {
            p: time.monotonic() for p in self.peers
        }
        #: Kernel-level byte counts, framing included (payload-estimate
        #: counts live on the MeshComm core).
        self.socket_bytes_sent = 0
        self.socket_bytes_received = 0
        #: Peers that announced a deliberate close (GOODBYE): their later
        #: EOF is a normal shutdown, not a dead PE.
        self._peer_goodbye = set()
        self._start_sender()

    # -- channel primitives ---------------------------------------------------

    def _transmit(self, peer: int, msg: tuple) -> None:
        self.socket_bytes_sent += send_frame(
            self.socks[peer], KIND_MSG, msg, fence=self.wire_fence
        )

    def _poll_once(self, block_timeout: float) -> bool:
        self._chaos_poll()
        if not self.socks:
            return False
        try:
            ready, _, _ = select.select(
                list(self.socks.values()), [], [], max(0.0, block_timeout)
            )
        except (OSError, ValueError) as exc:
            raise CommError(
                f"rank {self.rank}: mesh socket died: {exc!r}"
            ) from exc
        if not ready:
            return False
        by_sock = {s: p for p, s in self.socks.items()}
        got = False
        for sock in ready:
            peer = by_sock[sock]
            # A readable socket still bounds each frame read: a peer
            # that sent a header and then stopped is wedged, and must
            # surface as CommTimeout, not block forever.
            sock.settimeout(self.timeout)
            try:
                frame = recv_frame(sock)
            except CommTimeout as exc:
                raise CommTimeout(
                    f"rank {self.rank}: peer {peer} wedged mid-frame: {exc}"
                ) from exc
            except CommError as exc:
                raise CommError(f"rank {self.rank}: peer {peer}: {exc}") from exc
            finally:
                try:
                    sock.settimeout(None)
                except OSError:
                    pass
            if frame is None:
                if peer in self._peer_goodbye:
                    # Announced shutdown: the peer finished its protocol
                    # and left.  Drop the channel; anything we still
                    # needed from it would already be in flight (TCP is
                    # FIFO, so all its messages preceded the GOODBYE).
                    del self.socks[peer]
                    try:
                        sock.close()
                    except OSError:
                        pass
                    continue
                raise CommError(
                    f"rank {self.rank}: peer {peer} closed the connection "
                    "mid-protocol (dead PE)"
                )
            kind, msg, _epoch, fence, nbytes = frame
            self.socket_bytes_received += nbytes
            self.last_heard[peer] = time.monotonic()
            if kind == KIND_GOODBYE:
                self._peer_goodbye.add(peer)
                continue
            if kind == KIND_HEARTBEAT:
                continue
            if kind != KIND_MSG:
                raise CommError(
                    f"rank {self.rank}: unexpected frame kind {kind} "
                    f"from peer {peer}"
                )
            if fence != self.wire_fence:
                # Stale frame from a pre-restart epoch — or, on a warm
                # service pool, from another job entirely: drop it.
                self.fenced_drops += 1
                continue
            self._stash_message(peer, msg)
            got = True
        return got

    # -- heartbeats -----------------------------------------------------------

    def _idle_seconds(self) -> float:
        return self.heartbeat_s

    def _on_send_idle(self) -> None:
        if self._wedged or self._severed:
            return
        for sock in list(self.socks.values()):
            try:
                self.socket_bytes_sent += send_frame(sock, KIND_HEARTBEAT, None)
            except OSError:
                pass  # the receive side reports the dead peer cleanly

    def _timeout_context(self) -> str:
        now = time.monotonic()
        silent = [
            (peer, now - heard)
            for peer, heard in sorted(self.last_heard.items())
            if now - heard > 2 * self.heartbeat_s
        ]
        if not silent:
            return " (all peers recently heard from: protocol stall)"
        listing = ", ".join(f"{p} ({age:.1f}s ago)" for p, age in silent)
        return f"; peers silent past the heartbeat: {listing}"

    # -- lifecycle / chaos ----------------------------------------------------

    def _close_transport(self) -> None:
        # Announce the close first: peers still mid-protocol must be able
        # to tell this deliberate shutdown from a dead PE's silent EOF.
        # A peer that stopped draining may have left the socket buffer
        # full (with the sender thread wedged mid-write), so the goodbye
        # is time-bounded rather than blocking.
        for sock in list(self.socks.values()):
            try:
                sock.settimeout(1.0)
                self.socket_bytes_sent += send_frame(sock, KIND_GOODBYE, None)
            except OSError:
                pass
        for sock in list(self.socks.values()):
            try:
                # shutdown() — unlike close() — wakes a sender thread
                # still blocked in sendmsg on this socket (its write
                # fails with EPIPE), so shutdown's join can reap it.
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.socks.clear()

    def _sever_transport(self) -> None:
        # No GOODBYE — a sever *is* the silent network loss peers must
        # diagnose as a dead PE.
        for sock in list(self.socks.values()):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.socks.clear()

    def _wedge_transport(self) -> None:
        # A valid header promising meta bytes that will never arrive:
        # every peer's next poll blocks mid-frame until its receive
        # timeout escalates to CommTimeout.
        header = FRAME_HEADER.pack(
            MAGIC, VERSION, KIND_MSG, 0, self.job_epoch & 0xFF,
            self.job_tag & 0xFFFFFFFF, 0, 1024, 0, 0
        )
        for sock in self.socks.values():
            try:
                sock.sendall(header)
            except OSError:
                pass
