"""Rendezvous: how independent worker processes become a full TCP mesh.

One listening endpoint (the driver's :class:`Coordinator`) bootstraps
everything:

1. every worker opens its *own* ephemeral mesh listener, then dials the
   coordinator (with jittered exponential backoff — workers may start
   before the coordinator, or race its ``listen``);
2. the worker sends ``HELLO(rank, (host, port), wants_job)`` announcing
   its rank and where its mesh listener can be reached.  The advertised
   host is the address the coordinator connection uses locally, so it is
   reachable from the coordinator's side of the network by construction;
3. once all ``n_workers`` ranks are present, the coordinator answers
   every worker with ``WELCOME(n_workers, table, job)`` — the full
   rank → address table, plus the pickled job for workers launched bare
   (``python -m repro worker`` sends ``wants_job=True``).  On a
   recovery restart (``job.epoch > 0``) the reply is a ``RESUME`` frame
   instead, carrying the same table and job plus the manifest digest
   the rejoining worker's on-disk journal must match;
4. each worker builds the mesh with a deterministic tie-break: rank i
   **dials** every rank j > i (``MESH(i)`` announces the dialer) and
   **accepts** from every rank j < i.  Dial-all-then-accept-all cannot
   deadlock: every listener is already bound before the table is
   published, and a TCP accept queue completes handshakes whether or
   not ``accept()`` has been called yet.

The coordinator connection stays open after rendezvous and becomes the
worker's **result channel** (:class:`ResultChannel`) — the TCP
equivalent of the pipe a native worker reports its stats or traceback
on, with the same object surface so the driver's fail-fast collection
and the chaos harness's torn/wedged-result faults apply unchanged.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..native.comm_api import CommError, CommTimeout, pack_fence
from ..recovery.manifest import job_fingerprint
from .framing import (
    KIND_HELLO,
    KIND_MESH,
    KIND_RESULT,
    KIND_RESUME,
    KIND_WELCOME,
    recv_frame,
    send_frame,
    send_raw_frame,
)

__all__ = [
    "parse_hostport",
    "backoff_delays",
    "connect_with_backoff",
    "Coordinator",
    "join_mesh",
    "ResultChannel",
]

#: Per-attempt connect timeout while backing off toward the deadline.
_ATTEMPT_TIMEOUT = 5.0

#: Handshake frames are tiny; a peer that takes longer than this to
#: complete one is wedged, not slow.
_HANDSHAKE_TIMEOUT = 30.0


def parse_hostport(text: str, default_host: str = "127.0.0.1") -> Tuple[str, int]:
    """``"host:port"`` or bare ``"port"`` → ``(host, port)``."""
    text = text.strip()
    host, sep, port_s = text.rpartition(":")
    if not sep:
        host, port_s = default_host, text
    if not host:
        host = default_host
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"invalid port in {text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in {text!r}")
    return host, port


def backoff_delays(
    rng: Optional[random.Random] = None,
    base: float = 0.05,
    factor: float = 2.0,
    cap: float = 2.0,
):
    """Jittered exponential backoff delays: base·factor^k, capped, ±50%.

    The jitter keeps a gang of workers restarted together from hammering
    the coordinator in lockstep.
    """
    if rng is None:
        rng = random.Random()
    delay = base
    while True:
        yield delay * rng.uniform(0.5, 1.5)
        delay = min(cap, delay * factor)


def connect_with_backoff(
    addr: Tuple[str, int],
    deadline: float,
    rng: Optional[random.Random] = None,
    what: str = "peer",
) -> socket.socket:
    """Dial ``addr`` until it answers or ``deadline`` (monotonic) passes.

    The deadline caps *total* dial time across all backoff attempts — a
    never-listening address fails with :class:`CommTimeout` naming
    ``what`` (e.g. ``"coordinator"``) and the address, rather than
    retrying forever.
    """
    delays = backoff_delays(rng)
    last_error: Optional[Exception] = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise CommTimeout(
                f"could not connect to {what} at {addr[0]}:{addr[1]} "
                f"before the dial deadline (last error: {last_error!r})"
            )
        try:
            sock = socket.create_connection(
                addr, timeout=min(_ATTEMPT_TIMEOUT, remaining)
            )
            sock.settimeout(None)
            _set_nodelay(sock)
            return sock
        except OSError as exc:
            last_error = exc
        time.sleep(min(next(delays), max(0.0, deadline - time.monotonic())))


def _set_nodelay(sock: socket.socket) -> None:
    """Disable Nagle; small protocol messages must not wait for ACKs."""
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass  # not a TCP socket (AF_UNIX test meshes)


class Coordinator:
    """The driver's rendezvous endpoint (and result-channel acceptor)."""

    def __init__(self, n_workers: int, host: str = "127.0.0.1", port: int = 0):
        self.n_workers = n_workers
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(n_workers + 8)
        self.host, self.port = self._listener.getsockname()[:2]

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def wait_for_workers(
        self,
        job,
        deadline: float,
        health: Optional[Callable[[], None]] = None,
    ) -> Dict[int, socket.socket]:
        """Collect all HELLOs, then WELCOME everyone with the peer table.

        ``health`` is polled between accepts so a spawned worker that
        died before announcing itself fails the rendezvous immediately
        instead of at the deadline.  Returns rank → result-channel
        socket.

        Raises :class:`CommTimeout` naming the missing ranks on
        deadline, :class:`CommError` on duplicate or out-of-range rank
        announcements.
        """
        conns: Dict[int, socket.socket] = {}
        table: Dict[int, Tuple[str, int]] = {}
        wants_job: Dict[int, bool] = {}
        try:
            while len(conns) < self.n_workers:
                if health is not None:
                    health()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = sorted(
                        set(range(self.n_workers)) - set(conns)
                    )
                    raise CommTimeout(
                        f"rendezvous timed out: workers {missing} never "
                        f"connected to {self.host}:{self.port}"
                    )
                self._listener.settimeout(min(0.25, remaining))
                try:
                    sock, _peer_addr = self._listener.accept()
                except socket.timeout:
                    continue
                _set_nodelay(sock)
                sock.settimeout(_HANDSHAKE_TIMEOUT)
                frame = recv_frame(sock)
                if frame is None:
                    sock.close()
                    continue  # probe connection (port scan, health check)
                kind, msg, _epoch, _fence, _n = frame
                if kind != KIND_HELLO or not (
                    isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "hello"
                ):
                    sock.close()
                    raise CommError(
                        f"rendezvous: expected HELLO, got kind {kind} {msg!r}"
                    )
                _tag, rank, mesh_addr, wants = msg
                if not (isinstance(rank, int) and 0 <= rank < self.n_workers):
                    sock.close()
                    raise CommError(
                        f"rendezvous: rank {rank!r} out of range 0..{self.n_workers - 1}"
                    )
                if rank in conns:
                    sock.close()
                    raise CommError(
                        f"rendezvous: duplicate announcement for rank {rank}"
                    )
                sock.settimeout(None)
                conns[rank] = sock
                table[rank] = (str(mesh_addr[0]), int(mesh_addr[1]))
                wants_job[rank] = bool(wants)
            epoch = int(getattr(job, "epoch", 0))
            for rank, sock in conns.items():
                wire_job = job if wants_job[rank] else None
                if epoch > 0:
                    # A rejoining worker gets a RESUME frame: the job
                    # plus the manifest digest it must find on disk.
                    send_frame(
                        sock,
                        KIND_RESUME,
                        (
                            "resume",
                            self.n_workers,
                            sorted(table.items()),
                            wire_job,
                            epoch,
                            job_fingerprint(job),
                        ),
                        fence=pack_fence(getattr(job, "job_tag", 0), epoch),
                    )
                else:
                    send_frame(
                        sock,
                        KIND_WELCOME,
                        (
                            "welcome",
                            self.n_workers,
                            sorted(table.items()),
                            wire_job,
                        ),
                    )
        except BaseException:
            for sock in conns.values():
                try:
                    sock.close()
                except OSError:
                    pass
            raise
        return conns

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


def join_mesh(
    connect: Tuple[str, int],
    rank: int,
    connect_timeout: float = 60.0,
    job=None,
):
    """Worker side of the handshake: returns ``(job, coord_sock, socks)``.

    ``socks`` maps every peer rank to a connected, NODELAY mesh socket.
    ``job`` may be passed by a spawning driver that already shares memory
    with the worker; when ``None`` (the ``repro worker`` CLI) the job is
    requested from — and delivered by — the coordinator in the WELCOME.
    """
    deadline = time.monotonic() + connect_timeout
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    coord: Optional[socket.socket] = None
    socks: Dict[int, socket.socket] = {}
    try:
        listener.bind(("0.0.0.0", 0))
        listener.listen(64)
        listen_port = listener.getsockname()[1]

        coord = connect_with_backoff(connect, deadline, what="coordinator")
        # Advertise the local address of the coordinator connection: the
        # one interface the coordinator's network is known to reach.
        adv_host = coord.getsockname()[0]
        send_frame(
            coord, KIND_HELLO, ("hello", rank, (adv_host, listen_port), job is None)
        )
        coord.settimeout(max(1.0, deadline - time.monotonic()))
        frame = recv_frame(coord)
        if frame is None:
            raise CommError(
                "coordinator closed the connection before WELCOME "
                "(duplicate rank, or the job failed during rendezvous)"
            )
        kind, msg, _epoch, _fence, _n = frame
        if kind == KIND_WELCOME and (
            isinstance(msg, tuple) and len(msg) == 4 and msg[0] == "welcome"
        ):
            _tag, n_workers, table_items, wire_job = msg
        elif kind == KIND_RESUME and (
            isinstance(msg, tuple) and len(msg) == 6 and msg[0] == "resume"
        ):
            # A restart epoch: the coordinator re-admits us with the job
            # and the manifest digest our on-disk journal must match.
            _tag, n_workers, table_items, wire_job, epoch, digest = msg
            check_job = job if job is not None else wire_job
            if check_job is not None and job_fingerprint(check_job) != digest:
                raise CommError(
                    f"RESUME manifest digest {digest!r} does not match the "
                    "job this worker holds; refusing to rejoin a different "
                    "job's mesh"
                )
        else:
            raise CommError(
                f"expected WELCOME or RESUME, got kind {kind} {msg!r}"
            )
        if job is None:
            job = wire_job
        if job is None:
            raise CommError("coordinator sent no job and none was provided")
        coord.settimeout(None)
        table = {int(r): (str(h), int(p)) for r, (h, p) in table_items}

        # Deterministic mesh: dial up, accept down.
        for peer in range(rank + 1, n_workers):
            sock = connect_with_backoff(
                table[peer], deadline, what=f"mesh peer {peer}"
            )
            send_frame(sock, KIND_MESH, ("mesh", rank))
            socks[peer] = sock
        expected = set(range(rank))
        while expected:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeout(
                    f"rank {rank}: peers {sorted(expected)} never dialed "
                    "our mesh listener"
                )
            listener.settimeout(min(1.0, remaining))
            try:
                sock, _addr = listener.accept()
            except socket.timeout:
                continue
            _set_nodelay(sock)
            sock.settimeout(_HANDSHAKE_TIMEOUT)
            frame = recv_frame(sock)
            if frame is None:
                sock.close()
                continue
            kind, msg, _epoch, _fence, _n = frame
            if kind != KIND_MESH or not (
                isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "mesh"
            ):
                sock.close()
                raise CommError(f"rank {rank}: expected MESH, got {msg!r}")
            peer = int(msg[1])
            if peer not in expected:
                sock.close()
                raise CommError(
                    f"rank {rank}: unexpected mesh dial from rank {peer}"
                )
            sock.settimeout(None)
            socks[peer] = sock
            expected.discard(peer)
        return job, coord, socks
    except BaseException:
        for sock in socks.values():
            try:
                sock.close()
            except OSError:
                pass
        if coord is not None:
            try:
                coord.close()
            except OSError:
                pass
        raise
    finally:
        listener.close()


class ResultChannel:
    """The worker's report pipe, over the rendezvous socket.

    Mirrors the :class:`multiprocessing.connection.Connection` surface
    the pipe-transport worker reports on (``send`` / ``send_bytes`` /
    ``fileno`` / ``close``), so :func:`repro.native.worker._run_phases`
    and the chaos result-corruption faults are transport-blind:
    ``send_bytes`` of a truncated pickle arrives as a well-formed frame
    of garbage (the driver's unpickle rejects it), and a chaos write of
    raw junk via ``fileno`` tears the frame stream itself (the driver's
    header parse rejects it).
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock

    def send(self, obj) -> None:
        send_frame(self._sock, KIND_RESULT, obj)

    def send_bytes(self, data: bytes) -> None:
        send_raw_frame(self._sock, KIND_RESULT, data)

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
