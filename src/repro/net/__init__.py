"""Socket transport subsystem: run the native sort across real networks.

The pieces, bottom up:

* :mod:`repro.net.framing` — length-prefixed binary frames with epoch
  tags, CRC integrity and zero-copy bulk paths;
* :mod:`repro.net.rendezvous` — the coordinator handshake that turns
  independently launched worker processes into a full TCP mesh, plus
  the retry/backoff dialing and the worker's result channel;
* :mod:`repro.net.tcp` — :class:`TcpComm`, the socket implementation of
  the :class:`repro.native.comm_api.Comm` contract, with heartbeats,
  idle timeouts and kernel-level wire accounting.

``python -m repro --backend native --transport tcp`` runs the whole
sort over loopback sockets; ``python -m repro worker --connect`` joins
a worker from another terminal or another host.  See
``docs/TRANSPORT.md``.
"""

from .rendezvous import Coordinator, ResultChannel, connect_with_backoff, join_mesh, parse_hostport
from .tcp import TcpComm

__all__ = [
    "Coordinator",
    "ResultChannel",
    "TcpComm",
    "connect_with_backoff",
    "join_mesh",
    "parse_hostport",
]
