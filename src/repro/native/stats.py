"""Per-phase, per-worker statistics of a native sort.

The native twin of :class:`repro.core.stats.SortStats`: the same phase
names (:data:`repro.core.config.PHASES` plus ``generate``), but every
number is measured, not simulated — wall times from the monotonic clock,
I/O volumes from the byte counters of the
:class:`~repro.native.blockstore.FileBlockStore`, interconnect volumes
from the pipe mesh, and peak memory from ``getrusage`` where available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.config import PHASES

__all__ = ["WorkerStats", "NativeStats", "NATIVE_PHASES"]

#: Native phase order: input generation happens before the clock that
#: matters, but its cost is reported alongside the sort phases.
NATIVE_PHASES = ("generate",) + PHASES


@dataclass
class WorkerStats:
    """One worker process's measurements (sent to the driver at exit)."""

    rank: int
    #: Phase -> wall seconds.
    walls: Dict[str, float] = field(default_factory=dict)
    #: Phase -> bytes read / written through the block store.
    bytes_read: Dict[str, int] = field(default_factory=dict)
    bytes_written: Dict[str, int] = field(default_factory=dict)
    #: Phase -> seconds the phase's *main thread* spent blocked on I/O
    #: (synchronous reads/writes, prefetch waits, write-behind backpressure).
    #: Background pipeline threads never count here — their I/O time is
    #: the overlap the pipelined path exists to create.
    io_stall_s: Dict[str, float] = field(default_factory=dict)
    #: Free-form counters (probe reads, cache hits, runs formed, ...).
    counters: Dict[str, float] = field(default_factory=dict)
    #: Bytes pushed through / pulled from the interconnect mesh.
    comm_bytes_sent: int = 0
    comm_bytes_received: int = 0
    #: Phase -> payload bytes actually sent to / received from *other*
    #: PEs (the wire; self-delivered exchange chunks excluded).
    comm_wire_sent: Dict[str, int] = field(default_factory=dict)
    comm_wire_recv: Dict[str, int] = field(default_factory=dict)
    #: Phase -> payload bytes the exchange delivered to *itself* (the
    #: locally kept share; wire + local = the phase's full data volume).
    comm_local_bytes: Dict[str, int] = field(default_factory=dict)
    #: Peer rank -> payload bytes sent to / received from that peer.
    comm_peer_sent: Dict[int, int] = field(default_factory=dict)
    comm_peer_recv: Dict[int, int] = field(default_factory=dict)
    #: Kernel-level socket bytes, framing included (TCP transport only;
    #: 0 on pipes).  The gap to the payload counts is framing overhead.
    comm_socket_bytes_sent: int = 0
    comm_socket_bytes_recv: int = 0
    #: Peak analytically tracked resident record bytes (working-set proof).
    peak_resident_bytes: int = 0
    #: OS-reported peak RSS in bytes (0 when unavailable).
    max_rss_bytes: int = 0

    def add_counter(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def note_max(self, name: str, value: float) -> None:
        """High-water-mark counter: keep the maximum observed value."""
        if value > self.counters.get(name, 0.0):
            self.counters[name] = float(value)

    def add_stall(self, phase: str, seconds: float) -> None:
        """Charge main-thread I/O wait time to ``phase``."""
        if seconds > 0:
            self.io_stall_s[phase] = self.io_stall_s.get(phase, 0.0) + seconds

    def note_resident(self, nbytes: int) -> None:
        """Record a transient record-data working set of ``nbytes``."""
        if nbytes > self.peak_resident_bytes:
            self.peak_resident_bytes = int(nbytes)


class NativeStats:
    """Aggregated statistics of one native sort (driver side)."""

    def __init__(self, workers: List[WorkerStats], total_time: float,
                 n_runs: int, total_records: int, record_bytes: int):
        self.workers = sorted(workers, key=lambda w: w.rank)
        self.total_time = total_time
        self.n_runs = n_runs
        self.total_records = total_records
        self.record_bytes = record_bytes
        self.phases: List[str] = [
            p for p in NATIVE_PHASES
            if any(p in w.walls for w in self.workers)
        ]
        #: Restart attempts the supervisor burned before this success
        #: (0 = first try) and the per-failure event log; both are
        #: stamped by the driver, not the workers.
        self.restarts: int = 0
        self.recovery_events: List[Dict] = []

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def total_bytes(self) -> int:
        return self.total_records * self.record_bytes

    # -- aggregation ----------------------------------------------------------

    def wall_max(self, phase: str) -> float:
        return max((w.walls.get(phase, 0.0) for w in self.workers), default=0.0)

    def wall_avg(self, phase: str) -> float:
        if not self.workers:
            return 0.0
        return sum(w.walls.get(phase, 0.0) for w in self.workers) / len(self.workers)

    def phase_bytes(self, phase: str) -> int:
        """Disk traffic (read + write) of a phase across all workers."""
        return sum(
            w.bytes_read.get(phase, 0) + w.bytes_written.get(phase, 0)
            for w in self.workers
        )

    def phase_throughput(self, phase: str) -> float:
        """Data-volume throughput of a phase in bytes/s (0 if untimed).

        Volume is the *represented* input size N — the quantity the
        paper's MB/s-per-phase numbers are normalized by — not the
        phase's raw disk traffic.
        """
        wall = self.wall_max(phase)
        return self.total_bytes / wall if wall > 0 else 0.0

    def counter_total(self, name: str) -> float:
        return sum(w.counters.get(name, 0.0) for w in self.workers)

    def stall_max(self, phase: str) -> float:
        """Worst per-worker main-thread I/O stall of a phase, seconds."""
        return max(
            (w.io_stall_s.get(phase, 0.0) for w in self.workers), default=0.0
        )

    def overlap_ratio(self, phase: str) -> float:
        """Fraction of the phase's wall time *not* spent stalled on I/O.

        1.0 means I/O was fully hidden behind computation (or there was
        none); 0.0 means the phase did nothing but wait for the disk.
        Computed from the slowest worker's wall and stall.
        """
        wall = self.wall_max(phase)
        if wall <= 0:
            return 1.0
        return max(0.0, min(1.0, 1.0 - self.stall_max(phase) / wall))

    def wire_sent(self, phase: str) -> int:
        """Payload bytes all workers sent to other PEs during ``phase``."""
        return sum(w.comm_wire_sent.get(phase, 0) for w in self.workers)

    def wire_recv(self, phase: str) -> int:
        """Payload bytes all workers received from other PEs in ``phase``."""
        return sum(w.comm_wire_recv.get(phase, 0) for w in self.workers)

    def local_bytes(self, phase: str) -> int:
        """Self-delivered payload bytes (the exchange's kept-local share)."""
        return sum(w.comm_local_bytes.get(phase, 0) for w in self.workers)

    def wire_volume(self, phase: str) -> int:
        """Full data volume a phase moved: wire sends + local deliveries.

        For the all-to-all this is the paper's N: on balanced inputs it
        equals ``total_records * record_bytes`` exactly, of which the
        wire part is N·(P-1)/P and the local part N/P.
        """
        return self.wire_sent(phase) + self.local_bytes(phase)

    @property
    def total_io_bytes(self) -> int:
        return sum(self.phase_bytes(p) for p in self.phases)

    @property
    def network_bytes(self) -> int:
        return sum(w.comm_bytes_sent for w in self.workers)

    @property
    def socket_bytes_sent(self) -> int:
        """Kernel-level bytes pushed to sockets (0 on the pipe transport)."""
        return sum(w.comm_socket_bytes_sent for w in self.workers)

    @property
    def socket_bytes_recv(self) -> int:
        return sum(w.comm_socket_bytes_recv for w in self.workers)

    @property
    def peak_resident_bytes(self) -> int:
        return max((w.peak_resident_bytes for w in self.workers), default=0)

    @property
    def sort_phases_wall(self) -> float:
        """Sum of per-phase maxima over the four sort phases (no generate)."""
        return sum(self.wall_max(p) for p in self.phases if p != "generate")

    # -- reporting ------------------------------------------------------------

    def recovery_dict(self) -> Dict:
        """Checkpoint/recovery section of the JSON report.

        The counters prove the o(N) recovery bound: ``rf_blocks_reread``
        is exactly the input blocks re-read for runs some rank had
        already formed (0 when the failure hit a phase boundary), and
        ``fenced_frames`` counts stale pre-restart frames the epoch
        fence dropped.
        """
        return {
            "restarts": self.restarts,
            "events": list(self.recovery_events),
            "phases_restored": self.counter_total("recovery_phases_restored"),
            "runs_restored": self.counter_total("recovery_runs_restored"),
            "rf_blocks_reread": self.counter_total("recovery_rf_blocks_reread"),
            "chunks_skipped": self.counter_total("recovery_chunks_skipped"),
            "crc_blocks_verified": self.counter_total(
                "recovery_crc_blocks_verified"
            ),
            "fenced_frames": self.counter_total("recovery_fenced_frames"),
        }

    def to_dict(self) -> Dict:
        return {
            "backend": "native",
            "n_workers": self.n_workers,
            "n_runs": self.n_runs,
            "total_records": self.total_records,
            "total_bytes": self.total_bytes,
            "total_time": self.total_time,
            "network_bytes": self.network_bytes,
            "socket_bytes_sent": self.socket_bytes_sent,
            "socket_bytes_recv": self.socket_bytes_recv,
            "peak_resident_bytes": self.peak_resident_bytes,
            "recovery": self.recovery_dict(),
            "phases": {
                phase: {
                    "wall_max": self.wall_max(phase),
                    "wall_avg": self.wall_avg(phase),
                    "bytes": self.phase_bytes(phase),
                    "throughput_mb_s": self.phase_throughput(phase) / 1e6,
                    "stall_s": self.stall_max(phase),
                    "overlap_ratio": self.overlap_ratio(phase),
                    "wire_sent": self.wire_sent(phase),
                    "wire_recv": self.wire_recv(phase),
                    "wire_volume": self.wire_volume(phase),
                }
                for phase in self.phases
            },
            "per_worker": [
                {
                    "rank": w.rank,
                    "walls": dict(w.walls),
                    "bytes_read": dict(w.bytes_read),
                    "bytes_written": dict(w.bytes_written),
                    "io_stall_s": dict(w.io_stall_s),
                    "counters": dict(w.counters),
                    "comm_bytes_sent": w.comm_bytes_sent,
                    "comm_bytes_received": w.comm_bytes_received,
                    "comm_wire_sent": dict(w.comm_wire_sent),
                    "comm_wire_recv": dict(w.comm_wire_recv),
                    "comm_local_bytes": dict(w.comm_local_bytes),
                    "comm_peer_sent": {
                        str(p): n for p, n in sorted(w.comm_peer_sent.items())
                    },
                    "comm_peer_recv": {
                        str(p): n for p, n in sorted(w.comm_peer_recv.items())
                    },
                    "comm_socket_bytes_sent": w.comm_socket_bytes_sent,
                    "comm_socket_bytes_recv": w.comm_socket_bytes_recv,
                    "peak_resident_bytes": w.peak_resident_bytes,
                    "max_rss_bytes": w.max_rss_bytes,
                }
                for w in self.workers
            ],
        }

    def summary(self) -> str:
        """Human-readable per-phase table (measured seconds and MB/s)."""
        lines = [
            f"P={self.n_workers}  native total {self.total_time:8.2f} s   "
            f"{self.total_bytes / 2**20:.1f} MiB in {self.n_runs} runs"
        ]
        for phase in self.phases:
            wall = self.wall_max(phase)
            vol = self.phase_bytes(phase)
            rate = self.phase_throughput(phase) / 1e6
            lines.append(
                f"  {phase:<14} wall {wall:8.2f} s   disk {vol / 2**20:9.1f} MiB"
                f"   {rate:8.1f} MB/s   stall {self.stall_max(phase):6.2f} s"
                f"  overlap {self.overlap_ratio(phase):4.0%}"
            )
        a2a = self.wire_volume("all_to_all")
        lines.append(
            f"  interconnect   {self.network_bytes / 2**20:9.1f} MiB; "
            f"all-to-all volume {a2a / 2**20:.1f} MiB "
            f"({a2a / self.total_bytes:.2f}x N); "
            f"peak resident {self.peak_resident_bytes / 2**20:.1f} MiB/worker"
        )
        if self.socket_bytes_sent:
            overhead = self.socket_bytes_sent - self.network_bytes
            lines.append(
                f"  socket wire    {self.socket_bytes_sent / 2**20:9.1f} MiB "
                f"sent ({max(0, overhead) / 2**20:.2f} MiB framing+control "
                "overhead)"
            )
        if self.restarts:
            rec = self.recovery_dict()
            lines.append(
                f"  recovered after {self.restarts} restart"
                f"{'s' if self.restarts != 1 else ''}: "
                f"{rec['phases_restored']:.0f} phase restores, "
                f"{rec['rf_blocks_reread']:.0f} run-formation blocks re-read, "
                f"{rec['chunks_skipped']:.0f} exchange chunks skipped, "
                f"{rec['fenced_frames']:.0f} stale frames fenced"
            )
        return "\n".join(lines)


def max_rss_bytes() -> int:
    """Peak RSS of the calling process in bytes (0 when unsupported)."""
    try:
        import resource
        import sys

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return int(rss) if sys.platform == "darwin" else int(rss) * 1024
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


@dataclass
class PhaseClock:
    """Context manager recording one phase's wall time into WorkerStats."""

    stats: WorkerStats
    phase: str
    _start: Optional[float] = None

    def __enter__(self) -> "PhaseClock":
        import time

        self._start = time.monotonic()
        return self

    def __exit__(self, *exc) -> None:
        import time

        assert self._start is not None
        self.stats.walls[self.phase] = (
            self.stats.walls.get(self.phase, 0.0) + time.monotonic() - self._start
        )
