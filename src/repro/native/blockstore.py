"""Spill-directory block store: the native counterpart of ``em.blockmanager``.

The simulator's :class:`~repro.em.blockmanager.BlockStore` hands out
block IDs and charges a performance model; this store hands out *files*
in a spill directory and moves real bytes with ``numpy`` ``fromfile`` /
``tofile``.  The same accounting hooks exist — every read and write is
tagged with the phase that issued it, so the per-phase I/O volumes the
paper's figures are built from fall out of a real run too.

Layout of one sort's spill directory::

    input_<rank>.dat            gensort-style input slice of one worker
    run<r>_piece<rank>.dat      phase-1 output: this worker's piece of run r
    seg<r>_rank<rank>.dat       phase-3 output: this worker's segment of run r
    output_<rank>.dat           phase-4 output: the rank's sorted slice
    manifest_<rank>.jsonl       recovery journal (when checkpointing)

All files are flat arrays of :data:`~repro.native.records.NATIVE_DTYPE`
records.

When the store is built with a ``namespace`` (the sort service gives
every job ``<job-id>-<fingerprint>``), each name above is prefixed
``<namespace>_``, so any number of jobs can share one spill directory
without a byte of overlap — and :func:`purge_namespace` can delete
exactly one job's files, never a neighbour's.
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..em.cache import LRUCache
from .records import (
    NATIVE_DTYPE,
    RECORD_BYTES,
    VarlenBatch,
    read_records,
    varlen_index_path,
)

__all__ = [
    "FileBlockStore",
    "SequentialReader",
    "VarlenAppender",
    "VarlenProbeCache",
    "purge_namespace",
]

#: Suffix appended to a phase tag for record-boundary index I/O, so the
#: per-phase *data* byte counters stay exactly conserved (index bytes
#: are bookkeeping, not records).
INDEX_TAG_SUFFIX = ":index"


def purge_namespace(root: str, namespace: str) -> int:
    """Delete exactly one job's spill files; returns how many were removed.

    The namespaced counterpart of ``shutil.rmtree(spill_dir)``: only
    files carrying the ``<namespace>_`` prefix go, so an aborting job on
    a shared spill directory can never take a concurrent job's blocks
    with it.  A missing directory or file is success, not an error.
    """
    if not namespace:
        raise ValueError("purge_namespace requires a non-empty namespace")
    prefix = f"{namespace}_"
    removed = 0
    try:
        names = os.listdir(root)
    except (FileNotFoundError, NotADirectoryError):
        return 0
    for name in names:
        if name.startswith(prefix):
            try:
                os.remove(os.path.join(root, name))
                removed += 1
            except OSError:
                pass
    return removed


class FileBlockStore:
    """One worker's view of the spill directory, with tagged I/O accounting."""

    def __init__(self, root: str, rank: int, block_records: int, chaos=None,
                 namespace: str = ""):
        if block_records < 1:
            raise ValueError(f"block_records must be >= 1, got {block_records}")
        self.root = str(root)
        self.rank = rank
        self.block_records = block_records
        #: Job namespace: a non-empty value prefixes every file name so
        #: concurrent jobs can share ``root`` without collisions.
        self.namespace = str(namespace)
        self._prefix = f"{self.namespace}_" if self.namespace else ""
        #: Optional fault-injection spec (duck-typed; may fail writes
        #: with a torn prefix + ENOSPC, like a really full disk).
        self.chaos = chaos
        os.makedirs(self.root, exist_ok=True)
        self.bytes_read: Dict[str, int] = {}
        self.bytes_written: Dict[str, int] = {}
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, int] = {}
        # The pipelined I/O layer (native.pipeline) issues reads and
        # writes from background threads; the counters stay exact under
        # this lock, and only *main-thread* I/O time counts as stall.
        self._lock = threading.Lock()
        self._stats = None
        self._main_thread: Optional[int] = None

    def attach_stats(self, stats) -> None:
        """Route I/O wait times into ``stats`` (a ``WorkerStats``).

        Records the calling thread as the worker's main thread: store
        operations issued from it are charged as per-phase I/O stall;
        operations from background pipeline threads are not — their
        duration is exactly the overlap the pipeline buys.
        """
        self._stats = stats
        self._main_thread = threading.get_ident()

    # -- paths ----------------------------------------------------------------

    def input_path(self, rank: Optional[int] = None) -> str:
        rank = self.rank if rank is None else rank
        return os.path.join(self.root, f"{self._prefix}input_{rank}.dat")

    def piece_path(self, run: int, rank: Optional[int] = None) -> str:
        rank = self.rank if rank is None else rank
        return os.path.join(self.root, f"{self._prefix}run{run}_piece{rank}.dat")

    def segment_path(self, run: int, rank: Optional[int] = None) -> str:
        rank = self.rank if rank is None else rank
        return os.path.join(self.root, f"{self._prefix}seg{run}_rank{rank}.dat")

    def output_path(self, rank: Optional[int] = None) -> str:
        rank = self.rank if rank is None else rank
        return os.path.join(self.root, f"{self._prefix}output_{rank}.dat")

    def manifest_path(self, rank: Optional[int] = None) -> str:
        """The rank's recovery journal (see :mod:`repro.recovery`)."""
        rank = self.rank if rank is None else rank
        return os.path.join(self.root, f"{self._prefix}manifest_{rank}.jsonl")

    # -- accounting -----------------------------------------------------------

    def _charge(self, table: Dict[str, int], ops: Dict[str, int], tag: str, n: int) -> None:
        with self._lock:
            table[tag] = table.get(tag, 0) + n
            ops[tag] = ops.get(tag, 0) + 1

    def charge_read(self, tag: str, nbytes: int) -> None:
        self._charge(self.bytes_read, self.reads, tag, nbytes)

    def charge_write(self, tag: str, nbytes: int) -> None:
        self._charge(self.bytes_written, self.writes, tag, nbytes)

    def _charge_stall(self, tag: str, seconds: float) -> None:
        """Count ``seconds`` as phase stall iff on the main thread."""
        if (
            self._stats is not None
            and threading.get_ident() == self._main_thread
        ):
            self._stats.add_stall(tag, seconds)

    # -- record I/O -----------------------------------------------------------

    def read_range(self, path: str, start: int, count: int, tag: str) -> np.ndarray:
        """Read ``count`` records at record offset ``start``."""
        t0 = time.monotonic()
        out = read_records(path, start, count)
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_read(tag, out.nbytes)
        return out

    def read_block(self, path: str, block_idx: int, tag: str) -> np.ndarray:
        """Read one fixed-size block (the last block may be short)."""
        return self.read_range(
            path, block_idx * self.block_records, self.block_records, tag
        )

    def read_blocks(self, path: str, block_ids, tag: str) -> np.ndarray:
        """Scatter-read whole blocks into one contiguous record array.

        The zero-copy sibling of per-block :meth:`read_block` +
        ``np.concatenate``: the destination array is allocated once and
        each maximal run of consecutive block IDs becomes a single
        positioned read straight into its slice (``os.preadv`` where the
        platform has it), so run formation fills its sort buffer without
        intermediate per-block arrays.  ``block_ids`` may arrive in any
        order (the schedule is shuffled); the file's last block may be
        short and can sit anywhere in the list.
        """
        ids = list(block_ids)
        if not ids:
            return np.empty(0, dtype=NATIVE_DTYPE)
        t0 = time.monotonic()
        bs = self.block_records
        file_records = os.path.getsize(path) // RECORD_BYTES
        n_blocks = (file_records + bs - 1) // bs
        bad = [b for b in ids if b < 0 or b >= n_blocks]
        if bad:
            # A clamped-to-zero read here would silently return a short
            # array and corrupt whatever schedule asked for the block.
            raise ValueError(
                f"{path}: block id {bad[0]} out of range "
                f"(file has {n_blocks} blocks of {bs} records)"
            )
        counts = [min(bs, file_records - b * bs) for b in ids]
        out = np.empty(sum(counts), dtype=NATIVE_DTYPE)
        mv = out.view(np.uint8).data
        use_preadv = hasattr(os, "preadv")
        with open(path, "rb", buffering=0) as fh:
            fd = fh.fileno()
            filled = 0
            i = 0
            while i < len(ids):
                # Coalesce: consecutive *full* blocks extend one read.
                j = i + 1
                nbytes = counts[i] * RECORD_BYTES
                while (
                    j < len(ids)
                    and ids[j] == ids[j - 1] + 1
                    and counts[j - 1] == bs
                ):
                    nbytes += counts[j] * RECORD_BYTES
                    j += 1
                offset = ids[i] * bs * RECORD_BYTES
                done = 0
                while done < nbytes:
                    dst = mv[filled + done : filled + nbytes]
                    if use_preadv:
                        got = os.preadv(fd, [dst], offset + done)
                    else:  # pragma: no cover - non-POSIX fallback
                        fh.seek(offset + done)
                        got = fh.readinto(dst)
                    if not got:
                        raise IOError(
                            f"{path}: short read at byte {offset + done} "
                            f"({done} of {nbytes})"
                        )
                    done += got
                self.charge_read(tag, nbytes)
                filled += nbytes
                i = j
        self._charge_stall(tag, time.monotonic() - t0)
        return out

    def _write_gate(self, handle, path: str, nbytes: int):
        """Consult the chaos spec before a write of ``nbytes``.

        Returns ``None`` to proceed normally; on an injected disk-full
        fault, writes the torn prefix the spec dictates and raises.
        """
        if self.chaos is None:
            return None
        clip = self.chaos.clip_write(self.rank, nbytes)
        return clip

    def write_file(self, path: str, records: np.ndarray, tag: str) -> None:
        """Write a whole record array with ``tofile`` (atomic per call)."""
        t0 = time.monotonic()
        with open(path, "wb") as handle:
            clip = self._write_gate(handle, path, records.nbytes)
            if clip is not None:
                handle.write(records.tobytes()[:clip])
                raise self.chaos.enospc_error(path)
            records.tofile(handle)
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_write(tag, records.nbytes)

    def append_records(self, handle, records: np.ndarray, tag: str) -> None:
        """Append records to an open binary file handle."""
        t0 = time.monotonic()
        clip = self._write_gate(handle, getattr(handle, "name", "?"), records.nbytes)
        if clip is not None:
            handle.write(records.tobytes()[:clip])
            raise self.chaos.enospc_error(getattr(handle, "name", "?"))
        records.tofile(handle)
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_write(tag, records.nbytes)

    def write_at(self, handle, record_offset: int, payload: bytes, tag: str) -> None:
        """Place a raw record chunk at a known record offset (phase 3)."""
        t0 = time.monotonic()
        handle.seek(record_offset * RECORD_BYTES)
        clip = self._write_gate(handle, getattr(handle, "name", "?"), len(payload))
        if clip is not None:
            handle.write(payload[:clip])
            raise self.chaos.enospc_error(getattr(handle, "name", "?"))
        handle.write(payload)
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_write(tag, len(payload))

    def preallocate(self, path: str, n_records: int) -> None:
        """Create ``path`` sized for ``n_records`` (sparse where supported).

        Idempotent on size: a file already at exactly the target size is
        left untouched, so a resumed all-to-all keeps the segment bytes
        delivered before the restart instead of zeroing them.
        """
        nbytes = n_records * RECORD_BYTES
        try:
            if os.path.getsize(path) == nbytes:
                return
        except OSError:
            pass
        with open(path, "wb") as handle:
            handle.truncate(nbytes)

    def verify_block_crcs(self, path: str, crcs, tag: str = "recovery"):
        """Compare each block of ``path`` against expected CRC-32s.

        Returns the list of mismatching block indices (a short read
        counts as a mismatch).  Used by suspect ranks on resume to prove
        their retained piece files survived the failure intact — bounded
        work on the suspects only, never a pass over the data.
        """
        bad = []
        for idx, want in enumerate(crcs):
            block = self.read_block(path, idx, tag)
            have = zlib.crc32(memoryview(np.ascontiguousarray(block)).cast("B"))
            if have != int(want):
                bad.append(idx)
        return bad

    def remove(self, path: str) -> None:
        """Remove a spill file; **idempotent** by contract.

        Phase teardown calls this unconditionally on every piece/segment
        path, and a rerun after a mid-phase crash (e.g. a chaos kill)
        may find some already gone — a missing file is success, not an
        error.  Covered by the rerun-after-kill regression test.
        """
        try:
            os.remove(path)
        except FileNotFoundError:
            pass
        # Varlen files carry a boundary-index sidecar; drop it (and its
        # cache entry) with the data so teardown stays one call per path.
        try:
            os.remove(varlen_index_path(path))
        except FileNotFoundError:
            pass
        self._invalidate_varlen_index(path)

    # -- probe reads (multiway selection) -------------------------------------

    def probe_cache(self, capacity_blocks: int) -> "ProbeCache":
        return ProbeCache(self, capacity_blocks)

    # -- variable-length record I/O -------------------------------------------
    #
    # Varlen files are byte streams plus a ``<path>.idx`` sidecar of
    # ``int64`` record-boundary offsets (see records.write_varlen_file),
    # so "block b" still means "records [b*B, (b+1)*B)" — only addressed
    # by byte offsets from the index instead of ``b * RECORD_BYTES``.
    # Index I/O is charged under ``tag + INDEX_TAG_SUFFIX`` to keep the
    # per-phase data byte counters exactly conserved.

    def varlen_offsets(self, path: str, tag: str) -> np.ndarray:
        """The record-boundary offsets of a varlen file (cached)."""
        with self._lock:
            cache = getattr(self, "_varlen_idx", None)
            if cache is None:
                cache = self._varlen_idx = {}
            offsets = cache.get(path)
        if offsets is not None:
            return offsets
        t0 = time.monotonic()
        offsets = np.fromfile(varlen_index_path(path), dtype=np.int64)
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_read(tag + INDEX_TAG_SUFFIX, offsets.nbytes)
        if len(offsets) < 1 or offsets[0] != 0:
            raise ValueError(f"{varlen_index_path(path)}: malformed index")
        with self._lock:
            self._varlen_idx[path] = offsets
        return offsets

    def _invalidate_varlen_index(self, path: str) -> None:
        with self._lock:
            cache = getattr(self, "_varlen_idx", None)
            if cache is not None:
                cache.pop(path, None)

    def varlen_record_count(self, path: str, tag: str) -> int:
        return len(self.varlen_offsets(path, tag)) - 1

    def read_varlen_range(
        self,
        path: str,
        start: int,
        count: int,
        tag: str,
        offsets: Optional[np.ndarray] = None,
    ) -> VarlenBatch:
        """Read ``count`` records at record offset ``start`` (one pread).

        ``offsets`` overrides the sidecar index — the merge phase reads
        segment files whose boundaries it already holds in memory (the
        all-to-all computed them), so segments need no ``.idx`` on disk.
        """
        if offsets is None:
            offsets = self.varlen_offsets(path, tag)
        n = len(offsets) - 1
        if start < 0 or start > n:
            raise ValueError(f"{path}: record start {start} out of range 0..{n}")
        stop = min(start + count, n)
        lo = int(offsets[start])
        hi = int(offsets[stop])
        nbytes = hi - lo
        t0 = time.monotonic()
        out = np.empty(nbytes, dtype=np.uint8)
        mv = out.data
        use_preadv = hasattr(os, "preadv")
        with open(path, "rb", buffering=0) as fh:
            fd = fh.fileno()
            done = 0
            while done < nbytes:
                dst = mv[done:nbytes]
                if use_preadv:
                    got = os.preadv(fd, [dst], lo + done)
                else:  # pragma: no cover - non-POSIX fallback
                    fh.seek(lo + done)
                    got = fh.readinto(dst)
                if not got:
                    raise IOError(
                        f"{path}: short read at byte {lo + done} "
                        f"({done} of {nbytes})"
                    )
                done += got
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_read(tag, nbytes)
        return VarlenBatch(out, offsets[start : stop + 1] - lo)

    def read_varlen_blocks(self, path: str, block_ids, tag: str) -> VarlenBatch:
        """Scatter-read whole varlen blocks (cf. :meth:`read_blocks`).

        The same contract: maximal runs of consecutive block IDs
        coalesce into one positioned read, the last block may be short,
        and an out-of-range ID raises ``ValueError``.
        """
        ids = list(block_ids)
        if not ids:
            return VarlenBatch.empty()
        offsets = self.varlen_offsets(path, tag)
        n = len(offsets) - 1
        bs = self.block_records
        n_blocks = (n + bs - 1) // bs
        bad = [b for b in ids if b < 0 or b >= n_blocks]
        if bad:
            raise ValueError(
                f"{path}: block id {bad[0]} out of range "
                f"(file has {n_blocks} blocks of {bs} records)"
            )
        parts = []
        i = 0
        while i < len(ids):
            j = i + 1
            while j < len(ids) and ids[j] == ids[j - 1] + 1:
                j += 1
            start = ids[i] * bs
            stop = min(ids[j - 1] * bs + bs, n)
            parts.append(
                self.read_varlen_range(
                    path, start, stop - start, tag, offsets=offsets
                )
            )
            i = j
        return VarlenBatch.concat(parts)

    def write_varlen_file(self, path: str, batch: VarlenBatch, tag: str) -> None:
        """Write a batch as ``path`` + ``path.idx``, with accounting."""
        appender = self.varlen_appender(path, tag)
        appender.append(batch)
        appender.close()

    def varlen_appender(self, path: str, tag: str) -> "VarlenAppender":
        return VarlenAppender(self, path, tag)

    def write_at_bytes(
        self, handle, byte_offset: int, payload, tag: str
    ) -> None:
        """Place a raw byte chunk at a known byte offset (string phase 3)."""
        t0 = time.monotonic()
        handle.seek(byte_offset)
        clip = self._write_gate(handle, getattr(handle, "name", "?"), len(payload))
        if clip is not None:
            handle.write(bytes(payload)[:clip])
            raise self.chaos.enospc_error(getattr(handle, "name", "?"))
        handle.write(payload)
        self._charge_stall(tag, time.monotonic() - t0)
        self.charge_write(tag, len(payload))

    def preallocate_bytes(self, path: str, nbytes: int) -> None:
        """Byte-sized :meth:`preallocate` (same size-idempotence contract)."""
        try:
            if os.path.getsize(path) == nbytes:
                return
        except OSError:
            pass
        with open(path, "wb") as handle:
            handle.truncate(nbytes)

    def varlen_probe_cache(self, capacity_blocks: int) -> "VarlenProbeCache":
        return VarlenProbeCache(self, capacity_blocks)


class ProbeCache:
    """Block-granular key reads with an LRU — the selection phase's cache.

    Mirrors the simulator's use of :class:`repro.em.cache.LRUCache` in
    :mod:`repro.core.selection_phase`: a probe at record position ``pos``
    of a piece file faults in the whole surrounding block once, and the
    paper's ``R log B`` re-touches hit the cache.
    """

    def __init__(self, store: FileBlockStore, capacity_blocks: int):
        self.store = store
        self.cache = LRUCache(max(1, capacity_blocks))
        self.block_reads = 0

    @property
    def hits(self) -> int:
        return self.cache.hits

    def key_at(self, path: str, pos: int, tag: str) -> int:
        """The key of record ``pos`` of ``path`` (cached, block-granular)."""
        block_idx = pos // self.store.block_records
        cached = self.cache.get((path, block_idx))
        if cached is None:
            block = self.store.read_block(path, block_idx, tag)
            cached = np.ascontiguousarray(block["key"])
            self.cache.put((path, block_idx), cached)
            self.block_reads += 1
        return int(cached[pos - block_idx * self.store.block_records])


class VarlenAppender:
    """Stream-append varlen batches to one file, writing the index on close.

    The string phases' counterpart of open-handle ``append_records``:
    input generation and the merge emit batches as they go; the
    record-boundary offsets accumulate in memory and land in the
    ``.idx`` sidecar when the file is complete.
    """

    def __init__(self, store: FileBlockStore, path: str, tag: str):
        self.store = store
        self.path = path
        self.tag = tag
        self._handle = open(path, "wb")
        self._offsets = [0]
        self._total = 0
        self._closed = False

    @property
    def n_records(self) -> int:
        return len(self._offsets) - 1

    def append(self, batch: VarlenBatch) -> None:
        mv = batch.bytes_view()
        t0 = time.monotonic()
        clip = self.store._write_gate(self._handle, self.path, len(mv))
        if clip is not None:
            self._handle.write(bytes(mv)[:clip])
            raise self.store.chaos.enospc_error(self.path)
        self._handle.write(mv)
        self.store._charge_stall(self.tag, time.monotonic() - t0)
        self.store.charge_write(self.tag, len(mv))
        base = self._total
        self._offsets.extend(base + int(o) for o in batch.offsets[1:])
        self._total = base + len(mv)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._handle.close()
        offsets = np.asarray(self._offsets, dtype=np.int64)
        with open(varlen_index_path(self.path), "wb") as handle:
            offsets.tofile(handle)
        self.store.charge_write(self.tag + INDEX_TAG_SUFFIX, offsets.nbytes)
        self.store._invalidate_varlen_index(self.path)


class VarlenProbeCache:
    """Block-granular *string* key reads with an LRU (cf. ProbeCache).

    Returns the raw byte key; the selection driver embeds it into the
    order-preserving integer form the shared multiway-selection kernel
    compares (see ``records.embed_key``).
    """

    def __init__(self, store: FileBlockStore, capacity_blocks: int):
        self.store = store
        self.cache = LRUCache(max(1, capacity_blocks))
        self.block_reads = 0

    @property
    def hits(self) -> int:
        return self.cache.hits

    def key_at(self, path: str, pos: int, tag: str) -> bytes:
        block_idx = pos // self.store.block_records
        cached = self.cache.get((path, block_idx))
        if cached is None:
            batch = self.store.read_varlen_range(
                path,
                block_idx * self.store.block_records,
                self.store.block_records,
                tag,
            )
            cached = batch.keys()
            self.cache.put((path, block_idx), cached)
            self.block_reads += 1
        return cached[pos - block_idx * self.store.block_records]


class SequentialReader:
    """Stream a record file block by block (the merge phase's run reader)."""

    def __init__(self, store: FileBlockStore, path: str, tag: str,
                 n_records: Optional[int] = None):
        self.store = store
        self.path = path
        self.tag = tag
        from .records import record_count

        self.n_records = record_count(path) if n_records is None else n_records
        self.pos = 0

    @property
    def exhausted(self) -> bool:
        return self.pos >= self.n_records

    def next_block(self) -> Optional[np.ndarray]:
        """The next block of records, or None at end of file."""
        if self.exhausted:
            return None
        count = min(self.store.block_records, self.n_records - self.pos)
        out = self.store.read_range(self.path, self.pos, count, self.tag)
        if len(out) != count:
            raise IOError(
                f"{self.path}: short read at record {self.pos} "
                f"({len(out)} of {count})"
            )
        self.pos += count
        return out

    def blocks(self) -> Iterator[np.ndarray]:
        while True:
            block = self.next_block()
            if block is None:
                return
            yield block
