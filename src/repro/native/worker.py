"""Worker-process entry point: one PE of the native sort.

A worker owns one rank: it generates (or finds) its input slice in the
spill directory, runs the four phases against its peers over the
interconnect mesh, and reports its
:class:`~repro.native.stats.WorkerStats` plus the streaming verification
data of its output file back to the driver over a dedicated result
channel.  Any exception is caught and shipped to the driver as a
formatted traceback so a crashed PE never hangs the job.

Two entry points share one body (:func:`_run_phases`):

* :func:`worker_main` — the pipe transport: the driver spawned this
  process and handed it pre-connected pipe ends and a result pipe;
* :func:`tcp_worker_main` — the TCP transport: the process (spawned by
  the driver *or* launched independently via ``python -m repro worker``)
  dials the rendezvous coordinator, receives the job and the peer table
  over the wire, builds the socket mesh, and reports on the rendezvous
  connection itself.

Fault-injection hook points (``job.chaos``, see
:mod:`repro.testing.chaos`) bracket every phase: a chaos spec may kill
the process, stall it, sever or wedge its mesh, or corrupt the result
channel at any phase boundary, which is how the conformance suite holds
the driver to its fail-fast contract.
"""

from __future__ import annotations

import os
import traceback
from typing import Dict, Optional, Tuple

from .algos import resolve_algorithm
from .blockstore import FileBlockStore
from .comm import PipeComm
from .comm_api import Comm
from .job import NativeJob
from .phases import (
    NativeContext,
    OutputMeta,
    restore_runs,
    verify_restored_pieces,
)
from .stats import PhaseClock, WorkerStats, max_rss_bytes

__all__ = ["worker_main", "tcp_worker_main"]


def _chaos_point(
    job: NativeJob, rank: int, point: str, result_conn, comm=None
) -> None:
    """Fire the fault-injection hook, if a chaos spec rides on the job."""
    chaos = getattr(job, "chaos", None)
    if chaos is not None:
        chaos.at_point(rank, point, result_conn=result_conn, comm=comm)


def _run_phases(rank: int, job: NativeJob, comm: Comm, result_conn,
                persistent: bool = False) -> None:
    """The four phases over an established mesh; reports, never raises.

    ``persistent`` is the warm-pool mode: the comm and the result
    channel outlive this job (the pool worker resets the comm itself and
    keeps its control pipe), so the final teardown skips both.
    """

    def at(point: str) -> None:
        _chaos_point(job, rank, point, result_conn, comm=comm)

    # The (algorithm, record model) pair picks the phase implementations
    # from the backend registry (see native/algos): canonical's
    # fixed-slot phases, their byte-rank string twins, or the striped /
    # guidesort backends.  Job validation guarantees only registered
    # combinations arrive here, and that non-canonical and varlen jobs
    # never reach the checkpoint/resume branches below.
    algorithm = resolve_algorithm(
        getattr(job, "algo", "canonical"), getattr(job, "records", "fixed16")
    )
    fn_generate, fn_run_formation, fn_selection, fn_all_to_all, fn_merge = (
        algorithm.phase_fns
    )

    journal = None
    try:
        stats = WorkerStats(rank=rank)
        chaos = getattr(job, "chaos", None)
        epoch = int(getattr(job, "epoch", 0))
        if chaos is not None and hasattr(chaos, "set_epoch"):
            # Fault specs fire on one attempt only (fire_epoch); a
            # resumed epoch must not re-trip the fault that killed it.
            chaos.set_epoch(epoch)
        store = FileBlockStore(
            job.spill_dir, rank, job.block_records, chaos=chaos,
            namespace=getattr(job, "spill_namespace", ""),
        )
        # I/O stall attribution: store ops on *this* thread count as
        # per-phase stall; background pipeline threads' ops do not.
        store.attach_stats(stats)
        ctx = NativeContext(
            rank=rank, job=job, comm=comm, store=store, stats=stats
        )

        # Checkpointing: open this rank's manifest journal and, on a
        # resume (epoch > 0), agree with the peers on the highest phase
        # *every* rank durably completed.  The journal invariant (record
        # written before the barrier) guarantees global_done never
        # overshoots what any rank can restore.
        resume = None
        global_done = -1
        if getattr(job, "checkpointing", False):
            from ..recovery.manifest import RankJournal, job_fingerprint

            journal = RankJournal(
                store.manifest_path(), job_fingerprint(job), rank
            )
            if epoch > 0:
                resume = journal.load_resume()
            journal.begin_epoch(epoch)
            ctx.journal = journal
            ctx.resume = resume
            done = resume.completed_index if resume is not None else -1
            comm.set_phase("resume")
            global_done = min(comm.allgather(done))

        if global_done < 0 and (
            job.generate or not os.path.exists(store.input_path())
        ):
            comm.set_phase("generate")
            at("before:generate")
            with PhaseClock(stats, "generate"):
                fn_generate(ctx)
                if journal is not None:
                    journal.generate_done()
                comm.barrier()
            at("after:generate")

        comm.set_phase("run_formation")
        at("before:run_formation")
        with PhaseClock(stats, "run_formation"):
            if global_done >= 1:
                runs = restore_runs(ctx, resume)
                if rank in getattr(job, "suspect_ranks", ()) and global_done <= 2:
                    # Pieces are still an input (selection probes and the
                    # all-to-all read them): a suspect rank must prove its
                    # retained blocks survived the failure.
                    verify_restored_pieces(
                        ctx,
                        [resume.rf_runs[r] for r in range(len(resume.rf_runs))],
                    )
            else:
                runs = fn_run_formation(ctx)
            comm.barrier()
        at("after:run_formation")
        comm.set_phase("selection")
        at("before:selection")
        with PhaseClock(stats, "selection"):
            if global_done >= 2:
                splits = [list(row) for row in resume.selection_splits]
                stats.add_counter("recovery_phases_restored")
            else:
                splits = fn_selection(ctx, runs)
            comm.barrier()
        at("after:selection")
        comm.set_phase("all_to_all")
        at("before:all_to_all")
        with PhaseClock(stats, "all_to_all"):
            if global_done >= 3:
                seg_len = [int(x) for x in resume.a2a_seg_len]
                block_first_keys = [
                    list(keys) for keys in resume.a2a_block_first_keys
                ]
                stats.add_counter("recovery_phases_restored")
                # a2a_done is journaled *before* piece teardown, so a
                # crash in between leaves pieces behind; finish the job.
                for r in range(len(seg_len)):
                    store.remove(store.piece_path(r))
            else:
                seg_len, block_first_keys = fn_all_to_all(ctx, runs, splits)
            comm.barrier()
        at("after:all_to_all")
        comm.set_phase("merge")
        at("before:merge")
        with PhaseClock(stats, "merge"):
            # Merge is the one phase restored *per-rank* rather than by
            # the global minimum: it does no communication, and a rank
            # that ran ahead, finished its merge and tore down its
            # segments before the failed attempt died has nothing left
            # to re-merge — its durable OutputMeta is the only truth.
            if global_done >= 4 or (
                resume is not None and resume.merge_meta is not None
            ):
                out_meta = OutputMeta(**resume.merge_meta)
                stats.add_counter("recovery_phases_restored")
                for r in range(len(seg_len)):
                    store.remove(store.segment_path(r))
            else:
                out_meta = fn_merge(ctx, seg_len, block_first_keys)
            comm.barrier()
        at("after:merge")

        fenced = int(getattr(comm, "fenced_drops", 0))
        if fenced:
            stats.add_counter("recovery_fenced_frames", float(fenced))

        for phase, nbytes in store.bytes_read.items():
            stats.bytes_read[phase] = nbytes
        for phase, nbytes in store.bytes_written.items():
            stats.bytes_written[phase] = nbytes
        stats.comm_bytes_sent = comm.bytes_sent
        stats.comm_bytes_received = comm.bytes_received
        stats.comm_wire_sent = dict(comm.wire_sent)
        stats.comm_wire_recv = dict(comm.wire_recv)
        stats.comm_local_bytes = dict(comm.local_bytes)
        stats.comm_peer_sent = dict(comm.peer_sent)
        stats.comm_peer_recv = dict(comm.peer_recv)
        stats.comm_socket_bytes_sent = getattr(comm, "socket_bytes_sent", 0)
        stats.comm_socket_bytes_recv = getattr(comm, "socket_bytes_received", 0)
        stats.max_rss_bytes = max_rss_bytes()

        at("before:report")
        result_conn.send(
            ("ok", stats, out_meta, ctx.input_checksum, len(runs))
        )
    except Exception:  # pragma: no cover - exercised via driver error tests
        try:
            result_conn.send(("error", rank, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if journal is not None:
            try:
                journal.close()
            except Exception:
                pass
        if not persistent:
            try:
                comm.close()
            except Exception:
                pass
            try:
                result_conn.close()
            except Exception:
                pass


def worker_main(rank: int, job: NativeJob, peer_conns: Dict, result_conn) -> None:
    """Run rank ``rank`` of ``job`` over pipes; report ("ok"/"error", ...)."""
    try:
        comm = PipeComm(
            rank,
            job.n_workers,
            peer_conns,
            timeout=job.timeout,
            chaos=getattr(job, "chaos", None),
            pending_sends=getattr(job, "pending_sends", 4),
            job_epoch=getattr(job, "epoch", 0),
            job_tag=getattr(job, "job_tag", 0),
        )
    except Exception:
        try:
            result_conn.send(("error", rank, traceback.format_exc()))
            result_conn.close()
        except Exception:
            pass
        return
    _run_phases(rank, job, comm, result_conn)


def shm_worker_main(
    rank: int, job: NativeJob, channels: Dict, result_conn
) -> None:
    """Run rank ``rank`` of ``job`` over shared-memory rings.

    ``channels`` maps peer rank to a
    :class:`~repro.native.shm.ShmChannelSpec`; the comm attaches every
    ring by name (the driver created the segments before forking).
    """
    from .shm import ShmComm

    try:
        comm = ShmComm(
            rank,
            job.n_workers,
            channels,
            timeout=job.timeout,
            chaos=getattr(job, "chaos", None),
            pending_sends=getattr(job, "pending_sends", 4),
            job_epoch=getattr(job, "epoch", 0),
            job_tag=getattr(job, "job_tag", 0),
            own_channel_ends=True,
        )
    except Exception:
        try:
            result_conn.send(("error", rank, traceback.format_exc()))
            result_conn.close()
        except Exception:
            pass
        return
    _run_phases(rank, job, comm, result_conn)


def tcp_worker_main(
    rank: int,
    connect: Tuple[str, int],
    connect_timeout: float = 60.0,
    job: Optional[NativeJob] = None,
) -> None:
    """Run rank ``rank`` over TCP: rendezvous, mesh up, sort, report.

    ``connect`` is the coordinator's ``(host, port)``.  With ``job=None``
    (always, today — even driver-spawned workers fetch the job over the
    wire, so this path is identical for local and remote PEs) the job
    arrives in the WELCOME.  Used both as a spawned-process target and by
    the ``python -m repro worker`` CLI.
    """
    from ..net.rendezvous import ResultChannel, join_mesh
    from ..net.tcp import TcpComm

    try:
        job, coord_sock, socks = join_mesh(
            connect, rank, connect_timeout=connect_timeout, job=job
        )
    except Exception:
        # No channel to report on: the driver sees the rendezvous fail
        # (missing rank / dead sentinel); a CLI user sees the traceback.
        traceback.print_exc()
        raise SystemExit(1)
    result_conn = ResultChannel(coord_sock)
    try:
        comm = TcpComm(
            rank,
            job.n_workers,
            socks,
            timeout=job.timeout,
            pending_sends=getattr(job, "pending_sends", 4),
            chaos=getattr(job, "chaos", None),
            heartbeat_s=getattr(job, "heartbeat_s", 5.0),
            job_epoch=getattr(job, "epoch", 0),
            job_tag=getattr(job, "job_tag", 0),
        )
    except Exception:
        try:
            result_conn.send(("error", rank, traceback.format_exc()))
            result_conn.close()
        except Exception:
            pass
        return
    _run_phases(rank, job, comm, result_conn)
