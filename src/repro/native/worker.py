"""Worker-process entry point: one PE of the native sort.

A worker owns one rank: it generates (or finds) its input slice in the
spill directory, runs the four phases against its peers over the pipe
mesh, and reports its :class:`~repro.native.stats.WorkerStats` plus the
streaming verification data of its output file back to the driver over a
dedicated result pipe.  Any exception is caught and shipped to the
driver as a formatted traceback so a crashed PE never hangs the job.

Fault-injection hook points (``job.chaos``, see
:mod:`repro.testing.chaos`) bracket every phase: a chaos spec may kill
the process, stall it, or corrupt the result pipe at any phase boundary,
which is how the conformance suite holds the driver to its fail-fast
contract.
"""

from __future__ import annotations

import os
import traceback
from typing import Dict

from .blockstore import FileBlockStore
from .comm import PipeComm
from .job import NativeJob
from .phases import (
    NativeContext,
    all_to_all,
    generate_input,
    merge,
    run_formation,
    selection,
)
from .stats import PhaseClock, WorkerStats, max_rss_bytes

__all__ = ["worker_main"]


def _chaos_point(job: NativeJob, rank: int, point: str, result_conn) -> None:
    """Fire the fault-injection hook, if a chaos spec rides on the job."""
    chaos = getattr(job, "chaos", None)
    if chaos is not None:
        chaos.at_point(rank, point, result_conn=result_conn)


def worker_main(rank: int, job: NativeJob, peer_conns: Dict, result_conn) -> None:
    """Run rank ``rank`` of ``job``; report ("ok", ...) or ("error", ...)."""
    comm = None
    chaos = getattr(job, "chaos", None)

    def at(point: str) -> None:
        _chaos_point(job, rank, point, result_conn)

    try:
        stats = WorkerStats(rank=rank)
        comm = PipeComm(
            rank, job.n_workers, peer_conns, timeout=job.timeout, chaos=chaos
        )
        store = FileBlockStore(
            job.spill_dir, rank, job.block_records, chaos=chaos
        )
        # I/O stall attribution: store ops on *this* thread count as
        # per-phase stall; background pipeline threads' ops do not.
        store.attach_stats(stats)
        ctx = NativeContext(
            rank=rank, job=job, comm=comm, store=store, stats=stats
        )

        if job.generate or not os.path.exists(store.input_path()):
            at("before:generate")
            with PhaseClock(stats, "generate"):
                generate_input(ctx)
                comm.barrier()
            at("after:generate")

        at("before:run_formation")
        with PhaseClock(stats, "run_formation"):
            runs = run_formation(ctx)
            comm.barrier()
        at("after:run_formation")
        at("before:selection")
        with PhaseClock(stats, "selection"):
            splits = selection(ctx, runs)
            comm.barrier()
        at("after:selection")
        at("before:all_to_all")
        with PhaseClock(stats, "all_to_all"):
            seg_len, block_first_keys = all_to_all(ctx, runs, splits)
            comm.barrier()
        at("after:all_to_all")
        at("before:merge")
        with PhaseClock(stats, "merge"):
            out_meta = merge(ctx, seg_len, block_first_keys)
            comm.barrier()
        at("after:merge")

        for phase, nbytes in store.bytes_read.items():
            stats.bytes_read[phase] = nbytes
        for phase, nbytes in store.bytes_written.items():
            stats.bytes_written[phase] = nbytes
        stats.comm_bytes_sent = comm.bytes_sent
        stats.comm_bytes_received = comm.bytes_received
        stats.max_rss_bytes = max_rss_bytes()

        at("before:report")
        result_conn.send(
            ("ok", stats, out_meta, ctx.input_checksum, len(runs))
        )
    except Exception:  # pragma: no cover - exercised via driver error tests
        try:
            result_conn.send(("error", rank, traceback.format_exc()))
        except Exception:
            pass
    finally:
        if comm is not None:
            try:
                comm.close()
            except Exception:
                pass
        try:
            result_conn.close()
        except Exception:
            pass
