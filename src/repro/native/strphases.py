"""CANONICALMERGESORT over variable-length string records.

The string twins of the four fixed-record phases in
:mod:`repro.native.phases`, same contracts, generalized from slot
arithmetic to byte-lexicographic key ranks:

* records are the length-prefixed varlen layout of
  :class:`~repro.native.records.VarlenBatch`, stored as byte files with
  an ``.idx`` record-boundary sidecar (:mod:`repro.native.blockstore`);
* the exact multiway selection reuses the *unchanged* integer kernels of
  :mod:`repro.algos.multiway_selection` — NUL-free keys embed into
  integers preserving lexicographic order
  (:func:`~repro.native.records.embed_key`), with the pad width agreed
  globally from the maximum key length;
* every sorted key sequence that crosses the wire — the run-formation
  sample allgather, the internal-sort exchange, the all-to-all record
  chunks — travels LCP front-coded per *Communication-Efficient String
  Sorting* (Bingmann, Sanders, Schimek), and the trimmed bytes are
  counted so the volume accounting stays provable::

      <phase>_wire_bytes == <phase>_raw_bytes
                            + <phase>_overhead_bytes
                            - <phase>_trimmed_bytes

Splitter ranks stay *record-count* ranks (rank i owns records
``[i*N/P, (i+1)*N/P)`` of the sorted order, exactly the fixed-model
contract, so the oracle's exact-rank cut carries over); byte-rank
bookkeeping appears where the fixed code used ``pos * RECORD_BYTES`` —
segment placement, boundary harvesting, conservation — via the offset
arrays the senders ship along with each chunk.

String jobs do not (yet) support checkpoint/recovery, pipelined I/O, or
chaos injection; :class:`~repro.native.job.NativeJob` validation rejects
those combinations up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algos.multiway_selection import (
    select_bisect_coroutine,
    select_coroutine,
)
from .phases import (
    TAG_A2A,
    TAG_MERGE,
    TAG_RF,
    TAG_SEL,
    NativeContext,
    NativeRun,
    OutputMeta,
    _chunk_schedule,
)
from .records import (
    VarlenBatch,
    embed_key,
    generate_string_batch,
    lcp_decode_batch,
    lcp_decode_keys,
    lcp_encode_batch,
    lcp_encode_keys,
    merge_varlen_batches,
    string_checksum,
)

__all__ = [
    "StrPieceMeta",
    "generate_input",
    "run_formation",
    "selection",
    "all_to_all",
    "merge",
]


@dataclass
class StrPieceMeta:
    """Descriptor of one worker's varlen piece of one run.

    Duck-typed where :class:`~repro.native.phases.NativeRun` cares
    (``n_records``); samples travel LCP front-coded in the metadata
    allgather and decode lazily on first use.
    """

    run: int
    rank: int
    n_records: int
    samples_wire: bytes
    sample_every: int
    max_key_len: int
    _samples: Optional[List[bytes]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def sample_keys(self) -> List[bytes]:
        if self._samples is None:
            self._samples = lcp_decode_keys(self.samples_wire)
        return self._samples

    @property
    def n_keys(self) -> int:
        return self.n_records


def _count_lcp(ctx: NativeContext, phase: str, raw: int, wire: int,
               overhead: int, trimmed: int) -> None:
    """Accumulate the provable LCP volume identity for one phase."""
    ctx.stats.add_counter(f"{phase}_raw_bytes", float(raw))
    ctx.stats.add_counter(f"{phase}_wire_bytes", float(wire))
    ctx.stats.add_counter(f"{phase}_overhead_bytes", float(overhead))
    ctx.stats.add_counter(f"{phase}_trimmed_bytes", float(trimmed))


# --------------------------------------------------------------- phase 0


def generate_input(ctx: NativeContext) -> None:
    """Write this worker's string input slice (index order)."""
    job = ctx.job
    start = job.worker_start(ctx.rank)
    n = job.records_per_worker
    batch_n = max(job.block_records, job.chunk_records)
    appender = ctx.store.varlen_appender(ctx.store.input_path(), "generate")
    try:
        for s in range(0, n, batch_n):
            count = min(batch_n, n - s)
            appender.append(
                generate_string_batch(
                    start + s, count, seed=job.config.seed, skew=job.skew
                )
            )
    finally:
        appender.close()


# --------------------------------------------------------------- phase 1


def _sample_warm_start(
    samples: List[List[bytes]],
    sample_every: int,
    rank: int,
    lengths: Sequence[int],
) -> Tuple[List[int], int]:
    """Pure-Python port of ``sample_initial_positions`` for bytes keys.

    ``samples[j][i]`` is the key at position ``i * sample_every`` of
    sequence ``j``; ties sort by (key, sequence, sample index), matching
    the numpy ``lexsort`` of the fixed kernel.
    """
    n_seqs = len(samples)
    total = sum(len(s) for s in samples)
    if total == 0 or rank == 0:
        return [0] * n_seqs, sample_every
    triples = sorted(
        (key, j, i)
        for j, seq in enumerate(samples)
        for i, key in enumerate(seq)
    )
    t = min(rank // sample_every, total - 1)
    counts = [0] * n_seqs
    for _key, j, _i in triples[: t + 1]:
        counts[j] += 1
    positions = [0] * n_seqs
    for j in range(n_seqs):
        c = counts[j]
        pos = 0 if c == 0 else (c - 1) * sample_every
        positions[j] = min(pos, int(lengths[j]))
    return positions, sample_every


def _piece_warm_start(
    run_samples: List[List[Tuple[bytes, int]]],
    rank: int,
    lengths: Sequence[int],
    sample_every: int,
) -> Tuple[List[int], int]:
    """Pure-Python port of ``warm_start_from_samples`` for bytes keys.

    ``run_samples[r]`` is the run's (key, global position) sample pairs
    in position order, stitched across the rank-ordered pieces.
    """
    n_runs = len(run_samples)
    if rank <= 0:
        return [0] * n_runs, sample_every
    triples = sorted(
        (key, r, pos)
        for r, pairs in enumerate(run_samples)
        for key, pos in pairs
    )
    if not triples:
        return [0] * n_runs, sample_every
    t = min(rank // sample_every, len(triples) - 1)
    counts = [0] * n_runs
    for _key, r, _pos in triples[: t + 1]:
        counts[r] += 1
    out = [0] * n_runs
    for r in range(n_runs):
        c = counts[r]
        if c > 0:
            out[r] = min(run_samples[r][c - 1][1], int(lengths[r]))
    return out, sample_every


def _distributed_sort_run(
    ctx: NativeContext, batch: VarlenBatch, run_id: int
) -> VarlenBatch:
    """Globally sort one string run; returns this rank's exact piece.

    Identical structure to the fixed ``_distributed_sort_run`` — exact
    record-count quantiles via the shared probe-selection kernel, a
    chunked all-to-all, a stable batch merge — with the sample allgather
    and the record chunks LCP front-coded for the wire.
    """
    job, comm, rank = ctx.job, ctx.comm, ctx.rank
    n_workers = job.n_workers
    if n_workers == 1:
        return batch

    keys = batch.keys()
    lengths: List[int] = comm.allgather(len(batch))
    total = sum(lengths)
    target = rank * total // n_workers
    width = comm.allreduce(batch.max_key_len() + 1, max)

    my_samples = keys[:: job.sample_every]
    wire, saved = lcp_encode_keys(my_samples)
    _count_lcp(
        ctx, "rf_sample",
        raw=sum(len(k) for k in my_samples),
        wire=len(wire),
        overhead=4 + 8 * len(my_samples),
        trimmed=saved,
    )
    sample_lists = [lcp_decode_keys(w) for w in comm.allgather(wire)]
    init_pos, init_step = _sample_warm_start(
        sample_lists, job.sample_every, target, lengths
    )
    gen = select_coroutine(
        lengths, target, init_positions=init_pos, init_step=init_step
    )
    result = comm.selection_round(
        gen,
        local_lookup=lambda pos: embed_key(keys[pos], width),
        owner_of=lambda seq: seq,
    )
    ctx.stats.add_counter("internal_selection_touches", result.touches)

    positions: List[List[int]] = comm.allgather(result.positions)
    positions.append(list(lengths))

    block = job.block_records
    received: Dict[int, List[Tuple[int, bytes]]] = {
        j: [] for j in range(n_workers)
    }
    recv_bytes = 0

    def outgoing():
        for dest in range(n_workers):
            lo = positions[dest][rank]
            hi = positions[dest + 1][rank]
            for k, s in enumerate(range(lo, hi, block)):
                chunk = batch.slice(s, min(s + block, hi))
                chunk_wire, chunk_saved = lcp_encode_batch(chunk)
                _count_lcp(
                    ctx, "rf_xchg",
                    raw=chunk.nbytes,
                    wire=len(chunk_wire),
                    overhead=4 + 4 * len(chunk),
                    trimmed=chunk_saved,
                )
                yield dest, ("sfx", run_id, k, chunk_wire)

    def on_chunk(peer: int, payload: tuple) -> None:
        nonlocal recv_bytes
        kind, rid, k, buf = payload
        assert kind == "sfx" and rid == run_id
        received[peer].append((k, bytes(buf)))
        recv_bytes += len(buf)

    comm.exchange(outgoing(), on_chunk)
    ctx.stats.note_resident(batch.nbytes + recv_bytes)
    del batch, keys

    parts = []
    for sender in range(n_workers):
        bufs = [lcp_decode_batch(b) for _k, b in sorted(received[sender])]
        received[sender] = []
        if bufs:
            parts.append(VarlenBatch.concat(bufs))
    merged = merge_varlen_batches(parts)
    ctx.stats.note_resident(2 * merged.nbytes)
    ctx.stats.add_counter(
        "internal_sort_sent_records", sum(lengths) // n_workers
    )
    return merged


def run_formation(ctx: NativeContext) -> List[NativeRun]:
    """Phase 1: form R globally sorted string runs, one piece file each."""
    job, comm, store = ctx.job, ctx.comm, ctx.store
    chunks = _chunk_schedule(ctx)
    n_runs = comm.allreduce(len(chunks), max)
    input_path = store.input_path()

    metas: List[StrPieceMeta] = []
    for r in range(n_runs):
        block_ids = chunks[r] if r < len(chunks) else []
        batch = store.read_varlen_blocks(input_path, block_ids, TAG_RF)
        ctx.input_checksum = string_checksum(batch, ctx.input_checksum)
        ctx.stats.note_resident(2 * batch.nbytes)
        batch = batch.sort()

        piece = _distributed_sort_run(ctx, batch, run_id=r)
        del batch

        store.write_varlen_file(store.piece_path(r), piece, TAG_RF)
        sample = piece.keys()[:: job.sample_every]
        samples_wire, _saved = lcp_encode_keys(sample)
        metas.append(
            StrPieceMeta(
                run=r,
                rank=ctx.rank,
                n_records=len(piece),
                samples_wire=samples_wire,
                sample_every=job.sample_every,
                max_key_len=piece.max_key_len(),
            )
        )
        del piece
    ctx.stats.add_counter("runs_formed", len(metas))

    all_metas: List[List[StrPieceMeta]] = comm.allgather(metas)
    return [
        NativeRun(r, [all_metas[j][r] for j in range(job.n_workers)])
        for r in range(n_runs)
    ]


# --------------------------------------------------------------- phase 2


def selection(ctx: NativeContext, runs: List[NativeRun]) -> List[List[int]]:
    """Phase 2: exact record-rank splitters over the string runs.

    The probe loop is the fixed one verbatim except that a probe reply
    is the record's *byte key* read through the varlen probe cache and
    embedded into the order-preserving integer the shared selection
    kernel compares; the pad width comes from the allgathered per-piece
    maximum key lengths, so every rank embeds identically.
    """
    job, comm, store = ctx.job, ctx.comm, ctx.store
    lengths = [run.n_records for run in runs]
    total = sum(lengths)
    target = ctx.rank * total // job.n_workers
    width = 1 + max(
        (p.max_key_len for run in runs for p in run.pieces), default=0
    )

    if job.config.selection == "sampled":
        run_samples: List[List[Tuple[bytes, int]]] = []
        for run in runs:
            pairs: List[Tuple[bytes, int]] = []
            for n, piece in enumerate(run.pieces):
                for i, key in enumerate(piece.sample_keys):
                    pairs.append((key, i * piece.sample_every + run.offsets[n]))
            run_samples.append(pairs)
        init_pos, init_step = _piece_warm_start(
            run_samples, target, lengths, job.sample_every
        )
        gen = select_coroutine(
            lengths, target, init_positions=init_pos, init_step=init_step
        )
    elif job.config.selection == "basic":
        gen = select_coroutine(lengths, target)
    else:
        gen = select_bisect_coroutine(lengths, target)

    cache = store.varlen_probe_cache(job.selection_cache_blocks)
    try:
        request = next(gen)
        while True:
            r, gpos = request
            owner, lpos = runs[r].locate(gpos)
            if owner != ctx.rank:
                ctx.stats.add_counter("selection_remote_probes")
            key = cache.key_at(store.piece_path(r, owner), lpos, TAG_SEL)
            request = gen.send(embed_key(key, width))
    except StopIteration as stop:
        result = stop.value

    ctx.stats.add_counter("selection_touches", result.touches)
    ctx.stats.add_counter("selection_block_reads", cache.block_reads)
    ctx.stats.add_counter("selection_cache_hits", cache.hits)
    ctx.stats.add_counter(
        "selection_fixup_swaps", getattr(result, "fixup_swaps", 0)
    )

    all_positions: List[List[int]] = comm.allgather(list(result.positions))
    splits = [list(p) for p in all_positions]
    splits.append(list(lengths))
    return splits


# --------------------------------------------------------------- phase 3


def all_to_all(
    ctx: NativeContext, runs: List[NativeRun], splits: List[List[int]]
) -> Tuple[List[int], List[np.ndarray]]:
    """Phase 3: the string all-to-all, disk → wire → disk, prefix-trimmed.

    Record-space layout (who owns which records of which run) is the
    fixed phase verbatim; bytes need one extra agreement round — an
    allgather of each sender's per-(run, dest) slice byte sizes — so
    every receiver can precompute exact byte bases per channel and place
    arrivals positionally, preserving the no-post-hoc-sort property.
    Chunks travel LCP front-coded; each carries its record and byte
    offset *within its channel*, and the receiver rebuilds the segment's
    record-boundary offsets as the bytes land (the varlen analogue of
    the fixed phase's free prediction-key harvest).

    Returns ``(seg_len, seg_bounds)``: per-run record counts and the
    per-run record-boundary byte-offset arrays of this rank's segments.
    """
    job, comm, store, rank = ctx.job, ctx.comm, ctx.store, ctx.rank
    n_workers = job.n_workers
    block = job.block_records

    # Record-space receiver layout — identical to the fixed phase.
    seg_base: List[List[int]] = []
    seg_len: List[int] = []
    for r, run in enumerate(runs):
        seg_lo, seg_hi = splits[rank][r], splits[rank + 1][r]
        bases, acc = [], 0
        for j in range(n_workers):
            piece_lo = run.offsets[j]
            piece_hi = piece_lo + run.pieces[j].n_records
            overlap = max(0, min(seg_hi, piece_hi) - max(seg_lo, piece_lo))
            bases.append(acc)
            acc += overlap
        seg_base.append(bases)
        seg_len.append(acc)
        if acc != seg_hi - seg_lo:
            raise AssertionError(
                f"run {r}: segment layout {acc} != splitter span "
                f"{seg_hi - seg_lo}"
            )

    # Byte-space agreement: every sender publishes the encoded byte size
    # of its piece slice per (run, dest); receivers prefix-sum their
    # column into exact per-channel byte bases.
    offs_by_run: Dict[int, np.ndarray] = {}
    my_sizes: List[List[int]] = [[0] * n_workers for _ in runs]
    for r, run in enumerate(runs):
        offs = store.varlen_offsets(store.piece_path(r), TAG_A2A)
        offs_by_run[r] = offs
        my_off = run.offsets[rank]
        my_len = run.pieces[rank].n_records
        for dest in range(n_workers):
            lo = max(0, min(splits[dest][r] - my_off, my_len))
            hi = max(lo, min(my_len, splits[dest + 1][r] - my_off))
            my_sizes[r][dest] = int(offs[hi] - offs[lo])
    all_sizes: List[List[List[int]]] = comm.allgather(my_sizes)

    seg_base_bytes: List[List[int]] = []
    seg_bytes: List[int] = []
    for r in range(len(runs)):
        bases, acc = [], 0
        for j in range(n_workers):
            bases.append(acc)
            acc += all_sizes[j][r][rank]
        seg_base_bytes.append(bases)
        seg_bytes.append(acc)

    handles = []
    seg_bounds: List[np.ndarray] = []
    for r in range(len(runs)):
        path = store.segment_path(r)
        store.preallocate_bytes(path, seg_bytes[r])
        handles.append(open(path, "r+b"))
        bounds = np.full(seg_len[r] + 1, -1, dtype=np.int64)
        bounds[0] = 0
        seg_bounds.append(bounds)

    # (dest, run, chunk_k, piece-local start, count, channel-local lo)
    send_plan: List[Tuple[int, int, int, int, int, int]] = []
    for r, run in enumerate(runs):
        my_off = run.offsets[rank]
        my_len = run.pieces[rank].n_records
        for dest in range(n_workers):
            lo = max(0, splits[dest][r] - my_off)
            hi = min(my_len, splits[dest + 1][r] - my_off)
            for chunk_k, s in enumerate(range(lo, hi, block)):
                send_plan.append(
                    (dest, r, chunk_k, s, min(block, hi - s), lo)
                )

    def outgoing():
        for dest, r, chunk_k, s, count, lo in send_plan:
            chunk = store.read_varlen_range(
                store.piece_path(r), s, count, TAG_A2A,
                offsets=offs_by_run[r],
            )
            wire, saved = lcp_encode_batch(chunk)
            _count_lcp(
                ctx, "a2a",
                raw=chunk.nbytes,
                wire=len(wire),
                overhead=4 + 4 * len(chunk),
                trimmed=saved,
            )
            offs = offs_by_run[r]
            byte_off = int(offs[s] - offs[lo])
            ctx.stats.note_resident(2 * chunk.nbytes)
            yield dest, ("sa2a", r, s - lo, byte_off, wire)

    def on_chunk(peer: int, payload: tuple) -> None:
        kind, r, rec_off, byte_off, buf = payload
        assert kind == "sa2a"
        arrived = lcp_decode_batch(buf)
        base_rec = seg_base[r][peer]
        base_byte = seg_base_bytes[r][peer]
        store.write_at_bytes(
            handles[r], base_byte + byte_off, arrived.bytes_view(), TAG_A2A
        )
        bounds = seg_bounds[r]
        g = base_rec + rec_off
        start = base_byte + byte_off
        for i in range(len(arrived)):
            bounds[g + i + 1] = start + int(arrived.offsets[i + 1])
        ctx.stats.note_resident(2 * arrived.nbytes)

    try:
        comm.exchange(outgoing(), on_chunk)
    finally:
        for handle in handles:
            handle.close()

    for r in range(len(runs)):
        bounds = seg_bounds[r]
        if len(bounds) > 1 and (
            bool(np.any(bounds[1:] < 0))
            or int(bounds[-1]) != seg_bytes[r]
            or bool(np.any(np.diff(bounds) < 0))
        ):
            raise AssertionError(
                f"run {r}: segment boundary reconstruction incomplete "
                f"({int(bounds[-1])} of {seg_bytes[r]} bytes claimed)"
            )

    for r in range(len(runs)):
        store.remove(store.piece_path(r))
    return seg_len, seg_bounds


# --------------------------------------------------------------- phase 4


class _SegmentReader:
    """Stream one varlen segment block-of-records by block (cf.
    SequentialReader), addressed through its in-memory boundary array."""

    def __init__(self, store, path: str, bounds: np.ndarray, block: int):
        self.store = store
        self.path = path
        self.bounds = bounds
        self.block = block
        self.n_records = len(bounds) - 1
        self.pos = 0

    def next_block(self) -> Optional[VarlenBatch]:
        if self.pos >= self.n_records:
            return None
        count = min(self.block, self.n_records - self.pos)
        out = self.store.read_varlen_range(
            self.path, self.pos, count, TAG_MERGE, offsets=self.bounds
        )
        if len(out) != count:
            raise IOError(
                f"{self.path}: short read at record {self.pos} "
                f"({len(out)} of {count})"
            )
        self.pos += count
        return out


def merge(
    ctx: NativeContext,
    seg_len: List[int],
    seg_bounds: List[np.ndarray],
) -> OutputMeta:
    """Phase 4: R-way streaming merge of the string segments.

    The fixed merge's structure — one buffered block per run, every
    round emits all records ≤ the smallest buffer-tail key — with byte
    keys and the varlen batch kernels; verification (sortedness, count,
    first/last key, the order-independent string checksum) streams with
    the output exactly as before.
    """
    job, store, rank = ctx.job, ctx.store, ctx.rank
    block = job.block_records

    readers = [
        _SegmentReader(store, store.segment_path(r), seg_bounds[r], block)
        for r in range(len(seg_len))
    ]

    out_path = store.output_path()
    checksum = 0
    count = 0
    first_key: Optional[bytes] = None
    last_key: Optional[bytes] = None
    sorted_ok = True
    appender = store.varlen_appender(out_path, TAG_MERGE)

    def emit(batch: VarlenBatch) -> None:
        nonlocal checksum, count, first_key, last_key, sorted_ok
        if not len(batch):
            return
        keys = batch.keys()
        if any(keys[i] > keys[i + 1] for i in range(len(keys) - 1)):
            sorted_ok = False
        if last_key is not None and keys[0] < last_key:
            sorted_ok = False
        if first_key is None:
            first_key = keys[0]
        last_key = keys[-1]
        checksum = string_checksum(batch, checksum)
        count += len(batch)
        appender.append(batch)

    def note_working_set(batch_bytes: int) -> None:
        ctx.stats.note_resident(
            sum(b.nbytes for b in buffers if b is not None) + 2 * batch_bytes
        )

    try:
        buffers: List[Optional[VarlenBatch]] = [
            reader.next_block() for reader in readers
        ]
        while True:
            active = [i for i, b in enumerate(buffers) if b is not None]
            if not active:
                break
            for i in active:
                if len(buffers[i]) == 0:
                    buffers[i] = readers[i].next_block()
            active = [
                i for i, b in enumerate(buffers) if b is not None and len(b)
            ]
            if not active:
                break
            if len(active) == 1:
                i = active[0]
                note_working_set(buffers[i].nbytes)
                emit(buffers[i])
                buffers[i] = VarlenBatch.empty()
                while True:
                    nxt = readers[i].next_block()
                    if nxt is None:
                        buffers[i] = None
                        break
                    note_working_set(nxt.nbytes)
                    emit(nxt)
                continue
            bound = min(buffers[i].keys()[-1] for i in active)
            parts = []
            for i in active:
                buf = buffers[i]
                keys = buf.keys()
                # bisect_right over the sorted buffer keys.
                lo, hi = 0, len(keys)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if keys[mid] <= bound:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo:
                    parts.append(buf.slice(0, lo))
                    buffers[i] = buf.slice(lo, len(buf))
            batch = merge_varlen_batches(parts)
            note_working_set(batch.nbytes)
            emit(batch)
    finally:
        appender.close()

    meta = OutputMeta(
        rank=rank,
        path=out_path,
        n_records=count,
        first_key=first_key,
        last_key=last_key,
        checksum=checksum,
        sorted_ok=sorted_ok,
    )
    for r in range(len(seg_len)):
        store.remove(store.segment_path(r))
    ctx.stats.add_counter("merge_arity", float(len(seg_len)))
    return meta
