"""Guidesort: a deterministic guide-sequence merge (Hagerup, PAPERS.md).

Hagerup's observation is that the optimal parallel-disk merge schedule
does not need canonical's buffered-writing simulation (Appendix A's
duality): a single deterministic **guide sequence** — the blocks' first
keys in sorted order — already tells the merge both *what to fetch next*
and *how far it may safely emit*.  This backend keeps canonical's first
three phases bit-for-bit (local runs, exact multiway selection, the
N·16-byte external all-to-all into per-run segment files) and replaces
only the merge:

* the guide is the prediction sequence ``sorted((first_key, run,
  block))`` over the segment blocks, built from the keys the all-to-all
  harvested for free;
* the merge walks the guide once: fetch the named block (reads are
  sequential within every segment file, because first keys ascend
  within a sorted run), then emit every buffered record strictly below
  the *next* guide key — records provably complete, since every
  unfetched block's records are at least its first key;
* at most ~2 blocks per run are buffered at once (a block is fully
  emittable as soon as its successor block is fetched, ties excepted),
  so the working set matches canonical's R-way bound without tracking
  buffer tails at all.

One pass, each segment block read exactly once, zero wire traffic:
the phase conservation invariants are canonical's (merge reads and
writes exactly N·16 bytes).  The schedule itself is the *eager* one —
plain guide order — which :func:`repro.em.prefetch.schedule_is_valid`
accepts for any pool of at least ``R + 1`` buffers; canonical's
Appendix-A schedule exists to get away with fewer buffers, which is the
trade the decision matrix in docs/NATIVE.md spells out.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..phases import (
    _MASK,
    TAG_MERGE,
    NativeContext,
    OutputMeta,
    all_to_all,
    generate_input,
    run_formation,
    selection,
)
from ..records import merge_record_arrays

__all__ = [
    "generate_input",
    "run_formation",
    "selection",
    "all_to_all",
    "merge",
]


def merge(
    ctx: NativeContext,
    seg_len: List[int],
    block_first_keys: Optional[List[List[int]]] = None,
) -> OutputMeta:
    """Single-pass guide-driven merge of the segment files.

    Signature-compatible with :func:`repro.native.phases.merge`; the
    harvested ``block_first_keys`` are required — they *are* the guide.
    """
    job, store, rank = ctx.job, ctx.store, ctx.rank
    block = job.block_records
    if block_first_keys is None:
        raise AssertionError(
            "guidesort merge needs the harvested block first keys "
            "(the guide sequence); run it after the canonical all-to-all"
        )

    guide = sorted(
        (block_first_keys[r][b], r, b)
        for r, n in enumerate(seg_len)
        for b in range(-(-n // block))
    )

    out_path = store.output_path()
    checksum = 0
    count = 0
    first_key: Optional[int] = None
    last_key: Optional[int] = None
    sorted_ok = True
    #: Fetched-but-unemitted buffers, per run, in fetch (= key) order.
    pending: List[List[np.ndarray]] = [[] for _ in seg_len]

    with open(out_path, "wb") as out:

        def emit(batch: np.ndarray) -> None:
            nonlocal checksum, count, first_key, last_key, sorted_ok
            if not len(batch):
                return
            keys = batch["key"]
            if len(keys) > 1 and not bool(np.all(keys[:-1] <= keys[1:])):
                sorted_ok = False
            if last_key is not None and int(keys[0]) < last_key:
                sorted_ok = False
            if first_key is None:
                first_key = int(keys[0])
            last_key = int(keys[-1])
            with np.errstate(over="ignore"):
                checksum = (checksum + int(np.add.reduce(keys))) & _MASK
            count += len(batch)
            store.append_records(out, batch, TAG_MERGE)

        for i, (_key, r, b) in enumerate(guide):
            start = b * block
            pending[r].append(
                store.read_range(
                    store.segment_path(r),
                    start,
                    min(block, seg_len[r] - start),
                    TAG_MERGE,
                )
            )
            bound = guide[i + 1][0] if i + 1 < len(guide) else None

            parts: List[np.ndarray] = []
            for j, bufs in enumerate(pending):
                if not bufs:
                    continue
                if bound is None:
                    parts.extend(bufs)
                    pending[j] = []
                    continue
                kept: List[np.ndarray] = []
                for buf in bufs:
                    cut = int(np.searchsorted(buf["key"], bound, side="left"))
                    if cut:
                        parts.append(buf[:cut])
                    if cut < len(buf):
                        kept.append(buf[cut:])
                pending[j] = kept
            if parts:
                batch = merge_record_arrays(parts)
                ctx.stats.note_resident(
                    sum(b.nbytes for bufs in pending for b in bufs)
                    + 2 * batch.nbytes
                )
                emit(batch)

    for r in range(len(seg_len)):
        store.remove(store.segment_path(r))
    ctx.stats.add_counter("guide_blocks", float(len(guide)))
    ctx.stats.add_counter("merge_arity", float(len(seg_len)))
    return OutputMeta(
        rank=rank,
        path=out_path,
        n_records=count,
        first_key=first_key,
        last_key=last_key,
        checksum=checksum & _MASK,
        sorted_ok=sorted_ok,
    )
