"""The ``Algorithm`` strategy: one pluggable native sort backend.

A backend is a bundle of the five phase callables the worker drives
(:func:`repro.native.worker._run_phases`), all sharing one
:class:`~repro.native.phases.NativeContext`:

===============  ========================================================
``generate``     ``(ctx) -> None`` — write this rank's input slice
``run_formation``  ``(ctx) -> runs`` — form the sorted runs on disk
``selection``    ``(ctx, runs) -> splits`` — plan the redistribution
``all_to_all``   ``(ctx, runs, splits) -> (seg_state, aux)`` — move data
``merge``        ``(ctx, seg_state, aux) -> OutputMeta`` — final output
===============  ========================================================

The *types* flowing between phases belong to the backend: canonical
threads ``List[NativeRun]`` / splitter matrices / segment lengths, the
striped backend threads its striped-run inventory and merge plan through
the same slots.  The worker treats them as opaque — its only contractual
reads are ``len(runs)`` (reported to the driver) and the final
:class:`~repro.native.phases.OutputMeta`, which every backend must
produce for the **canonical balanced output**: rank i's output file
holds exactly records ``[i*N/P, (i+1)*N/P)`` of the global sorted order,
so :meth:`~repro.native.driver.NativeSortResult.validate` applies to
all backends unchanged.

Per-phase accounting contracts differ by backend and are asserted by
the conformance harness (:mod:`repro.testing.differential`):
``wire_profile`` names which invariant set applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Algorithm"]


@dataclass(frozen=True)
class Algorithm:
    """A named native sort backend: five phase callables plus metadata."""

    #: Registry name (``"canonical"``, ``"striped"``, ``"guidesort"``).
    name: str
    #: Record model this implementation handles (``"fixed16"``/``"string"``).
    records: str
    generate_input: Callable
    run_formation: Callable
    selection: Callable
    all_to_all: Callable
    merge: Callable
    #: Which per-phase volume invariants the backend guarantees:
    #: ``"canonical"`` — run_formation / all_to_all / merge each read and
    #: write exactly the data volume, and the all_to_all phase carries
    #: exactly N·16 wire bytes; ``"striped"`` — run_formation and merge
    #: each read and write exactly the data volume, the all_to_all phase
    #: moves nothing, and the merge phase carries at least 2·N·16 wire
    #: bytes (batch re-sort + placement — the striping amplification).
    wire_profile: str = "canonical"

    @property
    def phase_fns(self):
        """The worker's dispatch 5-tuple, in phase order."""
        return (
            self.generate_input,
            self.run_formation,
            self.selection,
            self.all_to_all,
            self.merge,
        )
