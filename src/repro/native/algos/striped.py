"""Mergesort with global striping, natively (paper Section III).

The paper's baseline: runs are formed **locally** (no cross-PE sort)
but written *striped* block-wise over all P PEs' spill files, and the
merge pass re-sorts batches of striped blocks collectively before
placing them into the canonical output.  Communication therefore rides
in **both** passes — the stripe write of run formation and the batch
re-sort + output placement of the merge — instead of canonical's single
dedicated all-to-all.  That is the amplification CANONICALMERGESORT
exists to avoid, and this backend makes it measurable: per-phase wire
counters show ≥ 1·N·16 bytes under ``run_formation`` and ≥ 2·N·16 under
``merge`` (batch exchange + placement), versus canonical's exactly
1·N·16 under ``all_to_all``.

Phase mapping onto the worker's five-slot pipeline:

=================  =========================================================
``run_formation``  sort M/3-record chunks locally; stripe each run's blocks
                   round-robin over the PEs (one all-to-all per run);
                   allgather per-block first keys — the prediction sequence
``selection``      pure planning: the global prediction order
                   (:func:`repro.em.prefetch.prediction_order`) over every
                   (run, block) of the striped layout; no I/O, no wire
``all_to_all``     **empty** — striping has no dedicated redistribution
                   phase; its traffic lives in the two passes around it
``merge``          batches of blocks in prediction order: each PE reads the
                   striped blocks it owns (fetch order =
                   :func:`~repro.native.pipeline.plan_fetch_order`, i.e.
                   prediction order through the optimal prefetch schedule
                   over the stripe layout), the batch is re-sorted
                   collectively (:func:`~repro.native.phases._distributed_sort_run`),
                   records below the next unread block's first key are
                   final and shipped to their canonical output owner, the
                   rest carry over as leftover (≤ R·B, re-sent next round —
                   counted in ``striped_resent_records``)
=================  =========================================================

The final output is the canonical balanced layout (rank i holds records
``[i·N/P, (i+1)·N/P)``), written at exact offsets as placement chunks
arrive; sortedness is proven by span tiling (every arriving chunk is a
sorted contiguous slice of the global order, and adjacent spans must
meet in order), the checksum is the usual order-independent key sum.

Striped jobs keep the disk-side conservation invariant *per pass*:
``run_formation`` and ``merge`` each read and write exactly N·16 bytes;
the ``selection`` and ``all_to_all`` phases touch nothing.  Memory note:
an adversarial input whose duplicate keys all collide (every block's
first key equal) defers every emission to the final round, growing the
leftover to O(N/P) records per PE — canonical has no such mode, which
is one more row of the decision matrix in docs/NATIVE.md.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...em.prefetch import prediction_order
from ..phases import (
    _MASK,
    TAG_MERGE,
    TAG_RF,
    NativeContext,
    OutputMeta,
    _chunk_schedule,
    _distributed_sort_run,
)
from ..pipeline import plan_fetch_order
from ..records import (
    NATIVE_DTYPE,
    bytes_view,
    records_from_bytes,
    sort_records,
)

__all__ = ["StripedRun", "run_formation", "selection", "all_to_all", "merge"]


class StripedRun:
    """One locally sorted run, striped block-wise over all PEs.

    Block ``b`` of run ``run_id`` (records ``[b·B, (b+1)·B)`` of the
    run) lives on PE ``(b + run_id) % P`` — the run offset rotates the
    stripe so partial tail blocks spread over the PEs — at local block
    slot ``b // P`` of that PE's ``piece_path(run_id)`` file.
    """

    def __init__(
        self,
        run_id: int,
        n_records: int,
        block_records: int,
        n_workers: int,
        first_keys: List[int],
    ):
        self.run_id = run_id
        self.n_records = n_records
        self.block_records = block_records
        self.n_workers = n_workers
        #: Smallest key of every block, in block order (the run is
        #: sorted, so these ascend) — the merge's prediction sequence.
        self.first_keys = first_keys

    @property
    def n_blocks(self) -> int:
        return -(-self.n_records // self.block_records)

    def owner(self, b: int) -> int:
        return (b + self.run_id) % self.n_workers

    def local_slot(self, b: int) -> int:
        return b // self.n_workers

    def block_count(self, b: int) -> int:
        return min(self.block_records, self.n_records - b * self.block_records)

    def __len__(self) -> int:
        return self.n_records


# ------------------------------------------------------------- phase 1


def run_formation(ctx: NativeContext) -> List[StripedRun]:
    """Form local runs and stripe each over all PEs' spill files.

    Round r forms P runs at once — every rank sorts its chunk r into run
    ``r·P + rank`` — and one exchange ships every block to its stripe
    owner, which writes it at its local slot and harvests the block's
    first key (the prediction sequence, for free, exactly as canonical's
    all-to-all harvests its merge keys).  A final allgather shares the
    harvested keys so every rank can build the identical merge plan.
    """
    job, comm, store, rank = ctx.job, ctx.comm, ctx.store, ctx.rank
    n_workers = job.n_workers
    block = job.block_records
    chunks = _chunk_schedule(ctx)
    n_rounds = comm.allreduce(len(chunks), max)
    input_path = store.input_path()

    run_lengths: Dict[int, int] = {}
    harvested: Dict[int, Dict[int, int]] = {}
    for r in range(n_rounds):
        block_ids = chunks[r] if r < len(chunks) else []
        records = store.read_blocks(input_path, block_ids, TAG_RF)
        ctx._add_checksum(records["key"])
        ctx.stats.note_resident(2 * records.nbytes)
        records = sort_records(records)

        gid = r * n_workers + rank
        lengths: List[int] = comm.allgather(len(records))
        handles: Dict[int, object] = {}
        for j, length in enumerate(lengths):
            g = r * n_workers + j
            run_lengths[g] = length
            mine = 0
            for b in range(-(-length // block)):
                if (b + g) % n_workers == rank:
                    mine += min(block, length - b * block)
            if mine:
                path = store.piece_path(g)
                store.preallocate(path, mine)
                handles[g] = open(path, "r+b")

        def outgoing():
            length = len(records)
            for b in range(-(-length // block)):
                dest = (b + gid) % n_workers
                chunk = records[b * block : min((b + 1) * block, length)]
                yield dest, ("stw", gid, b, bytes_view(chunk))

        def on_chunk(peer: int, payload: tuple) -> None:
            kind, g, b, buf = payload
            assert kind == "stw"
            harvested.setdefault(g, {})[b] = struct.unpack_from("<Q", buf, 0)[0]
            offset = (b // n_workers) * block
            store.write_at(handles[g], offset, buf, TAG_RF)

        comm.exchange(outgoing(), on_chunk)
        for handle in handles.values():
            handle.close()
        del records

    gathered = comm.allgather(
        [(g, b, key) for g, keys in harvested.items() for b, key in keys.items()]
    )
    first_keys: Dict[int, Dict[int, int]] = {g: {} for g in run_lengths}
    for entry in gathered:
        for g, b, key in entry:
            first_keys[g][b] = key

    runs: List[StripedRun] = []
    for g in sorted(run_lengths):
        length = run_lengths[g]
        n_blocks = -(-length // block)
        if len(first_keys[g]) != n_blocks:
            raise AssertionError(
                f"striped run {g}: harvested {len(first_keys[g])} block "
                f"keys, expected {n_blocks}"
            )
        runs.append(
            StripedRun(
                g, length, block, n_workers,
                [first_keys[g][b] for b in range(n_blocks)],
            )
        )
    ctx.stats.add_counter("runs_formed", float(len(chunks)))
    ctx.stats.add_counter("striped_blocks_received", float(len(
        [b for keys in harvested.values() for b in keys]
    )))
    return runs


# ------------------------------------------------------------- phase 2


def selection(
    ctx: NativeContext, runs: List[StripedRun]
) -> List[Tuple[int, int, int]]:
    """Build the global merge plan: prediction order over every block.

    Pure planning from the metadata run formation allgathered — no disk,
    no wire.  Returns the flat ``(first_key, run_index, block)`` list in
    the order the merge will consume it; identical on every rank.
    """
    triples = [
        (key, ri, b)
        for ri, run in enumerate(runs)
        for b, key in enumerate(run.first_keys)
    ]
    plan = [triples[i] for i in prediction_order(triples)]
    ctx.stats.add_counter("striped_plan_blocks", float(len(plan)))
    return plan


# ------------------------------------------------------------- phase 3


def all_to_all(
    ctx: NativeContext,
    runs: List[StripedRun],
    plan: List[Tuple[int, int, int]],
) -> Tuple[tuple, None]:
    """Striping has no dedicated redistribution phase — pass through.

    The stripe write already scattered the runs (phase 1) and the merge
    re-sorts and places them (phase 4); this slot only threads the run
    inventory and the plan to the merge.  Its measured wall/wire/disk
    stay ~0, which is itself the comparison point against canonical's
    N·16-byte phase.
    """
    return (runs, plan), None


# ------------------------------------------------------------- phase 4


def merge(
    ctx: NativeContext,
    carrier: tuple,
    _block_first_keys: Optional[List[List[int]]] = None,
) -> OutputMeta:
    """Batched prediction-order merge with collective re-sort + placement.

    Per round: each PE reads the striped blocks it owns from the next
    ``batch`` plan entries (read order = prediction order through the
    optimal prefetch schedule over the stripe layout), the batch (plus
    carried leftover) is re-sorted collectively, and every record below
    the next unread block's first key — provably final — is shipped to
    the canonical owner of its global output position, which writes it
    at its exact offset.  Records at or above the bound stay as leftover
    and re-enter the next round's sort (the resend amplification striping
    pays; counted).
    """
    runs, plan = carrier
    job, comm, store, rank = ctx.job, ctx.comm, ctx.store, ctx.rank
    n_workers = job.n_workers
    block = job.block_records
    total = sum(run.n_records for run in runs)
    out_bounds = [d * total // n_workers for d in range(n_workers + 1)]
    out_lo, out_hi = out_bounds[rank], out_bounds[rank + 1]

    out_path = store.output_path()
    store.preallocate(out_path, out_hi - out_lo)
    out_handle = open(out_path, "r+b")

    spans: List[Tuple[int, int, int, int, bool]] = []
    checksum = 0

    def on_placement(peer: int, payload: tuple) -> None:
        nonlocal checksum
        kind, gpos, buf = payload
        assert kind == "out"
        arrived = records_from_bytes(buf)
        keys = arrived["key"]
        store.write_at(out_handle, gpos - out_lo, buf, TAG_MERGE)
        ok = len(keys) < 2 or bool(np.all(keys[:-1] <= keys[1:]))
        with np.errstate(over="ignore"):
            checksum = (checksum + int(np.add.reduce(keys))) & _MASK
        spans.append((gpos - out_lo, len(keys), int(keys[0]), int(keys[-1]), ok))

    batch = max(n_workers, job.piece_blocks * n_workers // 2)
    leftover = np.empty(0, dtype=NATIVE_DTYPE)
    emitted_total = 0
    resent = 0
    rounds = 0
    cursor = 0
    try:
        while cursor < len(plan):
            this_round = plan[cursor : cursor + batch]
            nxt = cursor + len(this_round)
            bound = plan[nxt][0] if nxt < len(plan) else None

            mine = [
                (key, ri, b)
                for key, ri, b in this_round
                if runs[ri].owner(b) == rank
            ]
            parts: List[np.ndarray] = [leftover] if len(leftover) else []
            if mine:
                order = plan_fetch_order(
                    mine,
                    [ri for _key, ri, _b in mine],
                    max(1, min(len(mine), job.piece_blocks)),
                )
                for idx in order:
                    _key, ri, b = mine[idx]
                    run = runs[ri]
                    parts.append(
                        store.read_range(
                            store.piece_path(run.run_id),
                            run.local_slot(b) * block,
                            run.block_count(b),
                            TAG_MERGE,
                        )
                    )
            local = (
                np.concatenate(parts)
                if len(parts) != 1
                else parts[0]
            ) if parts else np.empty(0, dtype=NATIVE_DTYPE)
            ctx.stats.note_resident(3 * local.nbytes)
            local = sort_records(local)
            piece = _distributed_sort_run(ctx, local, run_id=rounds)
            del local, parts

            if bound is None:
                cut = len(piece)
            else:
                cut = int(np.searchsorted(piece["key"], bound, side="left"))
            cuts: List[int] = comm.allgather(cut)
            base = emitted_total + sum(cuts[:rank])

            def outgoing():
                sent = 0
                while sent < cut:
                    gpos = base + sent
                    dest = bisect_right(out_bounds, gpos) - 1
                    limit = min(out_bounds[dest + 1] - gpos, block, cut - sent)
                    span = piece[sent : sent + limit]
                    yield dest, ("out", gpos, bytes_view(span))
                    sent += limit

            comm.exchange(outgoing(), on_placement)

            leftover = piece[cut:].copy()
            resent += len(leftover)
            del piece
            emitted_total += sum(cuts)
            cursor = nxt
            rounds += 1
    finally:
        out_handle.close()

    if emitted_total != total or len(leftover):
        raise AssertionError(
            f"striped merge emitted {emitted_total} of {total} records "
            f"with {len(leftover)} left over"
        )

    # Span tiling proves the output: the arriving chunks must cover
    # [0, out_hi - out_lo) exactly, each internally sorted, and adjacent
    # spans must meet in key order.
    spans.sort()
    acc = 0
    sorted_ok = True
    prev_last: Optional[int] = None
    for off, n, first, last, ok in spans:
        if off != acc:
            raise AssertionError(
                f"rank {rank}: output span at offset {off}, expected {acc}"
            )
        acc += n
        if not ok or (prev_last is not None and first < prev_last):
            sorted_ok = False
        prev_last = last
    if acc != out_hi - out_lo:
        raise AssertionError(
            f"rank {rank}: output covers {acc} records, "
            f"expected {out_hi - out_lo}"
        )

    for run in runs:
        store.remove(store.piece_path(run.run_id))
    ctx.stats.add_counter("striped_merge_rounds", float(rounds))
    ctx.stats.add_counter("striped_resent_records", float(resent))
    ctx.stats.add_counter("merge_arity", float(len(runs)))
    return OutputMeta(
        rank=rank,
        path=out_path,
        n_records=acc,
        first_key=spans[0][2] if spans else None,
        last_key=spans[-1][3] if spans else None,
        checksum=checksum & _MASK,
        sorted_ok=sorted_ok,
    )
