"""CANONICALMERGESORT as a registered backend.

The first ``Algorithm``: a thin binding of the existing phase pipeline
(:mod:`repro.native.phases` for the fixed 16-byte record model,
:mod:`repro.native.strphases` for variable-length strings) to the
strategy interface.  The phase functions themselves are unchanged — the
backend object is pure dispatch metadata, so canonical jobs run the
exact code paths of every prior release.
"""

from __future__ import annotations

from .. import phases, strphases
from .base import Algorithm

__all__ = ["CANONICAL_FIXED16", "CANONICAL_STRING"]

CANONICAL_FIXED16 = Algorithm(
    name="canonical",
    records="fixed16",
    generate_input=phases.generate_input,
    run_formation=phases.run_formation,
    selection=phases.selection,
    all_to_all=phases.all_to_all,
    merge=phases.merge,
    wire_profile="canonical",
)

CANONICAL_STRING = Algorithm(
    name="canonical",
    records="string",
    generate_input=strphases.generate_input,
    run_formation=strphases.run_formation,
    selection=strphases.selection,
    all_to_all=strphases.all_to_all,
    merge=strphases.merge,
    wire_profile="canonical",
)
