"""Pluggable native sort algorithms (the backend bake-off registry).

Three registered backends sort the same jobs to the same canonical
balanced output, so the driver, the conformance harness and the bench
trajectory can compare them head to head (ROADMAP item 4; paper
Section III):

``canonical``
    CANONICALMERGESORT — the paper's algorithm, the default, and the
    only backend for the string record model.  Phases live in
    :mod:`repro.native.phases` / :mod:`repro.native.strphases`.
``striped``
    Mergesort with global striping (:mod:`.striped`): locally sorted
    runs striped block-wise over all PEs, merge by collective batch
    re-sort — communication in both passes, which is the amplification
    the paper's algorithm avoids.
``guidesort``
    Canonical phases 1–3 plus Hagerup's deterministic guide-sequence
    single-pass merge (:mod:`.guidesort`).

Workers dispatch through :func:`resolve_algorithm`; job validation
(:class:`~repro.native.job.NativeJob`) guarantees only registered
(algo, records) pairs reach it.
"""

from __future__ import annotations

from ...core.config import ConfigError
from .base import Algorithm
from .canonical import CANONICAL_FIXED16, CANONICAL_STRING
from . import guidesort as _guidesort
from . import striped as _striped
from .. import phases as _phases

__all__ = ["ALGORITHMS", "Algorithm", "resolve_algorithm"]

#: Registered backend names, in documentation order.
ALGORITHMS = ("canonical", "striped", "guidesort")

STRIPED_FIXED16 = Algorithm(
    name="striped",
    records="fixed16",
    generate_input=_phases.generate_input,
    run_formation=_striped.run_formation,
    selection=_striped.selection,
    all_to_all=_striped.all_to_all,
    merge=_striped.merge,
    wire_profile="striped",
)

GUIDESORT_FIXED16 = Algorithm(
    name="guidesort",
    records="fixed16",
    generate_input=_guidesort.generate_input,
    run_formation=_guidesort.run_formation,
    selection=_guidesort.selection,
    all_to_all=_guidesort.all_to_all,
    merge=_guidesort.merge,
    wire_profile="canonical",
)

_REGISTRY = {
    (alg.name, alg.records): alg
    for alg in (
        CANONICAL_FIXED16,
        CANONICAL_STRING,
        STRIPED_FIXED16,
        GUIDESORT_FIXED16,
    )
}


def resolve_algorithm(algo: str, records: str = "fixed16") -> Algorithm:
    """The registered backend for ``(algo, records)``.

    Raises :class:`~repro.core.config.ConfigError` for unknown names or
    unsupported combinations (today: the string model only runs
    canonical).
    """
    if algo not in ALGORITHMS:
        raise ConfigError(
            f"unknown algorithm {algo!r}; choose from {ALGORITHMS}"
        )
    try:
        return _REGISTRY[(algo, records)]
    except KeyError:
        raise ConfigError(
            f"algorithm {algo!r} does not support records={records!r} yet"
        ) from None
