"""The four CANONICALMERGESORT phases, executed on real files.

Each function here is the native twin of a module in :mod:`repro.core`
and reuses its backend-agnostic kernels:

=====================  ===================================  =========================
native phase           simulator twin                       shared kernels
=====================  ===================================  =========================
:func:`run_formation`  ``core.run_formation`` +             ``algos.multiway_selection
                       ``core.internal_sort``               .select_coroutine``,
                                                            ``sample_initial_positions``
:func:`selection`      ``core.selection_phase``             ``select_coroutine``,
                                                            ``select_bisect_coroutine``,
                                                            ``warm_start_from_samples``,
                                                            ``em.cache.LRUCache``
:func:`all_to_all`     ``core.all_to_all``                  (layout arithmetic only)
:func:`merge`          ``core.merge_phase``                 batch merge semantics of
                                                            ``records.arrays``
=====================  ===================================  =========================

The phase contracts are identical to the simulator's: globally sorted
runs with one local piece per PE after phase 1, an exact (P+1) × R
splitter matrix after phase 2, per-run sorted segment files after
phase 3, and the canonical balanced output after phase 4.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..algos.multiway_selection import (
    sample_initial_positions,
    select_bisect_coroutine,
    select_coroutine,
)
from ..core.selection_phase import _run_samples, warm_start_from_samples
from .blockstore import FileBlockStore, SequentialReader
from .comm_api import Comm
from .job import NativeJob
from .pipeline import (
    Prefetcher,
    PrefetchReader,
    WriteBehind,
    plan_fetch_order,
    sequential_fetch_order,
)
from .records import (
    NATIVE_DTYPE,
    RECORD_BYTES,
    bytes_view,
    generate_records,
    merge_record_arrays,
    records_from_bytes,
    sort_records,
)
from .stats import WorkerStats

__all__ = [
    "NativeContext",
    "PieceMeta",
    "NativeRun",
    "OutputMeta",
    "generate_input",
    "run_formation",
    "restore_runs",
    "verify_restored_pieces",
    "selection",
    "all_to_all",
    "merge",
]

_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass
class NativeContext:
    """Everything one worker's phases share."""

    rank: int
    job: NativeJob
    comm: Comm
    store: FileBlockStore
    stats: WorkerStats
    #: Order-independent checksum of this worker's input keys, accumulated
    #: while run formation streams the input (each record is read once).
    input_checksum: int = 0
    #: Recovery journal (:class:`repro.recovery.manifest.RankJournal`)
    #: when the job checkpoints; phases append durable records to it at
    #: their boundaries and at intra-phase watermarks.
    journal: Optional[object] = None
    #: Replayed manifest state (:class:`~repro.recovery.manifest.ResumeState`)
    #: when resuming an epoch > 0 attempt; None on a fresh run.
    resume: Optional[object] = None

    def _add_checksum(self, keys: np.ndarray) -> None:
        if len(keys):
            with np.errstate(over="ignore"):
                self.input_checksum = (
                    self.input_checksum + int(np.add.reduce(keys))
                ) & _MASK


@dataclass
class PieceMeta:
    """Descriptor of one worker's on-disk piece of one run.

    Attribute-compatible with the simulator's ``LocalRunPiece`` where the
    selection-phase helpers care (``sample_keys``, ``sample_every``,
    ``n_keys``), so ``core.selection_phase`` logic applies unchanged.
    """

    run: int
    rank: int
    n_records: int
    sample_keys: np.ndarray
    sample_every: int

    @property
    def n_keys(self) -> int:
        return self.n_records


class NativeRun:
    """A globally sorted run: one piece per worker, in rank order."""

    def __init__(self, run_id: int, pieces: List[PieceMeta]):
        self.run_id = run_id
        self.pieces = pieces
        self.offsets: List[int] = []
        acc = 0
        for piece in pieces:
            self.offsets.append(acc)
            acc += piece.n_records
        self.n_records = acc

    def locate(self, gpos: int) -> Tuple[int, int]:
        """Map a run-global record position to (rank, piece-local position)."""
        from bisect import bisect_right

        if not 0 <= gpos < self.n_records:
            raise IndexError(f"position {gpos} outside run of {self.n_records}")
        rank = bisect_right(self.offsets, gpos) - 1
        return rank, gpos - self.offsets[rank]

    def __len__(self) -> int:
        return self.n_records


@dataclass
class OutputMeta:
    """Streaming verification data of one rank's sorted output file."""

    rank: int
    path: str
    n_records: int
    first_key: Optional[int]
    last_key: Optional[int]
    checksum: int
    sorted_ok: bool


# --------------------------------------------------------------- phase 0


def generate_input(ctx: NativeContext) -> None:
    """Write this worker's gensort-style input slice (index order)."""
    job = ctx.job
    start = job.worker_start(ctx.rank)
    n = job.records_per_worker
    batch = max(job.block_records, job.chunk_records)
    path = ctx.store.input_path()
    with open(path, "wb") as handle:
        for s in range(0, n, batch):
            count = min(batch, n - s)
            records = generate_records(
                start + s, count, seed=job.config.seed, skew=job.skew
            )
            ctx.store.append_records(handle, records, tag="generate")


# --------------------------------------------------------------- phase 1

TAG_RF = "run_formation"

#: I/O issued only while re-validating state on a resume: bounded by the
#: suspect ranks' retained pieces, never a pass over the data.
TAG_RECOVERY = "recovery"


def _block_crcs(records: np.ndarray, block_records: int) -> List[int]:
    """CRC-32 of each block of an in-memory record array."""
    view = memoryview(np.ascontiguousarray(records)).cast("B")
    step = block_records * RECORD_BYTES
    return [
        zlib.crc32(view[s : s + step]) for s in range(0, len(view), step)
    ] if len(view) else []


def _meta_from_record(rec: dict, rank: int) -> PieceMeta:
    """Rebuild a PieceMeta from its manifest ``rf_run`` record."""
    return PieceMeta(
        run=int(rec["run"]),
        rank=rank,
        n_records=int(rec["n"]),
        sample_keys=np.asarray(rec["samples"], dtype=np.uint64),
        sample_every=int(rec["every"]),
    )


def verify_restored_pieces(ctx: NativeContext, run_records: List[dict]) -> None:
    """CRC-check retained piece files against the manifest (suspects only).

    Raises :class:`IOError` on any damaged block — a suspect rank whose
    durable state did not survive its failure must not resume from it.
    """
    checked = 0
    for rec in run_records:
        path = ctx.store.piece_path(rec["run"])
        bad = ctx.store.verify_block_crcs(path, rec["crcs"], tag=TAG_RECOVERY)
        checked += len(rec["crcs"])
        if bad:
            raise IOError(
                f"rank {ctx.rank}: resume CRC mismatch in {path} at blocks "
                f"{bad[:8]}: the failure damaged this piece; cannot resume "
                "from it"
            )
    ctx.stats.add_counter("recovery_crc_blocks_verified", float(checked))


def restore_runs(ctx: NativeContext, resume) -> List[NativeRun]:
    """Rebuild the full run inventory from the manifest — zero data I/O.

    Every rank durably recorded ``rf_done`` before any rank passed the
    run-formation barrier, so on a resume past that barrier the piece
    metadata (and the input checksum) comes straight from the journal;
    the only communication is the same metadata allgather a fresh run
    formation ends with.
    """
    recs = [resume.rf_runs[r] for r in range(len(resume.rf_runs))]
    metas = [_meta_from_record(rec, ctx.rank) for rec in recs]
    all_metas: List[List[PieceMeta]] = ctx.comm.allgather(metas)
    ctx.input_checksum = resume.rf_checksum
    ctx.stats.add_counter("recovery_phases_restored")
    ctx.stats.add_counter("recovery_rf_blocks_reread", 0.0)
    return [
        NativeRun(r, [all_metas[j][r] for j in range(ctx.job.n_workers)])
        for r in range(len(metas))
    ]


def _chunk_schedule(ctx: NativeContext) -> List[List[int]]:
    """Input block IDs per run chunk (randomized, elevator order within)."""
    job = ctx.job
    order = list(range(job.input_blocks))
    if job.config.randomize:
        rng = np.random.default_rng((job.config.seed, ctx.rank))
        rng.shuffle(order)
    piece = job.piece_blocks
    return [
        sorted(order[s : s + piece]) for s in range(0, len(order), piece)
    ]


def _distributed_sort_run(
    ctx: NativeContext, records: np.ndarray, run_id: int
) -> np.ndarray:
    """Globally sort one run; returns this rank's exact-quantile piece.

    The native execution of ``core.internal_sort.distributed_sort_run``:
    local sort (already done by the caller), exact splitting at the P
    quantiles via the paper's probe-based multiway selection running
    *between* the worker processes, a chunked all-to-all over the pipes,
    and a final P-way batch merge.
    """
    job, comm, rank = ctx.job, ctx.comm, ctx.rank
    n_workers = job.n_workers
    if n_workers == 1:
        return records

    keys = records["key"]
    lengths: List[int] = comm.allgather(len(records))
    total = sum(lengths)
    target = rank * total // n_workers

    # Sample warm start (Appendix B), then the exact probe selection.
    samples = [np.asarray(s) for s in comm.allgather(keys[:: job.sample_every].copy())]
    init_pos, init_step = sample_initial_positions(
        samples, job.sample_every, target, lengths
    )
    gen = select_coroutine(
        lengths, target, init_positions=init_pos, init_step=init_step
    )
    result = comm.selection_round(
        gen,
        local_lookup=lambda pos: int(keys[pos]),
        owner_of=lambda seq: seq,
    )
    ctx.stats.add_counter("internal_selection_touches", result.touches)

    positions: List[List[int]] = comm.allgather(result.positions)
    positions.append(list(lengths))

    # Chunked all-to-all: slice [positions[d][rank], positions[d+1][rank])
    # goes to destination d, in block-sized chunks.
    block = job.block_records
    received: Dict[int, List[Tuple[int, bytes]]] = {
        j: [] for j in range(n_workers)
    }
    recv_bytes = 0

    def outgoing():
        for dest in range(n_workers):
            lo = positions[dest][rank]
            hi = positions[dest + 1][rank]
            for k, s in enumerate(range(lo, hi, block)):
                # A view, not a copy: the exchange's final flush+barrier
                # keeps ``records`` alive until every chunk is on the
                # wire, so shm and TCP sends stay zero-copy end to end.
                chunk = records[s : min(s + block, hi)]
                yield dest, ("rfx", run_id, k, bytes_view(chunk))

    def on_chunk(peer: int, payload: tuple) -> None:
        nonlocal recv_bytes
        kind, rid, k, buf = payload
        assert kind == "rfx" and rid == run_id
        received[peer].append((k, buf))
        recv_bytes += len(buf)

    comm.exchange(outgoing(), on_chunk)
    ctx.stats.note_resident(records.nbytes + recv_bytes)
    del records, keys  # the chunk's memory is no longer needed

    parts = []
    for sender in range(n_workers):
        bufs = [buf for _k, buf in sorted(received[sender])]
        received[sender] = []
        if bufs:
            parts.append(
                np.concatenate([records_from_bytes(b) for b in bufs])
                if len(bufs) > 1
                else records_from_bytes(bufs[0])
            )
    merged = merge_record_arrays(parts)
    ctx.stats.note_resident(2 * merged.nbytes)
    ctx.stats.add_counter("internal_sort_sent_records", sum(lengths) // n_workers)
    return merged


def run_formation(ctx: NativeContext) -> List[NativeRun]:
    """Phase 1: form R globally sorted runs, one local piece file each.

    With write-behind enabled, the spill of each finished piece file is
    handed to a background writer so the next chunk's read + sort overlap
    the previous piece's write — the paper's overlapping of run formation
    I/O with internal work.  The buffer is flushed (and any deferred
    write error raised here) *before* the piece metadata is allgathered:
    peers read the piece files during selection, so a piece must be
    durable before its existence is announced.
    """
    job, comm, store = ctx.job, ctx.comm, ctx.store
    chunks = _chunk_schedule(ctx)
    n_runs = comm.allreduce(len(chunks), max)
    input_path = store.input_path()

    # Mid-phase resume: agree on the longest run prefix *every* rank has
    # durably completed, restore those runs from the manifest (no input
    # re-reads), and redo only the tail.  The reread counter is honest:
    # it counts input blocks this rank reads again for runs it had
    # already finished but a slower rank had not.
    journal = ctx.journal
    restored: Dict[int, dict] = {}
    k = 0
    if journal is not None and job.epoch > 0:
        if ctx.resume is not None:
            restored = ctx.resume.rf_runs
        own = 0
        while own in restored:
            own += 1
        k = min(comm.allgather(own))
        reread = sum(len(chunks[r]) for r in range(k, min(own, len(chunks))))
        ctx.stats.add_counter("recovery_rf_blocks_reread", float(reread))

    metas: List[PieceMeta] = []
    run_records: List[dict] = []
    for r in range(k):
        metas.append(_meta_from_record(restored[r], ctx.rank))
        run_records.append(restored[r])
        ctx.input_checksum = restored[r]["checksum"]
    if k:
        ctx.stats.add_counter("recovery_runs_restored", float(k))
        if ctx.rank in getattr(job, "suspect_ranks", ()):
            verify_restored_pieces(ctx, run_records)

    wb: Optional[WriteBehind] = None
    if job.write_behind_blocks > 0:
        wb = WriteBehind(
            store, TAG_RF, max(job.write_behind_bytes, 1), stats=ctx.stats
        )
    try:
        for r in range(k, n_runs):
            block_ids = chunks[r] if r < len(chunks) else []
            # Scatter read: every block lands directly in its slice of
            # the chunk's sort buffer (no per-block arrays, no
            # concatenate) — one coalesced positioned read per run of
            # consecutive block IDs.
            records = store.read_blocks(input_path, block_ids, TAG_RF)
            ctx._add_checksum(records["key"])
            ctx.stats.note_resident(
                2 * records.nbytes + (wb.queued_bytes() if wb else 0)
            )
            records = sort_records(records)

            piece = _distributed_sort_run(ctx, records, run_id=r)
            del records

            if wb is not None:
                wb.write_file(store.piece_path(r), piece)
            else:
                store.write_file(store.piece_path(r), piece, TAG_RF)
            sample = np.ascontiguousarray(piece["key"][:: job.sample_every])
            metas.append(
                PieceMeta(
                    run=r,
                    rank=ctx.rank,
                    n_records=len(piece),
                    sample_keys=sample,
                    sample_every=job.sample_every,
                )
            )
            if journal is not None:
                rec = {
                    "run": r,
                    "n": len(piece),
                    "samples": [int(s) for s in sample],
                    "every": job.sample_every,
                    "crcs": _block_crcs(piece, job.block_records),
                    "checksum": ctx.input_checksum,
                }
                run_records.append(rec)
                if wb is None:
                    # The piece hit the disk synchronously above, so its
                    # completion may be journaled now; under write-behind
                    # it is only durable after wb.close(), so per-run
                    # records are skipped and rf_done covers them all.
                    journal.rf_run_done(
                        r, rec["n"], rec["samples"], rec["every"],
                        rec["crcs"], rec["checksum"],
                    )
            del piece
        if wb is not None:
            wb.close()
            wb = None
    finally:
        if wb is not None:  # error path: stop the thread, keep the exception
            wb.close(raise_error=False)
    ctx.stats.add_counter("runs_formed", len(metas) - k)
    if journal is not None:
        journal.rf_done(run_records, ctx.input_checksum)

    all_metas: List[List[PieceMeta]] = comm.allgather(metas)
    return [
        NativeRun(r, [all_metas[j][r] for j in range(job.n_workers)])
        for r in range(n_runs)
    ]


# --------------------------------------------------------------- phase 2

TAG_SEL = "selection"


def selection(ctx: NativeContext, runs: List[NativeRun]) -> List[List[int]]:
    """Phase 2: exact splitters for this rank; returns the full matrix.

    Probes are answered by block reads against the piece *files* of any
    worker — the spill directory is the shared medium, so a remote probe
    is a real disk access exactly as in the paper, and the LRU cache
    removes the ``R log B`` re-touches.  Returns ``splits`` with P+1
    rows: row i is where rank i's output starts in every run, row P holds
    the run lengths.
    """
    job, comm, store = ctx.job, ctx.comm, ctx.store
    lengths = [run.n_records for run in runs]
    total = sum(lengths)
    target = ctx.rank * total // job.n_workers

    if job.config.selection == "sampled":
        init_pos, init_step = warm_start_from_samples(
            _run_samples(runs), target, lengths, job.sample_every
        )
        gen = select_coroutine(
            lengths, target, init_positions=init_pos, init_step=init_step
        )
    elif job.config.selection == "basic":
        gen = select_coroutine(lengths, target)
    else:
        gen = select_bisect_coroutine(lengths, target)

    cache = store.probe_cache(job.selection_cache_blocks)
    try:
        request = next(gen)
        while True:
            r, gpos = request
            owner, lpos = runs[r].locate(gpos)
            if owner != ctx.rank:
                ctx.stats.add_counter("selection_remote_probes")
            key = cache.key_at(store.piece_path(r, owner), lpos, TAG_SEL)
            request = gen.send(key)
    except StopIteration as stop:
        result = stop.value

    ctx.stats.add_counter("selection_touches", result.touches)
    ctx.stats.add_counter("selection_block_reads", cache.block_reads)
    ctx.stats.add_counter("selection_cache_hits", cache.hits)
    ctx.stats.add_counter(
        "selection_fixup_swaps", getattr(result, "fixup_swaps", 0)
    )

    all_positions: List[List[int]] = comm.allgather(list(result.positions))
    splits = [list(p) for p in all_positions]
    splits.append(list(lengths))
    if ctx.journal is not None:
        # The full matrix is deterministic and identical on every rank;
        # journaling it locally makes the phase restorable without any
        # re-probing (zero I/O on resume).
        ctx.journal.selection_done(splits)
    return splits


# --------------------------------------------------------------- phase 3

TAG_A2A = "all_to_all"


def all_to_all(
    ctx: NativeContext, runs: List[NativeRun], splits: List[List[int]]
) -> Tuple[List[int], List[List[int]]]:
    """Phase 3: the external all-to-all, disk → pipes → disk.

    Each worker streams its piece of every run in block-sized chunks to
    the destinations the splitters dictate, and assembles the chunks it
    receives into one *sorted* segment file per run (arrivals are written
    at precomputed record offsets, so no post-hoc sorting is needed —
    the run's global order carries through).

    Returns ``(seg_len, block_first_keys)``: the per-run segment lengths
    of this rank, and — for free, harvested from the arriving chunks at
    the merge's block boundaries — the smallest key of every merge-phase
    block of every segment.  That is exactly the prediction sequence the
    merge's optimal prefetch schedule (Appendix A) needs, obtained with
    zero extra I/O because every segment byte passes through this phase
    anyway.

    With ``job.prefetch_blocks > 0`` the piece reads feeding the send
    stream run on background threads (the send order is the prediction
    sequence of this phase, so :func:`sequential_fetch_order` applies);
    with ``job.write_behind_blocks > 0`` the positioned segment writes
    are deferred to a writer thread and flushed before the pieces are
    deleted.
    """
    job, comm, store, rank = ctx.job, ctx.comm, ctx.store, ctx.rank
    n_workers = job.n_workers
    block = job.block_records

    # Receiver layout: for run r my segment is [splits[rank][r],
    # splits[rank+1][r]); sender j contributes its piece's overlap, placed
    # after the contributions of senders 0..j-1 (global order).
    seg_base: List[List[int]] = []
    seg_len: List[int] = []
    for r, run in enumerate(runs):
        seg_lo, seg_hi = splits[rank][r], splits[rank + 1][r]
        bases, acc = [], 0
        for j in range(n_workers):
            piece_lo = run.offsets[j]
            piece_hi = piece_lo + run.pieces[j].n_records
            overlap = max(0, min(seg_hi, piece_hi) - max(seg_lo, piece_lo))
            bases.append(acc)
            acc += overlap
        seg_base.append(bases)
        seg_len.append(acc)
        if acc != seg_hi - seg_lo:
            raise AssertionError(
                f"run {r}: segment layout {acc} != splitter span {seg_hi - seg_lo}"
            )

    # Resume bookkeeping: the contiguous chunk count already delivered
    # per (run, sender) channel, agreed across all ranks so every sender
    # can skip exactly the chunks its receiver durably holds.  The
    # allgather runs whenever a journal exists (it is a no-op list of
    # empties on a fresh epoch), keeping the collective schedule
    # identical on every rank.
    journal = ctx.journal
    marks: Dict[Tuple[int, int], int] = {}
    first_keys: List[Dict[int, int]] = [dict() for _ in runs]
    if journal is not None and job.epoch > 0 and ctx.resume is not None:
        marks = dict(ctx.resume.a2a_marks)
        for (r, b), key in ctx.resume.a2a_first_keys.items():
            if r < len(first_keys):
                first_keys[r][b] = key
    all_marks: Optional[List[Dict[Tuple[int, int], int]]] = None
    if journal is not None:
        gathered = comm.allgather([[r, s, c] for (r, s), c in marks.items()])
        all_marks = [
            {(r, s): c for r, s, c in entry} for entry in gathered
        ]

    handles = []
    for r in range(len(runs)):
        path = store.segment_path(r)
        # preallocate is size-idempotent: on resume the bytes delivered
        # before the restart survive in place.
        store.preallocate(path, seg_len[r])
        handles.append(open(path, "r+b"))

    # The exact (run, piece-offset, count) read sequence of the send
    # stream, precomputed so a prefetcher can run ahead of the pipes.
    # Chunks a receiver already journaled are dropped here — the chunk
    # index k keeps its fresh-run numbering, so every surviving arrival
    # lands at the same absolute offset it would have on a clean run.
    send_plan: List[Tuple[int, int, int, int, int]] = []  # (dest, run, k, start, count)
    skipped = 0
    for r, run in enumerate(runs):
        my_off = run.offsets[rank]
        my_len = run.pieces[rank].n_records
        for dest in range(n_workers):
            lo = max(0, splits[dest][r] - my_off)
            hi = min(my_len, splits[dest + 1][r] - my_off)
            for chunk_k, s in enumerate(range(lo, hi, block)):
                if (
                    all_marks is not None
                    and chunk_k < all_marks[dest].get((r, rank), 0)
                ):
                    skipped += 1
                    continue
                send_plan.append((dest, r, chunk_k, s, min(block, hi - s)))
    if skipped:
        ctx.stats.add_counter("recovery_chunks_skipped", float(skipped))

    prefetcher: Optional[Prefetcher] = None
    if job.prefetch_blocks > 0 and send_plan:
        requests = [
            (store.piece_path(r), s, count) for _d, r, _k, s, count in send_plan
        ]
        order = sequential_fetch_order(
            [r for _d, r, _k, _s, _c in send_plan], job.prefetch_blocks
        )
        prefetcher = Prefetcher(
            store, requests, order, TAG_A2A, job.prefetch_blocks,
            stats=ctx.stats,
        )

    wb: Optional[WriteBehind] = None
    if job.write_behind_blocks > 0:
        wb = WriteBehind(
            store, TAG_A2A, max(job.write_behind_bytes, 1), stats=ctx.stats
        )

    # The chunk index k of each send rides in the plan (see above), so
    # the receiver's offset arithmetic is identical whether or not a
    # prefix of the stream was skipped on resume.
    def outgoing():
        for idx, (dest, r, chunk_k, s, count) in enumerate(send_plan):
            if prefetcher is not None:
                chunk = prefetcher.get(idx)
            else:
                chunk = store.read_range(store.piece_path(r), s, count, TAG_A2A)
            yield dest, ("a2a", r, chunk_k, bytes_view(chunk))

    # Harvest the merge's prediction sequence from the arriving bytes:
    # each chunk lands at a known record offset of the segment, so every
    # merge-block boundary it covers yields that block's first key.
    # ``first_keys`` was preloaded above with keys journaled before a
    # restart (their chunks are skipped and never re-arrive).
    chaos = getattr(job, "chaos", None)
    chunk_hook = getattr(chaos, "on_a2a_chunk", None)
    watermark_every = max(1, int(getattr(job, "a2a_checkpoint_chunks", 8)))
    new_keys: Dict[Tuple[int, int], int] = {}
    arrivals = 0

    def flush_watermark() -> None:
        # Durability order matters: segment bytes first, then the marks
        # that claim them.  A crash between the two only under-claims —
        # the unclaimed chunks are simply re-sent and rewritten in place.
        for handle in handles:
            handle.flush()
            os.fsync(handle.fileno())
        journal.a2a_mark(marks, new_keys)
        new_keys.clear()

    def on_chunk(peer: int, payload: tuple) -> None:
        nonlocal arrivals
        kind, r, k, buf = payload
        assert kind == "a2a"
        offset = seg_base[r][peer] + k * block
        n_recs = len(buf) // RECORD_BYTES
        first_block = -(-offset // block)  # first block starting in the chunk
        for b in range(first_block, (offset + n_recs + block - 1) // block):
            pos = b * block
            if pos < offset + n_recs:
                key = struct.unpack_from("<Q", buf, (pos - offset) * RECORD_BYTES)[0]
                first_keys[r][b] = key
                if journal is not None:
                    new_keys[(r, b)] = key
        if wb is not None:
            wb.write_at(handles[r], offset, buf)
        else:
            store.write_at(handles[r], offset, buf, TAG_A2A)
        arrivals += 1
        if journal is not None:
            # Per-channel FIFO + ascending k per (run, dest) make k+1 the
            # contiguous delivered count for this channel.
            marks[(r, peer)] = max(marks.get((r, peer), 0), k + 1)
            # Intra-phase watermarks need the bytes on disk before the
            # marks; under write-behind the writes are still in flight,
            # so watermarking is disabled and resume falls back to the
            # phase boundary (documented in docs/RECOVERY.md).
            if wb is None and arrivals % watermark_every == 0:
                flush_watermark()
        if chunk_hook is not None:
            chunk_hook(rank, arrivals)

    try:
        comm.exchange(outgoing(), on_chunk)
        if wb is not None:
            wb.close()
            wb = None
    finally:
        if prefetcher is not None:
            prefetcher.close()
        if wb is not None:  # error path
            wb.close(raise_error=False)
    for handle in handles:
        handle.close()

    block_first_keys: List[List[int]] = []
    for r in range(len(runs)):
        n_blocks = -(-seg_len[r] // block)
        if len(first_keys[r]) != n_blocks:
            raise AssertionError(
                f"run {r}: harvested {len(first_keys[r])} block keys, "
                f"expected {n_blocks}"
            )
        block_first_keys.append([first_keys[r][b] for b in range(n_blocks)])

    if journal is not None:
        # Completion is journaled *before* the pieces are reclaimed: a
        # crash after this line resumes past the phase and never needs
        # them; a crash before it still finds every piece in place.
        journal.a2a_done(seg_len, block_first_keys)

    # The run pieces have been redistributed; reclaim their disk space
    # (idempotent: a rerun over a crashed attempt may find some gone).
    for r in range(len(runs)):
        store.remove(store.piece_path(r))
    ctx.stats.note_resident(
        (2 + 4 + job.prefetch_blocks + job.write_behind_blocks)
        * block
        * RECORD_BYTES
    )
    return seg_len, block_first_keys


# --------------------------------------------------------------- phase 4

TAG_MERGE = "merge"


def merge(
    ctx: NativeContext,
    seg_len: List[int],
    block_first_keys: Optional[List[List[int]]] = None,
) -> OutputMeta:
    """Phase 4: R-way merge of the segment files into the final output.

    Streaming batch merge: each run contributes one buffered block; every
    round emits all records ≤ the smallest buffer-tail key (so at least
    one buffer drains completely), merged with the same stable batch
    kernel the simulator's merge phase models.  Verification happens in
    stream: sortedness, count, first/last key and the valsort checksum
    are computed as the output is written.

    With ``job.prefetch_blocks > 0``, segment blocks are fetched by
    background threads in the order given by the prediction sequence
    (``block_first_keys``, harvested for free during the all-to-all) fed
    through the optimal prefetch schedule of Appendix A; output writes go
    through a bounded write-behind buffer when ``job.write_behind_blocks
    > 0``.  Both layers are bitwise-transparent: the merge consumes and
    emits the identical record stream either way.
    """
    job, store, rank = ctx.job, ctx.store, ctx.rank
    block = job.block_records

    prefetcher: Optional[Prefetcher] = None
    if job.prefetch_blocks > 0 and sum(seg_len) > 0:
        # One read request per (run, block), triple-keyed for the
        # prediction order.  Without harvested first keys (merge called
        # standalone), (0, r, b) degrades to run-major fetch order —
        # still a valid schedule, just without the cross-run interleave.
        requests: List[Tuple[str, int, int]] = []
        triples: List[Tuple[int, int, int]] = []
        file_ids: List[int] = []
        per_run: List[List[int]] = []
        for r, n in enumerate(seg_len):
            path = store.segment_path(r)
            indices: List[int] = []
            for b in range(-(-n // block)):
                start = b * block
                indices.append(len(requests))
                requests.append((path, start, min(block, n - start)))
                key = (
                    block_first_keys[r][b]
                    if block_first_keys is not None
                    else 0
                )
                triples.append((key, r, b))
                file_ids.append(r)
            per_run.append(indices)
        order = plan_fetch_order(triples, file_ids, job.prefetch_blocks)
        prefetcher = Prefetcher(
            store, requests, order, TAG_MERGE, job.prefetch_blocks,
            stats=ctx.stats,
        )
        readers: List[object] = [
            PrefetchReader(prefetcher, per_run[r]) for r in range(len(seg_len))
        ]
    else:
        readers = [
            SequentialReader(store, store.segment_path(r), TAG_MERGE, n_records=n)
            for r, n in enumerate(seg_len)
        ]

    out_path = store.output_path()
    checksum = 0
    count = 0
    first_key: Optional[int] = None
    last_key: Optional[int] = None
    sorted_ok = True
    wb: Optional[WriteBehind] = None

    try:
        buffers: List[Optional[np.ndarray]] = []
        for reader in readers:
            buffers.append(reader.next_block())

        with open(out_path, "wb") as out:
            if job.write_behind_blocks > 0:
                wb = WriteBehind(
                    store, TAG_MERGE, max(job.write_behind_bytes, 1),
                    stats=ctx.stats,
                )

            journal = ctx.journal
            emits = 0

            def emit(batch: np.ndarray) -> None:
                nonlocal checksum, count, first_key, last_key, sorted_ok, emits
                if not len(batch):
                    return
                keys = batch["key"]
                if len(keys) > 1 and not bool(np.all(keys[:-1] <= keys[1:])):
                    sorted_ok = False
                if last_key is not None and int(keys[0]) < last_key:
                    sorted_ok = False
                if first_key is None:
                    first_key = int(keys[0])
                last_key = int(keys[-1])
                with np.errstate(over="ignore"):
                    checksum = (checksum + int(np.add.reduce(keys))) & _MASK
                count += len(batch)
                if wb is not None:
                    wb.append(out, batch)
                else:
                    store.append_records(out, batch, TAG_MERGE)
                emits += 1
                if journal is not None and emits % 128 == 0:
                    # Output-offset watermark: pure observability (a
                    # resumed merge restarts from the segments, which is
                    # already o(N)); it shows how far a crashed merge got.
                    journal.merge_mark(count)

            def note_working_set(batch_bytes: int) -> None:
                ctx.stats.note_resident(
                    sum(len(b) for b in buffers if b is not None) * RECORD_BYTES
                    + 2 * batch_bytes
                    + (prefetcher.buffered_bytes() if prefetcher else 0)
                    + (wb.queued_bytes() if wb else 0)
                )

            while True:
                active = [i for i, b in enumerate(buffers) if b is not None]
                if not active:
                    break
                # Refill any drained-but-not-exhausted buffer first.
                for i in active:
                    if len(buffers[i]) == 0:
                        nxt = readers[i].next_block()
                        buffers[i] = nxt
                active = [
                    i for i, b in enumerate(buffers) if b is not None and len(b)
                ]
                if not active:
                    break
                if len(active) == 1:
                    # Single-run fast path: stream the remainder through.
                    # It moves the same bytes as the general path, so it
                    # must keep the same resident/byte accounting.
                    i = active[0]
                    note_working_set(buffers[i].nbytes)
                    emit(buffers[i])
                    buffers[i] = np.empty(0, dtype=NATIVE_DTYPE)
                    while True:
                        nxt = readers[i].next_block()
                        if nxt is None:
                            buffers[i] = None
                            break
                        note_working_set(nxt.nbytes)
                        emit(nxt)
                    continue
                bound = min(int(buffers[i]["key"][-1]) for i in active)
                parts = []
                for i in active:
                    buf = buffers[i]
                    cut = int(np.searchsorted(buf["key"], bound, side="right"))
                    if cut:
                        parts.append(buf[:cut])
                        buffers[i] = buf[cut:]
                batch = merge_record_arrays(parts)
                note_working_set(batch.nbytes)
                emit(batch)

            if wb is not None:
                wb.close()  # flush inside the with-block: out must stay open
                wb = None
    finally:
        if prefetcher is not None:
            prefetcher.close()
        if wb is not None:  # error path
            wb.close(raise_error=False)

    meta = OutputMeta(
        rank=rank,
        path=out_path,
        n_records=count,
        first_key=first_key,
        last_key=last_key,
        checksum=checksum & _MASK,
        sorted_ok=sorted_ok,
    )
    if ctx.journal is not None:
        # Journal completion before reclaiming the segments (same
        # ordering argument as the all-to-all): a resume after this
        # record restores the output metadata without touching a byte.
        ctx.journal.merge_done({
            "rank": meta.rank,
            "path": meta.path,
            "n_records": meta.n_records,
            "first_key": meta.first_key,
            "last_key": meta.last_key,
            "checksum": meta.checksum,
            "sorted_ok": meta.sorted_ok,
        })
    for r in range(len(seg_len)):
        store.remove(store.segment_path(r))
    ctx.stats.add_counter("merge_arity", float(len(seg_len)))
    return meta
