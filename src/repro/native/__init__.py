"""Native execution backend: CANONICALMERGESORT on real files.

Where :mod:`repro.core` *simulates* the paper's algorithm against a
performance model, this package *executes* it: worker processes are the
PEs, a spill directory is the disk farm, the interconnect is either a
multiprocessing pipe mesh or real TCP sockets (:mod:`repro.net`), and
every phase moves real 16-byte records with ``numpy``.  The phase logic
is shared — the probe coroutines, warm starts, splitter matrices and
merge semantics are imported from :mod:`repro.algos` and
:mod:`repro.core`, so the native backend is an execution of the same
algorithm, not a reimplementation.

Entry points:

>>> from repro.native import native_sort
>>> result = native_sort(config, n_workers=4, spill_dir="/tmp/sort")
>>> result.validate().raise_if_failed()

or ``python -m repro --backend native --spill-dir /tmp/sort``.
"""

from .algos import ALGORITHMS
from .comm_api import Comm, CommError, CommTimeout, MeshComm
from .driver import NativeSortError, NativeSortResult, NativeSorter, native_sort
from .job import TRANSPORTS, NativeJob
from .pipeline import Prefetcher, WriteBehind
from .records import NATIVE_DTYPE, RECORD_BYTES
from .stats import NativeStats, WorkerStats

__all__ = [
    "ALGORITHMS",
    "Comm",
    "CommError",
    "CommTimeout",
    "MeshComm",
    "NativeJob",
    "NativeSorter",
    "NativeSortResult",
    "NativeSortError",
    "NativeStats",
    "WorkerStats",
    "Prefetcher",
    "WriteBehind",
    "TRANSPORTS",
    "native_sort",
    "NATIVE_DTYPE",
    "RECORD_BYTES",
]
