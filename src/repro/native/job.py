"""Native job parameters: a :class:`~repro.core.config.SortConfig` bound
to real processes and a real spill directory.

The simulator interprets ``SortConfig`` through the scaling discipline
(simulated keys *represent* paper-scale bytes); the native backend
interprets the same fields literally:

``data_per_node_bytes``
    real bytes of 16-byte records generated and sorted per worker;
``memory_bytes``
    the per-worker record-memory budget M.  Run formation keeps its
    working set within M by sizing one run chunk at M/3 (chunk + sorted
    permutation + received exchange slice — three live copies at the
    phase's peak);
``block_bytes``
    the unit of every file read/write and of every pipe chunk;
``selection`` / ``sample_every`` / ``randomize`` / ``seed``
    exactly as in the simulator.

``n_runs`` therefore lands at about ``3·N/M`` — the price of honoring M
as a *process* budget rather than a bare data volume.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional

from ..core.config import ConfigError, SortConfig
from .comm_api import DEFAULT_PENDING_SENDS
from .records import RECORD_BYTES

__all__ = ["NativeJob", "SORT_WORKING_COPIES", "TRANSPORTS"]

#: Interconnect substrates the driver can wire up (see docs/TRANSPORT.md).
TRANSPORTS = ("pipe", "tcp", "shm")

#: Live record-array copies at run formation's memory peak (input chunk,
#: sorted copy during the permutation, received exchange slice).
SORT_WORKING_COPIES = 3

#: Fallback per-worker memory when the config leaves it to the machine
#: spec (the simulator would use the paper machine's RAM — meaningless
#: for worker processes on one host).
DEFAULT_MEMORY_BYTES = 64 * 2**20


@dataclass
class NativeJob:
    """Everything a native worker needs to know (picklable)."""

    config: SortConfig
    n_workers: int
    spill_dir: str
    #: Duplicate-heavy gensort keys (the Daytona-like distribution).
    skew: bool = False
    #: Generate the input files inside the workers before sorting.
    generate: bool = True
    #: Per-message receive timeout for the interconnect mesh.
    timeout: float = 300.0
    #: Which interconnect carries the mesh: ``"pipe"`` (multiprocessing
    #: pipes, single host) or ``"tcp"`` (real sockets via
    #: :mod:`repro.net`, loopback or multi-host).
    transport: str = "pipe"
    #: Exchange backpressure bound: at most this many chunks parked in
    #: the send queue before the producer is throttled (both transports).
    pending_sends: int = DEFAULT_PENDING_SENDS
    #: TCP only: rendezvous endpoint the driver listens on
    #: (``"host:port"``; port 0 picks an ephemeral port).
    listen: str = "127.0.0.1:0"
    #: TCP only: when False the driver spawns no worker processes and
    #: waits for externally launched ``python -m repro worker`` PEs to
    #: connect to the rendezvous endpoint instead.
    spawn_workers: bool = True
    #: TCP only: sender-idle seconds between heartbeat frames.
    heartbeat_s: float = 5.0
    #: Read-ahead budget W in blocks (0 = synchronous reads).  When > 0,
    #: the merge and all-to-all phases fetch blocks on background threads
    #: in the order of the paper's optimal prefetch schedule (Appendix A),
    #: keeping at most W fetched-but-unconsumed blocks.  These buffers
    #: are *additional* to M (the paper folds its prefetch pool into M;
    #: we keep M's meaning from PR 1 and account the pool separately).
    prefetch_blocks: int = 0
    #: Write-behind budget in blocks (0 = synchronous writes).  When > 0,
    #: spill writes of run formation, all-to-all and the merge are queued
    #: to one background writer thread per phase, parking at most this
    #: many blocks' worth of record bytes in user space.
    write_behind_blocks: int = 0
    #: Optional fault-injection spec (see :mod:`repro.testing.chaos`).
    #: Duck-typed so the native backend never imports the testing
    #: subsystem: anything with ``at_point`` / ``on_recv_poll`` /
    #: ``clip_write`` hooks works.  Must be picklable.
    chaos: Optional[object] = None
    #: How many times the driver's supervisor may restart the job after
    #: a failed attempt (dead/severed/wedged rank).  > 0 implies
    #: checkpointing.
    max_restarts: int = 0
    #: Journal per-rank manifests even when restarts are disabled (lets
    #: a later invocation resume by setting ``epoch`` > 0 itself).
    checkpoint: bool = False
    #: Restart attempt number.  0 = fresh job (manifests truncated);
    #: > 0 = resume from the manifests in ``spill_dir``.  Stamped by the
    #: supervisor, fences stale interconnect frames.
    epoch: int = 0
    #: Ranks implicated in the failure that caused this epoch; they
    #: CRC-verify their retained piece blocks against the manifest
    #: before resuming (bounded, o(N) work).
    suspect_ranks: tuple = ()
    #: All-to-all watermark cadence: journal delivered-chunk marks every
    #: this many chunk arrivals (only while write-behind is off).
    a2a_checkpoint_chunks: int = 8
    #: Best-effort removal of the spill directory when the job aborts
    #: for good (all restarts exhausted).  Off by default: a populated
    #: spill dir is evidence, and chaos tests assert on its contents.
    cleanup_on_abort: bool = False
    #: Numeric job identity on the wire (service multiplexing): stamped
    #: into every frame's fence alongside the epoch so one job's frames
    #: can never be delivered to another.  0 for single-shot runs.
    job_tag: int = 0
    #: Spill-file namespace: when non-empty, every block-store file name
    #: is prefixed ``<namespace>_`` so concurrent jobs sharing one spill
    #: directory cannot collide, and cleanup of one job (abort included)
    #: can only ever touch that job's files.  Empty for single-shot
    #: runs, which keep the historic flat layout.
    spill_namespace: str = ""
    #: Record model: ``"fixed16"`` (the paper's 16-byte element) or
    #: ``"string"`` (length-prefixed variable records with byte-string
    #: keys, sorted byte-lexicographically; see docs/NATIVE.md).  The
    #: string model sizes itself by the same nominal 16 bytes/record, so
    #: a given data volume sorts the same record count either way.
    records: str = "fixed16"
    #: Sort algorithm backend: ``"canonical"`` (CANONICALMERGESORT, the
    #: default), ``"striped"`` (mergesort with global striping — paper
    #: Section III's baseline) or ``"guidesort"`` (deterministic
    #: guide-sequence merge).  See docs/NATIVE.md for the decision
    #: matrix; all backends produce the identical canonical output.
    algo: str = "canonical"
    #: Shared-memory transport only: data capacity of each directed ring
    #: in KiB.  ``None`` keeps the transport default
    #: (:data:`~repro.native.shm.DEFAULT_RING_BYTES`).  Messages larger
    #: than the ring stream through in pieces, so any positive size is
    #: correct — smaller rings just park the producer more often (this is
    #: the knob the ablation driver sweeps; see docs/TUNING.md).
    shm_ring_kib: Optional[int] = None

    def __post_init__(self):
        if self.n_workers < 1:
            raise ConfigError(f"need at least one worker, got {self.n_workers}")
        if self.block_records < 1:
            raise ConfigError(
                f"block_bytes {self.config.block_bytes:.0f} holds no whole "
                f"{RECORD_BYTES}-byte record"
            )
        if self.records_per_worker < 1:
            raise ConfigError("data_per_node_bytes holds no whole record")
        if self.config.selection not in ("sampled", "basic", "bisect"):
            raise ConfigError(f"unknown selection strategy {self.config.selection!r}")
        if self.prefetch_blocks < 0:
            raise ConfigError(
                f"prefetch_blocks must be >= 0, got {self.prefetch_blocks}"
            )
        if self.write_behind_blocks < 0:
            raise ConfigError(
                f"write_behind_blocks must be >= 0, got {self.write_behind_blocks}"
            )
        if self.transport not in TRANSPORTS:
            raise ConfigError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORTS}"
            )
        if self.shm_ring_kib is not None:
            if self.shm_ring_kib < 1:
                raise ConfigError(
                    f"shm_ring_kib must be >= 1, got {self.shm_ring_kib}"
                )
            if self.transport != "shm":
                raise ConfigError(
                    "shm_ring_kib only applies to transport='shm', "
                    f"got transport={self.transport!r}"
                )
        if self.timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {self.timeout}")
        if self.pending_sends < 1:
            raise ConfigError(
                f"pending_sends must be >= 1, got {self.pending_sends}"
            )
        if self.heartbeat_s <= 0:
            raise ConfigError(f"heartbeat_s must be > 0, got {self.heartbeat_s}")
        if not self.spawn_workers and self.transport != "tcp":
            raise ConfigError(
                "spawn_workers=False (externally launched PEs) requires "
                "transport='tcp'"
            )
        if self.max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.epoch < 0:
            raise ConfigError(f"epoch must be >= 0, got {self.epoch}")
        if self.epoch > 0 and not self.checkpointing:
            raise ConfigError(
                "epoch > 0 (resume) requires checkpointing "
                "(checkpoint=True or max_restarts > 0)"
            )
        if self.a2a_checkpoint_chunks < 1:
            raise ConfigError(
                "a2a_checkpoint_chunks must be >= 1, got "
                f"{self.a2a_checkpoint_chunks}"
            )
        if not 0 <= self.job_tag < 2**32:
            raise ConfigError(
                f"job_tag must fit a u32, got {self.job_tag}"
            )
        if self.spill_namespace and not all(
            c.isalnum() or c in "._-" for c in self.spill_namespace
        ):
            raise ConfigError(
                f"spill_namespace {self.spill_namespace!r} may only use "
                "alphanumerics, '.', '_' and '-' (it prefixes file names)"
            )
        from .records import MODELS

        if self.records not in MODELS:
            raise ConfigError(
                f"unknown record model {self.records!r}; choose from "
                f"{tuple(sorted(MODELS))}"
            )
        if self.varlen:
            # Follow-ups tracked in ROADMAP: the recovery journal, the
            # pipelined I/O layer and the chaos write gate are all
            # slot-addressed today.
            if self.checkpointing or self.epoch > 0:
                raise ConfigError(
                    "records='string' does not support checkpoint/resume yet"
                )
            if self.pipelined:
                raise ConfigError(
                    "records='string' does not support pipelined I/O yet"
                )
            if self.chaos is not None:
                raise ConfigError(
                    "records='string' does not support chaos injection yet"
                )
        from .algos import ALGORITHMS

        if self.algo not in ALGORITHMS:
            raise ConfigError(
                f"unknown algorithm {self.algo!r}; choose from {ALGORITHMS}"
            )
        if self.algo != "canonical":
            # The new backends run the paper's fixed element only, and
            # (like the string model before them) the recovery journal,
            # the pipelined I/O layer and the chaos write gate are
            # canonical-phase-addressed today (ROADMAP follow-ups).
            if self.varlen:
                raise ConfigError(
                    f"algo={self.algo!r} only supports records='fixed16' yet"
                )
            if self.checkpointing or self.epoch > 0:
                raise ConfigError(
                    f"algo={self.algo!r} does not support checkpoint/resume yet"
                )
            if self.pipelined:
                raise ConfigError(
                    f"algo={self.algo!r} does not support pipelined I/O yet"
                )
            if self.chaos is not None:
                raise ConfigError(
                    f"algo={self.algo!r} does not support chaos injection yet"
                )
        merge_working = (self.n_runs * 2 + 4) * self.block_records * RECORD_BYTES
        if merge_working > self.memory_bytes + self.chunk_records * RECORD_BYTES:
            raise ConfigError(
                f"merge phase needs ~{merge_working} B of buffers for "
                f"R = {self.n_runs} runs but M = {self.memory_bytes:.0f}; "
                "raise memory_bytes or block granularity (the paper's "
                "N = O(M^2/(P B)) two-pass limit)"
            )

    # -- derived sizes (all in records unless noted) --------------------------

    @property
    def record_bytes(self) -> int:
        """Nominal bytes per record (sizing; exact only for fixed16)."""
        return RECORD_BYTES

    @property
    def varlen(self) -> bool:
        """Whether this job sorts variable-length records."""
        return self.records != "fixed16"

    @property
    def model(self):
        """The resolved :class:`~repro.native.records.RecordModel`."""
        from .records import resolve_model

        return resolve_model(self.records)

    @property
    def memory_bytes(self) -> int:
        mem = self.config.memory_bytes
        return int(mem) if mem is not None else DEFAULT_MEMORY_BYTES

    @property
    def block_records(self) -> int:
        return int(self.config.block_bytes) // RECORD_BYTES

    @property
    def records_per_worker(self) -> int:
        return int(self.config.data_per_node_bytes) // RECORD_BYTES

    @property
    def total_records(self) -> int:
        return self.records_per_worker * self.n_workers

    @property
    def input_blocks(self) -> int:
        return math.ceil(self.records_per_worker / self.block_records)

    @property
    def piece_blocks(self) -> int:
        """Input blocks per run chunk: M / 3 worth of blocks, at least one."""
        budget = self.memory_bytes // SORT_WORKING_COPIES
        return max(1, int(budget) // (self.block_records * RECORD_BYTES))

    @property
    def chunk_records(self) -> int:
        return self.piece_blocks * self.block_records

    @property
    def n_runs(self) -> int:
        return max(1, math.ceil(self.input_blocks / self.piece_blocks))

    @property
    def sample_every(self) -> int:
        """Sampling period K in records (default: one sample per block)."""
        k = self.config.sample_every
        return max(1, int(k) if k is not None else self.block_records)

    @property
    def selection_cache_blocks(self) -> int:
        """Probe-cache capacity: the configured LRU, bounded by memory."""
        by_memory = max(
            4, self.memory_bytes // (4 * self.block_records * RECORD_BYTES)
        )
        return int(min(self.config.selection_cache_blocks, by_memory))

    @property
    def ring_bytes(self) -> int:
        """Shm ring data capacity in bytes (transport default when unset)."""
        if self.shm_ring_kib is not None:
            return self.shm_ring_kib * 1024
        from .shm import DEFAULT_RING_BYTES

        return DEFAULT_RING_BYTES

    @property
    def checkpointing(self) -> bool:
        """Whether workers journal manifests for phase-boundary resume."""
        return self.checkpoint or self.max_restarts > 0

    @property
    def pipelined(self) -> bool:
        """Whether any part of the pipelined I/O layer is enabled."""
        return self.prefetch_blocks > 0 or self.write_behind_blocks > 0

    @property
    def write_behind_bytes(self) -> int:
        """Write-behind byte budget (0 when write-behind is off)."""
        return self.write_behind_blocks * self.block_records * RECORD_BYTES

    def worker_start(self, rank: int) -> int:
        """Global index of worker ``rank``'s first input record."""
        return rank * self.records_per_worker

    def describe(self) -> dict:
        """Config snapshot for JSON reports."""
        return {
            "n_workers": self.n_workers,
            "spill_dir": os.path.abspath(self.spill_dir),
            "record_bytes": RECORD_BYTES,
            "records_per_worker": self.records_per_worker,
            "total_records": self.total_records,
            "data_per_worker_bytes": self.records_per_worker * RECORD_BYTES,
            "memory_bytes": self.memory_bytes,
            "block_bytes": self.block_records * RECORD_BYTES,
            "block_records": self.block_records,
            "chunk_records": self.chunk_records,
            "n_runs": self.n_runs,
            "sample_every": self.sample_every,
            "selection": self.config.selection,
            "randomize": self.config.randomize,
            "seed": self.config.seed,
            "skew": self.skew,
            "transport": self.transport,
            "pending_sends": self.pending_sends,
            "timeout": self.timeout,
            "prefetch_blocks": self.prefetch_blocks,
            "write_behind_blocks": self.write_behind_blocks,
            "chaos": self.chaos is not None,
            "checkpoint": self.checkpointing,
            "max_restarts": self.max_restarts,
            "epoch": self.epoch,
            "job_tag": self.job_tag,
            "spill_namespace": self.spill_namespace,
            "records": self.records,
            "algo": self.algo,
            "shm_ring_kib": self.shm_ring_kib,
        }
