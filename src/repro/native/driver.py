"""Driver: spawn the worker PEs, wire the pipe mesh, collect the result.

The native counterpart of :class:`repro.core.canonical.CanonicalMergeSort`'s
top-level ``sort``: it owns process lifecycle and failure handling, while
all sorting happens inside :mod:`repro.native.worker`.  The driver builds
one duplex pipe per worker pair (the full mesh the simulator's
``cluster.mpi`` models), plus one result pipe per worker for stats and
error reporting.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.config import SortConfig
from ..workloads.validation import ValidationReport
from .job import NativeJob
from .phases import OutputMeta
from .records import NATIVE_DTYPE, RECORD_BYTES
from .stats import NativeStats, WorkerStats
from .worker import worker_main

__all__ = ["NativeSorter", "NativeSortResult", "NativeSortError", "native_sort"]

_MASK = 0xFFFFFFFFFFFFFFFF


class NativeSortError(RuntimeError):
    """A worker process failed or disappeared."""


@dataclass
class NativeSortResult:
    """Outcome of one native sort (files still on disk until cleanup)."""

    job: NativeJob
    stats: NativeStats
    outputs: List[OutputMeta]
    #: Order-independent sum of all input keys, accumulated by the
    #: workers while they streamed the input during run formation.
    input_checksum: int

    def validate(self) -> ValidationReport:
        """Valsort-style verification from the streaming per-rank metadata.

        Works at any scale without re-reading the output: sortedness and
        checksums were computed while the merge wrote each file.
        """
        issues: List[str] = []
        total = sum(meta.n_records for meta in self.outputs)
        if total != self.job.total_records:
            issues.append(
                f"count mismatch: {self.job.total_records} in, {total} out"
            )
        for meta in self.outputs:
            if not meta.sorted_ok:
                issues.append(f"rank {meta.rank} output is not sorted")
        last: Optional[int] = None
        for meta in self.outputs:
            if meta.n_records == 0:
                continue
            if last is not None and meta.first_key is not None and meta.first_key < last:
                issues.append(
                    f"boundary violation between rank {meta.rank - 1} and {meta.rank}"
                )
            last = meta.last_key
        n_workers = len(self.outputs)
        if total == self.job.total_records:
            for meta in self.outputs:
                want = (
                    (meta.rank + 1) * total // n_workers
                    - meta.rank * total // n_workers
                )
                if meta.n_records != want:
                    issues.append(
                        f"rank {meta.rank} holds {meta.n_records} records, "
                        f"canonical share is {want}"
                    )
        out_sum = 0
        for meta in self.outputs:
            out_sum = (out_sum + meta.checksum) & _MASK
        if out_sum != self.input_checksum:
            issues.append(
                f"checksum mismatch: {self.input_checksum:#x} in, {out_sum:#x} out"
            )
        return ValidationReport(
            ok=not issues, issues=issues, total_keys=total, checksum=out_sum
        )

    def output_keys(self) -> List[np.ndarray]:
        """Per-rank output key arrays (reads the files; test-scale only)."""
        out = []
        for meta in self.outputs:
            records = np.fromfile(meta.path, dtype=NATIVE_DTYPE)
            out.append(records["key"].copy())
        return out

    def output_records(self, rank: int) -> np.ndarray:
        return np.fromfile(self.outputs[rank].path, dtype=NATIVE_DTYPE)

    def cleanup(self) -> None:
        """Delete the spill directory and everything in it."""
        shutil.rmtree(self.job.spill_dir, ignore_errors=True)


class NativeSorter:
    """Run CANONICALMERGESORT with ``n_workers`` OS processes as PEs."""

    def __init__(self, job: NativeJob):
        self.job = job
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")

    # -- wiring ---------------------------------------------------------------

    def _build_mesh(self):
        """One duplex pipe per worker pair: conns[i][j] is i's end to j."""
        P = self.job.n_workers
        conns: List[Dict[int, object]] = [dict() for _ in range(P)]
        for i in range(P):
            for j in range(i + 1, P):
                end_i, end_j = self._ctx.Pipe(duplex=True)
                conns[i][j] = end_i
                conns[j][i] = end_j
        return conns

    # -- execution ------------------------------------------------------------

    def run(self) -> NativeSortResult:
        job = self.job
        os.makedirs(job.spill_dir, exist_ok=True)
        mesh = self._build_mesh()
        result_pipes = [self._ctx.Pipe(duplex=False) for _ in range(job.n_workers)]

        procs = []
        start = time.monotonic()
        for rank in range(job.n_workers):
            proc = self._ctx.Process(
                target=worker_main,
                args=(rank, job, mesh[rank], result_pipes[rank][1]),
                name=f"native-pe-{rank}",
            )
            proc.start()
            procs.append(proc)
        # The parent's copies of the worker-side pipe ends must close so
        # a dead worker turns into EOF, not a silent hang.
        for rank in range(job.n_workers):
            for conn in mesh[rank].values():
                conn.close()
            result_pipes[rank][1].close()

        try:
            results = self._collect(procs, [rp[0] for rp in result_pipes])
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=10.0)
            for rp in result_pipes:
                rp[0].close()
        total_time = time.monotonic() - start

        workers: List[WorkerStats] = []
        outputs: List[OutputMeta] = []
        input_checksum = 0
        n_runs = 0
        for payload in results:
            _tag, stats, out_meta, chk, worker_runs = payload
            workers.append(stats)
            outputs.append(out_meta)
            input_checksum = (input_checksum + chk) & _MASK
            n_runs = max(n_runs, worker_runs)
        outputs.sort(key=lambda m: m.rank)

        native_stats = NativeStats(
            workers,
            total_time=total_time,
            n_runs=n_runs,
            total_records=job.total_records,
            record_bytes=RECORD_BYTES,
        )
        return NativeSortResult(
            job=job,
            stats=native_stats,
            outputs=outputs,
            input_checksum=input_checksum,
        )

    def _collect(self, procs, conns) -> List[tuple]:
        """Wait for every worker's result; fail fast on error or death."""
        deadline = time.monotonic() + self.job.timeout + 30.0
        pending = dict(enumerate(conns))
        results: List[tuple] = []
        while pending:
            if time.monotonic() > deadline:
                raise NativeSortError(
                    f"timed out waiting for workers {sorted(pending)}"
                )
            from multiprocessing.connection import wait as conn_wait

            ready = conn_wait(list(pending.values()), timeout=1.0)
            if not ready:
                for rank in list(pending):
                    if not procs[rank].is_alive():
                        raise NativeSortError(
                            f"worker {rank} died (exit code "
                            f"{procs[rank].exitcode}) without reporting"
                        )
                continue
            by_conn = {id(c): r for r, c in pending.items()}
            for conn in ready:
                rank = by_conn[id(conn)]
                try:
                    payload = conn.recv()
                except EOFError:
                    raise NativeSortError(
                        f"worker {rank} closed its result pipe (exit code "
                        f"{procs[rank].exitcode})"
                    )
                if payload[0] == "error":
                    raise NativeSortError(
                        f"worker {payload[1]} failed:\n{payload[2]}"
                    )
                results.append(payload)
                del pending[rank]
        return results


def native_sort(
    config: SortConfig,
    n_workers: int,
    spill_dir: str,
    skew: bool = False,
    timeout: float = 300.0,
) -> NativeSortResult:
    """Convenience one-call native sort (generate, sort, return result)."""
    job = NativeJob(
        config=config,
        n_workers=n_workers,
        spill_dir=spill_dir,
        skew=skew,
        timeout=timeout,
    )
    return NativeSorter(job).run()
