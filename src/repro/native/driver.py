"""Driver: spawn the worker PEs, wire the mesh, collect the result.

The native counterpart of :class:`repro.core.canonical.CanonicalMergeSort`'s
top-level ``sort``: it owns process lifecycle and failure handling, while
all sorting happens inside :mod:`repro.native.worker`.  Two transports
(``job.transport``):

* ``"pipe"`` — the driver builds one duplex pipe per worker pair (the
  full mesh the simulator's ``cluster.mpi`` models), plus one result
  pipe per worker for stats and error reporting;
* ``"tcp"`` — the driver opens a rendezvous endpoint
  (:class:`repro.net.rendezvous.Coordinator`), the workers dial in,
  receive the job and the peer table, and build their own socket mesh.
  The rendezvous connections double as the result channels.  With
  ``job.spawn_workers=False`` no processes are spawned at all — the
  driver waits for externally launched ``python -m repro worker`` PEs
  (other terminals, other hosts).

Failure handling is transport-blind: a worker that reports an error, a
torn or wedged result message, or a death without a report all raise
:class:`NativeSortError` well inside the timeout.  When the job
checkpoints (``max_restarts > 0`` or ``checkpoint=True``) the failure
instead feeds a supervisor loop (see :mod:`repro.recovery`): the driver
re-runs the job at an incremented epoch, the respawned workers resume
from their manifests at the last globally completed phase boundary, and
the stale frames of the dead attempt are fenced off by epoch.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import sys
import threading
import time
from dataclasses import dataclass, replace as dc_replace
from multiprocessing.connection import wait as conn_wait
from typing import Dict, List, Optional

import numpy as np

from ..core.config import SortConfig
from ..workloads.validation import ValidationReport
from .comm_api import DEFAULT_PENDING_SENDS
from .job import NativeJob
from .phases import OutputMeta
from .stats import NativeStats, WorkerStats
from .worker import shm_worker_main, tcp_worker_main, worker_main

__all__ = [
    "NativeSorter",
    "NativeSortResult",
    "NativeSortError",
    "native_sort",
    "assemble_result",
]

_MASK = 0xFFFFFFFFFFFFFFFF

#: How long the driver will wait for the *rest* of a result message once
#: its first bytes have arrived.  Results are small; if a complete
#: message does not materialize in this window the worker died mid-send
#: (a torn/wedged result pipe) and the job must fail fast, not hang.
RESULT_RECV_TIMEOUT = 10.0


def assemble_result(
    job: NativeJob, results: List[tuple], total_time: float
) -> NativeSortResult:
    """Fold per-rank ``("ok", ...)`` payloads into one sort result.

    Shared by the single-shot driver and the sort service's scheduler —
    both collect the same worker reports, whatever channel carried them.
    """
    workers: List[WorkerStats] = []
    outputs: List[OutputMeta] = []
    input_checksum = 0
    n_runs = 0
    for payload in results:
        _tag, stats, out_meta, chk, worker_runs = payload
        workers.append(stats)
        outputs.append(out_meta)
        input_checksum = (input_checksum + chk) & _MASK
        n_runs = max(n_runs, worker_runs)
    outputs.sort(key=lambda m: m.rank)

    native_stats = NativeStats(
        workers,
        total_time=total_time,
        n_runs=n_runs,
        total_records=job.total_records,
        record_bytes=job.record_bytes,
    )
    return NativeSortResult(
        job=job,
        stats=native_stats,
        outputs=outputs,
        input_checksum=input_checksum,
    )


def _cleanup_spill(job: NativeJob) -> None:
    """Delete this job's spill files — and *only* this job's.

    Un-namespaced (single-shot) jobs own their directory and remove it
    wholesale; namespaced jobs share it and remove only their prefix,
    so an abort can never delete a concurrent job's blocks.
    """
    namespace = getattr(job, "spill_namespace", "")
    if namespace:
        from .blockstore import purge_namespace

        purge_namespace(job.spill_dir, namespace)
    else:
        shutil.rmtree(job.spill_dir, ignore_errors=True)


class NativeSortError(RuntimeError):
    """A worker process failed or disappeared.

    ``rank`` names the worker implicated in the failure when the driver
    could attribute it (dead process, error report, torn result); the
    supervisor marks that rank suspect on the next epoch so it
    CRC-verifies its retained spill state before resuming.
    """

    def __init__(self, message: str, rank: Optional[int] = None):
        super().__init__(message)
        self.rank = rank


@dataclass
class NativeSortResult:
    """Outcome of one native sort (files still on disk until cleanup)."""

    job: NativeJob
    stats: NativeStats
    outputs: List[OutputMeta]
    #: Order-independent sum of all input keys, accumulated by the
    #: workers while they streamed the input during run formation.
    input_checksum: int

    def validate(self) -> ValidationReport:
        """Valsort-style verification from the streaming per-rank metadata.

        Works at any scale without re-reading the output: sortedness and
        checksums were computed while the merge wrote each file.
        """
        issues: List[str] = []
        total = sum(meta.n_records for meta in self.outputs)
        if total != self.job.total_records:
            issues.append(
                f"count mismatch: {self.job.total_records} in, {total} out"
            )
        for meta in self.outputs:
            if not meta.sorted_ok:
                issues.append(f"rank {meta.rank} output is not sorted")
        last: Optional[int] = None
        for meta in self.outputs:
            if meta.n_records == 0:
                continue
            if last is not None and meta.first_key is not None and meta.first_key < last:
                issues.append(
                    f"boundary violation between rank {meta.rank - 1} and {meta.rank}"
                )
            last = meta.last_key
        n_workers = len(self.outputs)
        if total == self.job.total_records:
            for meta in self.outputs:
                want = (
                    (meta.rank + 1) * total // n_workers
                    - meta.rank * total // n_workers
                )
                if meta.n_records != want:
                    issues.append(
                        f"rank {meta.rank} holds {meta.n_records} records, "
                        f"canonical share is {want}"
                    )
        out_sum = 0
        for meta in self.outputs:
            out_sum = (out_sum + meta.checksum) & _MASK
        if out_sum != self.input_checksum:
            issues.append(
                f"checksum mismatch: {self.input_checksum:#x} in, {out_sum:#x} out"
            )
        return ValidationReport(
            ok=not issues, issues=issues, total_keys=total, checksum=out_sum
        )

    def output_keys(self) -> List:
        """Per-rank output keys (reads the files; test-scale only).

        ``uint64`` arrays under the fixed model, lists of byte strings
        under the string model — both compare with ``<`` and slot into
        the conformance oracle unchanged.
        """
        model = self.job.model
        return [model.output_keys(meta.path) for meta in self.outputs]

    def output_records(self, rank: int):
        """One rank's decoded output (record array or VarlenBatch)."""
        return self.job.model.read_output(self.outputs[rank].path)

    def cleanup(self) -> None:
        """Delete this job's spill files (the whole dir when un-namespaced)."""
        _cleanup_spill(self.job)


class NativeSorter:
    """Run CANONICALMERGESORT with ``n_workers`` OS processes as PEs."""

    def __init__(self, job: NativeJob):
        self.job = job
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")

    # -- wiring ---------------------------------------------------------------

    def _build_mesh(self):
        """One duplex pipe per worker pair: conns[i][j] is i's end to j."""
        P = self.job.n_workers
        conns: List[Dict[int, object]] = [dict() for _ in range(P)]
        for i in range(P):
            for j in range(i + 1, P):
                end_i, end_j = self._ctx.Pipe(duplex=True)
                conns[i][j] = end_i
                conns[j][i] = end_j
        return conns

    # -- execution ------------------------------------------------------------

    def run(self) -> NativeSortResult:
        """Run the job, supervising restarts when it checkpoints.

        Non-checkpointing jobs keep the PR-1 contract exactly: the first
        failure raises.  Checkpointing jobs get a supervisor loop — each
        failed attempt is recorded, and while the
        :class:`~repro.recovery.supervisor.RestartPolicy` allows it the
        job re-runs at ``epoch + 1`` with the implicated rank marked
        suspect; the workers resume from their manifests.
        """
        from ..recovery.supervisor import RestartPolicy

        job = self.job
        os.makedirs(job.spill_dir, exist_ok=True)
        policy = RestartPolicy(getattr(job, "max_restarts", 0))
        attempt = job
        while True:
            try:
                result = self._run_attempt(attempt)
            except NativeSortError as exc:
                epoch = int(getattr(attempt, "epoch", 0))
                if getattr(job, "checkpointing", False) and policy.record_failure(
                    epoch, getattr(exc, "rank", None), str(exc)
                ):
                    attempt = dc_replace(
                        job, epoch=epoch + 1, suspect_ranks=policy.suspects()
                    )
                    continue
                if getattr(job, "cleanup_on_abort", False):
                    # Best effort only: the job is lost either way, and
                    # chaos tests that *want* the wreckage leave this off.
                    _cleanup_spill(job)
                raise
            result.stats.restarts = policy.restarts_used
            result.stats.recovery_events = policy.to_dicts()
            return result

    def _run_attempt(self, job: NativeJob) -> NativeSortResult:
        if job.transport == "tcp":
            return self._run_tcp(job)
        if job.transport == "shm":
            return self._run_shm(job)
        return self._run_pipe(job)

    def _run_pipe(self, job: NativeJob) -> NativeSortResult:
        mesh = self._build_mesh()
        result_pipes = [self._ctx.Pipe(duplex=False) for _ in range(job.n_workers)]

        procs = []
        start = time.monotonic()
        for rank in range(job.n_workers):
            proc = self._ctx.Process(
                target=worker_main,
                args=(rank, job, mesh[rank], result_pipes[rank][1]),
                name=f"native-pe-{rank}",
            )
            proc.start()
            procs.append(proc)
        # The parent's copies of the worker-side pipe ends must close so
        # a dead worker turns into EOF, not a silent hang.
        for rank in range(job.n_workers):
            for conn in mesh[rank].values():
                conn.close()
            result_pipes[rank][1].close()

        try:
            results = self._collect(procs, [rp[0] for rp in result_pipes])
        finally:
            self._reap(procs)
            for rp in result_pipes:
                rp[0].close()
        return self._assemble(job, results, time.monotonic() - start)

    def _run_shm(self, job: NativeJob) -> NativeSortResult:
        """Same-host execution over shared-memory ring buffers.

        The driver owns the segment names: whatever happens to the
        attempt — success, a chaos ``SIGKILL`` mid-phase, a timeout —
        the ``finally`` unlinks every ring after the workers are
        reaped, so ``/dev/shm`` never accumulates leftovers.
        """
        from .shm import create_shm_mesh

        mesh = create_shm_mesh(
            self._ctx, job.n_workers, ring_bytes=job.ring_bytes,
            job_tag=getattr(job, "job_tag", 0),
        )
        result_pipes = [self._ctx.Pipe(duplex=False) for _ in range(job.n_workers)]

        procs = []
        start = time.monotonic()
        try:
            for rank in range(job.n_workers):
                proc = self._ctx.Process(
                    target=shm_worker_main,
                    args=(rank, job, mesh.channels[rank], result_pipes[rank][1]),
                    name=f"native-pe-{rank}",
                )
                proc.start()
                procs.append(proc)
            # Close the parent's doorbell/result copies so a dead worker
            # turns into EOF for its peers, not a silent hang.
            mesh.close_parent_ends()
            for rank in range(job.n_workers):
                result_pipes[rank][1].close()
            try:
                results = self._collect(procs, [rp[0] for rp in result_pipes])
            finally:
                self._reap(procs)
                for rp in result_pipes:
                    rp[0].close()
        finally:
            mesh.unlink()
        return self._assemble(job, results, time.monotonic() - start)

    def _run_tcp(self, job: NativeJob) -> NativeSortResult:
        """Rendezvous-based execution over the socket transport."""
        from ..net.rendezvous import Coordinator, parse_hostport

        host, port = parse_hostport(job.listen)
        coordinator = Coordinator(job.n_workers, host=host, port=port)
        procs: List = []
        conns: Dict[int, object] = {}
        start = time.monotonic()
        try:
            if not job.spawn_workers:
                # External PEs need the endpoint to dial; port may be
                # ephemeral, so announce the bound address.
                print(
                    f"rendezvous listening on "
                    f"{coordinator.addr[0]}:{coordinator.addr[1]} — start "
                    f"{job.n_workers} workers: python -m repro worker "
                    f"--connect {coordinator.addr[0]}:{coordinator.addr[1]} "
                    f"--rank <0..{job.n_workers - 1}>",
                    file=sys.stderr,
                )
            if job.spawn_workers:
                # Spawned workers take the identical path an external
                # ``repro worker`` process takes — job over the wire —
                # so loopback CI exercises the multi-host handshake.
                for rank in range(job.n_workers):
                    proc = self._ctx.Process(
                        target=tcp_worker_main,
                        args=(rank, coordinator.addr),
                        kwargs={"connect_timeout": job.timeout + 30.0},
                        name=f"native-pe-{rank}",
                    )
                    proc.start()
                    procs.append(proc)

            def health() -> None:
                for rank, proc in enumerate(procs):
                    if not proc.is_alive():
                        raise NativeSortError(
                            f"worker {rank} died during rendezvous "
                            f"(exit code {proc.exitcode})",
                            rank=rank,
                        )

            deadline = time.monotonic() + job.timeout + 30.0
            try:
                conns = coordinator.wait_for_workers(
                    job, deadline, health=health if procs else None
                )
            except NativeSortError:
                raise
            except Exception as exc:
                raise NativeSortError(f"rendezvous failed: {exc}") from exc
            results = self._collect_tcp(procs, conns)
        finally:
            self._reap(procs)
            for sock in conns.values():
                try:
                    sock.close()
                except OSError:
                    pass
            coordinator.close()
        return self._assemble(job, results, time.monotonic() - start)

    def _assemble(
        self, job: NativeJob, results: List[tuple], total_time: float
    ) -> NativeSortResult:
        return assemble_result(job, results, total_time)

    def _collect(self, procs, conns) -> List[tuple]:
        """Wait for every worker's result; fail fast on error or death.

        Hardened against the ways a worker can die *unhelpfully*:

        * **death without EOF** — under the fork start method sibling
          workers inherit each other's pipe write-ends, so a dead
          worker's result pipe never signals EOF while any sibling
          lives.  The wait therefore includes each pending worker's
          process *sentinel*: death wakes the driver immediately.
        * **torn / wedged result message** — a worker killed mid-send
          can leave a partial frame in the pipe; a bare ``recv`` would
          block forever on it.  Every ``recv`` runs under
          :data:`RESULT_RECV_TIMEOUT` (see :meth:`_recv_result`).
        """
        deadline = time.monotonic() + self.job.timeout + 30.0
        pending = dict(enumerate(conns))
        results: List[tuple] = []
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                alive = [r for r in sorted(pending) if procs[r].is_alive()]
                raise NativeSortError(
                    f"timed out waiting for workers {sorted(pending)} "
                    f"(still alive: {alive})"
                )
            by_conn = {id(c): r for r, c in pending.items()}
            sentinels = {procs[r].sentinel: r for r in pending}
            ready = conn_wait(
                list(pending.values()) + list(sentinels),
                timeout=min(1.0, remaining),
            )
            # Results first: a worker that reported and exited promptly
            # trips both its pipe and its sentinel — that is a success.
            got_result = False
            for obj in ready:
                rank = by_conn.get(id(obj))
                if rank is None or rank not in pending:
                    continue
                results.append(self._recv_result(procs[rank], obj, rank))
                del pending[rank]
                got_result = True
            if got_result:
                continue
            for rank in list(pending):
                proc = procs[rank]
                if proc.is_alive():
                    continue
                conn = pending[rank]
                if conn.poll(0):
                    # Death after (or during) the send: drain what there
                    # is — _recv_result turns a torn frame into an error.
                    results.append(self._recv_result(proc, conn, rank))
                    del pending[rank]
                else:
                    raise NativeSortError(
                        f"worker {rank} died (exit code {proc.exitcode}) "
                        "without reporting a result",
                        rank=rank,
                    )
        return results

    def _recv_result(self, proc, conn, rank: int) -> tuple:
        """One result-pipe ``recv`` that cannot hang the driver.

        The receive runs in a helper thread bounded by
        :data:`RESULT_RECV_TIMEOUT`; a worker that died after sending
        only part of a message (or a corrupt frame) surfaces as a
        :class:`NativeSortError` naming the worker and its exit code.
        """
        box: Dict[str, object] = {}

        def _target():
            try:
                box["payload"] = conn.recv()
            except BaseException as exc:  # EOF, OSError, UnpicklingError...
                box["exc"] = exc

        thread = threading.Thread(
            target=_target, name=f"native-result-recv-{rank}", daemon=True
        )
        thread.start()
        thread.join(RESULT_RECV_TIMEOUT)
        if thread.is_alive():
            raise NativeSortError(
                f"worker {rank} result pipe wedged: a partial message "
                f"arrived but never completed (worker "
                f"{'alive' if proc.is_alive() else f'exit code {proc.exitcode}'})",
                rank=rank,
            )
        if "exc" in box:
            raise NativeSortError(
                f"worker {rank} result unreadable: {box['exc']!r} "
                f"(exit code {proc.exitcode})",
                rank=rank,
            )
        return self._check_result_payload(rank, box["payload"])

    def _collect_tcp(self, procs, conns) -> List[tuple]:
        """TCP twin of :meth:`_collect`: result sockets + process sentinels.

        With externally launched workers (``procs`` empty) there are no
        sentinels to watch — a dead worker surfaces as EOF on its result
        socket instead (TCP closes connections on process death, unlike
        the fork-shared pipe write-ends that motivate the sentinels).
        """
        import select as _select

        deadline = time.monotonic() + self.job.timeout + 30.0
        pending = dict(conns)
        results: List[tuple] = []
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                alive = (
                    [r for r in sorted(pending) if procs[r].is_alive()]
                    if procs
                    else "external"
                )
                raise NativeSortError(
                    f"timed out waiting for workers {sorted(pending)} "
                    f"(still alive: {alive})"
                )
            by_sock = {id(s): r for r, s in pending.items()}
            sentinels = {procs[r].sentinel: r for r in pending} if procs else {}
            ready = conn_wait(
                list(pending.values()) + list(sentinels),
                timeout=min(1.0, remaining),
            )
            got_result = False
            for obj in ready:
                rank = by_sock.get(id(obj))
                if rank is None or rank not in pending:
                    continue
                results.append(
                    self._recv_result_tcp(
                        procs[rank] if procs else None, obj, rank
                    )
                )
                del pending[rank]
                got_result = True
            if got_result:
                continue
            for rank in list(pending):
                if not procs or procs[rank].is_alive():
                    continue
                sock = pending[rank]
                readable, _, _ = _select.select([sock], [], [], 0)
                if readable:
                    results.append(
                        self._recv_result_tcp(procs[rank], sock, rank)
                    )
                    del pending[rank]
                else:
                    raise NativeSortError(
                        f"worker {rank} died (exit code {procs[rank].exitcode}) "
                        "without reporting a result",
                        rank=rank,
                    )
        return results

    def _recv_result_tcp(self, proc, sock, rank: int) -> tuple:
        """One framed result receive that cannot hang the driver.

        The socket timeout replaces :meth:`_recv_result`'s helper
        thread: a torn frame, garbage bytes, an unfinished message or a
        silent close all become a :class:`NativeSortError` naming the
        worker within :data:`RESULT_RECV_TIMEOUT`.
        """
        from ..net.framing import KIND_GOODBYE, KIND_RESULT, recv_frame
        from .comm_api import CommError, CommTimeout

        def status() -> str:
            if proc is None:
                return "external"
            return "alive" if proc.is_alive() else f"exit code {proc.exitcode}"

        sock.settimeout(RESULT_RECV_TIMEOUT)
        try:
            frame = recv_frame(sock)
        except CommTimeout:
            raise NativeSortError(
                f"worker {rank} result channel wedged: a partial message "
                f"arrived but never completed (worker {status()})",
                rank=rank,
            ) from None
        except CommError as exc:
            raise NativeSortError(
                f"worker {rank} result unreadable: {exc} (worker {status()})",
                rank=rank,
            ) from exc
        if frame is None:
            raise NativeSortError(
                f"worker {rank} closed its result channel without "
                f"reporting a result (worker {status()})",
                rank=rank,
            )
        kind, payload, _epoch, _fence, _nbytes = frame
        if kind == KIND_GOODBYE:
            # A deliberate close is still not a result: a worker that
            # says GOODBYE on its result channel has abandoned the job.
            raise NativeSortError(
                f"worker {rank} closed its result channel deliberately "
                f"(GOODBYE) without reporting a result (worker {status()})",
                rank=rank,
            )
        if kind != KIND_RESULT:
            raise NativeSortError(
                f"worker {rank} sent frame kind {kind} on the result channel",
                rank=rank,
            )
        return self._check_result_payload(rank, payload)

    @staticmethod
    def _check_result_payload(rank: int, payload) -> tuple:
        if (
            not isinstance(payload, tuple)
            or not payload
            or payload[0] not in ("ok", "error")
            or (payload[0] == "ok" and len(payload) != 5)
            or (payload[0] == "error" and len(payload) != 3)
        ):
            raise NativeSortError(
                f"worker {rank} sent a malformed result: {payload!r}",
                rank=rank,
            )
        if payload[0] == "error":
            raise NativeSortError(
                f"worker {payload[1]} failed:\n{payload[2]}",
                rank=int(payload[1]),
            )
        return payload

    @staticmethod
    def _reap(procs) -> None:
        """Terminate stragglers, escalating to SIGKILL; never wait forever."""
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=10.0)
        for proc in procs:
            if proc.is_alive():  # pragma: no cover - SIGTERM normally works
                proc.kill()
                proc.join(timeout=5.0)


def native_sort(
    config: SortConfig,
    n_workers: int,
    spill_dir: str,
    skew: bool = False,
    timeout: float = 300.0,
    transport: str = "pipe",
    pending_sends: int = DEFAULT_PENDING_SENDS,
    prefetch_blocks: int = 0,
    write_behind_blocks: int = 0,
    max_restarts: int = 0,
    checkpoint: bool = False,
    records: str = "fixed16",
    algo: str = "canonical",
    shm_ring_kib: "int | None" = None,
    a2a_checkpoint_chunks: int = 8,
) -> NativeSortResult:
    """Convenience one-call native sort (generate, sort, return result).

    ``transport`` picks the interconnect substrate (``"pipe"`` or
    ``"tcp"``, see :mod:`repro.net`); ``prefetch_blocks`` /
    ``write_behind_blocks`` enable the pipelined I/O layer
    (:mod:`repro.native.pipeline`); both default to 0, the synchronous
    path.  ``max_restarts`` / ``checkpoint`` enable the recovery
    subsystem (:mod:`repro.recovery`): workers journal phase-boundary
    manifests and the driver restarts failed attempts.
    """
    job = NativeJob(
        config=config,
        n_workers=n_workers,
        spill_dir=spill_dir,
        skew=skew,
        timeout=timeout,
        transport=transport,
        pending_sends=pending_sends,
        prefetch_blocks=prefetch_blocks,
        write_behind_blocks=write_behind_blocks,
        max_restarts=max_restarts,
        checkpoint=checkpoint,
        records=records,
        algo=algo,
        shm_ring_kib=shm_ring_kib,
        a2a_checkpoint_chunks=a2a_checkpoint_chunks,
    )
    return NativeSorter(job).run()
