"""Pipelined I/O for the native backend: read-ahead and write-behind.

The paper's merging phases are I/O-optimal only because fetches are
*overlapped* with computation: the prediction sequence (the blocks in the
order the merge will need them, known in advance from each block's
smallest key) is turned into an optimal fetch schedule by the
Hutchinson–Sanders–Vitter duality of Appendix A.  The simulator already
implements that schedule (:mod:`repro.em.prefetch`); this module applies
it to *real files*:

* :class:`Prefetcher` — a small pool of background reader threads that
  fetches blocks in the order :func:`plan_fetch_order` dictates
  (``prediction_order`` + ``optimal_prefetch_schedule``), holding at most
  ``W`` fetched-but-unconsumed blocks.  The consumer asks for blocks in
  its own order; a block the schedule has not delivered yet is fetched
  directly on the calling thread (counted as a schedule miss), so the
  pipeline can never deadlock, only degrade to the synchronous path.
* :class:`WriteBehind` — a single writer thread fed from a bounded queue
  that makes appends, positioned writes and whole-file spills
  non-blocking.  The byte budget caps the record data parked in user
  space; a producer that outruns the disk blocks (and the wait is
  accounted as stall time).  Write errors — including chaos-injected
  torn ENOSPC writes (:mod:`repro.testing.chaos`) — are re-raised on the
  producer thread at the next call or at :meth:`WriteBehind.close`, so
  the fail-fast contract survives the thread hop.

Accounting discipline: background threads move bytes but never touch the
store's counters; the *consumer* charges each read when it takes the
block and the writer thread charges writes through the normal store
methods (which only count main-thread time as stall).  Conservation
invariants (each phase moves exactly N·16 bytes) therefore hold verbatim
in pipelined mode, which the conformance harness asserts.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..em.prefetch import optimal_prefetch_schedule, prediction_order
from .records import read_records

__all__ = [
    "Prefetcher",
    "PrefetchReader",
    "WriteBehind",
    "plan_fetch_order",
    "sequential_fetch_order",
]


def plan_fetch_order(
    triples: Sequence[Tuple[int, int, int]],
    file_ids: Sequence[int],
    n_buffers: int,
) -> List[int]:
    """Fetch order for read requests consumed in prediction order.

    ``triples[i] = (key, file, block_in_file)`` ranks request ``i`` in the
    consumption (prediction) order; ``file_ids[i]`` names its source file,
    which plays the role of a disk in Appendix A's schedule (fetches from
    distinct files may proceed concurrently, a file serves one fetch per
    step).  Returns a permutation of ``range(len(triples))``: the request
    indices in optimal fetch order for a ``n_buffers``-block pool.
    """
    if len(triples) != len(file_ids):
        raise ValueError(f"{len(triples)} triples vs {len(file_ids)} file ids")
    if not triples:
        return []
    pred = prediction_order(triples)
    n_files = max(file_ids) + 1
    disk_in_pred = [file_ids[i] for i in pred]
    sched = optimal_prefetch_schedule(disk_in_pred, n_buffers, n_files)
    return [pred[pos] for pos in sched]


def sequential_fetch_order(file_ids: Sequence[int], n_buffers: int) -> List[int]:
    """Fetch order when the consumption order is already known.

    The caller's request list *is* the prediction sequence (requests are
    consumed in index order), so only the disk-scheduling half of
    Appendix A applies.
    """
    return plan_fetch_order(
        [(i, 0, 0) for i in range(len(file_ids))], file_ids, n_buffers
    )


class Prefetcher:
    """Background block fetches against a :class:`FileBlockStore`'s files.

    ``requests[i] = (path, start_record, count)``; ``fetch_order`` is a
    permutation of the request indices (from :func:`plan_fetch_order`).
    At most ``budget_blocks`` requests are in flight or fetched-but-
    unconsumed at any time.  :meth:`get` hands the consumer request ``i``,
    charging the read to ``store`` *on the consuming thread* and
    recording the wait as stall time in ``stats``.
    """

    def __init__(
        self,
        store,
        requests: Sequence[Tuple[str, int, int]],
        fetch_order: Sequence[int],
        tag: str,
        budget_blocks: int,
        stats=None,
        n_threads: Optional[int] = None,
    ):
        if budget_blocks < 1:
            raise ValueError(f"budget_blocks must be >= 1, got {budget_blocks}")
        if sorted(fetch_order) != list(range(len(requests))):
            raise ValueError("fetch_order is not a permutation of the requests")
        self.store = store
        self.requests = list(requests)
        self.tag = tag
        self.budget = budget_blocks
        self.stats = stats
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._order = list(fetch_order)
        self._cursor = 0
        self._results: Dict[int, object] = {}   # idx -> ndarray or exception
        self._in_flight: set = set()
        self._skipped: set = set()              # consumer fetched these directly
        self._stopped = False
        n_files = len({r[0] for r in self.requests}) or 1
        count = n_threads if n_threads is not None else min(4, n_files)
        self._threads = [
            threading.Thread(
                target=self._fetch_loop,
                name=f"native-prefetch-{store.rank}-{i}",
                daemon=True,
            )
            for i in range(max(1, count))
        ]
        for t in self._threads:
            t.start()

    # -- background side -------------------------------------------------------

    def _next_index(self) -> Optional[int]:
        """Claim the next schedulable request (holding the lock)."""
        while self._cursor < len(self._order):
            idx = self._order[self._cursor]
            if idx in self._skipped:
                self._cursor += 1
                continue
            if len(self._results) + len(self._in_flight) >= self.budget:
                return None
            self._cursor += 1
            self._in_flight.add(idx)
            return idx
        return None

    def _fetch_loop(self) -> None:
        while True:
            with self._cond:
                idx = self._next_index()
                while idx is None and not self._stopped:
                    if self._cursor >= len(self._order):
                        return
                    self._cond.wait(0.5)
                    idx = self._next_index()
                if self._stopped:
                    return
            path, start, count = self.requests[idx]
            try:
                block = read_records(path, start, count)
                if len(block) != count:
                    raise IOError(
                        f"{path}: short read at record {start} "
                        f"({len(block)} of {count})"
                    )
                payload: object = block
            except BaseException as exc:  # surfaced to the consumer in get()
                payload = exc
            with self._cond:
                self._in_flight.discard(idx)
                self._results[idx] = payload
                if self.stats is not None:
                    self.stats.add_counter(f"{self.tag}_prefetch_fetched")
                    self.stats.note_max(
                        f"{self.tag}_prefetch_inflight_hwm",
                        len(self._results) + len(self._in_flight),
                    )
                self._cond.notify_all()

    # -- consumer side ---------------------------------------------------------

    def get(self, idx: int) -> np.ndarray:
        """Request ``idx``'s block, waiting only while a fetch can deliver it.

        The consumer waits as long as the schedule can still produce the
        block: it is in flight, or unclaimed with budget slots free (a
        fetch thread will reach it).  When the pool is full of blocks the
        consumer does not want yet — the one situation where waiting
        would deadlock fetcher and consumer — the block is fetched
        directly on the calling thread and counted as a schedule miss.
        """
        start_wait = time.monotonic()
        miss = False
        with self._cond:
            while True:
                if idx in self._results:
                    payload = self._results.pop(idx)
                    self._cond.notify_all()  # a budget slot freed up
                    if isinstance(payload, BaseException):
                        raise payload
                    waited = time.monotonic() - start_wait
                    if self.stats is not None and waited > 0:
                        self.stats.add_stall(self.tag, waited)
                    self.store.charge_read(self.tag, payload.nbytes)
                    return payload
                pool_full = (
                    len(self._results) + len(self._in_flight) >= self.budget
                )
                if idx not in self._in_flight and (pool_full or self._stopped):
                    self._skipped.add(idx)
                    miss = True
                    break
                self._cond.wait(0.5)
        assert miss
        if self.stats is not None:
            self.stats.add_counter(f"{self.tag}_prefetch_direct")
            waited = time.monotonic() - start_wait
            if waited > 0:
                self.stats.add_stall(self.tag, waited)
        return self.store.read_range(
            self.requests[idx][0], self.requests[idx][1], self.requests[idx][2],
            self.tag,
        )

    def buffered_bytes(self) -> int:
        with self._lock:
            return sum(
                b.nbytes for b in self._results.values()
                if isinstance(b, np.ndarray)
            )

    def close(self) -> None:
        """Stop the reader threads (idempotent; safe mid-stream)."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=5.0)

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PrefetchReader:
    """Drop-in for :class:`~repro.native.blockstore.SequentialReader`.

    Streams one file's blocks in order by pulling the pre-planned
    requests from a shared :class:`Prefetcher`.
    """

    def __init__(self, prefetcher: Prefetcher, indices: Sequence[int]):
        self.prefetcher = prefetcher
        self.indices = list(indices)
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.indices)

    def next_block(self) -> Optional[np.ndarray]:
        if self.exhausted:
            return None
        block = self.prefetcher.get(self.indices[self._next])
        self._next += 1
        return block


#: Writer-queue operation kinds.
_OP_APPEND, _OP_AT, _OP_FILE = "append", "at", "file"


class WriteBehind:
    """Bounded write-behind buffer: one writer thread per store user.

    All writes are executed through the owning store's methods, so
    per-tag byte accounting and the chaos write gate (torn ENOSPC
    writes) behave exactly as on the synchronous path — just on a
    background thread.  Any write error is re-raised on the producer
    thread at the next call, at :meth:`flush` or at :meth:`close`.
    """

    def __init__(self, store, tag: str, budget_bytes: int, stats=None):
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
        self.store = store
        self.tag = tag
        self.budget = budget_bytes
        self.stats = stats
        self._cond = threading.Condition()
        self._queue: List[tuple] = []
        self._queued_bytes = 0
        self._error: Optional[BaseException] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._write_loop,
            name=f"native-write-behind-{store.rank}-{tag}",
            daemon=True,
        )
        self._thread.start()

    # -- producer side ---------------------------------------------------------

    def _submit(self, op: tuple, nbytes: int) -> None:
        start_wait = time.monotonic()
        with self._cond:
            if self._error is not None:
                raise self._error
            if self._closed:
                raise RuntimeError("write-behind buffer already closed")
            # Admit an oversize item only into an empty queue, so a piece
            # larger than the budget still drains one at a time.
            while self._queued_bytes > 0 and self._queued_bytes + nbytes > self.budget:
                self._cond.wait(0.5)
                if self._error is not None:
                    raise self._error
            self._queue.append(op)
            self._queued_bytes += nbytes
            if self.stats is not None:
                self.stats.add_counter(f"{self.tag}_write_behind_chunks")
                self.stats.note_max(
                    f"{self.tag}_write_behind_hwm_bytes", self._queued_bytes
                )
            self._cond.notify_all()
        waited = time.monotonic() - start_wait
        if self.stats is not None and waited > 0.001:
            self.stats.add_stall(self.tag, waited)

    def append(self, handle, records: np.ndarray) -> None:
        """Deferred ``store.append_records(handle, records, tag)``."""
        self._submit((_OP_APPEND, handle, records), records.nbytes)

    def write_at(self, handle, record_offset: int, payload: bytes) -> None:
        """Deferred ``store.write_at(handle, record_offset, payload, tag)``."""
        self._submit((_OP_AT, handle, record_offset, payload), len(payload))

    def write_file(self, path: str, records: np.ndarray) -> None:
        """Deferred ``store.write_file(path, records, tag)``."""
        self._submit((_OP_FILE, path, records), records.nbytes)

    def queued_bytes(self) -> int:
        with self._cond:
            return self._queued_bytes

    # -- writer thread ---------------------------------------------------------

    def _write_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed and self._error is None:
                    self._cond.wait(0.5)
                if self._error is not None or (self._closed and not self._queue):
                    return
                op = self._queue.pop(0)
            try:
                kind = op[0]
                if kind == _OP_APPEND:
                    _, handle, records = op
                    self.store.append_records(handle, records, self.tag)
                    nbytes = records.nbytes
                elif kind == _OP_AT:
                    _, handle, offset, payload = op
                    self.store.write_at(handle, offset, payload, self.tag)
                    nbytes = len(payload)
                else:
                    _, path, records = op
                    self.store.write_file(path, records, self.tag)
                    nbytes = records.nbytes
            except BaseException as exc:
                with self._cond:
                    self._error = exc
                    self._cond.notify_all()
                return
            with self._cond:
                self._queued_bytes -= nbytes
                self._cond.notify_all()

    # -- lifecycle -------------------------------------------------------------

    def flush(self, timeout: float = 300.0) -> None:
        """Block until every queued write reached the file (or raise)."""
        start_wait = time.monotonic()
        deadline = start_wait + timeout
        with self._cond:
            while self._queue or self._queued_bytes > 0:
                if self._error is not None:
                    raise self._error
                if time.monotonic() > deadline:
                    raise IOError(
                        f"write-behind flush timed out with "
                        f"{self._queued_bytes} bytes queued"
                    )
                self._cond.wait(0.5)
            if self._error is not None:
                raise self._error
        waited = time.monotonic() - start_wait
        if self.stats is not None and waited > 0.001:
            self.stats.add_stall(self.tag, waited)

    def close(self, raise_error: bool = True) -> None:
        """Flush, stop the writer thread, and surface any pending error."""
        error: Optional[BaseException] = None
        try:
            if raise_error:
                self.flush()
        except BaseException as exc:
            error = exc
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=10.0)
        with self._cond:
            if error is None and self._error is not None:
                error = self._error
        if error is not None and raise_error:
            raise error

    def __enter__(self) -> "WriteBehind":
        return self

    def __exit__(self, exc_type, *rest) -> None:
        # On an exception path, don't mask it with a flush error.
        self.close(raise_error=exc_type is None)
