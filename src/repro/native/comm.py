"""Pipe transport for native worker processes: a full mesh of pipes.

This module plays the role :mod:`repro.cluster.mpi` plays for the
simulator — collectives and point-to-point transfers between PEs — but
over real :mod:`multiprocessing` pipes between real processes on one
host.  All protocol logic (collectives, stash-aware receives, the
chunked exchange, the probe service, the sender thread) lives in
:class:`repro.native.comm_api.MeshComm`; :class:`PipeComm` contributes
only the pipe-specific channel primitives.  :class:`repro.net.tcp.TcpComm`
is the multi-host sibling over the same core.

Design notes
------------

* **One duplex pipe per worker pair.**  Per-channel FIFO ordering is the
  backbone of the protocols: a message posted after a phase's last
  message can never overtake it, so phases separated by collectives need
  no global sequencing, only per-message epoch tags as a safety check.

* **A single sender thread per worker.**  ``Connection.send`` blocks when
  the OS pipe fills; if every worker blocked sending into a full pipe
  while its own inbox backed up, the mesh would deadlock.  All sends are
  therefore executed by a background thread fed from a queue, and the
  main thread is always free to drain incoming traffic.  The bulk
  exchange additionally keeps the queue short (``pending_sends``,
  default :data:`PENDING_SENDS`) so the amount of record data parked in
  user space stays bounded — the external-memory discipline extends to
  the interconnect.

* **Stash-aware receives.**  A fast peer may already be sending its next
  phase's traffic while a slow peer still owes this phase's message.
  :meth:`MeshComm.recv_match` parks non-matching messages per peer and
  replays them in order, which keeps every protocol loop simple and
  starvation-free.
"""

from __future__ import annotations

from multiprocessing.connection import Connection, wait as conn_wait
from typing import Dict

from .comm_api import (
    DEFAULT_PENDING_SENDS,
    DEFAULT_TIMEOUT,
    CommError,
    CommTimeout,
    MeshComm,
)

__all__ = [
    "PipeComm",
    "CommError",
    "CommTimeout",
    "DEFAULT_TIMEOUT",
    "PENDING_SENDS",
]

#: Backwards-compatible name for the default exchange backpressure bound
#: (now per-job via ``NativeJob.pending_sends``).
PENDING_SENDS = DEFAULT_PENDING_SENDS


class PipeComm(MeshComm):
    """Point-to-point and collective communication over a pipe mesh."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        conns: Dict[int, Connection],
        timeout: float = DEFAULT_TIMEOUT,
        chaos=None,
        pending_sends: int = DEFAULT_PENDING_SENDS,
        job_epoch: int = 0,
    ):
        self.conns = conns
        super().__init__(
            rank,
            n_workers,
            peers=list(conns),
            timeout=timeout,
            pending_sends=pending_sends,
            chaos=chaos,
            job_epoch=job_epoch,
        )
        self._start_sender()

    # -- channel primitives ---------------------------------------------------

    def _transmit(self, peer: int, msg: tuple) -> None:
        # Pipes have no frame header, so the job-epoch fence wraps the
        # message itself: (epoch, payload).  The payload is always a
        # protocol tuple whose first element is a string, so the wrapper
        # is unambiguous on the receive side.
        self.conns[peer].send((self.job_epoch, msg))

    def _poll_once(self, block_timeout: float) -> bool:
        """Pull every immediately available message into the stash."""
        if not self.conns:
            return False
        self._chaos_poll()
        ready = conn_wait(list(self.conns.values()), timeout=block_timeout)
        if not ready:
            return False
        by_conn = {id(c): p for p, c in self.conns.items()}
        got = False
        for conn in ready:
            peer = by_conn[id(conn)]
            try:
                wrapped = conn.recv()
            except EOFError as exc:
                raise CommError(
                    f"rank {self.rank}: peer {peer} closed its pipe"
                ) from exc
            fence, msg = wrapped
            if fence != self.job_epoch:
                # A stale frame from a pre-restart epoch: fence it off.
                self.fenced_drops += 1
                continue
            self._stash_message(peer, msg)
            got = True
        return got

    def _sever_transport(self) -> None:
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass
