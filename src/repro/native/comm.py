"""Interconnect for native worker processes: a full mesh of pipes.

This module plays the role :mod:`repro.cluster.mpi` plays for the
simulator — collectives and point-to-point transfers between PEs — but
over real :mod:`multiprocessing` pipes between real processes.

Design notes
------------

* **One duplex pipe per worker pair.**  Per-channel FIFO ordering is the
  backbone of the protocols: a message posted after a phase's last
  message can never overtake it, so phases separated by collectives need
  no global sequencing, only per-message epoch tags as a safety check.

* **A single sender thread per worker.**  ``Connection.send`` blocks when
  the OS pipe fills; if every worker blocked sending into a full pipe
  while its own inbox backed up, the mesh would deadlock.  All sends are
  therefore executed by a background thread fed from a queue, and the
  main thread is always free to drain incoming traffic.  The bulk
  exchange additionally keeps the queue short (``PENDING_SENDS``) so the
  amount of record data parked in user space stays bounded — the
  external-memory discipline extends to the interconnect.

* **Stash-aware receives.**  A fast peer may already be sending its next
  phase's traffic while a slow peer still owes this phase's message.
  :meth:`PipeComm.recv_match` parks non-matching messages per peer and
  replays them in order, which keeps every protocol loop simple and
  starvation-free.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["PipeComm", "CommError", "CommTimeout"]

#: Default receive timeout: generous, only to turn a wedged cluster into
#: a diagnosable error instead of a hang.
DEFAULT_TIMEOUT = 300.0

#: Bulk-exchange backpressure: at most this many chunks parked in the
#: send queue before the producer is throttled.
PENDING_SENDS = 4


class CommError(RuntimeError):
    """A peer misbehaved (protocol violation or dead connection)."""


class CommTimeout(CommError):
    """No expected message arrived within the timeout."""


class PipeComm:
    """Point-to-point and collective communication for one worker."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        conns: Dict[int, Connection],
        timeout: float = DEFAULT_TIMEOUT,
        chaos=None,
    ):
        if sorted(conns) != [p for p in range(n_workers) if p != rank]:
            raise ValueError(
                f"rank {rank}/{n_workers}: need one connection per peer, "
                f"got {sorted(conns)}"
            )
        self.rank = rank
        self.n_workers = n_workers
        self.conns = conns
        self.timeout = timeout
        #: Optional fault-injection spec (duck-typed; may delay polls).
        self.chaos = chaos
        self._epoch = 0
        #: Messages received but not yet consumed, per peer, in order.
        self._stash: Dict[int, deque] = {p: deque() for p in conns}
        self._sendq: "queue.Queue" = queue.Queue()
        self._send_lock = threading.Condition()
        self._enqueued = 0
        self._sent = 0
        self._send_error: Optional[BaseException] = None
        self._sender = threading.Thread(
            target=self._send_loop, name=f"native-send-{rank}", daemon=True
        )
        self._sender.start()
        #: Bytes moved through the mesh (payload estimate), for stats.
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- low-level send/recv --------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            item = self._sendq.get()
            if item is None:
                return
            peer, msg = item
            try:
                self.conns[peer].send(msg)
            except BaseException as exc:  # surface on the main thread
                with self._send_lock:
                    self._send_error = exc
                    self._send_lock.notify_all()
                return
            with self._send_lock:
                self._sent += 1
                self._send_lock.notify_all()

    def post(self, peer: int, msg: tuple) -> None:
        """Queue a message for ``peer`` (self-sends loop back locally)."""
        if self._send_error is not None:
            raise CommError(f"sender thread died: {self._send_error!r}")
        if peer == self.rank:
            self._stash.setdefault(peer, deque()).append(msg)
            return
        self._enqueued += 1
        self._sendq.put((peer, msg))

    def pending_sends(self) -> int:
        """Messages queued but not yet pushed into a pipe."""
        with self._send_lock:
            return self._enqueued - self._sent

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every queued message has entered its pipe."""
        deadline = timeout if timeout is not None else self.timeout
        with self._send_lock:
            ok = self._send_lock.wait_for(
                lambda: self._send_error is not None
                or self._sent >= self._enqueued,
                timeout=deadline,
            )
        if self._send_error is not None:
            raise CommError(f"sender thread died: {self._send_error!r}")
        if not ok:
            raise CommTimeout(f"rank {self.rank}: flush timed out")

    def close(self) -> None:
        """Stop the sender thread (queued messages are flushed first)."""
        try:
            self.flush(timeout=5.0)
        except CommError:
            pass
        self._sendq.put(None)
        self._sender.join(timeout=5.0)

    def _poll_once(self, block_timeout: float) -> bool:
        """Pull every immediately available message into the stash."""
        if not self.conns:
            return False
        if self.chaos is not None:
            self.chaos.on_recv_poll(self.rank)
        ready = conn_wait(list(self.conns.values()), timeout=block_timeout)
        if not ready:
            return False
        by_conn = {id(c): p for p, c in self.conns.items()}
        for conn in ready:
            peer = by_conn[id(conn)]
            try:
                msg = conn.recv()
            except EOFError as exc:
                raise CommError(
                    f"rank {self.rank}: peer {peer} closed its pipe"
                ) from exc
            self._stash[peer].append(msg)
        return True

    def recv_match(
        self,
        match: Callable[[int, tuple], bool],
        timeout: Optional[float] = None,
    ) -> Tuple[int, tuple]:
        """Next message satisfying ``match(peer, msg)``, stashing the rest.

        Scans parked messages first (preserving per-peer order), then
        blocks on the pipes.  Raises :class:`CommTimeout` when nothing
        matching arrives in time.
        """
        deadline = time.monotonic() + (timeout if timeout is not None else self.timeout)
        while True:
            for peer, dq in self._stash.items():
                for i, msg in enumerate(dq):
                    if match(peer, msg):
                        del dq[i]
                        return peer, msg
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeout(
                    f"rank {self.rank}: timed out waiting for a matching message"
                )
            if self._send_error is not None:
                raise CommError(f"sender thread died: {self._send_error!r}")
            self._poll_once(min(0.25, remaining))

    def try_recv_match(
        self, match: Callable[[int, tuple], bool]
    ) -> Optional[Tuple[int, tuple]]:
        """Non-blocking :meth:`recv_match` (one poll, no waiting)."""
        for peer, dq in self._stash.items():
            for i, msg in enumerate(dq):
                if match(peer, msg):
                    del dq[i]
                    return peer, msg
        if self._poll_once(0.0):
            for peer, dq in self._stash.items():
                for i, msg in enumerate(dq):
                    if match(peer, msg):
                        del dq[i]
                        return peer, msg
        return None

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Wait until every worker reached this point."""
        self.allgather(None)

    def allgather(self, obj) -> List:
        """Everyone contributes ``obj``; everyone gets the rank-ordered list."""
        self._epoch += 1
        epoch = self._epoch
        out: List = [None] * self.n_workers
        out[self.rank] = obj
        for peer in self.conns:
            self.post(peer, ("__ag__", epoch, obj))
        need = set(self.conns)
        while need:
            peer, msg = self.recv_match(
                lambda p, m: p in need and m[0] == "__ag__" and m[1] == epoch
            )
            out[peer] = msg[2]
            need.discard(peer)
        return out

    def allreduce(self, value, op: Callable) -> object:
        """Reduce ``value`` over all workers with binary ``op``."""
        values = self.allgather(value)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc

    # -- bulk chunked all-to-all ----------------------------------------------

    def exchange(
        self,
        outgoing: Iterable[Tuple[int, tuple]],
        on_chunk: Callable[[int, tuple], None],
    ) -> None:
        """Chunked, bounded-memory all-to-all.

        ``outgoing`` lazily yields ``(dest, payload_msg)`` pairs; payloads
        destined for *this* rank are delivered directly.  ``on_chunk(peer,
        payload_msg)`` consumes arrivals (e.g. writes them to a spill
        file).  The producer iterator is only advanced while the send
        queue is short, so at most ``PENDING_SENDS`` chunks of record
        data sit in user-space buffers at any time.

        Completion: each worker sends an end-of-stream marker to every
        peer after its last chunk; the call returns once all markers are
        in, all local sends are flushed, and a closing barrier passes.
        """
        self._epoch += 1
        epoch = self._epoch
        it: Iterator[Tuple[int, tuple]] = iter(outgoing)
        producing = True
        eof_from = set()
        peers = set(self.conns)
        deadline = time.monotonic() + self.timeout

        def is_mine(p: int, m: tuple) -> bool:
            return m[0] in ("__xch__", "__xeof__") and m[1] == epoch

        while True:
            if time.monotonic() > deadline:
                owing = sorted(peers - eof_from)
                raise CommTimeout(
                    f"rank {self.rank}: exchange made no progress for "
                    f"{self.timeout:.0f}s; peers {owing} never finished "
                    "their stream (stalled or dead PE)"
                )
            # Drain everything receivable right now.
            while True:
                got = self.try_recv_match(is_mine)
                if got is None:
                    break
                deadline = time.monotonic() + self.timeout
                peer, msg = got
                if msg[0] == "__xeof__":
                    eof_from.add(peer)
                else:
                    payload = msg[2]
                    self.bytes_received += _payload_bytes(payload)
                    on_chunk(peer, payload)
            # Feed the sender while there is room.
            while producing and self.pending_sends() < PENDING_SENDS:
                try:
                    dest, payload = next(it)
                except StopIteration:
                    producing = False
                    for peer in peers:
                        self.post(peer, ("__xeof__", epoch))
                    break
                if dest == self.rank:
                    on_chunk(self.rank, payload)
                else:
                    self.bytes_sent += _payload_bytes(payload)
                    self.post(dest, ("__xch__", epoch, payload))
            if not producing and eof_from == peers:
                break
            if peers or producing:
                # Nothing immediately actionable: wait briefly for traffic.
                if producing and self.pending_sends() >= PENDING_SENDS:
                    self._poll_once(0.005)
                elif peers and eof_from != peers:
                    self._poll_once(0.05)
            else:
                break
        self.flush()
        self.barrier()

    # -- probe service (distributed multiway selection) -----------------------

    def selection_round(
        self,
        coroutine,
        local_lookup: Callable[[int], int],
        owner_of: Callable[[int], int],
    ):
        """Drive a selection coroutine whose probes may live on peers.

        ``coroutine`` yields ``(sequence, position)`` probe requests (the
        contract of :func:`repro.algos.multiway_selection.select_coroutine`).
        ``owner_of(seq)`` maps a sequence index to the worker holding it;
        ``local_lookup(pos)`` answers probes against *this* worker's own
        sequence.  Every worker must call this exactly once per round:
        the call keeps answering peers' probes until all of them have
        finished their own selection, so the collective as a whole cannot
        starve.  Returns the coroutine's :class:`SelectionResult`.
        """
        self._epoch += 1
        epoch = self._epoch
        peers = set(self.conns)
        done_from = set()
        probe_seq = 0

        def serve(peer: int, msg: tuple) -> bool:
            """Handle one protocol message; True when it was consumed."""
            kind = msg[0]
            if kind == "__prb__" and msg[1] == epoch:
                self.post(peer, ("__prr__", epoch, msg[2], local_lookup(msg[3])))
                return True
            if kind == "__prd__" and msg[1] == epoch:
                done_from.add(peer)
                return True
            return False

        def pump(reply_id: Optional[int]) -> Optional[int]:
            """Process one message; returns a probe reply if it matches."""
            def match(p, m):
                return m[0] in ("__prb__", "__prd__", "__prr__") and m[1] == epoch

            peer, msg = self.recv_match(match)
            if msg[0] == "__prr__":
                if reply_id is None or msg[2] != reply_id:
                    raise CommError(
                        f"rank {self.rank}: unexpected probe reply {msg[2]}"
                    )
                return msg[3]
            serve(peer, msg)
            return None

        result = None
        try:
            request = next(coroutine)
            while True:
                seq, pos = request
                worker = owner_of(seq)
                if worker == self.rank:
                    request = coroutine.send(local_lookup(pos))
                    continue
                probe_seq += 1
                self.post(worker, ("__prb__", epoch, probe_seq, pos))
                key = None
                while key is None:
                    key = pump(probe_seq)
                request = coroutine.send(key)
        except StopIteration as stop:
            result = stop.value
        # Own selection finished: tell everyone, keep serving until all done.
        for peer in peers:
            self.post(peer, ("__prd__", epoch))
        while done_from != peers:
            pump(None)
        return result


def _payload_bytes(payload: tuple) -> int:
    """Rough wire size of a chunk payload (for throughput accounting)."""
    total = 0
    for item in payload:
        if isinstance(item, (bytes, bytearray, memoryview)):
            total += len(item)
    return total
