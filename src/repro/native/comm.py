"""Pipe transport for native worker processes: a full mesh of pipes.

This module plays the role :mod:`repro.cluster.mpi` plays for the
simulator — collectives and point-to-point transfers between PEs — but
over real :mod:`multiprocessing` pipes between real processes on one
host.  All protocol logic (collectives, stash-aware receives, the
chunked exchange, the probe service, the sender thread) lives in
:class:`repro.native.comm_api.MeshComm`; :class:`PipeComm` contributes
only the pipe-specific channel primitives.  :class:`repro.net.tcp.TcpComm`
is the multi-host sibling over the same core.

Design notes
------------

* **One duplex pipe per worker pair.**  Per-channel FIFO ordering is the
  backbone of the protocols: a message posted after a phase's last
  message can never overtake it, so phases separated by collectives need
  no global sequencing, only per-message epoch tags as a safety check.

* **A single sender thread per worker.**  ``Connection.send`` blocks when
  the OS pipe fills; if every worker blocked sending into a full pipe
  while its own inbox backed up, the mesh would deadlock.  All sends are
  therefore executed by a background thread fed from a queue, and the
  main thread is always free to drain incoming traffic.  The bulk
  exchange additionally keeps the queue short (``pending_sends``,
  default :data:`PENDING_SENDS`) so the amount of record data parked in
  user space stays bounded — the external-memory discipline extends to
  the interconnect.

* **Stash-aware receives.**  A fast peer may already be sending its next
  phase's traffic while a slow peer still owes this phase's message.
  :meth:`MeshComm.recv_match` parks non-matching messages per peer and
  replays them in order, which keeps every protocol loop simple and
  starvation-free.
"""

from __future__ import annotations

from multiprocessing.connection import Connection, wait as conn_wait
from typing import Dict, Optional

from .comm_api import (
    DEFAULT_PENDING_SENDS,
    DEFAULT_TIMEOUT,
    CommError,
    CommTimeout,
    JobInterrupted,
    MeshComm,
)

__all__ = [
    "PipeComm",
    "CommError",
    "CommTimeout",
    "JobInterrupted",
    "DEFAULT_TIMEOUT",
    "PENDING_SENDS",
]

#: Backwards-compatible name for the default exchange backpressure bound
#: (now per-job via ``NativeJob.pending_sends``).
PENDING_SENDS = DEFAULT_PENDING_SENDS


class PipeComm(MeshComm):
    """Point-to-point and collective communication over a pipe mesh."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        conns: Dict[int, Connection],
        timeout: float = DEFAULT_TIMEOUT,
        chaos=None,
        pending_sends: int = DEFAULT_PENDING_SENDS,
        job_epoch: int = 0,
        job_tag: int = 0,
        interrupt: Optional[Connection] = None,
        interrupt_tag: int = 0,
    ):
        self.conns = conns
        #: Service interrupt channel: the warm pool hands each worker a
        #: pipe the scheduler writes dispatch tags into to abort the job
        #: currently running (cancel, or a peer rank failed).  Checked
        #: at every poll and every phase boundary; a matching tag raises
        #: :class:`JobInterrupted`.  Tags for *other* dispatches (a
        #: cancel that raced the job's own completion) are drained and
        #: ignored.
        self._interrupt = interrupt
        self._interrupt_tag = int(interrupt_tag)
        super().__init__(
            rank,
            n_workers,
            peers=list(conns),
            timeout=timeout,
            pending_sends=pending_sends,
            chaos=chaos,
            job_epoch=job_epoch,
            job_tag=job_tag,
        )
        self._start_sender()

    # -- channel primitives ---------------------------------------------------

    @staticmethod
    def _pickle_safe(obj):
        # Pickle cannot serialize a memoryview: the zero-copy hot path
        # hands chunks around as views, and this transport is where the
        # copy is unavoidable (Connection.send pickles everything).
        if isinstance(obj, memoryview):
            return obj.tobytes()
        if isinstance(obj, tuple):
            return tuple(PipeComm._pickle_safe(x) for x in obj)
        return obj

    def _transmit(self, peer: int, msg: tuple) -> None:
        # Pipes have no frame header, so the composite (job, epoch)
        # fence wraps the message itself: (fence, payload).  The payload
        # is always a protocol tuple whose first element is a string, so
        # the wrapper is unambiguous on the receive side.
        self.conns[peer].send((self.wire_fence, self._pickle_safe(msg)))

    def _check_interrupt(self) -> None:
        if self._interrupt is None:
            return
        while self._interrupt.poll(0):
            try:
                tag = self._interrupt.recv()
            except (EOFError, OSError) as exc:
                raise JobInterrupted(
                    f"rank {self.rank}: interrupt channel closed "
                    "(service shut down)"
                ) from exc
            if tag == self._interrupt_tag:
                raise JobInterrupted(
                    f"rank {self.rank}: job interrupted by the service"
                )

    def set_phase(self, phase: str) -> None:
        # Phase boundaries are the one place a 1-worker job (no peers,
        # so no polls) is guaranteed to pass through; checking here
        # bounds how long a cancel can go unnoticed on any pool worker.
        self._check_interrupt()
        super().set_phase(phase)

    def _poll_once(self, block_timeout: float) -> bool:
        """Pull every immediately available message into the stash."""
        self._check_interrupt()
        wait_on = list(self.conns.values())
        if self._interrupt is not None:
            wait_on.append(self._interrupt)
        if not wait_on:
            return False
        self._chaos_poll()
        ready = conn_wait(wait_on, timeout=block_timeout)
        if not ready:
            return False
        by_conn = {id(c): p for p, c in self.conns.items()}
        got = False
        for conn in ready:
            if self._interrupt is not None and conn is self._interrupt:
                self._check_interrupt()
                continue
            peer = by_conn[id(conn)]
            try:
                wrapped = conn.recv()
            except EOFError as exc:
                raise CommError(
                    f"rank {self.rank}: peer {peer} closed its pipe"
                ) from exc
            fence, msg = wrapped
            if fence != self.wire_fence:
                # A stale frame from a pre-restart epoch — or another
                # job's dispatch on a warm pool: fence it off.
                self.fenced_drops += 1
                continue
            self._stash_message(peer, msg)
            got = True
        return got

    def _close_transport(self) -> None:
        # Closing the pipe ends here is what reaps a sender thread still
        # blocked in Connection.send to a peer that stopped draining (a
        # collective raised mid-exchange): its write fails immediately
        # and the thread exits instead of leaking with the fds pinned.
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass

    def _sever_transport(self) -> None:
        for conn in self.conns.values():
            try:
                conn.close()
            except OSError:
                pass
