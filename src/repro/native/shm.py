"""Shared-memory transport: SPSC ring buffers between same-host PEs.

:class:`ShmComm` is the third :class:`~repro.native.comm_api.MeshComm`
channel binding, next to :class:`~repro.native.comm.PipeComm` and
:class:`~repro.net.tcp.TcpComm`.  Where a pipe pays a pickle plus two
kernel copies per message and a socket pays framing plus the TCP stack,
the shm transport moves record bytes through a
:mod:`multiprocessing.shared_memory` segment: one single-producer /
single-consumer byte ring per *directed* channel, written by the
sender thread and drained by the receiver's poll loop.

Ring layout (one POSIX shm segment per directed channel)::

    offset  size  field
    0       8     head          (u64, monotonic bytes consumed)
    8       8     tail          (u64, monotonic bytes produced)
    16      4     prod_waiting  (u32, producer parked on the space doorbell)
    20      4     cons_waiting  (u32, consumer parked on the data doorbell)
    24      8     (pad to 32)
    32      cap   data          (byte ring; index = counter % cap)

Messages are a framed byte stream inside the ring (the ring itself has
no message boundaries, exactly like a TCP stream)::

    offset  size  field
    0       4     meta_len     (u32)
    4       4     payload_len  (u64 worth fits in u32 rings; u32 here)
    8       1     flags        (FLAG_RAW / FLAG_JSON / FLAG_NESTED,
                                shared with repro.net.framing)
    9       8     fence        (u64 composite (job, epoch) fence,
                                pack_fence from comm_api)
    17      ...   meta || payload

* **Record chunks** reuse the framing layer's nested-raw split: the
  protocol tuple minus its trailing buffer becomes ``meta`` and the
  buffer itself is copied *once* from the sender's memoryview into the
  ring, then *once* from the ring into a per-message buffer on the
  receive side, where it is delivered as a ``memoryview`` slice —
  no pickling of record bytes anywhere on the path.
* **Control messages** (barriers, EOFs, probes) travel as tagged JSON
  (``FLAG_JSON``) — msgpack-free, pickle-free.  Tuples round-trip
  exactly via a ``{"t": [...]}`` tagging scheme.  Messages JSON cannot
  express (numpy sample arrays in the selection allgather) fall back to
  pickle, flagged by the absence of ``FLAG_JSON``.

Wakeup is condition-based, never a spin: each ring carries two doorbell
pipes.  The consumer parks on the *data* doorbell (a
``multiprocessing.connection.wait``-able pipe) after publishing
``cons_waiting``; the producer rings it only when the flag is up.  A
producer blocked on a full ring parks symmetrically on the *space*
doorbell after publishing ``prod_waiting``.  The flag-then-recheck
handshake on both sides closes the lost-wakeup race; the 8-byte
head/tail stores are single aligned memcpys (atomic in practice on
x86-64/aarch64 — the platforms ``fork`` restricts us to).

Failure semantics match the siblings: a peer that dies or severs closes
its doorbell fds, which the other side observes as EOF and raises
:class:`CommError`; a *wedged* peer (stops draining, nothing closed)
leaves the ring full and surfaces as :class:`CommTimeout` through the
usual flush/exchange deadlines.

Segment lifetime: whoever calls :func:`create_shm_mesh` owns the names
and must call ``unlink()`` on the returned mesh once the job is over
(the driver does it in a ``finally``; the service pool when an attempt
is finalized; tests immediately after every endpoint attached — POSIX
keeps the memory alive until the last ``close``).  That discipline is
what the chaos sweep's no-leaked-``/dev/shm`` assertion checks.
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import threading
import time
import uuid
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Dict, List, Optional

from ..net.framing import (
    FLAG_JSON,
    FLAG_NESTED,
    FLAG_RAW,
    MAX_META_BYTES,
    MAX_PAYLOAD_BYTES,
    reattach_payload,
    split_raw_nested,
)
from .comm_api import (
    DEFAULT_PENDING_SENDS,
    DEFAULT_TIMEOUT,
    CommError,
    CommTimeout,
    JobInterrupted,
    MeshComm,
)

__all__ = [
    "ShmComm",
    "ShmRingSpec",
    "ShmChannelSpec",
    "ShmMesh",
    "create_shm_mesh",
    "list_shm_segments",
    "DEFAULT_RING_BYTES",
    "SHM_PREFIX",
]

#: Ring header: head, tail, prod_waiting, cons_waiting.
_RING_HEADER = struct.Struct("<QQII")
_HEAD_OFF = 0
_TAIL_OFF = 8
_PROD_WAIT_OFF = 16
_CONS_WAIT_OFF = 20
_DATA_OFF = 32

#: Per-message frame header inside the ring: meta_len, payload_len,
#: flags, fence (the composite (job, epoch) fence from pack_fence).
_FRAME = struct.Struct("<IIBQ")

#: Default data capacity of one directed ring.  Sized to hold a few
#: exchange chunks (a chunk is one memory-load / P, typically well under
#: 256 KiB at bench sizings) so the producer rarely parks.
DEFAULT_RING_BYTES = 1 << 20

#: Every segment name starts with this; the chaos sweep greps /dev/shm
#: for it to assert nothing leaked.
SHM_PREFIX = "rsort-"

#: How long a parked producer/consumer sleeps per doorbell wait tick —
#: purely an upper bound on how late it notices sever/close/interrupt;
#: actual wakeup is the doorbell, not the tick.
_WAIT_TICK = 0.05


class _NotJsonable(Exception):
    """Raised by :func:`_jsonify` for objects JSON cannot carry."""


def _jsonify(obj):
    """Encode ``obj`` for JSON with exact tuple/list/dict round-trip.

    Containers become tagged one-key dicts (``{"t": [...]}`` for
    tuples, ``"l"`` lists, ``"d"`` dicts) so an allgathered
    ``("ready", 3)`` comes back a tuple, not a list.  Anything else
    non-scalar raises :class:`_NotJsonable` and the message falls back
    to pickle.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, tuple):
        return {"t": [_jsonify(x) for x in obj]}
    if isinstance(obj, list):
        return {"l": [_jsonify(x) for x in obj]}
    if isinstance(obj, dict):
        return {"d": [[_jsonify(k), _jsonify(v)] for k, v in obj.items()]}
    raise _NotJsonable(type(obj).__name__)


def _dejsonify(obj):
    if isinstance(obj, dict):
        if len(obj) != 1:
            raise CommError(f"malformed tagged JSON message: {obj!r}")
        tag, val = next(iter(obj.items()))
        if tag == "t":
            return tuple(_dejsonify(x) for x in val)
        if tag == "l":
            return [_dejsonify(x) for x in val]
        if tag == "d":
            return {_dejsonify(k): _dejsonify(v) for k, v in val}
        raise CommError(f"unknown JSON tag {tag!r}")
    return obj


def list_shm_segments(prefix: str = SHM_PREFIX) -> List[str]:
    """Names under ``/dev/shm`` starting with ``prefix`` (Linux; else [])."""
    try:
        return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))
    except OSError:
        return []


# ------------------------------------------------------------- mesh specs


@dataclass
class ShmRingSpec:
    """Everything needed to attach one directed ring from any process.

    Connections pickle across ``multiprocessing`` channels (fd passing),
    and the segment is re-attached by name, so a spec can be shipped to
    a forked worker or through the warm pool's control pipe alike.
    """

    name: str
    capacity: int
    data_rd: Connection   # consumer parks here (data doorbell)
    data_wr: Connection   # producer rings it
    space_rd: Connection  # producer parks here (space doorbell)
    space_wr: Connection  # consumer rings it
    #: True when attaching processes run their own resource tracker
    #: (spawn start method): the attach registration must be dropped or
    #: a worker exit would unlink a segment the driver still owns.
    untrack_on_attach: bool = False

    def close(self) -> None:
        for conn in (self.data_rd, self.data_wr, self.space_rd, self.space_wr):
            try:
                conn.close()
            except OSError:
                pass


@dataclass
class ShmChannelSpec:
    """One rank's pair of directed rings to a single peer."""

    send: ShmRingSpec
    recv: ShmRingSpec

    def close(self) -> None:
        self.send.close()
        self.recv.close()


@dataclass
class ShmMesh:
    """A full pairwise ring mesh plus the unlink obligation."""

    channels: List[Dict[int, ShmChannelSpec]]
    names: List[str]
    _unlinked: bool = field(default=False, repr=False)

    def close_parent_ends(self) -> None:
        """Close the creator's doorbell copies (after workers spawned)."""
        for per_rank in self.channels:
            for chan in per_rank.values():
                chan.close()

    def unlink(self) -> None:
        """Remove every segment name (idempotent; mappings stay valid)."""
        if self._unlinked:
            return
        self._unlinked = True
        for name in self.names:
            try:
                seg = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass


def create_shm_mesh(
    ctx,
    n_workers: int,
    ring_bytes: int = DEFAULT_RING_BYTES,
    job_tag: int = 0,
) -> ShmMesh:
    """Create rings + doorbells for every directed pair.

    ``channels[rank][peer]`` holds rank's send ring to ``peer`` and its
    receive ring from ``peer``.  The caller owns the segment names and
    must eventually call :meth:`ShmMesh.unlink`.
    """
    token = uuid.uuid4().hex[:8]
    untrack = getattr(ctx, "get_start_method", lambda: "fork")() == "spawn"
    rings: Dict[tuple, ShmRingSpec] = {}
    names: List[str] = []
    for i in range(n_workers):
        for j in range(n_workers):
            if i == j:
                continue
            name = f"{SHM_PREFIX}{os.getpid():x}-{token}-j{job_tag}-{i}to{j}"
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=_DATA_OFF + ring_bytes
            )
            _RING_HEADER.pack_into(seg.buf, 0, 0, 0, 0, 0)
            seg.close()
            names.append(name)
            data_rd, data_wr = ctx.Pipe(duplex=False)
            space_rd, space_wr = ctx.Pipe(duplex=False)
            rings[(i, j)] = ShmRingSpec(
                name=name, capacity=ring_bytes,
                data_rd=data_rd, data_wr=data_wr,
                space_rd=space_rd, space_wr=space_wr,
                untrack_on_attach=untrack,
            )
    channels: List[Dict[int, ShmChannelSpec]] = [dict() for _ in range(n_workers)]
    for i in range(n_workers):
        for j in range(n_workers):
            if i == j:
                continue
            channels[i][j] = ShmChannelSpec(
                send=rings[(i, j)], recv=rings[(j, i)]
            )
    return ShmMesh(channels=channels, names=names)


# ------------------------------------------------------------ ring endpoints


def _attach(spec: ShmRingSpec) -> shared_memory.SharedMemory:
    seg = shared_memory.SharedMemory(name=spec.name)
    if spec.untrack_on_attach:
        try:  # pragma: no cover - spawn-only path
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    return seg


class _RingProducer:
    """Send side of one directed ring (sender-thread only)."""

    def __init__(self, spec: ShmRingSpec):
        self._shm = _attach(spec)
        self._buf = self._shm.buf
        self.capacity = spec.capacity
        self._data = self._buf[_DATA_OFF:_DATA_OFF + spec.capacity]
        self._doorbell = spec.data_wr
        self._space = spec.space_rd
        # The producer is the sole writer of tail: cache it locally.
        self._tail = struct.unpack_from("<Q", self._buf, _TAIL_OFF)[0]
        self._closed = False

    def _head(self) -> int:
        return struct.unpack_from("<Q", self._buf, _HEAD_OFF)[0]

    def _free(self) -> int:
        return self.capacity - (self._tail - self._head())

    def _cons_waiting(self) -> bool:
        return bool(struct.unpack_from("<I", self._buf, _CONS_WAIT_OFF)[0])

    def _ring_doorbell(self) -> None:
        try:
            self._doorbell.send_bytes(b"!")
        except (OSError, ValueError, BrokenPipeError):
            pass  # the consumer is gone; its EOF surfaces on our waits

    def _wait_space(self, deadline: float, abort) -> None:
        """Park on the space doorbell until the consumer frees bytes."""
        struct.pack_into("<I", self._buf, _PROD_WAIT_OFF, 1)
        try:
            if self._free() > 0:  # re-check after raising the flag
                return
            abort()
            if time.monotonic() > deadline:
                raise CommTimeout(
                    "shm ring full and the peer stopped draining "
                    f"(capacity {self.capacity} bytes): wedged consumer"
                )
            try:
                if self._space.poll(_WAIT_TICK):
                    while self._space.poll(0):
                        self._space.recv_bytes()
            except (EOFError, OSError) as exc:
                raise CommError(
                    "peer closed its shm space doorbell (dead PE)"
                ) from exc
        finally:
            struct.pack_into("<I", self._buf, _PROD_WAIT_OFF, 0)

    def write(self, parts, deadline: float, abort) -> None:
        """Stream ``parts`` (bytes-likes) into the ring, in order.

        Publishes tail incrementally — the consumer treats the ring as a
        byte stream, so a message larger than the ring flows through in
        pieces while the consumer drains.
        """
        for part in parts:
            mv = memoryview(part)
            if mv.ndim != 1 or mv.format != "B":
                mv = mv.cast("B")
            off, n = 0, len(mv)
            while off < n:
                free = self._free()
                if free == 0:
                    self._wait_space(deadline, abort)
                    continue
                take = min(free, n - off)
                pos = self._tail % self.capacity
                first = min(take, self.capacity - pos)
                self._data[pos:pos + first] = mv[off:off + first]
                if take > first:
                    self._data[:take - first] = mv[off + first:off + take]
                self._tail += take
                struct.pack_into("<Q", self._buf, _TAIL_OFF, self._tail)
                off += take
                if self._cons_waiting():
                    self._ring_doorbell()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in (self._doorbell, self._space):
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._data.release()
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover
            pass


class _RingConsumer:
    """Receive side of one directed ring (poll-thread only)."""

    def __init__(self, spec: ShmRingSpec):
        self._shm = _attach(spec)
        self._buf = self._shm.buf
        self.capacity = spec.capacity
        self._data = self._buf[_DATA_OFF:_DATA_OFF + spec.capacity]
        self.doorbell = spec.data_rd
        self._space = spec.space_wr
        self._head = struct.unpack_from("<Q", self._buf, _HEAD_OFF)[0]
        # Frame-decoder state: header first, then the body.
        self._frame = bytearray(_FRAME.size)
        self._frame_fill = 0
        self._body: Optional[bytearray] = None
        self._body_fill = 0
        self._meta_len = self._payload_len = self._flags = 0
        self._fence = 0
        self.eof = False
        self._closed = False

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self._buf, _TAIL_OFF)[0]

    def avail(self) -> int:
        return self._tail() - self._head

    def mid_frame(self) -> bool:
        return self._frame_fill > 0 or self._body is not None

    def set_waiting(self, flag: int) -> None:
        struct.pack_into("<I", self._buf, _CONS_WAIT_OFF, flag)

    def _copy_out(self, dst: memoryview, n: int) -> None:
        pos = self._head % self.capacity
        first = min(n, self.capacity - pos)
        dst[:first] = self._data[pos:pos + first]
        if n > first:
            dst[first:n] = self._data[:n - first]
        self._head += n
        struct.pack_into("<Q", self._buf, _HEAD_OFF, self._head)
        if struct.unpack_from("<I", self._buf, _PROD_WAIT_OFF)[0]:
            try:
                self._space.send_bytes(b"!")
            except (OSError, ValueError, BrokenPipeError):
                pass

    def drain(self, deliver) -> bool:
        """Consume every available byte; ``deliver`` completed frames."""
        got = False
        while True:
            avail = self.avail()
            if avail == 0:
                return got
            if self._body is None:
                take = min(_FRAME.size - self._frame_fill, avail)
                self._copy_out(
                    memoryview(self._frame)[
                        self._frame_fill:self._frame_fill + take
                    ],
                    take,
                )
                self._frame_fill += take
                if self._frame_fill < _FRAME.size:
                    continue
                meta_len, payload_len, flags, fence = _FRAME.unpack(self._frame)
                if meta_len > MAX_META_BYTES or payload_len > MAX_PAYLOAD_BYTES:
                    raise CommError(
                        f"implausible shm frame lengths (meta {meta_len}, "
                        f"payload {payload_len}): ring corrupt"
                    )
                self._meta_len, self._payload_len = meta_len, payload_len
                self._flags, self._fence = flags, fence
                self._frame_fill = 0
                self._body = bytearray(meta_len + payload_len)
                self._body_fill = 0
            take = min(len(self._body) - self._body_fill, self.avail())
            if take:
                self._copy_out(
                    memoryview(self._body)[
                        self._body_fill:self._body_fill + take
                    ],
                    take,
                )
                self._body_fill += take
            if self._body_fill == len(self._body):
                body, self._body = self._body, None
                deliver(
                    self._flags, self._fence, body,
                    self._meta_len, self._payload_len,
                )
                got = True

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in (self.doorbell, self._space):
            try:
                conn.close()
            except OSError:
                pass
        try:
            self._data.release()
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover
            pass


# ------------------------------------------------------------------ ShmComm


class ShmComm(MeshComm):
    """Collectives and point-to-point transfers over shared-memory rings."""

    def __init__(
        self,
        rank: int,
        n_workers: int,
        channels: Dict[int, ShmChannelSpec],
        timeout: float = DEFAULT_TIMEOUT,
        chaos=None,
        pending_sends: int = DEFAULT_PENDING_SENDS,
        job_epoch: int = 0,
        job_tag: int = 0,
        interrupt: Optional[Connection] = None,
        interrupt_tag: int = 0,
        own_channel_ends: bool = False,
    ):
        self.channels = channels
        self._interrupt = interrupt
        self._interrupt_tag = int(interrupt_tag)
        self._closing = threading.Event()
        self._producers: Dict[int, _RingProducer] = {}
        self._consumers: Dict[int, _RingConsumer] = {}
        try:
            for peer, chan in channels.items():
                self._producers[peer] = _RingProducer(chan.send)
                self._consumers[peer] = _RingConsumer(chan.recv)
        except Exception:
            self._teardown_endpoints()
            raise
        if own_channel_ends:
            # Process-per-rank usage (worker processes, pool PEs): the
            # specs arrived pickled, so this process holds duplicated
            # fds of *both* sides' doorbell ends.  Drop the peer's ends
            # so a dead peer turns into doorbell EOF here instead of a
            # timeout.  Threaded harnesses share the spec objects
            # between endpoints and must keep the default (False).
            for chan in channels.values():
                for conn in (
                    chan.send.data_rd, chan.send.space_wr,
                    chan.recv.data_wr, chan.recv.space_rd,
                ):
                    try:
                        conn.close()
                    except OSError:
                        pass
        super().__init__(
            rank,
            n_workers,
            peers=list(channels),
            timeout=timeout,
            pending_sends=pending_sends,
            chaos=chaos,
            job_epoch=job_epoch,
            job_tag=job_tag,
        )
        self._start_sender()

    # -- channel primitives ---------------------------------------------------

    def _abort_send(self) -> None:
        if self._closing.is_set() or self._severed:
            raise CommError(f"rank {self.rank}: shm transport closed")

    def _transmit(self, peer: int, msg: tuple) -> None:
        meta_msg, payload, nested = split_raw_nested(msg)
        flags = 0
        try:
            meta = json.dumps(
                _jsonify(meta_msg), separators=(",", ":")
            ).encode("utf-8")
            flags |= FLAG_JSON
        except _NotJsonable:
            meta = pickle.dumps(meta_msg, protocol=pickle.HIGHEST_PROTOCOL)
        parts = [b"", meta]
        payload_len = 0
        if payload is not None:
            flags |= FLAG_RAW | (FLAG_NESTED if nested else 0)
            payload_len = len(payload)
            parts.append(payload)
        parts[0] = _FRAME.pack(len(meta), payload_len, flags, self.wire_fence)
        self._producers[peer].write(
            parts, time.monotonic() + self.timeout, self._abort_send
        )

    def _check_interrupt(self) -> None:
        if self._interrupt is None:
            return
        while self._interrupt.poll(0):
            try:
                tag = self._interrupt.recv()
            except (EOFError, OSError) as exc:
                raise JobInterrupted(
                    f"rank {self.rank}: interrupt channel closed "
                    "(service shut down)"
                ) from exc
            if tag == self._interrupt_tag:
                raise JobInterrupted(
                    f"rank {self.rank}: job interrupted by the service"
                )

    def set_phase(self, phase: str) -> None:
        # Mirrors PipeComm: the phase boundary is the one guaranteed
        # passage point on a 1-worker pool job, bounding cancel latency.
        self._check_interrupt()
        super().set_phase(phase)

    def _deliver(self, peer: int, flags: int, fence: int, body: bytearray,
                 meta_len: int, payload_len: int) -> bool:
        if fence != self.wire_fence:
            # Stale bytes from a pre-restart epoch or another pool job.
            self.fenced_drops += 1
            return False
        mv = memoryview(body)
        try:
            if flags & FLAG_JSON:
                msg = _dejsonify(json.loads(bytes(mv[:meta_len]).decode("utf-8")))
            else:
                msg = pickle.loads(mv[:meta_len])
        except CommError:
            raise
        except Exception as exc:
            raise CommError(
                f"rank {self.rank}: undecodable shm frame from peer "
                f"{peer}: {exc!r}"
            ) from exc
        if flags & FLAG_RAW:
            # The record buffer is delivered as a memoryview over this
            # message's own heap buffer: one ring->heap copy total, no
            # pickling, and downstream (np.frombuffer, unpack_from,
            # file writes) consumes the view directly.
            msg = reattach_payload(msg, mv[meta_len:], bool(flags & FLAG_NESTED))
        self._stash_message(peer, msg)
        return True

    def _drain_rings(self) -> bool:
        got = False
        for peer, cons in self._consumers.items():
            def deliver(flags, fence, body, meta_len, payload_len, _p=peer):
                nonlocal got
                if self._deliver(_p, flags, fence, body, meta_len, payload_len):
                    got = True

            cons.drain(deliver)
        return got

    def _raise_if_dead_peer(self) -> None:
        for peer, cons in self._consumers.items():
            if cons.eof and cons.avail() == 0 and not cons.mid_frame():
                raise CommError(
                    f"rank {self.rank}: peer {peer} closed its shm channel "
                    "(dead PE)"
                )

    def _poll_once(self, block_timeout: float) -> bool:
        self._check_interrupt()
        self._chaos_poll()
        if self._drain_rings():
            return True
        self._raise_if_dead_peer()
        # Arm the wait flags, re-check, then park on the doorbells: the
        # producer only rings when cons_waiting is up, and the re-check
        # after raising the flag closes the lost-wakeup window.
        for cons in self._consumers.values():
            if not cons.eof:
                cons.set_waiting(1)
        try:
            if any(
                cons.avail() for cons in self._consumers.values()
            ):
                return self._drain_rings()
            wait_on = [
                cons.doorbell
                for cons in self._consumers.values()
                if not cons.eof
            ]
            if self._interrupt is not None:
                wait_on.append(self._interrupt)
            if not wait_on:
                return False
            try:
                ready = conn_wait(wait_on, timeout=max(0.0, block_timeout))
            except OSError as exc:
                raise CommError(
                    f"rank {self.rank}: shm doorbell died: {exc!r}"
                ) from exc
        finally:
            for cons in self._consumers.values():
                cons.set_waiting(0)
        if not ready:
            return False
        by_conn = {
            id(cons.doorbell): cons for cons in self._consumers.values()
        }
        for conn in ready:
            if self._interrupt is not None and conn is self._interrupt:
                self._check_interrupt()
                continue
            cons = by_conn[id(conn)]
            try:
                while cons.doorbell.poll(0):
                    cons.doorbell.recv_bytes()
            except (EOFError, OSError):
                cons.eof = True
        if self._drain_rings():
            return True
        self._raise_if_dead_peer()
        return False

    # -- lifecycle / chaos ----------------------------------------------------

    def _teardown_endpoints(self) -> None:
        for prod in self._producers.values():
            prod.close()
        for cons in self._consumers.values():
            cons.close()

    def _close_transport(self) -> None:
        # Unblock a sender parked on a full ring first (it checks the
        # closing event every wait tick), then drop every endpoint.
        self._closing.set()
        self._teardown_endpoints()

    def _sever_transport(self) -> None:
        # Close the doorbells without a goodbye: peers observe EOF at
        # their next park, exactly like a died PE.
        self._closing.set()
        self._teardown_endpoints()

    def _timeout_context(self) -> str:
        full = [
            peer
            for peer, prod in self._producers.items()
            if not prod._closed and prod._free() == 0
        ]
        if full:
            listing = ", ".join(str(p) for p in sorted(full))
            return f"; shm rings to peer(s) {listing} are full (not draining)"
        return ""
